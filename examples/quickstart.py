#!/usr/bin/env python3
"""Quickstart: mount the cache timing attack, then defend against it.

Builds the paper's Figure 1 topology (victim U, adversary Adv, shared
first-hop router R, producer P), demonstrates that Adv can tell which
content U fetched from RTTs alone, then re-runs the same probes against a
router running the Always-Delay countermeasure.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks.classifier import ThresholdClassifier
from repro.core.schemes import AlwaysDelayScheme
from repro.ndn.topology import local_lan
from repro.sim.process import Timeout

VICTIM_CONTENT = [f"/content/wiki/page-{i}" for i in range(5)]
DECOY_CONTENT = [f"/content/wiki/page-{i}" for i in range(100, 105)]


def run_scenario(scheme=None, title=""):
    """U fetches its pages; Adv probes both U's pages and decoys."""
    topo = local_lan(seed=42, scheme=scheme)
    topo.producer.private_by_default = scheme is not None
    probes = []

    def victim():
        for name in VICTIM_CONTENT:
            result = yield from topo.user.fetch(name, private=scheme is not None)
            assert result is not None
            yield Timeout(5.0)

    def adversary():
        yield Timeout(1000.0)  # U browsed a while ago; Adv needs no presence
        # Reference: fetch a known object once to cache it, then re-fetch
        # several times — those are certain cache hits and calibrate d2.
        yield from topo.adversary.fetch("/content/reference")
        ref_rtts = []
        for _ in range(6):
            yield Timeout(5.0)
            ref = yield from topo.adversary.fetch("/content/reference")
            ref_rtts.append(ref.rtt)
        classifier = ThresholdClassifier.from_reference(ref_rtts)
        for name in VICTIM_CONTENT + DECOY_CONTENT:
            result = yield from topo.adversary.fetch(
                name, private=scheme is not None
            )
            probes.append((name, result.rtt, classifier.is_hit(result.rtt)))
            yield Timeout(5.0)

    topo.engine.spawn(victim(), label="victim")
    topo.engine.spawn(adversary(), label="adversary")
    topo.engine.run()

    print(f"\n=== {title} ===")
    print(f"{'content':<28} {'rtt (ms)':>9}  adversary's verdict")
    correct = 0
    for name, rtt, guessed_hit in probes:
        truth = name in VICTIM_CONTENT
        verdict = "U fetched this" if guessed_hit else "not fetched"
        mark = "correct" if guessed_hit == truth else "WRONG"
        correct += guessed_hit == truth
        print(f"{name:<28} {rtt:9.2f}  {verdict:<16} [{mark}]")
    print(f"adversary accuracy: {correct}/{len(probes)}")
    return correct / len(probes)


def main():
    print("Cache Privacy in Named-Data Networking - quickstart")
    print("Topology: U and Adv share first-hop router R; P is behind R.")

    undefended = run_scenario(
        scheme=None, title="Vanilla NDN router (no countermeasure)"
    )
    defended = run_scenario(
        scheme=AlwaysDelayScheme(),
        title="Router with Always-Delay countermeasure (Section V-B)",
    )

    print("\nSummary")
    print(f"  undefended router: adversary accuracy {undefended:.0%}")
    print(f"  defended router:   adversary accuracy {defended:.0%} "
          "(~50% = coin flipping)")
    assert undefended > 0.95
    assert defended < 0.8


if __name__ == "__main__":
    main()
