#!/usr/bin/env python3
"""Tuning a privacy-preserving ISP cache on a proxy workload (Section VII).

An ISP wants to deploy a consumer-facing NDN router that protects private
requests while keeping the cache effective.  This example replays a
synthetic IRCache-style trace (185 users, Zipf popularity, diurnal
profile) and walks the decision a deployment would face:

1. what does each countermeasure cost in hit rate at my cache size?
2. how does the exponential scheme's (k, ε, δ) knob trade privacy for
   utility?
3. how much bandwidth does delay-based hiding save versus disabling the
   cache for private content?

Run:  python examples/isp_cache_tuning.py          (about a minute)
      python examples/isp_cache_tuning.py --quick  (seconds, smaller trace)
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.core.schemes import (
    AlwaysDelayScheme,
    ExponentialRandomCache,
    NoPrivacyScheme,
    UniformRandomCache,
)
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.marking import ContentMarking
from repro.workload.replay import replay

CACHE_SIZE = 8000
PRIVATE_FRACTION = 0.2


def build_trace(quick: bool):
    config = IrcacheConfig(requests=40_000 if quick else 200_000, seed=11)
    generator = IrcacheGenerator(config)
    trace = generator.generate()
    print(
        f"Trace: {len(trace):,} requests, {trace.unique_objects:,} objects, "
        f"{trace.unique_users} users; unlimited-cache ceiling "
        f"{trace.max_hit_rate:.1%}\n"
    )
    return trace


def compare_schemes(trace):
    print(f"1. Scheme comparison at cache size {CACHE_SIZE:,} "
          f"({PRIVATE_FRACTION:.0%} of content private)\n")
    marking = ContentMarking(PRIVATE_FRACTION)
    rows = []
    for label, scheme in [
        ("no privacy (vanilla NDN)", NoPrivacyScheme()),
        ("exponential-random-cache", ExponentialRandomCache.for_privacy_target(
            k=5, epsilon=0.005, delta=0.01)),
        ("uniform-random-cache", UniformRandomCache.for_privacy_target(
            k=5, delta=0.01)),
        ("always delay private", AlwaysDelayScheme()),
    ]:
        stats = replay(trace, scheme=scheme, marking=marking,
                       cache_size=CACHE_SIZE)
        rows.append([
            label,
            100 * stats.hit_rate,
            100 * stats.bandwidth_hit_rate,
            100 * stats.private_hit_rate,
        ])
    print(format_table(
        ["scheme", "hit rate %", "bandwidth saved %", "private hit rate %"],
        rows,
    ))
    print("\n  -> delay-based schemes pay latency, not bandwidth: the"
          "\n     'bandwidth saved' column matches vanilla NDN.\n")


def sweep_privacy_knob(trace):
    print("2. Exponential-Random-Cache: the (k, eps, delta) knob\n")
    marking = ContentMarking(PRIVATE_FRACTION)
    rows = []
    for k, eps, delta in [
        (1, 0.05, 0.10),
        (5, 0.05, 0.10),
        (5, 0.005, 0.01),
        (10, 0.005, 0.01),
    ]:
        scheme = ExponentialRandomCache.for_privacy_target(k, eps, delta)
        stats = replay(trace, scheme=scheme, marking=marking,
                       cache_size=CACHE_SIZE)
        rows.append([
            k, eps, delta,
            scheme.alpha,
            scheme.K if scheme.K is not None else "inf",
            100 * stats.hit_rate,
            100 * stats.private_hit_rate,
        ])
    print(format_table(
        ["k", "eps", "delta", "alpha", "K", "hit rate %", "private hit %"],
        rows,
    ))
    print("\n  -> looser privacy (small k, large delta) recovers private"
          "\n     hits; tight targets converge to always-delay behavior.\n")


def bandwidth_vs_disable(trace):
    print("3. Hiding hits by delay vs disabling caching for private content\n")
    marking = ContentMarking(PRIVATE_FRACTION)
    delayed = replay(trace, scheme=AlwaysDelayScheme(), marking=marking,
                     cache_size=CACHE_SIZE)
    # 'Disable' = never admit private content: emulate by an unlimited
    # private share of misses — replay with everything private and a
    # scheme that forces true misses.
    from repro.core.schemes.base import CacheScheme, Decision

    class NeverCachePrivateHits(CacheScheme):
        """Forces genuine upstream re-fetches for private content."""

        name = "disable-private"

        def decide_private(self, entry, now):
            return Decision.miss()

    disabled = replay(trace, scheme=NeverCachePrivateHits(), marking=marking,
                      cache_size=CACHE_SIZE)
    print(format_table(
        ["strategy", "observed hit rate %", "upstream traffic saved %"],
        [
            ["artificial delay (paper)", 100 * delayed.hit_rate,
             100 * delayed.bandwidth_hit_rate],
            ["ignore cache for private", 100 * disabled.hit_rate,
             100 * disabled.bandwidth_hit_rate],
        ],
    ))
    saved = delayed.bandwidth_hit_rate - disabled.bandwidth_hit_rate
    print(f"\n  -> delay-based hiding saves {100 * saved:.1f} percentage"
          "\n     points of upstream traffic at identical privacy.\n")


def main():
    quick = "--quick" in sys.argv
    trace = build_trace(quick)
    compare_schemes(trace)
    sweep_privacy_knob(trace)
    bandwidth_vs_disable(trace)


if __name__ == "__main__":
    main()
