#!/usr/bin/env python3
"""A Bayesian adversary estimating how often you requested something.

Extension demo: beyond the paper's binary "was C requested?" game, an
adversary who probes repeatedly can try to infer the *number* of prior
requests from where the first cache hit appears.  This example shows the
inference in action against three router configurations and how the
Random-Cache parameters blunt it.

Run:  python examples/bayesian_adversary.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks.inference import RequestCountInference
from repro.core.privacy.distributions import (
    DegenerateK,
    TruncatedGeometric,
    UniformK,
)
from repro.core.schemes.naive_threshold import NaiveThresholdScheme
from repro.core.schemes.uniform import UniformRandomCache

X_MAX = 5  # the adversary considers 0..5 prior requests


def demo_single_inference():
    print("=" * 72)
    print("One concrete run: victim requested the content 3 times")
    print("=" * 72)
    from repro.ndn.cs import CacheEntry
    from repro.ndn.name import Name
    from repro.ndn.packets import Data

    def make_entry():
        return CacheEntry(
            data=Data(name=Name.parse("/secret/doc"), private=True),
            insert_time=0.0, last_access=0.0, fetch_delay=10.0, private=True,
        )

    rng = np.random.default_rng(7)
    for label, scheme, dist, t in (
        ("naive k=5", NaiveThresholdScheme(5, rng=rng), DegenerateK(5), 10),
        ("uniform K=12", UniformRandomCache(K=12, rng=rng), UniformK(12), 18),
    ):
        entry = make_entry()
        scheme.on_insert(entry, private=True, now=0.0)  # victim request 1
        scheme.on_request(entry, private=True, now=0.0)  # request 2
        scheme.on_request(entry, private=True, now=0.0)  # request 3

        # The adversary probes t times and counts leading misses.
        prefix = 0
        for _ in range(t):
            decision = scheme.on_request(entry, private=True, now=0.0)
            if decision.counts_as_hit:
                break
            prefix += 1

        inference = RequestCountInference(dist, x_max=X_MAX, t=t)
        posterior = inference.posterior(prefix)
        estimate = inference.map_estimate(prefix)
        print(f"\n[{label}] observed {prefix} misses before the first hit")
        for x in range(X_MAX + 1):
            bar = "#" * int(round(40 * posterior[x]))
            marker = " <- truth" if x == 3 else ""
            print(f"  P(x={x} | obs) = {posterior[x]:.3f} {bar}{marker}")
        print(f"  MAP estimate: {estimate} "
              f"({'correct' if estimate == 3 else 'wrong'})")


def demo_spectrum():
    print()
    print("=" * 72)
    print("Expected performance across schemes (uniform prior over 0..5)")
    print("=" * 72)
    print(f"{'scheme':<28} {'MAP accuracy':>14} {'info gain (bits)':>18}")
    for label, dist, t in (
        ("naive k=5", DegenerateK(5), 12),
        ("expo alpha=0.5, K=40", TruncatedGeometric(0.5, 40), 50),
        ("expo alpha=0.9, K=40", TruncatedGeometric(0.9, 40), 50),
        ("uniform K=20", UniformK(20), 30),
        ("uniform K=200", UniformK(200), 210),
    ):
        report = RequestCountInference(dist, x_max=X_MAX, t=t).report()
        print(f"{label:<28} {report.map_accuracy:>14.3f} "
              f"{report.information_gain_bits:>18.3f}")
    print("\nbaseline (guess the prior mode): accuracy 0.167, 0 bits")
    print("-> randomizing k_C is what makes request counts unrecoverable;")
    print("   the spread of the K distribution sets how unrecoverable.")


def main():
    demo_single_inference()
    demo_spectrum()


if __name__ == "__main__":
    main()
