#!/usr/bin/env python3
"""The full Section III attack repertoire against a neighborhood router.

Reproduces, at small scale, the paper's three attack experiments plus the
scope probe:

1. consumer privacy on a LAN (Figure 3(a)) — did my neighbor fetch C?
2. consumer privacy over a WAN (Figure 3(b)),
3. producer privacy (Figure 3(c)) — did *anyone* fetch C from P? — with
   the multi-fragment amplification that turns a 59% probe into 99.9%,
4. the scope=2 probe that needs no timing at all.

Run:  python examples/attack_neighborhood.py
"""

from __future__ import annotations

from repro.analysis.experiments import run_amplification, run_fig3
from repro.attacks.scope_probe import ScopeProbeAttack
from repro.ndn.topology import local_lan
from repro.sim.process import Timeout


def timing_attacks():
    print("=" * 70)
    print("1-3. Timing attacks: hit/miss RTT separation per setting")
    print("=" * 70)
    for setting, label in [
        ("fig3a_lan", "LAN, consumer privacy"),
        ("fig3b_wan", "WAN, consumer privacy"),
        ("fig3c_wan_producer", "WAN, producer privacy"),
    ]:
        result = run_fig3(setting, objects_per_trial=40, trials=4)
        print(
            f"{label:<28} hit={result.hit_mean:7.2f} ms  "
            f"miss={result.miss_mean:7.2f} ms  "
            f"single-probe success={result.bayes_success:6.1%}"
        )
    return run_fig3("fig3c_wan_producer", objects_per_trial=40, trials=4)


def amplification(producer_result):
    print()
    print("=" * 70)
    print("3b. Amplification over content fragments (Section III)")
    print("=" * 70)
    p = producer_result.bayes_success
    table = run_amplification(p, max_fragments=8)
    for n, success in zip(table.fragments, table.analytic_success):
        print(f"  probe {n} fragment(s): Pr[success] = {success:.4f}")
    print("  -> a weak single probe becomes near-certain at 8 fragments")


def scope_probe():
    print()
    print("=" * 70)
    print("4. Scope-field probe: a timing-free oracle (Section III)")
    print("=" * 70)
    topo = local_lan(seed=7)
    hot = [f"/content/neighbor-{i}" for i in range(4)]
    cold = [f"/content/quiet-{i}" for i in range(4)]
    attack = ScopeProbeAttack(topo, probe_timeout=500.0)

    def victim():
        for name in hot:
            result = yield from topo.user.fetch(name)
            assert result is not None
            yield Timeout(3.0)

    def adversary():
        yield Timeout(500.0)
        yield from attack.run(hot + cold)

    topo.engine.spawn(victim(), label="victim")
    topo.engine.spawn(adversary(), label="adversary")
    topo.engine.run()
    for verdict in attack.verdicts:
        answer = "ANSWERED -> in R's cache" if verdict.answered else "silent -> not cached"
        print(f"  scope=2 probe {str(verdict.target):<26} {answer}")
    print(f"  accuracy with ground truth: {attack.accuracy(hot):.0%}")


def main():
    producer_result = timing_attacks()
    amplification(producer_result)
    scope_probe()


if __name__ == "__main__":
    main()
