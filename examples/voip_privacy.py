#!/usr/bin/env python3
"""Interactive-traffic privacy via unpredictable names (Section V-A).

Alice and Bob hold a VoIP-like session through a shared NDN router.  Their
frames are named with HMAC-derived rand components from a shared secret:

* the session still benefits from router caching (lost frames recover
  from R's cache, not from the far endpoint),
* an adversary probing R with namespace prefixes — or with rand guesses
  derived from a wrong secret — learns nothing (footnote 5's exact-match
  rule keeps cached frames invisible to prefix interests).

Run:  python examples/voip_privacy.py
"""

from __future__ import annotations

from repro.naming.session import SessionNamer
from repro.ndn.apps.interactive import InteractiveEndpoint
from repro.ndn.link import GaussianJitterDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout

SECRET = b"kdf-output-of-the-key-exchange"
FRAMES = 40


def build():
    net = Network()
    net.add_router("R")
    alice = InteractiveEndpoint(
        net.engine, SessionNamer(SECRET, "/alice/voip", "/bob/voip"), "alice"
    )
    bob = InteractiveEndpoint(
        net.engine, SessionNamer(SECRET, "/bob/voip", "/alice/voip"), "bob"
    )
    net.add_endpoint("alice", alice)
    net.add_endpoint("bob", bob)
    link = lambda: GaussianJitterDelay(base=3.0, jitter_std=0.3)  # noqa: E731
    net.connect("alice", "R", link(), loss_rate=0.08)  # lossy last mile
    net.connect("bob", "R", link())
    net.add_route("R", "/alice", "alice")
    net.add_route("R", "/bob", "bob")
    adversary = net.add_consumer("adv")
    net.connect("adv", "R", link())
    return net, alice, bob, adversary


def main():
    net, alice, bob, adversary = build()
    print(f"Session: {FRAMES} frames each way, 8% loss on Alice's link.\n")

    net.spawn(alice.run_session(FRAMES, frame_interval=20.0,
                                retransmit_timeout=40.0), "alice")
    net.spawn(bob.run_session(FRAMES, frame_interval=20.0,
                              retransmit_timeout=40.0), "bob")

    probe_results = []

    def adversary_proc():
        yield Timeout(FRAMES * 20.0 + 500.0)
        targets = [
            "/alice/voip",               # namespace prefix
            "/bob/voip",
            "/alice",                    # broader prefix
        ]
        for target in targets:
            result = yield from adversary.fetch(target, timeout=100.0)
            probe_results.append((target, result))
        # Guessing rand components without the secret:
        outsider = SessionNamer(b"not-the-secret", "/alice/voip", "/bob/voip")
        for seq in range(3):
            guess = outsider.outgoing_name(seq)
            result = yield from adversary.fetch(str(guess), timeout=100.0)
            probe_results.append((str(guess), result))

    net.spawn(adversary_proc(), "adversary")
    net.run()

    router = net["R"]
    print("Session outcome")
    for endpoint in (alice, bob):
        stats = endpoint.frame_stats
        retx = sum(1 for s in stats if s.retransmitted)
        mean_latency = sum(s.latency for s in stats) / len(stats)
        print(
            f"  {endpoint.label}: {len(stats)}/{FRAMES} frames delivered, "
            f"{retx} recovered via retransmission, "
            f"mean latency {mean_latency:.1f} ms"
        )
    print(f"  frames sitting in R's cache: {len(router.cs)}")

    print("\nAdversary probes against R's cache")
    for target, result in probe_results:
        outcome = "GOT CONTENT (leak!)" if result is not None else "nothing"
        print(f"  {target:<44} -> {outcome}")

    leaks = sum(1 for _t, r in probe_results if r is not None)
    print(f"\nLeaked frames: {leaks} "
          f"(cached frames are invisible without the session secret)")
    assert leaks == 0


if __name__ == "__main__":
    main()
