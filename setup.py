"""Legacy shim so ``pip install -e .`` works offline (no wheel package).

All real metadata lives in pyproject.toml; setuptools reads it from there.
"""

from setuptools import setup

setup()
