"""Sharded compiled traces: bit-equality with the in-RAM compiler,
checksummed integrity, and bounded-residency replay parity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.core.schemes.uniform import UniformRandomCache
from repro.workload.compiled import compile_trace
from repro.workload.fast_replay import fast_replay
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.marking import ContentMarking, NoMarking, RequestMarking
from repro.workload.sharded import (
    ShardedCompiledTrace,
    ShardIntegrityError,
    compile_stream,
)
from repro.workload.streaming import TraceWorkload


def _config(requests: int, seed: int) -> IrcacheConfig:
    return IrcacheConfig(
        requests=requests, users=30, objects=300, sites=8,
        session_locality=0.3, seed=seed,
    )


def _assert_bit_equal(sharded: ShardedCompiledTrace, trace) -> None:
    compiled = compile_trace(trace)
    materialized = sharded.materialize()
    assert sharded.n_requests == compiled.n_requests
    assert sharded.n_names == compiled.n_names
    for field in ("ids", "times", "users", "first_occurrence"):
        ours = getattr(materialized, field)
        theirs = getattr(compiled, field)
        assert ours.dtype == theirs.dtype, field
        np.testing.assert_array_equal(ours, theirs, err_msg=field)
    np.testing.assert_array_equal(
        materialized.occurrence_index, compiled.occurrence_index
    )
    assert [str(n) for n in sharded.names] == [str(n) for n in compiled.names]
    assert sharded.max_hit_rate == pytest.approx(compiled.max_hit_rate)


# ----------------------------------------------------------------------
# Satellite: the Hypothesis bit-equality property
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    requests=st.integers(min_value=1, max_value=2500),
    shard_size=st.integers(min_value=1, max_value=3000),
    chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=900)),
    seed=st.integers(min_value=0, max_value=5),
)
def test_compile_stream_bit_equal_to_compile_trace(
    tmp_path_factory, requests, shard_size, chunk_size, seed
):
    """Shards concatenate bit-equal to ``compile_trace`` for arbitrary
    shard/chunk sizes and seeds — dtypes, intern order, occurrence index."""
    out = tmp_path_factory.mktemp("shards")
    trace = IrcacheGenerator(_config(requests, seed)).generate()
    sharded = compile_stream(
        TraceWorkload(trace), out, shard_size=shard_size, chunk_size=chunk_size
    )
    _assert_bit_equal(sharded, trace)
    expected_shards = -(-requests // shard_size)
    assert sharded.n_shards == expected_shards


def test_compile_stream_from_generator_stream(tmp_path):
    """stream → shards (never materializing) equals generate → compile."""
    config = _config(4000, seed=11)
    sharded = compile_stream(
        IrcacheGenerator(config).stream(), tmp_path, shard_size=700, chunk_size=513
    )
    _assert_bit_equal(sharded, IrcacheGenerator(config).generate())


# ----------------------------------------------------------------------
# Integrity: checksums, corruption, open-time validation
# ----------------------------------------------------------------------
def test_verify_passes_then_catches_corruption(tmp_path):
    config = _config(1500, seed=2)
    sharded = compile_stream(
        IrcacheGenerator(config).stream(), tmp_path, shard_size=400
    )
    sharded.verify()
    victim = tmp_path / "shard-00001.times.npy"
    payload = bytearray(victim.read_bytes())
    payload[-1] ^= 0xFF
    victim.write_bytes(bytes(payload))
    with pytest.raises(ShardIntegrityError, match="checksum"):
        ShardedCompiledTrace.open(tmp_path).verify()
    with pytest.raises(ShardIntegrityError, match="checksum"):
        ShardedCompiledTrace.open(tmp_path).load_shard(1, verify=True)


def test_corrupted_name_table_detected(tmp_path):
    sharded = compile_stream(
        IrcacheGenerator(_config(800, seed=4)).stream(), tmp_path, shard_size=300
    )
    names_path = tmp_path / "names.tsv"
    names_path.write_text(
        names_path.read_text(encoding="utf-8") + "/evil/extra\n", encoding="utf-8"
    )
    with pytest.raises(ShardIntegrityError, match="checksum"):
        ShardedCompiledTrace.open(tmp_path).verify()


def test_open_rejects_missing_or_malformed_manifest(tmp_path):
    with pytest.raises(ShardIntegrityError, match="manifest"):
        ShardedCompiledTrace.open(tmp_path)
    (tmp_path / "manifest.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(ShardIntegrityError):
        ShardedCompiledTrace.open(tmp_path)
    (tmp_path / "manifest.json").write_text(
        '{"format": "something-else", "version": 1}', encoding="utf-8"
    )
    with pytest.raises(ShardIntegrityError, match="format"):
        ShardedCompiledTrace.open(tmp_path)


def test_shards_are_memory_mapped_and_releasable(tmp_path):
    sharded = compile_stream(
        IrcacheGenerator(_config(1000, seed=7)).stream(), tmp_path, shard_size=256
    )
    shard = sharded.load_shard(0)
    assert isinstance(shard.ids, np.memmap)
    assert len(shard) == 256
    shard.release()  # must not invalidate the mapping
    assert int(shard.ids[0]) >= 0
    total = sum(len(s) for s in sharded.iter_shards())
    assert total == sharded.n_requests


# ----------------------------------------------------------------------
# Replay parity: shard-by-shard fast_replay equals in-RAM fast_replay
# ----------------------------------------------------------------------
def _scheme(name: str, seed: int):
    rng = np.random.default_rng(seed)
    return {
        "no-privacy": lambda: NoPrivacyScheme(),
        "always-delay": lambda: AlwaysDelayScheme(),
        "uniform": lambda: UniformRandomCache(K=8, rng=rng),
        "exponential": lambda: ExponentialRandomCache(alpha=0.5, K=16, rng=rng),
    }[name]()


@pytest.mark.parametrize(
    "scheme_name,marking_factory,policy,cache_size",
    [
        ("no-privacy", lambda: NoMarking(), "lru", 64),
        ("uniform", lambda: ContentMarking(0.2, salt=1), "fifo", 32),
        ("exponential", lambda: RequestMarking(0.15, seed=9), "lfu", 128),
        ("always-delay", lambda: ContentMarking(0.1, salt=2), "random", None),
    ],
)
def test_sharded_replay_bit_identical(
    tmp_path, scheme_name, marking_factory, policy, cache_size
):
    """stream→shards→replay == generate→compile→replay on every
    observable.  Fresh scheme/marking instances per leg: both carry RNG
    state, so sharing one across legs would continue its stream."""
    config = _config(3000, seed=13)
    trace = IrcacheGenerator(config).generate()
    sharded = compile_stream(
        IrcacheGenerator(config).stream(), tmp_path, shard_size=512
    )
    in_ram = fast_replay(
        trace,
        scheme=_scheme(scheme_name, 5),
        marking=marking_factory(),
        cache_size=cache_size,
        policy=policy,
        seed=17,
    )
    streamed = fast_replay(
        sharded,
        scheme=_scheme(scheme_name, 5),
        marking=marking_factory(),
        cache_size=cache_size,
        policy=policy,
        seed=17,
    )
    assert in_ram == streamed


def test_sharded_replay_requires_kernel_scheme(tmp_path):
    """Schemes without a batch kernel would need the reference replay,
    which needs Request objects — sharded traces refuse explicitly."""

    class KernellessScheme(NoPrivacyScheme):
        def make_kernel(self, names):
            return None

    sharded = compile_stream(
        IrcacheGenerator(_config(200, seed=1)).stream(), tmp_path, shard_size=64
    )
    with pytest.raises(ValueError, match="sharded"):
        fast_replay(sharded, scheme=KernellessScheme(), cache_size=32, seed=3)
