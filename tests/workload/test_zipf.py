"""Unit tests for the Zipf popularity sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.zipf import ZipfSampler


class TestPmf:
    def test_normalized(self):
        sampler = ZipfSampler(100, 0.8)
        assert sum(sampler.pmf(r) for r in range(100)) == pytest.approx(1.0)

    def test_rank_zero_most_popular(self):
        sampler = ZipfSampler(100, 0.8)
        pmfs = [sampler.pmf(r) for r in range(100)]
        assert all(a >= b for a, b in zip(pmfs, pmfs[1:]))

    def test_power_law_ratio(self):
        sampler = ZipfSampler(1000, 1.0)
        assert sampler.pmf(0) / sampler.pmf(9) == pytest.approx(10.0)

    def test_out_of_range_zero(self):
        sampler = ZipfSampler(10, 1.0)
        assert sampler.pmf(-1) == 0.0
        assert sampler.pmf(10) == 0.0

    def test_zero_exponent_is_uniform(self):
        sampler = ZipfSampler(50, 0.0)
        assert sampler.pmf(0) == pytest.approx(1 / 50)
        assert sampler.pmf(49) == pytest.approx(1 / 50)


class TestSampling:
    def test_samples_in_range(self, rng):
        sampler = ZipfSampler(20, 0.8)
        samples = sampler.sample(5000, rng)
        assert samples.min() >= 0
        assert samples.max() < 20

    def test_empirical_matches_pmf(self, rng):
        sampler = ZipfSampler(10, 1.0)
        samples = sampler.sample(100_000, rng)
        for r in range(10):
            assert np.mean(samples == r) == pytest.approx(sampler.pmf(r), abs=0.01)

    def test_zero_count(self, rng):
        assert ZipfSampler(5, 1.0).sample(0, rng).size == 0

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            ZipfSampler(5, 1.0).sample(-1, rng)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(5, -0.1)


class TestExpectedUnique:
    def test_matches_simulation(self, rng):
        sampler = ZipfSampler(200, 0.8)
        analytic = sampler.expected_unique(500)
        uniques = []
        for _ in range(60):
            uniques.append(len(np.unique(sampler.sample(500, rng))))
        assert np.mean(uniques) == pytest.approx(analytic, rel=0.03)

    def test_zero_requests(self):
        assert ZipfSampler(10, 1.0).expected_unique(0) == pytest.approx(0.0)

    def test_bounded_by_population(self):
        sampler = ZipfSampler(50, 0.5)
        assert sampler.expected_unique(10_000) <= 50.0

    def test_monotone_in_requests(self):
        sampler = ZipfSampler(100, 0.9)
        values = [sampler.expected_unique(t) for t in (10, 100, 1000)]
        assert values[0] < values[1] < values[2]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, 1.0).expected_unique(-1)
