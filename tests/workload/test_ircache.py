"""Unit tests for the synthetic IRCache trace generator."""

from __future__ import annotations

import pytest

from repro.workload.ircache import (
    IrcacheConfig,
    IrcacheGenerator,
    small_test_trace,
)


class TestConfigValidation:
    def test_defaults_mirror_paper_scale(self):
        cfg = IrcacheConfig()
        assert cfg.users == 185           # the trace's user population
        assert cfg.duration_hours == 24.0  # 24-hour capture
        assert len(cfg.diurnal) == 24

    @pytest.mark.parametrize("field,value", [
        ("requests", 0),
        ("users", 0),
        ("objects", 0),
        ("sites", 0),
        ("duration_hours", 0.0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            IrcacheConfig(**{field: value})

    def test_invalid_diurnal_rejected(self):
        with pytest.raises(ValueError):
            IrcacheConfig(diurnal=())
        with pytest.raises(ValueError):
            IrcacheConfig(diurnal=(0.5, -0.1))


class TestGeneration:
    @pytest.fixture(scope="class")
    def trace(self):
        config = IrcacheConfig(
            requests=20_000, users=185, objects=30_000, sites=200, seed=1
        )
        return IrcacheGenerator(config).generate()

    def test_request_count(self, trace):
        assert len(trace) == 20_000

    def test_sorted_by_time(self, trace):
        times = [r.time for r in trace]
        assert times == sorted(times)

    def test_within_duration(self, trace):
        assert trace[0].time >= 0.0
        assert trace[-1].time <= 24 * 3_600_000.0

    def test_all_users_possible(self, trace):
        assert trace.unique_users > 100  # heavy-tailed but broad

    def test_names_have_site_object_structure(self, trace):
        name = trace[0].name
        assert len(name) == 2
        assert name[0].startswith("s")
        assert name[1].startswith("o")

    def test_object_site_assignment_is_stable(self, trace):
        """Every occurrence of an object maps to the same site."""
        seen = {}
        for request in trace:
            site, obj = request.name[0], request.name[1]
            assert seen.setdefault(obj, site) == site

    def test_popularity_is_skewed(self, trace):
        counts = sorted(trace.popularity().values(), reverse=True)
        top_share = sum(counts[:100]) / len(trace)
        assert top_share > 0.05  # head much hotter than uniform (100/30000)

    def test_diurnal_profile_respected(self, trace):
        """Night hours (0-5) must be much quieter than peak (9-11)."""
        ms_per_hour = 3_600_000.0
        night = sum(1 for r in trace if r.time < 6 * ms_per_hour)
        peak = sum(
            1 for r in trace if 9 * ms_per_hour <= r.time < 12 * ms_per_hour
        )
        assert peak > 3 * night

    def test_reproducible(self):
        cfg = IrcacheConfig(requests=500, objects=1000, sites=20, seed=9)
        a = IrcacheGenerator(cfg).generate()
        b = IrcacheGenerator(cfg).generate()
        assert [(r.time, r.user, r.name) for r in a] == [
            (r.time, r.user, r.name) for r in b
        ]


class TestCalibration:
    def test_expected_hit_rate_close_to_realized(self):
        cfg = IrcacheConfig(requests=30_000, objects=50_000, sites=300, seed=3)
        gen = IrcacheGenerator(cfg)
        trace = gen.generate()
        assert trace.max_hit_rate == pytest.approx(
            gen.expected_unlimited_hit_rate(), abs=0.02
        )

    def test_default_config_targets_paper_range(self):
        """Figure 5's y-axis tops out near 50%: the default configuration
        must land an unlimited-cache hit rate in that neighborhood."""
        rate = IrcacheGenerator().expected_unlimited_hit_rate()
        assert 0.40 < rate < 0.55

    def test_small_test_trace_fast_path(self):
        trace = small_test_trace(requests=2000, seed=0)
        assert len(trace) == 2000
        assert trace.unique_users <= 25
