"""Tests for workload parameter fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.fitting import TraceFit, fit_trace, fit_zipf_exponent
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.zipf import ZipfSampler


class TestZipfFit:
    @pytest.mark.parametrize("true_exponent", [0.5, 0.7, 1.0, 1.5])
    def test_recovers_known_exponent(self, true_exponent, rng):
        sampler = ZipfSampler(2000, true_exponent)
        draws = sampler.sample(200_000, rng)
        counts = np.bincount(draws, minlength=2000).astype(float)
        counts = np.sort(counts)[::-1]
        fitted = fit_zipf_exponent(counts)
        assert fitted == pytest.approx(true_exponent, abs=0.05)

    def test_uniform_counts_fit_zero(self):
        counts = np.full(500, 100.0)
        assert fit_zipf_exponent(counts) == pytest.approx(0.0, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_zipf_exponent(np.array([5.0]))
        with pytest.raises(ValueError):
            fit_zipf_exponent(np.array([1.0, 5.0]))  # not descending
        with pytest.raises(ValueError):
            fit_zipf_exponent(np.array([5.0, -1.0]))


class TestTraceFit:
    @pytest.fixture(scope="class")
    def trace(self):
        config = IrcacheConfig(
            requests=60_000, users=60, objects=40_000, sites=300,
            popularity_exponent=0.8, seed=21,
        )
        return IrcacheGenerator(config).generate()

    def test_recovers_generator_exponent(self, trace):
        fit = fit_trace(trace)
        assert fit.zipf_exponent == pytest.approx(0.8, abs=0.1)

    def test_population_summary(self, trace):
        fit = fit_trace(trace)
        assert fit.requests == 60_000
        assert fit.unique_users <= 60
        assert fit.unique_objects == trace.unique_objects
        assert 20 < fit.duration_hours <= 24.01

    def test_to_config_roundtrip_hit_rate(self, trace):
        """A config fitted from a trace must regenerate a workload with a
        similar unlimited-cache hit rate — the quantity Figure 5 hinges
        on."""
        fit = fit_trace(trace)
        regenerated = IrcacheGenerator(fit.to_config()).generate()
        assert regenerated.max_hit_rate == pytest.approx(
            trace.max_hit_rate, abs=0.08
        )

    def test_to_config_scaling(self, trace):
        fit = fit_trace(trace)
        half = fit.to_config(scale=0.5)
        assert half.requests == 30_000
        with pytest.raises(ValueError):
            fit.to_config(scale=0.0)

    def test_short_trace_rejected(self):
        from repro.workload.trace import Trace

        with pytest.raises(ValueError):
            fit_trace(Trace())
