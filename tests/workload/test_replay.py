"""Unit tests for the trace replay harness (the Figure 5 engine)."""

from __future__ import annotations

import pytest

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.core.schemes.uniform import UniformRandomCache
from repro.ndn.name import Name
from repro.workload.ircache import small_test_trace
from repro.workload.marking import ContentMarking, NoMarking
from repro.workload.replay import (
    CachedRouter,
    ReplayStats,
    RequestOutcome,
    replay,
)
from repro.workload.trace import Request, Trace


def simple_trace(pattern):
    """Build a trace from (time, uri) pairs, single user."""
    return Trace([
        Request(time=float(i), user=0, name=Name.parse(uri))
        for i, uri in enumerate(pattern)
    ])


class TestCachedRouter:
    def test_first_request_misses_then_hits(self):
        router = CachedRouter()
        name = Name.parse("/a")
        assert router.request(name, False, 0.0) is RequestOutcome.MISS
        assert router.request(name, False, 1.0) is RequestOutcome.HIT

    def test_always_delay_private_disguises(self):
        router = CachedRouter(scheme=AlwaysDelayScheme())
        name = Name.parse("/a")
        router.request(name, True, 0.0)
        assert router.request(name, True, 1.0) is RequestOutcome.DISGUISED_HIT

    def test_trigger_rule_demotes_in_replay(self):
        router = CachedRouter(scheme=AlwaysDelayScheme())
        name = Name.parse("/a")
        router.request(name, True, 0.0)
        assert router.request(name, False, 1.0) is RequestOutcome.HIT
        # Demotion is sticky: later private requests still observe hits.
        assert router.request(name, True, 2.0) is RequestOutcome.HIT

    def test_capacity_evicts(self):
        router = CachedRouter(cache_size=1)
        router.request(Name.parse("/a"), False, 0.0)
        router.request(Name.parse("/b"), False, 1.0)
        assert router.request(Name.parse("/a"), False, 2.0) is RequestOutcome.MISS


class TestReplayAccounting:
    def test_hit_rate_simple_pattern(self):
        trace = simple_trace(["/a", "/a", "/a", "/b"])
        stats = replay(trace)
        assert stats.requests == 4
        assert stats.hits == 2
        assert stats.misses == 2
        assert stats.hit_rate == pytest.approx(0.5)

    def test_unlimited_cache_reaches_max_hit_rate(self):
        trace = small_test_trace(requests=3000, seed=2)
        stats = replay(trace)
        assert stats.hit_rate == pytest.approx(trace.max_hit_rate)

    def test_smaller_cache_lower_hit_rate(self):
        trace = small_test_trace(requests=4000, seed=3)
        unlimited = replay(trace).hit_rate
        tiny = replay(trace, cache_size=20)
        assert tiny.hit_rate < unlimited
        assert tiny.evictions > 0

    def test_always_delay_loses_only_private_hits(self):
        trace = small_test_trace(requests=3000, seed=4)
        baseline = replay(trace, scheme=NoPrivacyScheme(), marking=NoMarking())
        private_all = replay(
            trace, scheme=AlwaysDelayScheme(), marking=ContentMarking(1.0)
        )
        assert private_all.hits == 0
        assert private_all.disguised_hits == baseline.hits
        # Bandwidth accounting is unchanged: disguised hits save upstream.
        assert private_all.bandwidth_hit_rate == pytest.approx(
            baseline.hit_rate
        )

    def test_scheme_ordering_matches_paper(self):
        """No-Privacy >= Exponential >= Uniform >= Always-Delay (Fig. 5a)."""
        trace = small_test_trace(requests=6000, seed=5)
        marking = ContentMarking(0.4)
        rates = {}
        for label, scheme in (
            ("none", NoPrivacyScheme()),
            ("expo", ExponentialRandomCache.for_privacy_target(5, 0.05, 0.1)),
            ("uni", UniformRandomCache.for_privacy_target(5, 0.1)),
            ("delay", AlwaysDelayScheme()),
        ):
            rates[label] = replay(trace, scheme=scheme, marking=marking).hit_rate
        assert rates["none"] >= rates["expo"] >= rates["uni"] >= rates["delay"]
        assert rates["none"] > rates["delay"]  # strict separation overall

    def test_private_accounting(self):
        trace = simple_trace(["/a", "/a", "/b", "/b"])
        marking = ContentMarking(1.0)
        stats = replay(trace, scheme=NoPrivacyScheme(), marking=marking)
        assert stats.private_requests == 4
        assert stats.private_hits == 2
        assert stats.private_hit_rate == pytest.approx(0.5)

    def test_artificial_delay_total(self):
        trace = simple_trace(["/a", "/a", "/a"])
        stats = replay(
            trace, scheme=AlwaysDelayScheme(), marking=ContentMarking(1.0),
            fetch_delay=50.0,
        )
        assert stats.disguised_hits == 2
        assert stats.artificial_delay_total == pytest.approx(100.0)

    def test_empty_trace(self):
        stats = replay(Trace())
        assert stats.requests == 0
        assert stats.hit_rate == 0.0
        assert stats.bandwidth_hit_rate == 0.0
        assert stats.private_hit_rate == 0.0

    def test_replay_reproducible(self):
        trace = small_test_trace(requests=2000, seed=6)
        scheme_factory = lambda: UniformRandomCache.for_privacy_target(5, 0.1)  # noqa: E731
        a = replay(trace, scheme=scheme_factory(), marking=ContentMarking(0.3))
        b = replay(trace, scheme=scheme_factory(), marking=ContentMarking(0.3))
        assert a.hits == b.hits
        assert a.disguised_hits == b.disguised_hits


class TestDelayedHitRefresh:
    def test_delayed_hits_refresh_lru(self):
        """Section VII: the entry becomes fresh even if the response is
        delayed — the disguised content must not age out of LRU."""
        scheme = AlwaysDelayScheme()
        marking = ContentMarking(1.0)
        # /a requested (private), then /b and /c fill the 2-entry cache.
        trace = simple_trace(["/a", "/b", "/a", "/c", "/a"])
        stats = replay(trace, scheme=scheme, marking=marking, cache_size=2)
        # /a is refreshed at each touch, so it survives; every repeat of /a
        # is a disguised hit, not a genuine re-fetch miss.
        assert stats.disguised_hits == 2
