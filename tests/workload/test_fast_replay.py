"""Parity suite: fast_replay must be bit-identical to the reference replay.

The fast kernel re-implements the replay loop over interned int ids; its
only contract is *exact* equality of :class:`ReplayStats` with the
reference implementation — same hits, same misses, same float delay
totals — for every scheme, policy, marking rule, cache size, and seed.
Every test here builds fresh scheme/marking instances for both sides
(schemes and RequestMarking carry RNG state that one run would consume).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.grouping import NamespaceGrouping
from repro.core.schemes.naive_threshold import NaiveThresholdScheme
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.core.schemes.uniform import UniformRandomCache
from repro.ndn.errors import CacheError
from repro.workload.compiled import CompiledTrace
from repro.workload.fast_replay import fast_replay
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.marking import ContentMarking, NoMarking, RequestMarking
from repro.workload.replay import replay
from repro.workload.trace import Trace


@pytest.fixture(scope="module")
def trace() -> Trace:
    return IrcacheGenerator(
        IrcacheConfig(requests=4000, objects=3000, seed=11)
    ).generate()


SCHEME_FACTORIES = {
    "no-privacy": lambda rng: NoPrivacyScheme(),
    "always-delay": lambda rng: AlwaysDelayScheme(),
    "uniform": lambda rng: UniformRandomCache.for_privacy_target(5, 0.01, rng=rng),
    "exponential": lambda rng: ExponentialRandomCache.for_privacy_target(
        5, 0.005, 0.01, rng=rng
    ),
    "naive-threshold": lambda rng: NaiveThresholdScheme(5, rng=rng),
    "exponential-grouped": lambda rng: ExponentialRandomCache(
        alpha=0.99, K=500, rng=rng, grouping=NamespaceGrouping(depth=1)
    ),
}

MARKING_FACTORIES = {
    "none": lambda: NoMarking(),
    "content": lambda: ContentMarking(0.3, salt=7),
    "request": lambda: RequestMarking(0.3, seed=7),
}


def _run_both(trace, scheme_key, marking_key, **kwargs):
    """Reference and fast stats for one configuration, isolated RNGs."""
    seed = kwargs.get("seed", 0)
    reference = replay(
        trace,
        scheme=SCHEME_FACTORIES[scheme_key](np.random.default_rng(seed)),
        marking=MARKING_FACTORIES[marking_key](),
        **kwargs,
    )
    fast = fast_replay(
        trace,
        scheme=SCHEME_FACTORIES[scheme_key](np.random.default_rng(seed)),
        marking=MARKING_FACTORIES[marking_key](),
        **kwargs,
    )
    return reference, fast


@pytest.mark.parametrize("scheme_key", sorted(SCHEME_FACTORIES))
@pytest.mark.parametrize("marking_key", sorted(MARKING_FACTORIES))
def test_parity_schemes_and_markings(trace, scheme_key, marking_key):
    reference, fast = _run_both(
        trace, scheme_key, marking_key, cache_size=300, seed=1
    )
    assert fast == reference


@pytest.mark.parametrize("policy", ["lru", "lfu", "fifo", "random"])
def test_parity_replacement_policies(trace, policy):
    reference, fast = _run_both(
        trace, "exponential", "content", cache_size=200, policy=policy, seed=2
    )
    assert fast == reference


@pytest.mark.parametrize("cache_size", [1, 50, 1000, None])
@pytest.mark.parametrize("seed", [0, 3])
def test_parity_cache_sizes_and_seeds(trace, cache_size, seed):
    reference, fast = _run_both(
        trace, "uniform", "content", cache_size=cache_size, seed=seed
    )
    assert fast == reference


def test_parity_without_delayed_hit_refresh(trace):
    reference, fast = _run_both(
        trace, "exponential", "content", cache_size=200,
        refresh_delayed_hits=False,
    )
    assert fast == reference


def test_parity_nonzero_fetch_delay_totals(trace):
    """Float delay totals must match bitwise, not approximately."""
    reference, fast = _run_both(
        trace, "always-delay", "content", cache_size=200, fetch_delay=13.7
    )
    assert fast.artificial_delay_total == reference.artificial_delay_total
    assert fast == reference


def test_accepts_precompiled_trace(trace):
    compiled = trace.compile()
    assert isinstance(compiled, CompiledTrace)
    via_trace = fast_replay(
        trace, scheme=NoPrivacyScheme(), cache_size=100, seed=0
    )
    via_compiled = fast_replay(
        compiled, scheme=NoPrivacyScheme(), cache_size=100, seed=0
    )
    assert via_compiled == via_trace


def test_compile_is_cached_and_invalidated(trace):
    assert trace.compile() is trace.compile()
    small = Trace()
    for request in list(trace)[:10]:
        small.append(request)
    first = small.compile()
    small.append(list(trace)[10])
    assert small.compile() is not first
    assert small.compile().n_requests == 11


def test_unknown_policy_and_bad_cache_size_rejected(trace):
    with pytest.raises(CacheError):
        fast_replay(trace, scheme=NoPrivacyScheme(), policy="mru")
    with pytest.raises(CacheError):
        fast_replay(trace, scheme=NoPrivacyScheme(), cache_size=0)


def test_kernelless_scheme_falls_back_to_reference(trace):
    class OpaqueScheme(NoPrivacyScheme):
        def make_kernel(self, names):
            return None

    stats = fast_replay(trace, scheme=OpaqueScheme(), cache_size=100, seed=0)
    assert stats == replay(trace, scheme=NoPrivacyScheme(), cache_size=100, seed=0)
    # The fallback needs Request objects, which a bare CompiledTrace lacks.
    with pytest.raises(ValueError):
        fast_replay(trace.compile(), scheme=OpaqueScheme(), cache_size=100)
