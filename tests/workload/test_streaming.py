"""The Workload protocol: chunk-invariant streaming request sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.streaming import (
    RequestBlock,
    TraceWorkload,
    TsvWorkload,
    Workload,
    iter_requests,
    materialize,
    rechunk,
)
from repro.workload.trace import Trace

CONFIG = IrcacheConfig(requests=5000, users=60, objects=800, sites=12, seed=3)


def _concat(blocks):
    blocks = list(blocks)
    return (
        np.concatenate([b.times for b in blocks]),
        np.concatenate([b.users for b in blocks]),
        np.concatenate([b.keys for b in blocks]),
    )


# ----------------------------------------------------------------------
# Protocol conformance
# ----------------------------------------------------------------------
def test_implementations_satisfy_protocol(tmp_path):
    stream = IrcacheGenerator(CONFIG).stream()
    assert isinstance(stream, Workload)
    trace = IrcacheGenerator(CONFIG).generate()
    assert isinstance(TraceWorkload(trace), Workload)
    path = tmp_path / "trace.tsv"
    trace.save(path)
    assert isinstance(TsvWorkload(path), Workload)


def test_request_block_rejects_ragged_columns():
    with pytest.raises(ValueError, match="ragged"):
        RequestBlock(
            times=np.zeros(3), users=np.zeros(2, np.int64), keys=np.zeros(3, np.int64)
        )


# ----------------------------------------------------------------------
# rechunk
# ----------------------------------------------------------------------
def test_rechunk_is_exact_reslicing():
    rng = np.random.default_rng(0)
    blocks = []
    cursor = 0.0
    for size in (5, 1, 17, 0, 64, 3):
        times = np.sort(rng.random(size)) + cursor
        cursor += 1.0
        blocks.append(
            RequestBlock(
                times=times,
                users=rng.integers(0, 10, size),
                keys=rng.integers(0, 50, size),
            )
        )
    flat = _concat(blocks)
    for chunk in (1, 2, 7, 90, 1000):
        rechunked = list(rechunk(iter(blocks), chunk))
        assert all(len(b) == chunk for b in rechunked[:-1])
        assert 0 < len(rechunked[-1]) <= chunk
        out = _concat(rechunked)
        for a, b in zip(flat, out):
            np.testing.assert_array_equal(a, b)
    # chunk_size=None passes blocks through untouched.
    assert [len(b) for b in rechunk(iter(blocks), None)] == [5, 1, 17, 0, 64, 3]
    with pytest.raises(ValueError):
        list(rechunk(iter(blocks), 0))


# ----------------------------------------------------------------------
# The synthetic generator's stream
# ----------------------------------------------------------------------
def test_stream_is_chunk_size_invariant():
    """The acceptance criterion: the byte stream is a function of the
    seed alone — consumer chunking never perturbs sampling."""
    stream = IrcacheGenerator(CONFIG).stream()
    baseline = _concat(stream.iter_blocks())
    for chunk in (1000, 777, 13):
        out = _concat(IrcacheGenerator(CONFIG).stream().iter_blocks(chunk))
        for a, b in zip(baseline, out):
            np.testing.assert_array_equal(a, b)


def test_stream_matches_generate():
    trace = IrcacheGenerator(CONFIG).generate()
    stream = IrcacheGenerator(CONFIG).stream()
    requests = list(iter_requests(stream))
    assert len(requests) == len(trace) == CONFIG.requests
    for a, b in zip(requests, trace):
        assert (a.time, a.user, str(a.name)) == (b.time, b.user, str(b.name))
    assert stream.n_requests == CONFIG.requests
    assert stream.key_space == CONFIG.objects
    assert 0 < stream.n_names <= CONFIG.objects


def test_stream_times_sorted_and_bounded():
    stream = IrcacheGenerator(CONFIG).stream()
    times = _concat(stream.iter_blocks(512))[0]
    assert np.all(np.diff(times) >= 0)
    assert times[0] >= 0.0
    assert times[-1] <= CONFIG.duration_hours * 3_600_000.0  # ms


def test_materialize_roundtrip():
    trace = materialize(IrcacheGenerator(CONFIG).stream())
    direct = IrcacheGenerator(CONFIG).generate()
    assert len(trace) == len(direct)
    assert str(trace[0].name) == str(direct[0].name)


# ----------------------------------------------------------------------
# TSV reader and trace adapter
# ----------------------------------------------------------------------
def test_tsv_workload_streams_the_saved_trace(tmp_path):
    trace = IrcacheGenerator(CONFIG).generate()
    path = tmp_path / "trace.tsv"
    trace.save(path)
    workload = TsvWorkload(path)
    assert workload.key_space is None  # unknown before the first pass
    requests = list(iter_requests(workload))
    reloaded = Trace.load(path)
    assert len(requests) == len(reloaded)
    for a, b in zip(requests, reloaded):
        assert (a.time, a.user, str(a.name)) == (b.time, b.user, str(b.name))
    # Counts are exact after one full pass; keys are stable across passes.
    assert workload.n_requests == len(trace)
    assert workload.key_space == workload.n_names
    again = _concat(workload.iter_blocks(97))
    first = _concat(TsvWorkload(path).iter_blocks(11))
    for a, b in zip(first, again):
        np.testing.assert_array_equal(a, b)


def test_tsv_workload_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.tsv"
    path.write_text("1.0\t2\n", encoding="utf-8")
    with pytest.raises(ValueError, match="3 tab-separated"):
        list(TsvWorkload(path).iter_blocks())


def test_trace_workload_uses_compiled_ids():
    trace = IrcacheGenerator(CONFIG).generate()
    compiled = trace.compile()
    workload = TraceWorkload(trace)
    assert workload.n_requests == compiled.n_requests
    assert workload.key_space == compiled.n_names
    times, users, keys = _concat(workload.iter_blocks(333))
    np.testing.assert_array_equal(times, compiled.times)
    np.testing.assert_array_equal(users, compiled.users)
    np.testing.assert_array_equal(keys, compiled.ids)
    assert workload.uri_of(int(keys[0])) == str(compiled.names[int(keys[0])])
