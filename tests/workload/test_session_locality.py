"""Tests for browsing-session temporal locality in the trace generator."""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.workload.ircache import IrcacheConfig, IrcacheGenerator


def same_site_rate(trace) -> float:
    """Fraction of consecutive same-user requests that stay on one site."""
    last_site = {}
    stays = 0
    transitions = 0
    for request in trace:
        site = request.name[0]
        previous = last_site.get(request.user)
        if previous is not None:
            transitions += 1
            stays += site == previous
        last_site[request.user] = site
    return stays / transitions if transitions else 0.0


def make_trace(locality: float, seed: int = 0):
    config = IrcacheConfig(
        requests=15_000, users=40, objects=20_000, sites=300,
        session_locality=locality, seed=seed,
    )
    return IrcacheGenerator(config).generate()


class TestSessionLocality:
    def test_locality_raises_same_site_rate(self):
        iid = same_site_rate(make_trace(0.0))
        local = same_site_rate(make_trace(0.7))
        assert local > iid + 0.3

    def test_locality_rate_tracks_parameter(self):
        rate = same_site_rate(make_trace(0.8))
        # Not exact (session resets on global redraws landing on a new
        # site), but it must be in the neighborhood of the parameter.
        assert 0.6 < rate < 0.95

    def test_request_count_preserved(self):
        trace = make_trace(0.5)
        assert len(trace) == 15_000

    def test_sites_remain_consistent_per_object(self):
        trace = make_trace(0.6)
        seen = {}
        for request in trace:
            site, obj = request.name[0], request.name[1]
            assert seen.setdefault(obj, site) == site

    def test_locality_lengthens_browsing_runs(self):
        """The knob exists so grouping experiments see realistic
        correlated runs: per-user same-site streaks must get longer."""

        def mean_run_length(trace):
            per_user = defaultdict(list)
            for request in trace:
                per_user[request.user].append(request.name[0])
            runs = []
            for sites in per_user.values():
                length = 1
                for a, b in zip(sites, sites[1:]):
                    if a == b:
                        length += 1
                    else:
                        runs.append(length)
                        length = 1
                runs.append(length)
            return sum(runs) / len(runs)

        assert mean_run_length(make_trace(0.7)) > 2 * mean_run_length(
            make_trace(0.0)
        )

    def test_invalid_locality_rejected(self):
        with pytest.raises(ValueError):
            IrcacheConfig(session_locality=1.0)
        with pytest.raises(ValueError):
            IrcacheConfig(session_locality=-0.1)

    def test_zero_locality_unchanged_reproducibility(self):
        a = make_trace(0.0, seed=5)
        b = make_trace(0.0, seed=5)
        assert [(r.time, r.user, r.name) for r in a] == [
            (r.time, r.user, r.name) for r in b
        ]
