"""Unit tests for trace privacy-marking rules."""

from __future__ import annotations

import pytest

from repro.ndn.name import Name
from repro.workload.marking import ContentMarking, NoMarking, RequestMarking


def names(count):
    return [Name.parse(f"/s{i % 50}/o{i}") for i in range(count)]


class TestContentMarking:
    def test_stable_per_content(self):
        rule = ContentMarking(0.3)
        name = Name.parse("/s1/o1")
        decisions = {rule.is_private(name, i) for i in range(10)}
        assert len(decisions) == 1  # same answer for every request

    def test_fraction_approximated(self):
        rule = ContentMarking(0.2)
        marked = sum(rule.is_private(n, 0) for n in names(5000))
        assert marked / 5000 == pytest.approx(0.2, abs=0.03)

    def test_extremes(self):
        assert not ContentMarking(0.0).is_private(Name.parse("/a"), 0)
        assert ContentMarking(1.0).is_private(Name.parse("/a"), 0)

    def test_salt_changes_division(self):
        a = ContentMarking(0.5, salt=1)
        b = ContentMarking(0.5, salt=2)
        differing = sum(
            a.is_private(n, 0) != b.is_private(n, 0) for n in names(500)
        )
        assert differing > 100

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ContentMarking(1.5)
        with pytest.raises(ValueError):
            ContentMarking(-0.1)


class TestRequestMarking:
    def test_fraction_approximated(self):
        rule = RequestMarking(0.4, seed=0)
        name = Name.parse("/a")
        marked = sum(rule.is_private(name, i) for i in range(5000))
        assert marked / 5000 == pytest.approx(0.4, abs=0.03)

    def test_same_content_varies_across_requests(self):
        rule = RequestMarking(0.5, seed=0)
        name = Name.parse("/a")
        decisions = {rule.is_private(name, i) for i in range(50)}
        assert decisions == {True, False}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            RequestMarking(2.0)


class TestNoMarking:
    def test_nothing_private(self):
        rule = NoMarking()
        assert not any(rule.is_private(n, 0) for n in names(100))
