"""Tests for the edge/core cache-hierarchy replay."""

from __future__ import annotations

import pytest

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.ndn.name import Name
from repro.workload.hierarchy import (
    CacheHierarchy,
    HierarchyStats,
    LevelConfig,
    replay_hierarchy,
)
from repro.workload.ircache import small_test_trace
from repro.workload.marking import ContentMarking
from repro.workload.trace import Request, Trace


def two_levels(edge_size=None, core_size=None, edge_scheme=None,
               core_scheme=None):
    return [
        LevelConfig("edge", cache_size=edge_size, scheme=edge_scheme,
                    link_delay=1.0),
        LevelConfig("core", cache_size=core_size, scheme=core_scheme,
                    link_delay=4.0),
    ]


def seq_trace(uris):
    return Trace([
        Request(time=float(i), user=0, name=Name.parse(u))
        for i, u in enumerate(uris)
    ])


class TestBasicFlow:
    def test_first_fetch_goes_to_origin(self):
        hierarchy = CacheHierarchy(two_levels(), origin_delay=40.0)
        served, observable, latency = hierarchy.request(
            Name.parse("/a"), False, 0.0
        )
        assert served == "origin"
        assert not observable
        # 2*1 + 2*4 + 2*40 = 90.
        assert latency == pytest.approx(90.0)

    def test_second_fetch_hits_edge(self):
        hierarchy = CacheHierarchy(two_levels())
        hierarchy.request(Name.parse("/a"), False, 0.0)
        served, observable, latency = hierarchy.request(
            Name.parse("/a"), False, 1.0
        )
        assert served == "edge"
        assert observable
        assert latency == pytest.approx(2.0)

    def test_edge_eviction_falls_back_to_core(self):
        hierarchy = CacheHierarchy(two_levels(edge_size=1))
        hierarchy.request(Name.parse("/a"), False, 0.0)
        hierarchy.request(Name.parse("/b"), False, 1.0)  # evicts /a at edge
        served, observable, latency = hierarchy.request(
            Name.parse("/a"), False, 2.0
        )
        assert served == "core"
        assert observable
        assert latency == pytest.approx(10.0)  # 2*1 + 2*4

    def test_backfill_repopulates_edge(self):
        hierarchy = CacheHierarchy(two_levels(edge_size=1))
        hierarchy.request(Name.parse("/a"), False, 0.0)
        hierarchy.request(Name.parse("/b"), False, 1.0)
        hierarchy.request(Name.parse("/a"), False, 2.0)  # core hit, backfill
        served, _obs, latency = hierarchy.request(Name.parse("/a"), False, 3.0)
        assert served == "edge"
        assert latency == pytest.approx(2.0)

    def test_recorded_fetch_delay_per_level(self):
        """Each level's γ_C is the round trip from itself to the server —
        what its delay policy would need to replay."""
        hierarchy = CacheHierarchy(two_levels(), origin_delay=40.0)
        hierarchy.request(Name.parse("/a"), False, 0.0)
        edge_entry = hierarchy.levels[0].cs.lookup_exact(
            Name.parse("/a"), 1.0, touch=False
        )
        core_entry = hierarchy.levels[1].cs.lookup_exact(
            Name.parse("/a"), 1.0, touch=False
        )
        assert edge_entry.fetch_delay == pytest.approx(88.0)  # 90 - 2*1
        assert core_entry.fetch_delay == pytest.approx(80.0)  # 90 - 2 - 8

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])


class TestPrivacyPlacement:
    def test_edge_only_delay_hides_edge_hits(self):
        trace = seq_trace(["/s/x", "/s/x", "/s/x"])
        stats = replay_hierarchy(
            trace,
            two_levels(edge_scheme=AlwaysDelayScheme()),
            marking=ContentMarking(1.0),
        )
        assert stats.hits_by_level.get("edge", 0) == 0
        # Disguised responses pay the recorded fetch delay.
        assert stats.mean_latency > 30.0

    def test_delay_everywhere_hides_core_too(self):
        levels = two_levels(
            edge_size=1,
            edge_scheme=AlwaysDelayScheme(),
            core_scheme=AlwaysDelayScheme(),
        )
        trace = seq_trace(["/s/a", "/s/b", "/s/a"])  # /s/a evicted at edge
        stats = replay_hierarchy(trace, levels, marking=ContentMarking(1.0))
        assert stats.total_hit_rate == 0.0

    def test_no_privacy_counts_by_level(self):
        trace = seq_trace(["/s/a", "/s/b", "/s/a", "/s/a"])
        stats = replay_hierarchy(trace, two_levels(edge_size=1))
        # /s/a: origin, /s/b: origin (evicts a), /s/a: core, /s/a: edge.
        assert stats.origin_fetches == 2
        assert stats.hits_by_level == {"core": 1, "edge": 1}
        assert stats.total_hit_rate == pytest.approx(0.5)


class TestTraceReplay:
    def test_hierarchy_beats_single_level_hit_rate(self):
        trace = small_test_trace(requests=4000, seed=11)
        single = replay_hierarchy(
            trace, [LevelConfig("edge", cache_size=100, link_delay=1.0)]
        )
        double = replay_hierarchy(
            trace,
            two_levels(edge_size=100, core_size=1000),
        )
        assert double.total_hit_rate > single.total_hit_rate

    def test_latency_ordering(self):
        """Edge hits are cheaper than core hits are cheaper than origin."""
        trace = small_test_trace(requests=4000, seed=12)
        stats = replay_hierarchy(trace, two_levels(edge_size=200,
                                                   core_size=2000))
        assert stats.mean_latency < 90.0  # better than all-origin
        assert stats.hit_rate("edge") > 0
        assert stats.hit_rate("core") > 0

    def test_private_request_accounting(self):
        trace = small_test_trace(requests=1000, seed=13)
        stats = replay_hierarchy(
            trace, two_levels(), marking=ContentMarking(0.3)
        )
        assert 0 < stats.private_requests < stats.requests
