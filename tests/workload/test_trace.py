"""Unit tests for trace records and TSV round-trip."""

from __future__ import annotations

import pytest

from repro.ndn.name import Name
from repro.workload.trace import Request, Trace


def req(time, user, uri):
    return Request(time=time, user=user, name=Name.parse(uri))


class TestRequest:
    def test_fields(self):
        r = req(1.5, 3, "/s1/o1")
        assert r.time == 1.5
        assert r.user == 3
        assert r.name == Name.parse("/s1/o1")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            req(-1.0, 0, "/a")

    def test_negative_user_rejected(self):
        with pytest.raises(ValueError):
            req(0.0, -1, "/a")


class TestTrace:
    def test_append_and_len(self):
        trace = Trace()
        trace.append(req(0.0, 0, "/a"))
        trace.append(req(1.0, 1, "/b"))
        assert len(trace) == 2
        assert trace[0].name == Name.parse("/a")

    def test_sort(self):
        trace = Trace([req(5.0, 0, "/b"), req(1.0, 0, "/a")])
        trace.sort()
        assert trace[0].time == 1.0

    def test_statistics(self):
        trace = Trace([
            req(0.0, 0, "/a"),
            req(1.0, 1, "/a"),
            req(2.0, 0, "/b"),
            req(9.0, 2, "/c"),
        ])
        assert trace.unique_objects == 3
        assert trace.unique_users == 3
        assert trace.duration == 9.0
        assert trace.popularity()[Name.parse("/a")] == 2

    def test_max_hit_rate(self):
        trace = Trace([req(float(i), 0, "/a") for i in range(4)])
        assert trace.max_hit_rate == pytest.approx(0.75)

    def test_empty_trace_statistics(self):
        trace = Trace()
        assert trace.max_hit_rate == 0.0
        assert trace.duration == 0.0

    def test_head(self):
        trace = Trace([req(float(i), 0, f"/o/{i}") for i in range(10)])
        assert len(trace.head(3)) == 3
        with pytest.raises(ValueError):
            trace.head(-1)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace([
            req(0.5, 0, "/s1/o1"),
            req(1.25, 184, "/s2/o9"),
        ])
        path = tmp_path / "trace.tsv"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == 2
        assert loaded[1].user == 184
        assert loaded[1].name == Name.parse("/s2/o9")
        assert loaded[0].time == pytest.approx(0.5)

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "trace.tsv"
        path.write_text("# header\n\n1.0\t3\t/a/b\n")
        loaded = Trace.load(path)
        assert len(loaded) == 1

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\t3\n")
        with pytest.raises(ValueError, match="expected 3"):
            Trace.load(path)


class TestRequestMemoryLayout:
    """The Request/Trace footprint contract: slots + append-time interning
    must not change behavior or the on-disk format."""

    def test_request_has_slots_no_dict(self):
        request = Request(time=1.0, user=3, name=Name.parse("/a/b"))
        assert not hasattr(request, "__dict__")
        with pytest.raises((AttributeError, TypeError)):
            request.extra = 1  # type: ignore[attr-defined]

    def test_trace_interns_users_and_names_on_append(self):
        trace = Trace()
        for i in range(10):
            trace.append(
                Request(time=float(i), user=int("7"), name=Name.parse("/x/y"))
            )
        names = {id(request.name) for request in trace}
        users = {id(request.user) for request in trace}
        assert len(names) == 1
        assert len(users) == 1

    def test_interning_preserves_tsv_roundtrip(self, tmp_path):
        trace = Trace([
            Request(time=0.5, user=12, name=Name.parse("/s1/o4")),
            Request(time=1.5, user=184, name=Name.parse("/s2/o9")),
            Request(time=2.0, user=12, name=Name.parse("/s1/o4")),
        ])
        path = tmp_path / "trace.tsv"
        trace.save(path)
        reloaded = Trace.load(path)
        assert len(reloaded) == 3
        for a, b in zip(trace, reloaded):
            assert (a.time, a.user, str(a.name)) == (b.time, b.user, str(b.name))
        assert trace.unique_objects == reloaded.unique_objects
        assert trace.unique_users == reloaded.unique_users
        assert trace.max_hit_rate == reloaded.max_hit_rate
