"""Tests for the cache-admission strategy axis (repro.ndn.strategy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ndn.link import FixedDelay
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.ndn.strategy import (
    STRATEGIES,
    BernoulliStrategy,
    CachingStrategy,
    Cl4mStrategy,
    EdgeStrategy,
    LcdStrategy,
    LceStrategy,
    ProbCacheStrategy,
    StrategyError,
    brandes_betweenness,
    discover_graph,
    make_strategy,
    strategy_of,
)
from repro.sim.process import Timeout
from repro.validation.invariants import InvariantChecker


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRegistry:
    def test_all_kinds_registered(self):
        assert set(STRATEGIES) == {
            "lce", "lcd", "probcache", "edge", "cl4m", "bernoulli",
        }

    def test_kind_attribute_matches_key(self):
        for kind, cls in STRATEGIES.items():
            assert cls.kind == kind

    def test_make_strategy_builds_each_kind(self):
        for kind in STRATEGIES:
            strategy = make_strategy(kind, rng=rng())
            assert isinstance(strategy, STRATEGIES[kind])

    def test_make_strategy_unknown_kind(self):
        with pytest.raises(StrategyError, match="unknown caching strategy"):
            make_strategy("mru-everywhere")

    def test_make_strategy_forwards_params(self):
        assert make_strategy("probcache", rng=rng(), weight=4.0).weight == 4.0
        assert make_strategy("bernoulli", rng=rng(), p=0.25).p == 0.25
        assert make_strategy("cl4m", quantile=0.9).quantile == 0.9

    def test_randomized_kinds_require_rng(self):
        with pytest.raises(StrategyError, match="RNG"):
            make_strategy("probcache")
        with pytest.raises(StrategyError, match="RNG"):
            make_strategy("bernoulli")

    def test_parameter_validation(self):
        with pytest.raises(StrategyError):
            ProbCacheStrategy(rng(), weight=0.0)
        with pytest.raises(StrategyError):
            BernoulliStrategy(rng(), p=1.5)
        with pytest.raises(StrategyError):
            Cl4mStrategy(quantile=0.0)
        with pytest.raises(StrategyError):
            Cl4mStrategy(quantile=1.5)

    def test_strategy_of_normalization(self):
        assert strategy_of(None) is None
        instance = LcdStrategy()
        assert strategy_of(instance) is instance
        assert isinstance(strategy_of("lcd"), LcdStrategy)
        with pytest.raises(StrategyError, match="must be None"):
            strategy_of(42)

    def test_only_lce_is_trivial(self):
        trivial = {k for k, cls in STRATEGIES.items() if cls.trivial}
        assert trivial == {"lce"}

    def test_hop_counting_kinds(self):
        needs = {k for k, cls in STRATEGIES.items() if cls.needs_origin_hops}
        assert needs == {"lcd", "probcache"}

    def test_base_admit_is_abstract(self):
        with pytest.raises(NotImplementedError):
            CachingStrategy().admit(Name.parse("/x"), 0, None)


class TestAdmitSemantics:
    def test_lce_always_admits(self):
        strategy = LceStrategy()
        assert all(
            strategy.admit(Name.parse("/a"), hops, None) for hops in range(5)
        )

    def test_lcd_admits_only_adjacent_to_origin(self):
        strategy = LcdStrategy()
        assert strategy.admit(Name.parse("/a"), 0, None)
        assert not strategy.admit(Name.parse("/a"), 1, None)
        assert not strategy.admit(Name.parse("/a"), 7, None)

    def test_probcache_probability_grows_with_distance(self):
        strategy = ProbCacheStrategy(rng(3), weight=10.0)
        name = Name.parse("/a")
        near = sum(strategy.admit(name, 0, None) for _ in range(2000))
        strategy = ProbCacheStrategy(rng(3), weight=10.0)
        far = sum(strategy.admit(name, 8, None) for _ in range(2000))
        # p=0.1 vs p=0.9: the far position must admit far more often.
        assert near < 400 < 1400 < far

    def test_probcache_saturates_at_one(self):
        strategy = ProbCacheStrategy(rng(1), weight=2.0)
        assert all(
            strategy.admit(Name.parse("/a"), 9, None) for _ in range(50)
        )

    def test_bernoulli_extremes(self):
        always = BernoulliStrategy(rng(0), p=1.0)
        never = BernoulliStrategy(rng(0), p=0.0)
        name = Name.parse("/a")
        assert all(always.admit(name, 0, None) for _ in range(20))
        assert not any(never.admit(name, 0, None) for _ in range(20))

    def test_bernoulli_draws_even_at_degenerate_p(self):
        # Stream position must be a pure function of the decision count:
        # after one decision each, two same-seeded streams with different
        # p are still aligned.
        a = BernoulliStrategy(rng(5), p=1.0)
        b = BernoulliStrategy(rng(5), p=0.5)
        name = Name.parse("/a")
        a.admit(name, 0, None)
        b.admit(name, 0, None)
        assert a._rng.random() == b._rng.random()


class StubFace:
    def __init__(self, owner):
        self.peer = type("Peer", (), {"owner": owner})()


class TestEdgeAndCl4m:
    def test_edge_detects_end_host_downstream(self):
        strategy = EdgeStrategy()
        host = type("Host", (), {})()        # no .fib attribute
        router = type("R", (), {"fib": object()})()
        name = Name.parse("/a")
        assert strategy.admit(name, 0, None, [StubFace(host)])
        assert not strategy.admit(name, 0, None, [StubFace(router)])
        assert strategy.admit(
            name, 0, None, [StubFace(router), StubFace(host)]
        )
        assert not strategy.admit(name, 0, None, [])

    def test_cl4m_brandes_betweenness_on_path_graph(self):
        # Path a-b-c-d-e: undirected pair counts (both directions) are
        # b: 2*3=6, c: 2*(2*2)=8, d: 6, endpoints 0.
        adjacency = {
            "a": ["b"], "b": ["a", "c"], "c": ["b", "d"],
            "d": ["c", "e"], "e": ["d"],
        }
        bc = brandes_betweenness(adjacency)
        assert bc == {"a": 0.0, "b": 6.0, "c": 8.0, "d": 6.0, "e": 0.0}

    def test_cl4m_brandes_splits_shortest_paths(self):
        # Diamond a-{b,c}-d: two equal-length a..d paths, half credit each.
        adjacency = {
            "a": ["b", "c"], "b": ["a", "d"],
            "c": ["a", "d"], "d": ["b", "c"],
        }
        bc = brandes_betweenness(adjacency)
        # Every node carries exactly half of one opposing pair's two
        # equal-length shortest paths (e.g. b: half of a<->d, both
        # directions), so all four score 1.0 — and none more.
        assert bc == {
            "a": pytest.approx(1.0), "b": pytest.approx(1.0),
            "c": pytest.approx(1.0), "d": pytest.approx(1.0),
        }

    def test_cl4m_admits_only_top_betweenness_router(self):
        # Chain c - R1 - R2 - R3 - p: R2 carries the most shortest paths.
        net, routers = chain_network("cl4m")
        verdicts = {
            r: net[r].caching.compute_verdict(net[r]) for r in routers
        }
        assert verdicts == {"R1": False, "R2": True, "R3": False}

    def test_cl4m_verdict_is_cached_and_survives_reset(self):
        net, routers = chain_network("cl4m")
        strategy = net[routers[1]].caching
        assert strategy.compute_verdict(net[routers[1]]) is True
        strategy.reset()
        assert strategy._verdict is True  # topology state, not trial state

    def test_cl4m_quantile_one_admits_only_the_maximum(self):
        net, routers = chain_network("cl4m", hops=4)
        # 4-router chain: middle two routers share the maximum score.
        verdicts = [
            Cl4mStrategy(quantile=1.0).compute_verdict(net[r])
            for r in routers
        ]
        assert verdicts == [False, True, True, False]

    def test_cl4m_isolated_node_admits(self):
        from repro.sim.engine import Engine
        from repro.ndn.forwarder import Forwarder

        lone = Forwarder(Engine(), "lonely")
        assert Cl4mStrategy().compute_verdict(lone) is True

    def test_cl4m_caches_only_at_top_router_end_to_end(self):
        net, routers = chain_network("cl4m")
        fetch_all(net, ["/data/x"])
        assert Name.parse("/data/x") in net["R2"].cs
        assert Name.parse("/data/x") not in net["R1"].cs
        assert Name.parse("/data/x") not in net["R3"].cs
        assert net["R1"].monitor.counter("cache_declined") == 1
        assert net["R2"].monitor.counter("cache_declined") == 0


def chain_network(caching, hops=3, capacity=None):
    """c - R1 - ... - Rn - p with ``caching`` on every router."""
    net = Network()
    net.add_consumer("c")
    names = [f"R{i}" for i in range(1, hops + 1)]
    for name in names:
        net.add_router(name, capacity=capacity, caching=caching)
    net.add_producer("p", "/data")
    net.connect("c", names[0], FixedDelay(1.0))
    for a, b in zip(names, names[1:]):
        net.connect(a, b, FixedDelay(1.0))
    net.connect(names[-1], "p", FixedDelay(1.0))
    net.add_route_chain("/data", *names, "p")
    return net, names


def fetch_all(net, names, gap=5.0):
    consumer = net["c"]

    def proc():
        for name in names:
            result = yield from consumer.fetch(name, timeout=10_000.0)
            assert result is not None, f"fetch of {name} failed"
            yield Timeout(gap)

    net.spawn(proc(), label="fetcher")
    net.engine.run()


class TestForwarderIntegration:
    def test_lce_caches_at_every_hop(self):
        net, routers = chain_network("lce")
        fetch_all(net, ["/data/x"])
        for router in routers:
            assert Name.parse("/data/x") in net[router].cs
            assert net[router].monitor.counter("cache_declined") == 0

    def test_lcd_caches_one_hop_below_origin_then_migrates(self):
        net, routers = chain_network("lcd")
        fetch_all(net, ["/data/x"])
        # First fetch: only the router adjacent to the producer admits.
        assert Name.parse("/data/x") in net[routers[-1]].cs
        for router in routers[:-1]:
            assert Name.parse("/data/x") not in net[router].cs
            assert net[router].monitor.counter("cache_declined") >= 1
        # Second fetch hits R3's cache, so the copy moves down to R2.
        fetch_all(net, ["/data/x"])
        assert Name.parse("/data/x") in net[routers[-2]].cs
        assert Name.parse("/data/x") not in net[routers[0]].cs

    def test_lcd_turns_on_hop_counting_network_wide(self):
        net, routers = chain_network("lcd")
        assert all(net[r].count_origin_hops for r in routers)
        plain, plain_routers = chain_network("lce")
        assert not any(plain[r].count_origin_hops for r in plain_routers)

    def test_edge_caches_only_at_consumer_edge(self):
        net, routers = chain_network("edge")
        fetch_all(net, ["/data/x"])
        assert Name.parse("/data/x") in net[routers[0]].cs
        for router in routers[1:]:
            assert Name.parse("/data/x") not in net[router].cs

    def test_declined_admission_counted_and_ledger_balanced(self):
        net, routers = chain_network("bernoulli")  # per-router seeded stream
        fetch_all(net, [f"/data/x{i}" for i in range(30)])
        declined = sum(
            net[r].monitor.counter("cache_declined") for r in routers
        )
        assert declined > 0
        for router in routers:
            assert net[router].cs.ledger_balanced

    def test_invariants_hold_under_declining_strategy(self):
        net, _ = chain_network("lcd", capacity=4)
        fetch_all(net, [f"/data/x{i}" for i in range(25)])
        InvariantChecker().assert_ok(net)

    def test_invariants_hold_under_probcache_with_eviction(self):
        net, _ = chain_network("probcache", capacity=3)
        fetch_all(net, [f"/data/x{i}" for i in range(25)])
        InvariantChecker().assert_ok(net)

    def test_reinsert_refresh_keeps_ledger(self):
        # Satellite: the re-insert path must not move the CS ledger.
        net, routers = chain_network("lce", hops=1)
        fetch_all(net, ["/data/x"])
        router = net[routers[0]]
        before = router.cs.insertions
        entry = router.cs.lookup_exact(Name.parse("/data/x"), net.engine.now)
        router.cs.insert(entry.data, net.engine.now + 1.0)
        assert router.cs.insertions == before
        assert router.cs.ledger_balanced

    def test_same_seed_same_decisions(self):
        def declined_profile():
            net, routers = chain_network("bernoulli")
            fetch_all(net, [f"/data/x{i}" for i in range(20)])
            return [
                net[r].monitor.counter("cache_declined") for r in routers
            ]

        assert declined_profile() == declined_profile()
