"""Unit tests for consumer and producer applications."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ndn.apps.consumer import Consumer, FetchResult
from repro.ndn.apps.producer import Producer
from repro.ndn.link import Face, FixedDelay, Link
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest
from repro.sim.engine import Engine


def wire_pair(engine, delay=2.0):
    """Consumer directly linked to a producer (no router)."""
    consumer = Consumer(engine, name="c")
    producer = Producer(engine, prefix="/shop", producer_id="shop")
    Link(
        engine,
        consumer.create_face(),
        producer.create_face(),
        FixedDelay(delay),
        np.random.default_rng(0),
    )
    return consumer, producer


class TestProducer:
    def test_publish_within_prefix(self, engine):
        producer = Producer(engine, prefix="/shop")
        data = producer.publish("/shop/item1", private=True)
        assert data.name == Name.parse("/shop/item1")
        assert data.private

    def test_publish_outside_prefix_rejected(self, engine):
        producer = Producer(engine, prefix="/shop")
        with pytest.raises(ValueError):
            producer.publish("/other/item")

    def test_publish_many(self, engine):
        producer = Producer(engine, prefix="/shop")
        objects = producer.publish_many(5)
        assert len(objects) == 5
        assert objects[0].name == Name.parse("/shop/object-0")

    def test_serves_exact_match(self, engine):
        consumer, producer = wire_pair(engine)
        producer.publish("/shop/item1")
        signal = consumer.express_interest("/shop/item1")
        engine.run()
        assert signal.triggered
        result: FetchResult = signal.payload
        assert result.data.name == Name.parse("/shop/item1")
        assert result.rtt == pytest.approx(4.0)

    def test_serves_prefix_match(self, engine):
        consumer, producer = wire_pair(engine)
        producer.auto_generate = False
        producer.publish("/shop/catalog/page1")
        signal = consumer.express_interest("/shop/catalog")
        engine.run()
        assert signal.payload.data.name == Name.parse("/shop/catalog/page1")

    def test_prefix_match_skips_exact_only_content(self, engine):
        consumer, producer = wire_pair(engine)
        producer.auto_generate = False
        producer.publish("/shop/rand/0/deadbeef", exact_match_only=True)
        signal = consumer.express_interest("/shop/rand")
        engine.run()
        assert not signal.triggered
        assert producer.monitor.counter("nonexistent_content") == 1

    def test_auto_generate(self, engine):
        consumer, producer = wire_pair(engine)
        signal = consumer.express_interest("/shop/never-published")
        engine.run()
        assert signal.triggered
        assert producer.monitor.counter("data_served") == 1

    def test_foreign_interest_ignored(self, engine):
        consumer, producer = wire_pair(engine)
        signal = consumer.express_interest("/not-shop/x", lifetime=50.0)
        engine.run()
        assert not signal.triggered
        assert producer.monitor.counter("foreign_interest") == 1

    def test_processing_delay_applied(self, engine):
        consumer, producer = wire_pair(engine)
        producer.processing_delay = 3.0
        producer.publish("/shop/slow")
        signal = consumer.express_interest("/shop/slow")
        engine.run()
        assert signal.payload.rtt == pytest.approx(7.0)


class TestConsumer:
    def test_rtt_recorded(self, engine):
        consumer, producer = wire_pair(engine, delay=5.0)
        producer.publish("/shop/a")
        consumer.express_interest("/shop/a")
        engine.run()
        assert consumer.rtts == [pytest.approx(10.0)]
        assert consumer.monitor.counter("data_received") == 1

    def test_fetch_coroutine(self, engine):
        consumer, producer = wire_pair(engine)
        producer.publish("/shop/a")
        results = []

        def proc():
            result = yield from consumer.fetch("/shop/a")
            results.append(result)

        engine.spawn(proc())
        engine.run()
        assert results[0] is not None
        assert results[0].data.name == Name.parse("/shop/a")

    def test_fetch_timeout_returns_none(self, engine):
        consumer = Consumer(engine, name="lonely")
        face = consumer.create_face()
        # Attach to a dead-end producer that never answers.
        silent = Producer(engine, prefix="/other", auto_generate=False)
        Link(engine, face, silent.create_face(), FixedDelay(1.0),
             np.random.default_rng(0))
        results = []

        def proc():
            result = yield from consumer.fetch("/shop/a", timeout=50.0)
            results.append(result)

        engine.spawn(proc())
        engine.run()
        assert results == [None]
        assert consumer.monitor.counter("fetch_timeouts") == 1

    def test_multiple_outstanding_same_name(self, engine):
        consumer, producer = wire_pair(engine)
        producer.publish("/shop/a")
        s1 = consumer.express_interest("/shop/a")
        s2 = consumer.express_interest("/shop/a")
        engine.run()
        assert s1.triggered and s2.triggered

    def test_pending_count(self, engine):
        consumer, producer = wire_pair(engine)
        producer.publish("/shop/a")
        consumer.express_interest("/shop/a")
        assert consumer.pending_count == 1
        engine.run()
        assert consumer.pending_count == 0

    def test_unsolicited_data_counted(self, engine):
        consumer, producer = wire_pair(engine)
        producer.face.send_data(Data(name=Name.parse("/shop/spam")))
        engine.run()
        assert consumer.monitor.counter("unsolicited_data") == 1

    def test_consumer_ignores_interests(self, engine):
        consumer, producer = wire_pair(engine)
        consumer.receive_interest(
            Interest(name=Name.parse("/x")), consumer.face
        )
        assert consumer.monitor.counter("unexpected_interest") == 1

    def test_express_without_face_raises(self, engine):
        consumer = Consumer(engine)
        with pytest.raises(RuntimeError):
            consumer.express_interest("/a")
