"""Late-Nack duplicate-retry suppression (consumer + interactive).

A Nack names the nonce of the transmission it rejects.  When the local
timeout fires first, the retry loop withdraws the pending entry and
re-arms a fresh attempt under the same name — so a Nack for the *old*
nonce arriving afterwards must not be delivered to the replacement
attempt.  Delivering it would abort a perfectly live attempt and trigger
a second, duplicate retransmission for the same failure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.retry import RetryPolicy
from repro.naming.session import SessionNamer
from repro.ndn.apps.consumer import Consumer, FetchResult
from repro.ndn.apps.interactive import InteractiveEndpoint
from repro.ndn.link import Face, FixedDelay, Link
from repro.ndn.name import Name
from repro.ndn.packets import (
    NACK_CONGESTION,
    NACK_PIT_FULL,
    Data,
    Nack,
)


class BlackHole:
    """Upstream that records interests and never answers."""

    def __init__(self):
        self.interests = []

    def receive_interest(self, interest, face):
        self.interests.append(interest)

    def receive_data(self, data, face):  # pragma: no cover - not exercised
        pass


def rigged_consumer(engine):
    consumer = Consumer(engine, name="c")
    hole = BlackHole()
    Link(
        engine,
        consumer.create_face(),
        Face(hole, "hole"),
        FixedDelay(1.0),
        np.random.default_rng(0),
    )
    return consumer, hole


class TestConsumerSuppression:
    def test_late_nack_after_timeout_rearm_is_stale(self, engine):
        """Nack for attempt 0 lands while attempt 1 is live: dropped."""
        consumer, hole = rigged_consumer(engine)
        policy = RetryPolicy(retries=2, timeout=100.0, backoff=1.0)
        proc = engine.spawn(consumer.fetch("/a/x", retry=policy))

        def late_nack():
            # By t=150 attempt 0 timed out (t=100) and attempt 1 re-armed.
            first = hole.interests[0]
            consumer.receive_nack(
                Nack(name=first.name, nonce=first.nonce,
                     reason=NACK_CONGESTION),
                consumer.face,
            )

        engine.schedule(150.0, late_nack)

        def satisfy():
            consumer.receive_data(Data(name=Name.parse("/a/x")), consumer.face)

        engine.schedule(180.0, satisfy)
        engine.run()

        assert isinstance(proc.result, FetchResult)
        assert consumer.monitor.counter("stale_nacks") == 1
        # The stale Nack caused neither an abort nor an extra retransmit:
        # exactly one retransmit (the t=100 timeout) ever happened.
        assert consumer.monitor.counter("fetch_nacked") == 0
        assert consumer.monitor.counter("fetch_retransmits") == 1
        assert len(hole.interests) == 2

    def test_live_nack_matching_current_nonce_still_aborts(self, engine):
        consumer, hole = rigged_consumer(engine)
        policy = RetryPolicy(retries=1, timeout=100.0, backoff=1.0)
        proc = engine.spawn(consumer.fetch("/a/x", retry=policy))

        def live_nack():
            current = hole.interests[-1]
            consumer.receive_nack(
                Nack(name=current.name, nonce=current.nonce,
                     reason=NACK_CONGESTION),
                consumer.face,
            )

        engine.schedule(50.0, live_nack)
        engine.run()

        assert proc.result is None
        assert consumer.monitor.counter("fetch_nacked") == 1
        assert consumer.monitor.counter("stale_nacks") == 0

    def test_nonceless_pit_preemption_nack_hits_oldest_waiter(self, engine):
        """PIT-preemption Nacks are synthesized with nonce 0: they cannot
        be matched to a transmission, so the oldest waiter absorbs them."""
        consumer, hole = rigged_consumer(engine)
        first = consumer.express_interest("/a/x", lifetime=1000.0)
        second = consumer.express_interest("/a/x", lifetime=1000.0)
        consumer.receive_nack(
            Nack(name=Name.parse("/a/x"), nonce=0, reason=NACK_PIT_FULL),
            consumer.face,
        )
        assert first.triggered and isinstance(first.payload, Nack)
        assert not second.triggered
        assert consumer.monitor.counter("nacks_received") == 1

    def test_nack_for_unknown_name_is_unsolicited(self, engine):
        consumer, _ = rigged_consumer(engine)
        consumer.receive_nack(
            Nack(name=Name.parse("/never/asked"), nonce=5,
                 reason=NACK_CONGESTION),
            consumer.face,
        )
        assert consumer.monitor.counter("unsolicited_nack") == 1


SECRET = b"suppression-secret"


def rigged_endpoint(engine):
    namer = SessionNamer(SECRET, "/alice/voip", "/bob/voip")
    ep = InteractiveEndpoint(engine, namer, label="alice")
    hole = BlackHole()
    Link(
        engine,
        ep.create_face(),
        Face(hole, "hole"),
        FixedDelay(1.0),
        np.random.default_rng(0),
    )
    return ep, hole


class TestInteractiveSuppression:
    def test_late_nack_after_rearm_keeps_live_entry(self, engine):
        """The session re-requests frame 0 after a timeout; the Nack for
        the timed-out transmission must not cancel the re-request."""
        ep, hole = rigged_endpoint(engine)
        proc = engine.spawn(
            ep.run_session(
                frames=1, frame_interval=10.0,
                retransmit_timeout=100.0, max_retransmits=2,
            )
        )

        def late_nack():
            first = hole.interests[0]
            ep.receive_nack(
                Nack(name=first.name, nonce=first.nonce,
                     reason=NACK_CONGESTION),
                ep.face,
            )

        # Attempt 0 times out at t=100 and attempt 1 re-arms (same name,
        # fresh nonce); the old transmission's Nack lands at t=150.
        engine.schedule(150.0, late_nack)

        def satisfy():
            frame_name = hole.interests[0].name
            ep.receive_data(
                Data(name=frame_name, producer="bob", private=True,
                     exact_match_only=True),
                ep.face,
            )

        engine.schedule(180.0, satisfy)
        engine.run()

        stats = proc.result
        assert len(stats) == 1 and stats[0].retransmitted
        assert ep.monitor.counter("stale_nacks") == 1
        assert ep.monitor.counter("frames_nacked") == 0
        # One timeout-driven retransmit; the stale Nack added none.
        assert ep.monitor.counter("retransmits") == 1
        assert len(hole.interests) == 2

    def test_matching_nack_still_delivered(self, engine):
        ep, hole = rigged_endpoint(engine)
        signal = ep.request_frame(0, lifetime=1000.0)
        # The interest is still in flight on the link; read the pending
        # entry's nonce directly.
        name = ep.namer.incoming_name(0)
        _, _, nonce = ep._pending[name]
        ep.receive_nack(
            Nack(name=name, nonce=nonce, reason=NACK_CONGESTION), ep.face
        )
        assert signal.triggered and isinstance(signal.payload, Nack)
        assert ep.monitor.counter("nacks_received") == 1

    def test_nonceless_nack_matches_any_entry(self, engine):
        ep, _ = rigged_endpoint(engine)
        signal = ep.request_frame(0, lifetime=1000.0)
        name = ep.namer.incoming_name(0)
        ep.receive_nack(
            Nack(name=name, nonce=0, reason=NACK_PIT_FULL), ep.face
        )
        assert signal.triggered and isinstance(signal.payload, Nack)
