"""Per-face token-bucket admission control."""

from __future__ import annotations

import pytest

from repro.ndn.admission import (
    AdmissionError,
    FaceRateLimiter,
    InterestRateLimit,
    TokenBucket,
)


class FaceStub:
    _next = 1000

    def __init__(self):
        FaceStub._next += 1
        self.face_id = FaceStub._next


class TestInterestRateLimit:
    def test_rate_must_be_positive(self):
        with pytest.raises(AdmissionError):
            InterestRateLimit(rate=0.0)
        with pytest.raises(AdmissionError):
            InterestRateLimit(rate=-5.0)

    def test_burst_must_be_nonnegative(self):
        with pytest.raises(AdmissionError):
            InterestRateLimit(rate=10.0, burst=-1.0)

    def test_bucket_depth_defaults_to_one_second_of_rate(self):
        assert InterestRateLimit(rate=200.0).bucket_depth == 200.0
        assert InterestRateLimit(rate=200.0, burst=16.0).bucket_depth == 16.0

    def test_make_bucket_starts_full(self):
        bucket = InterestRateLimit(rate=1000.0, burst=4.0).make_bucket(now=7.0)
        assert bucket.peek(7.0) == 4.0
        assert bucket.rate_per_ms == pytest.approx(1.0)


class TestTokenBucket:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(AdmissionError):
            TokenBucket(rate_per_ms=0.0, depth=1.0)
        with pytest.raises(AdmissionError):
            TokenBucket(rate_per_ms=1.0, depth=0.0)

    def test_burst_drains_then_rejects(self):
        bucket = TokenBucket(rate_per_ms=0.001, depth=3.0, now=0.0)
        assert [bucket.allow(0.0) for _ in range(4)] == [True, True, True, False]
        assert bucket.admitted == 3
        assert bucket.rejected == 1

    def test_refill_is_continuous_in_simulated_time(self):
        bucket = TokenBucket(rate_per_ms=0.1, depth=1.0, now=0.0)
        assert bucket.allow(0.0)
        assert not bucket.allow(5.0)  # only 0.5 tokens back
        assert bucket.allow(10.0)  # a full token has accrued

    def test_refill_caps_at_depth(self):
        bucket = TokenBucket(rate_per_ms=1.0, depth=2.0, now=0.0)
        assert bucket.peek(1_000_000.0) == 2.0

    def test_peek_does_not_consume(self):
        bucket = TokenBucket(rate_per_ms=1.0, depth=2.0, now=0.0)
        bucket.peek(0.0)
        bucket.peek(0.0)
        assert bucket.allow(0.0)
        assert bucket.allow(0.0)

    def test_determinism_same_schedule_same_outcomes(self):
        times = [0.0, 0.4, 1.1, 1.2, 3.0, 3.1, 9.0]

        def outcomes():
            bucket = TokenBucket(rate_per_ms=0.5, depth=2.0, now=0.0)
            return [bucket.allow(t) for t in times]

        assert outcomes() == outcomes()


class TestFaceRateLimiter:
    def test_per_face_isolation(self):
        limiter = FaceRateLimiter(InterestRateLimit(rate=1000.0, burst=2.0))
        flooder, polite = FaceStub(), FaceStub()
        # The flooder exhausts its own bucket...
        results = [limiter.allow(flooder, 0.0) for _ in range(5)]
        assert results == [True, True, False, False, False]
        # ...while the well-behaved face is untouched.
        assert limiter.allow(polite, 0.0)

    def test_rejected_totals_across_faces(self):
        limiter = FaceRateLimiter(InterestRateLimit(rate=1000.0, burst=1.0))
        a, b = FaceStub(), FaceStub()
        for face in (a, b):
            limiter.allow(face, 0.0)
            limiter.allow(face, 0.0)
        assert limiter.rejected == 2

    def test_bucket_for_creates_full_bucket_for_idle_face(self):
        limiter = FaceRateLimiter(InterestRateLimit(rate=1000.0, burst=7.0))
        face = FaceStub()
        assert limiter.bucket_for(face).peek(0.0) == 7.0
        # The same bucket is reused once the face starts sending.
        assert limiter.allow(face, 0.0)
        assert limiter.bucket_for(face).admitted == 1
