"""Tests for the Figure 3 topology builders and their calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ndn.topology import (
    TOPOLOGIES,
    local_host,
    local_lan,
    wan,
    wan_producer,
)
from repro.sim.process import Timeout


def measure_hit_miss(topo, n=10):
    """Fetch n fresh objects (misses), then re-fetch them (hits)."""
    miss_rtts, hit_rtts = [], []

    def proc():
        for i in range(n):
            result = yield from topo.adversary.fetch(
                f"/content/cal-{i}", timeout=10_000.0
            )
            miss_rtts.append(result.rtt)
            yield Timeout(5.0)
        for i in range(n):
            result = yield from topo.adversary.fetch(
                f"/content/cal-{i}", timeout=10_000.0
            )
            hit_rtts.append(result.rtt)
            yield Timeout(5.0)

    topo.engine.spawn(proc())
    topo.engine.run()
    return np.array(hit_rtts), np.array(miss_rtts)


class TestRegistry:
    def test_all_four_settings_present(self):
        assert set(TOPOLOGIES) == {
            "fig3a_lan",
            "fig3b_wan",
            "fig3c_wan_producer",
            "fig3d_local_host",
        }

    @pytest.mark.parametrize("builder", list(TOPOLOGIES.values()))
    def test_builders_produce_working_topologies(self, builder):
        topo = builder(seed=0)
        hits, misses = measure_hit_miss(topo, n=3)
        assert len(hits) == 3 and len(misses) == 3


class TestCalibration:
    def test_lan_band(self):
        """Fig. 3(a): hits ~3.3-4.5 ms, misses ~6-12 ms."""
        hits, misses = measure_hit_miss(local_lan(seed=1), n=20)
        assert 3.0 < hits.mean() < 4.5
        assert 5.5 < misses.mean() < 12.0
        assert hits.max() < misses.min()

    def test_wan_band(self):
        """Fig. 3(b): hits ~4.5-7 ms, misses ~9-22 ms, jittery."""
        hits, misses = measure_hit_miss(wan(seed=1), n=20)
        assert 4.0 < hits.mean() < 8.0
        assert 9.0 < misses.mean() < 25.0

    def test_wan_producer_band(self):
        """Fig. 3(c): both ~180-220 ms, gap of only a few ms."""
        hits, misses = measure_hit_miss(wan_producer(seed=1), n=20)
        assert 170.0 < hits.mean() < 230.0
        gap = misses.mean() - hits.mean()
        assert 2.0 < gap < 12.0

    def test_local_host_band(self):
        """Fig. 3(d): hits sub-millisecond, misses ~2-12 ms."""
        hits, misses = measure_hit_miss(local_host(seed=1), n=20)
        assert hits.mean() < 1.0
        assert misses.mean() > 1.5


class TestStructure:
    def test_wan_has_intermediate_routers(self):
        topo = wan(seed=0, producer_hops=3)
        assert len(topo.producer_path) == 2  # R1, R2 between R and P

    def test_wan_producer_access_path_does_not_cache(self):
        topo = wan_producer(seed=0)
        assert topo.access_path  # intermediate routers exist

        def proc():
            yield from topo.adversary.fetch("/content/x", timeout=10_000.0)

        topo.engine.spawn(proc())
        topo.engine.run()
        for router in topo.access_path:
            assert len(router.cs) == 0
        assert len(topo.router.cs) == 1  # R itself caches

    def test_flush_caches_helper(self):
        topo = local_lan(seed=0)

        def proc():
            yield from topo.adversary.fetch("/content/x")

        topo.engine.spawn(proc())
        topo.engine.run()
        assert len(topo.router.cs) == 1
        topo.flush_caches()
        assert len(topo.router.cs) == 0

    def test_scheme_injection(self):
        from repro.core.schemes.always_delay import AlwaysDelayScheme

        topo = local_lan(seed=0, scheme=AlwaysDelayScheme())
        assert topo.router.scheme.name == "always-delay"

    def test_invalid_hop_counts(self):
        with pytest.raises(ValueError):
            wan(producer_hops=0)
        with pytest.raises(ValueError):
            wan_producer(access_hops=0)

    def test_seeds_change_delays(self):
        hits_a, _ = measure_hit_miss(local_lan(seed=1), n=3)
        hits_b, _ = measure_hit_miss(local_lan(seed=2), n=3)
        assert not np.array_equal(hits_a, hits_b)
