"""Unit tests for Interest and Data packets."""

from __future__ import annotations

import pytest

from repro.ndn.errors import PacketError
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest


class TestInterest:
    def test_defaults(self):
        interest = Interest(name=Name.parse("/a"))
        assert interest.scope is None
        assert not interest.private
        assert interest.hops == 1
        assert interest.lifetime == 4000.0

    def test_nonces_are_unique(self):
        a = Interest(name=Name.parse("/a"))
        b = Interest(name=Name.parse("/a"))
        assert a.nonce != b.nonce

    def test_hop_increments_and_preserves_nonce(self):
        interest = Interest(name=Name.parse("/a"))
        hopped = interest.hop()
        assert hopped.hops == 2
        assert hopped.nonce == interest.nonce
        assert hopped.name == interest.name

    def test_invalid_scope_rejected(self):
        with pytest.raises(PacketError):
            Interest(name=Name.parse("/a"), scope=0)

    def test_invalid_lifetime_rejected(self):
        with pytest.raises(PacketError):
            Interest(name=Name.parse("/a"), lifetime=0.0)

    def test_invalid_hops_rejected(self):
        with pytest.raises(PacketError):
            Interest(name=Name.parse("/a"), hops=0)

    def test_str_shows_markers(self):
        interest = Interest(name=Name.parse("/a"), scope=2, private=True)
        text = str(interest)
        assert "scope=2" in text and "private" in text


class TestScopeSemantics:
    """scope = max NDN entities traversed, source included (Section III)."""

    def test_unlimited_scope_never_exhausts(self):
        interest = Interest(name=Name.parse("/a"))
        assert not interest.scope_exhausted

    def test_scope2_exhausted_at_first_hop_router(self):
        # Source is entity 1 (hops=1); the receiving router is entity 2 and
        # must not forward further.
        interest = Interest(name=Name.parse("/a"), scope=2)
        assert interest.scope_exhausted

    def test_scope3_allows_one_forward(self):
        interest = Interest(name=Name.parse("/a"), scope=3)
        assert not interest.scope_exhausted  # first router may forward
        assert interest.hop().scope_exhausted  # second router may not


class TestData:
    def test_defaults(self):
        data = Data(name=Name.parse("/a"))
        assert not data.private
        assert data.size == 1024
        assert data.freshness is None
        assert not data.exact_match_only

    def test_satisfies_prefix_rule(self):
        data = Data(name=Name.parse("/cnn/news/today"))
        assert data.satisfies(Interest(name=Name.parse("/cnn/news")))
        assert data.satisfies(Interest(name=Name.parse("/cnn/news/today")))
        assert not data.satisfies(Interest(name=Name.parse("/bbc")))

    def test_effectively_private_via_bit(self):
        assert Data(name=Name.parse("/a"), private=True).effectively_private

    def test_effectively_private_via_name_component(self):
        assert Data(name=Name.parse("/a/private/x")).effectively_private

    def test_not_private_by_default(self):
        assert not Data(name=Name.parse("/a")).effectively_private

    def test_negative_size_rejected(self):
        with pytest.raises(PacketError):
            Data(name=Name.parse("/a"), size=-1)

    def test_invalid_freshness_rejected(self):
        with pytest.raises(PacketError):
            Data(name=Name.parse("/a"), freshness=0.0)

    def test_str_shows_private_marker(self):
        assert "[private]" in str(Data(name=Name.parse("/a"), private=True))

    def test_frozen(self):
        data = Data(name=Name.parse("/a"))
        with pytest.raises(Exception):
            data.size = 10  # type: ignore[misc]
