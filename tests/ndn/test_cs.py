"""Unit tests for the Content Store."""

from __future__ import annotations

import pytest

from repro.ndn.cs import ContentStore
from repro.ndn.errors import CacheError
from repro.ndn.name import Name
from repro.ndn.packets import Data
from repro.ndn.replacement import FifoPolicy


def data(uri: str, **kwargs) -> Data:
    return Data(name=Name.parse(uri), **kwargs)


class TestInsertLookup:
    def test_exact_lookup_after_insert(self):
        cs = ContentStore()
        cs.insert(data("/a/b"), now=1.0)
        entry = cs.lookup_exact(Name.parse("/a/b"), now=2.0)
        assert entry is not None
        assert entry.data.name == Name.parse("/a/b")

    def test_lookup_missing_returns_none(self):
        cs = ContentStore()
        assert cs.lookup_exact(Name.parse("/nope"), now=0.0) is None
        assert cs.lookup(Name.parse("/nope"), now=0.0) is None

    def test_prefix_lookup_finds_longer_name(self):
        cs = ContentStore()
        cs.insert(data("/cnn/news/today"), now=0.0)
        entry = cs.lookup(Name.parse("/cnn/news"), now=1.0)
        assert entry is not None
        assert entry.data.name == Name.parse("/cnn/news/today")

    def test_prefix_lookup_prefers_exact(self):
        cs = ContentStore()
        cs.insert(data("/a/b"), now=0.0)
        cs.insert(data("/a/b/c"), now=0.0)
        entry = cs.lookup(Name.parse("/a/b"), now=1.0)
        assert entry.data.name == Name.parse("/a/b")

    def test_prefix_lookup_deterministic_smallest(self):
        cs = ContentStore()
        cs.insert(data("/a/z"), now=0.0)
        cs.insert(data("/a/m"), now=0.0)
        entry = cs.lookup(Name.parse("/a"), now=1.0)
        assert entry.data.name == Name.parse("/a/m")

    def test_exact_match_only_excluded_from_prefix(self):
        """Footnote 5: rand-named content never satisfies prefix interests."""
        cs = ContentStore()
        cs.insert(data("/alice/skype/0/deadbeef", exact_match_only=True), now=0.0)
        assert cs.lookup(Name.parse("/alice/skype"), now=1.0) is None
        assert cs.lookup(Name.parse("/alice/skype/0/deadbeef"), now=1.0) is not None

    def test_fetch_delay_recorded(self):
        cs = ContentStore()
        entry = cs.insert(data("/a"), now=5.0, fetch_delay=12.5)
        assert entry.fetch_delay == 12.5

    def test_privacy_derived_from_content(self):
        cs = ContentStore()
        assert cs.insert(data("/a", private=True), now=0.0).private
        assert not cs.insert(data("/b"), now=0.0).private

    def test_privacy_override(self):
        cs = ContentStore()
        assert cs.insert(data("/a"), now=0.0, private=True).private

    def test_reinsert_refreshes_in_place(self):
        cs = ContentStore()
        first = cs.insert(data("/a"), now=0.0)
        second = cs.insert(data("/a"), now=9.0)
        assert first is second
        assert second.last_access == 9.0
        assert len(cs) == 1


class TestTouchSemantics:
    def test_touch_updates_access_metadata(self):
        cs = ContentStore()
        cs.insert(data("/a"), now=0.0)
        entry = cs.lookup_exact(Name.parse("/a"), now=7.0)
        assert entry.last_access == 7.0
        assert entry.access_count == 1

    def test_touch_false_leaves_metadata(self):
        cs = ContentStore()
        cs.insert(data("/a"), now=0.0)
        entry = cs.lookup_exact(Name.parse("/a"), now=7.0, touch=False)
        assert entry.last_access == 0.0
        assert entry.access_count == 0

    def test_touch_refreshes_lru_position(self):
        cs = ContentStore(capacity=2)
        cs.insert(data("/a"), now=0.0)
        cs.insert(data("/b"), now=1.0)
        cs.lookup_exact(Name.parse("/a"), now=2.0)  # refresh /a
        cs.insert(data("/c"), now=3.0)  # evicts /b, not /a
        assert Name.parse("/a") in cs
        assert Name.parse("/b") not in cs


class TestEviction:
    def test_capacity_enforced(self):
        cs = ContentStore(capacity=3)
        for i in range(5):
            cs.insert(data(f"/x/{i}"), now=float(i))
        assert len(cs) == 3
        assert cs.evictions == 2

    def test_lru_order_of_eviction(self):
        cs = ContentStore(capacity=2)
        cs.insert(data("/a"), now=0.0)
        cs.insert(data("/b"), now=1.0)
        cs.insert(data("/c"), now=2.0)
        assert cs.names == [Name.parse("/b"), Name.parse("/c")]

    def test_evict_listener_called_with_entry(self):
        cs = ContentStore(capacity=1)
        evicted = []
        cs.add_evict_listener(lambda entry: evicted.append(entry.name))
        cs.insert(data("/a"), now=0.0)
        cs.insert(data("/b"), now=1.0)
        assert evicted == [Name.parse("/a")]

    def test_unlimited_capacity_never_evicts(self):
        cs = ContentStore(capacity=None)
        for i in range(1000):
            cs.insert(data(f"/x/{i}"), now=float(i))
        assert len(cs) == 1000
        assert cs.evictions == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(CacheError):
            ContentStore(capacity=0)

    def test_custom_policy(self):
        cs = ContentStore(capacity=2, policy=FifoPolicy())
        cs.insert(data("/a"), now=0.0)
        cs.insert(data("/b"), now=1.0)
        cs.lookup_exact(Name.parse("/a"), now=2.0)  # FIFO ignores access
        cs.insert(data("/c"), now=3.0)
        assert Name.parse("/a") not in cs


class TestRemoveAndClear:
    def test_remove_returns_entry(self):
        cs = ContentStore()
        cs.insert(data("/a/b"), now=0.0)
        entry = cs.remove(Name.parse("/a/b"))
        assert entry is not None
        assert len(cs) == 0

    def test_remove_missing_returns_none(self):
        assert ContentStore().remove(Name.parse("/none")) is None

    def test_remove_cleans_prefix_index(self):
        cs = ContentStore()
        cs.insert(data("/a/b/c"), now=0.0)
        cs.remove(Name.parse("/a/b/c"))
        assert cs.lookup(Name.parse("/a"), now=1.0) is None

    def test_clear_does_not_fire_listeners(self):
        cs = ContentStore()
        fired = []
        cs.add_evict_listener(lambda e: fired.append(e))
        cs.insert(data("/a"), now=0.0)
        cs.clear()
        assert len(cs) == 0
        assert fired == []

    def test_iteration_and_insertions_counter(self):
        cs = ContentStore()
        cs.insert(data("/a"), now=0.0)
        cs.insert(data("/b"), now=0.0)
        assert {e.name for e in cs} == {Name.parse("/a"), Name.parse("/b")}
        assert cs.insertions == 2


class TestEvictionLedger:
    """Capacity evictions, stale drops, and the removal ledger are
    mutually consistent (the invariant checker's law D depends on it)."""

    def test_stale_victim_counts_as_stale_drop_not_eviction(self):
        cs = ContentStore(capacity=1)
        cs.insert(data("/old", freshness=10.0), now=0.0)
        # By now=50 the resident entry is stale; capacity pressure merely
        # surfaces its expiry — this must not read as cache contention.
        cs.insert(data("/new"), now=50.0)
        assert cs.stale_drops == 1
        assert cs.evictions == 0
        assert Name.parse("/new") in cs

    def test_fresh_victim_counts_as_eviction_only(self):
        cs = ContentStore(capacity=1)
        cs.insert(data("/old", freshness=1000.0), now=0.0)
        cs.insert(data("/new"), now=50.0)
        assert cs.evictions == 1
        assert cs.stale_drops == 0

    def test_eviction_and_stale_tallies_are_exclusive(self):
        cs = ContentStore(capacity=2)
        cs.insert(data("/stale", freshness=5.0), now=0.0)
        cs.insert(data("/fresh"), now=1.0)
        cs.insert(data("/a"), now=100.0)  # victim: /stale (LRU, expired)
        cs.insert(data("/b"), now=101.0)  # victim: /fresh (live)
        assert cs.stale_drops == 1
        assert cs.evictions == 1
        assert cs.stale_drops + cs.evictions == cs.insertions - len(cs)

    def test_removed_ledger_balances_insertions(self):
        cs = ContentStore(capacity=3)
        for i in range(8):
            cs.insert(data(f"/x/{i}"), now=float(i))
        cs.remove(Name.parse("/x/7"))
        cs.lookup_exact(Name.parse("/missing"), now=9.0)
        assert cs.insertions == cs.removed + len(cs)

    def test_clear_feeds_removed_ledger(self):
        cs = ContentStore()
        for i in range(4):
            cs.insert(data(f"/x/{i}"), now=0.0)
        cs.clear()
        assert cs.removed == 4
        assert cs.insertions == cs.removed + len(cs)

    def test_remove_missing_does_not_count(self):
        cs = ContentStore()
        cs.remove(Name.parse("/none"))
        assert cs.removed == 0

    def test_stale_drop_on_lookup_counts_removed(self):
        cs = ContentStore()
        cs.insert(data("/a", freshness=10.0), now=0.0)
        assert cs.lookup_exact(Name.parse("/a"), now=50.0) is None
        assert cs.stale_drops == 1
        assert cs.removed == 1
        assert cs.insertions == cs.removed + len(cs)
