"""Unit tests for the Pending Interest Table."""

from __future__ import annotations

import pytest

from repro.ndn.name import Name
from repro.ndn.packets import Interest
from repro.ndn.pit import Pit


def interest(uri: str, **kwargs) -> Interest:
    return Interest(name=Name.parse(uri), **kwargs)


class TestInsertCollapse:
    def test_first_interest_creates_entry(self):
        pit = Pit()
        entry, is_new = pit.insert_or_collapse(interest("/a"), "face1", now=0.0)
        assert is_new
        assert entry.faces == ["face1"]
        assert len(pit) == 1

    def test_second_interest_collapses(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a"), "face1", now=0.0)
        entry, is_new = pit.insert_or_collapse(interest("/a"), "face2", now=1.0)
        assert not is_new
        assert entry.faces == ["face1", "face2"]
        assert pit.collapsed == 1

    def test_same_face_not_duplicated(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a"), "face1", now=0.0)
        entry, _ = pit.insert_or_collapse(interest("/a"), "face1", now=1.0)
        assert entry.faces == ["face1"]

    def test_collapse_extends_expiry(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a", lifetime=100.0), "f1", now=0.0)
        entry, _ = pit.insert_or_collapse(interest("/a", lifetime=100.0), "f2", now=50.0)
        assert entry.expiry == 150.0

    def test_privacy_aggregation(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a", private=True), "f1", now=0.0)
        entry, _ = pit.insert_or_collapse(interest("/a", private=False), "f2", now=0.0)
        assert entry.any_private
        assert not entry.all_private

    def test_all_private_when_all_marked(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a", private=True), "f1", now=0.0)
        entry, _ = pit.insert_or_collapse(interest("/a", private=True), "f2", now=0.0)
        assert entry.all_private

    def test_first_arrival_recorded(self):
        pit = Pit()
        entry, _ = pit.insert_or_collapse(interest("/a"), "f1", now=3.5)
        assert entry.first_arrival == 3.5


class TestSatisfy:
    def test_exact_name_satisfied(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a/b"), "f1", now=0.0)
        entry = pit.satisfy(Name.parse("/a/b"))
        assert entry is not None
        assert len(pit) == 0

    def test_content_satisfies_prefix_interest(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        entry = pit.satisfy(Name.parse("/a/b/c"))
        assert entry is not None
        assert entry.name == Name.parse("/a")

    def test_longest_pending_prefix_wins(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        pit.insert_or_collapse(interest("/a/b"), "f2", now=0.0)
        entry = pit.satisfy(Name.parse("/a/b/c"))
        assert entry.name == Name.parse("/a/b")
        assert Name.parse("/a") in pit  # shorter entry remains

    def test_unsolicited_content_returns_none(self):
        pit = Pit()
        assert pit.satisfy(Name.parse("/nobody/asked")) is None


class TestExpiry:
    def test_expire_after_deadline(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a", lifetime=10.0), "f1", now=0.0)
        assert pit.expire(Name.parse("/a"), now=10.0) is not None
        assert len(pit) == 0
        assert pit.expired == 1

    def test_expire_before_deadline_is_noop(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a", lifetime=10.0), "f1", now=0.0)
        assert pit.expire(Name.parse("/a"), now=5.0) is None
        assert len(pit) == 1

    def test_expire_missing_returns_none(self):
        assert Pit().expire(Name.parse("/none"), now=0.0) is None

    def test_remove_unconditional(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        assert pit.remove(Name.parse("/a")) is not None
        assert pit.remove(Name.parse("/a")) is None


class TestNonces:
    def test_nonce_tracking(self):
        pit = Pit()
        i = interest("/a")
        pit.insert_or_collapse(i, "f1", now=0.0)
        assert pit.has_seen_nonce(Name.parse("/a"), i.nonce)
        assert not pit.has_seen_nonce(Name.parse("/a"), i.nonce + 999)

    def test_nonce_on_missing_entry(self):
        assert not Pit().has_seen_nonce(Name.parse("/a"), 1)

    def test_names_sorted(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/z"), "f1", now=0.0)
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        assert pit.names == [Name.parse("/a"), Name.parse("/z")]
