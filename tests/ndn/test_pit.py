"""Unit tests for the Pending Interest Table."""

from __future__ import annotations

import pytest

from repro.ndn.errors import PitError
from repro.ndn.name import Name
from repro.ndn.packets import Interest
from repro.ndn.pit import OVERFLOW_POLICIES, Pit


def interest(uri: str, **kwargs) -> Interest:
    return Interest(name=Name.parse(uri), **kwargs)


class TestInsertCollapse:
    def test_first_interest_creates_entry(self):
        pit = Pit()
        entry, is_new = pit.insert_or_collapse(interest("/a"), "face1", now=0.0)
        assert is_new
        assert entry.faces == ["face1"]
        assert len(pit) == 1

    def test_second_interest_collapses(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a"), "face1", now=0.0)
        entry, is_new = pit.insert_or_collapse(interest("/a"), "face2", now=1.0)
        assert not is_new
        assert entry.faces == ["face1", "face2"]
        assert pit.collapsed == 1

    def test_same_face_not_duplicated(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a"), "face1", now=0.0)
        entry, _ = pit.insert_or_collapse(interest("/a"), "face1", now=1.0)
        assert entry.faces == ["face1"]

    def test_collapse_extends_expiry(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a", lifetime=100.0), "f1", now=0.0)
        entry, _ = pit.insert_or_collapse(interest("/a", lifetime=100.0), "f2", now=50.0)
        assert entry.expiry == 150.0

    def test_privacy_aggregation(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a", private=True), "f1", now=0.0)
        entry, _ = pit.insert_or_collapse(interest("/a", private=False), "f2", now=0.0)
        assert entry.any_private
        assert not entry.all_private

    def test_all_private_when_all_marked(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a", private=True), "f1", now=0.0)
        entry, _ = pit.insert_or_collapse(interest("/a", private=True), "f2", now=0.0)
        assert entry.all_private

    def test_first_arrival_recorded(self):
        pit = Pit()
        entry, _ = pit.insert_or_collapse(interest("/a"), "f1", now=3.5)
        assert entry.first_arrival == 3.5


class TestSatisfy:
    def test_exact_name_satisfied(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a/b"), "f1", now=0.0)
        entry = pit.satisfy(Name.parse("/a/b"))
        assert entry is not None
        assert len(pit) == 0

    def test_content_satisfies_prefix_interest(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        entry = pit.satisfy(Name.parse("/a/b/c"))
        assert entry is not None
        assert entry.name == Name.parse("/a")

    def test_longest_pending_prefix_wins(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        pit.insert_or_collapse(interest("/a/b"), "f2", now=0.0)
        entry = pit.satisfy(Name.parse("/a/b/c"))
        assert entry.name == Name.parse("/a/b")
        assert Name.parse("/a") in pit  # shorter entry remains

    def test_unsolicited_content_returns_none(self):
        pit = Pit()
        assert pit.satisfy(Name.parse("/nobody/asked")) is None


class TestExpiry:
    def test_expire_after_deadline(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a", lifetime=10.0), "f1", now=0.0)
        assert pit.expire(Name.parse("/a"), now=10.0) is not None
        assert len(pit) == 0
        assert pit.expired == 1

    def test_expire_before_deadline_is_noop(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a", lifetime=10.0), "f1", now=0.0)
        assert pit.expire(Name.parse("/a"), now=5.0) is None
        assert len(pit) == 1

    def test_expire_missing_returns_none(self):
        assert Pit().expire(Name.parse("/none"), now=0.0) is None

    def test_remove_unconditional(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        assert pit.remove(Name.parse("/a")) is not None
        assert pit.remove(Name.parse("/a")) is None


class TestNonces:
    def test_nonce_tracking(self):
        pit = Pit()
        i = interest("/a")
        pit.insert_or_collapse(i, "f1", now=0.0)
        assert pit.has_seen_nonce(Name.parse("/a"), i.nonce)
        assert not pit.has_seen_nonce(Name.parse("/a"), i.nonce + 999)

    def test_nonce_on_missing_entry(self):
        assert not Pit().has_seen_nonce(Name.parse("/a"), 1)

    def test_names_sorted(self):
        pit = Pit()
        pit.insert_or_collapse(interest("/z"), "f1", now=0.0)
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        assert pit.names == [Name.parse("/a"), Name.parse("/z")]


class TestCapacityBounds:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(PitError):
            Pit(capacity=0)

    def test_unknown_overflow_policy_rejected(self):
        with pytest.raises(PitError):
            Pit(capacity=4, overflow="mystery")
        assert "drop-new" in OVERFLOW_POLICIES
        assert "evict-oldest-expiry" in OVERFLOW_POLICIES

    @pytest.mark.parametrize("overflow", OVERFLOW_POLICIES)
    def test_fills_to_exactly_capacity(self, overflow):
        pit = Pit(capacity=3, overflow=overflow)
        for i in range(3):
            entry, is_new = pit.insert_or_collapse(
                interest(f"/n/{i}"), "f1", now=float(i)
            )
            assert entry is not None
            assert is_new
        assert len(pit) == 3
        assert pit.peak_size == 3
        assert pit.inserted == 3
        assert pit.overflow_dropped == 0
        assert pit.overflow_evicted == 0

    def test_capacity_plus_one_drop_new_rejects(self):
        pit = Pit(capacity=2, overflow="drop-new")
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        pit.insert_or_collapse(interest("/b"), "f1", now=1.0)
        entry, is_new = pit.insert_or_collapse(interest("/c"), "f1", now=2.0)
        assert entry is None
        assert not is_new
        assert len(pit) == 2
        assert pit.peak_size == 2
        assert pit.overflow_dropped == 1
        assert pit.inserted == 2  # the rejected interest consumed nothing
        assert Name.parse("/c") not in pit

    def test_capacity_plus_one_evicts_oldest_expiry(self):
        pit = Pit(capacity=2, overflow="evict-oldest-expiry")
        pit.insert_or_collapse(interest("/long", lifetime=500.0), "f1", now=0.0)
        pit.insert_or_collapse(interest("/short", lifetime=50.0), "f1", now=0.0)
        entry, is_new = pit.insert_or_collapse(interest("/new"), "f1", now=1.0)
        assert is_new
        assert entry.name == Name.parse("/new")
        # The entry closest to expiring was preempted, not the oldest name.
        assert Name.parse("/short") not in pit
        assert Name.parse("/long") in pit
        assert len(pit) == 2
        assert pit.peak_size == 2
        assert pit.overflow_evicted == 1

    def test_preemption_notifies_evict_listeners(self):
        pit = Pit(capacity=1, overflow="evict-oldest-expiry")
        preempted = []
        pit.add_evict_listener(lambda e: preempted.append(e.name))
        pit.insert_or_collapse(interest("/victim"), "f1", now=0.0)
        pit.insert_or_collapse(interest("/winner"), "f1", now=1.0)
        assert preempted == [Name.parse("/victim")]

    @pytest.mark.parametrize("overflow", OVERFLOW_POLICIES)
    def test_collapse_at_full_table_consumes_no_slot(self, overflow):
        pit = Pit(capacity=2, overflow=overflow)
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        pit.insert_or_collapse(interest("/b"), "f1", now=0.0)
        # A duplicate name at a full table must aggregate, never drop or
        # preempt — collapsing is the first line of defense against floods.
        entry, is_new = pit.insert_or_collapse(interest("/a"), "f2", now=1.0)
        assert entry is not None
        assert not is_new
        assert entry.faces == ["f1", "f2"]
        assert pit.collapsed == 1
        assert pit.overflow_dropped == 0
        assert pit.overflow_evicted == 0
        assert len(pit) == 2

    def test_drop_new_table_recovers_after_satisfy(self):
        pit = Pit(capacity=1, overflow="drop-new")
        pit.insert_or_collapse(interest("/a"), "f1", now=0.0)
        assert pit.insert_or_collapse(interest("/b"), "f1", now=1.0)[0] is None
        pit.satisfy(Name.parse("/a"))
        entry, is_new = pit.insert_or_collapse(interest("/b"), "f1", now=2.0)
        assert is_new
        assert len(pit) == 1

    def test_peak_size_tracks_high_water_mark(self):
        pit = Pit()
        for i in range(5):
            pit.insert_or_collapse(interest(f"/n/{i}"), "f1", now=0.0)
        for i in range(5):
            pit.satisfy(Name.parse(f"/n/{i}"))
        assert len(pit) == 0
        assert pit.peak_size == 5
