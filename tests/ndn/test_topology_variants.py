"""Tests for less-traveled topology configurations."""

from __future__ import annotations

import pytest

from repro.ndn.topology import local_lan, wan, wan_producer
from repro.sim.process import Timeout


class TestWanProducerVariants:
    def test_caching_access_path_variant(self):
        """With caching enabled on the access path, the adversary's own
        first fetch seeds its first-hop router — the reason the default
        experiment disables it."""
        topo = wan_producer(seed=3, cache_on_access_path=True)

        def proc():
            yield from topo.adversary.fetch("/content/x", timeout=10_000.0)

        topo.engine.spawn(proc(), "adv")
        topo.engine.run()
        assert any(len(r.cs) > 0 for r in topo.access_path)

    def test_second_fetch_served_by_access_router_when_caching(self):
        topo = wan_producer(seed=4, cache_on_access_path=True)
        rtts = []

        def proc():
            for _ in range(2):
                result = yield from topo.adversary.fetch(
                    "/content/x", timeout=10_000.0
                )
                rtts.append(result.rtt)
                yield Timeout(10.0)

        topo.engine.spawn(proc(), "adv")
        topo.engine.run()
        # Second fetch comes from the adversary-adjacent router: much
        # faster than the first (which crossed three WAN hops).
        assert rtts[1] < rtts[0] / 2

    def test_access_hops_configurable(self):
        topo = wan_producer(seed=0, access_hops=2)
        # One intermediate router per consumer chain (Adv and U).
        assert len(topo.access_path) == 2


class TestWanVariants:
    def test_single_hop_producer(self):
        topo = wan(seed=0, producer_hops=1)
        assert topo.producer_path == []
        results = []

        def proc():
            result = yield from topo.adversary.fetch("/content/x")
            results.append(result)

        topo.engine.spawn(proc(), "adv")
        topo.engine.run()
        assert results[0] is not None

    def test_deep_producer_chain(self):
        topo = wan(seed=0, producer_hops=5)
        assert len(topo.producer_path) == 4

        def proc():
            yield from topo.user.fetch("/content/x")

        topo.engine.spawn(proc(), "user")
        topo.engine.run()
        # Content cached at every router on the path.
        assert all(len(r.cs) == 1 for r in topo.producer_path)
        assert len(topo.router.cs) == 1


class TestCacheCapacityInjection:
    def test_bounded_router_cache(self):
        topo = local_lan(seed=0, cache_capacity=2)

        def proc():
            for i in range(5):
                yield from topo.user.fetch(f"/content/o{i}")
                yield Timeout(5.0)

        topo.engine.spawn(proc(), "user")
        topo.engine.run()
        assert len(topo.router.cs) == 2
        assert topo.router.cs.evictions == 3
