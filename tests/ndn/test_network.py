"""Unit tests for network assembly."""

from __future__ import annotations

import pytest

from repro.ndn.errors import TopologyError
from repro.ndn.forwarder import Forwarder
from repro.ndn.link import FixedDelay
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.sim.process import Timeout


def linear_network():
    """consumer - R1 - R2 - producer."""
    net = Network()
    net.add_consumer("c")
    net.add_router("R1")
    net.add_router("R2")
    net.add_producer("p", "/data")
    net.connect("c", "R1", FixedDelay(1.0))
    net.connect("R1", "R2", FixedDelay(1.0))
    net.connect("R2", "p", FixedDelay(1.0))
    net.add_route_chain("/data", "R1", "R2", "p")
    return net


class TestAssembly:
    def test_duplicate_name_rejected(self):
        net = Network()
        net.add_router("R")
        with pytest.raises(TopologyError):
            net.add_consumer("R")

    def test_unknown_entity_rejected(self):
        net = Network()
        with pytest.raises(TopologyError):
            _ = net["ghost"]

    def test_contains(self):
        net = Network()
        net.add_router("R")
        assert "R" in net
        assert "X" not in net

    def test_face_between(self):
        net = linear_network()
        face = net.face_between("R1", "R2")
        assert face.owner is net["R1"]
        assert face.peer.owner is net["R2"]

    def test_face_between_unlinked_rejected(self):
        net = linear_network()
        with pytest.raises(TopologyError):
            net.face_between("c", "p")

    def test_route_on_non_forwarder_rejected(self):
        net = linear_network()
        with pytest.raises(TopologyError):
            net.add_route("c", "/data", "R1")

    def test_routers_property(self):
        net = linear_network()
        assert set(net.routers) == {"R1", "R2"}

    def test_add_route_chain_skips_end_hosts(self):
        net = linear_network()
        assert Name.parse("/data") in net["R1"].fib
        assert Name.parse("/data") in net["R2"].fib


class TestEndToEnd:
    def test_fetch_through_two_routers(self):
        net = linear_network()
        results = []

        def proc():
            result = yield from net["c"].fetch("/data/obj")
            results.append(result)

        net.spawn(proc())
        net.run()
        assert results[0] is not None
        assert results[0].rtt == pytest.approx(6.0)  # 3 links x 2 x 1ms

    def test_both_routers_cache(self):
        net = linear_network()

        def proc():
            yield from net["c"].fetch("/data/obj")

        net.spawn(proc())
        net.run()
        assert Name.parse("/data/obj") in net["R1"].cs
        assert Name.parse("/data/obj") in net["R2"].cs

    def test_second_fetch_served_by_first_hop(self):
        net = linear_network()
        rtts = []

        def proc():
            r1 = yield from net["c"].fetch("/data/obj")
            rtts.append(r1.rtt)
            yield Timeout(10.0)
            r2 = yield from net["c"].fetch("/data/obj")
            rtts.append(r2.rtt)

        net.spawn(proc())
        net.run()
        assert rtts[0] == pytest.approx(6.0)
        assert rtts[1] == pytest.approx(2.0)  # R1 cache hit

    def test_flush_caches(self):
        net = linear_network()

        def proc():
            yield from net["c"].fetch("/data/obj")

        net.spawn(proc())
        net.run()
        net.flush_caches()
        assert len(net["R1"].cs) == 0
        assert len(net["R2"].cs) == 0

    def test_deterministic_across_instances(self):
        def run_once():
            net = linear_network()
            rtts = []

            def proc():
                result = yield from net["c"].fetch("/data/obj")
                rtts.append(result.rtt)

            net.spawn(proc())
            net.run()
            return rtts[0]

        assert run_once() == run_once()
