"""Tests for the multi-hop scale topology builders (strategy sweeps)."""

from __future__ import annotations

import pytest

from repro.ndn.errors import TopologyError
from repro.ndn.name import Name
from repro.ndn.topology import (
    SCALE_TOPOLOGIES,
    fat_tree,
    geant_backbone,
    rocketfuel_isp,
)
from repro.sim.process import Timeout

CONTENT = Name.parse("/content/obj")


def follow_route(net, start, max_hops=64):
    """Walk FIB next hops from router ``start`` until an end host ("P")."""
    visited = [start]
    node = net[start]
    while True:
        hops = node.fib.longest_prefix_match(CONTENT)
        assert hops, f"{visited[-1]} has no route for {CONTENT}"
        node = hops[0].face.peer.owner
        if getattr(node, "fib", None) is None:
            # End hosts have no FIB and no network name: the walk is done.
            visited.append("P")
            return visited
        name = node.name
        assert name not in visited, f"forwarding loop: {visited + [name]}"
        visited.append(name)
        assert len(visited) <= max_hops


def fetch_roundtrip(topo, name="/content/smoke"):
    outcome = {}

    def proc():
        outcome["first"] = yield from topo.user.fetch(name, timeout=10_000.0)
        yield Timeout(5.0)
        outcome["second"] = yield from topo.adversary.fetch(
            name, timeout=10_000.0
        )

    topo.engine.spawn(proc(), label="smoke")
    topo.engine.run()
    return outcome


class TestRegistry:
    def test_scale_registry(self):
        assert set(SCALE_TOPOLOGIES) == {"fat_tree", "rocketfuel", "geant"}

    @pytest.mark.parametrize("name", sorted(SCALE_TOPOLOGIES))
    def test_end_to_end_fetch(self, name):
        topo = SCALE_TOPOLOGIES[name](seed=3)
        outcome = fetch_roundtrip(topo)
        assert outcome["first"] is not None
        assert outcome["second"] is not None
        # Second fetch is served from the shared probe router's cache.
        assert outcome["second"].rtt < outcome["first"].rtt

    @pytest.mark.parametrize("name", sorted(SCALE_TOPOLOGIES))
    def test_routes_loop_free_from_every_router(self, name):
        topo = SCALE_TOPOLOGIES[name](seed=0)
        for router in topo.network.routers:
            path = follow_route(topo.network, router)
            assert path[-1] == "P"

    @pytest.mark.parametrize("name", sorted(SCALE_TOPOLOGIES))
    def test_producer_path_matches_fib_walk(self, name):
        topo = SCALE_TOPOLOGIES[name](seed=0)
        walked = follow_route(topo.network, topo.router.name)
        assert [f.name for f in topo.producer_path] == walked[1:-1]

    @pytest.mark.parametrize("name", sorted(SCALE_TOPOLOGIES))
    def test_caching_spec_threads_to_all_routers(self, name):
        topo = SCALE_TOPOLOGIES[name](seed=0, caching="lcd")
        for router in topo.network.routers.values():
            assert router.caching is not None
            assert router.caching.kind == "lcd"
            assert router.count_origin_hops


class TestFatTreeShape:
    @pytest.mark.parametrize("k", [2, 4])
    def test_router_counts(self, k):
        topo = fat_tree(seed=0, k=k)
        half = k // 2
        routers = set(topo.network.routers)
        cores = {r for r in routers if r.startswith("core")}
        aggs = {r for r in routers if r.startswith("agg")}
        edges = {r for r in routers if r.startswith("edge")}
        assert len(cores) == half * half
        assert len(aggs) == k * half
        assert len(edges) == k * half
        assert routers == cores | aggs | edges

    def test_degrees_for_k4(self):
        topo = fat_tree(seed=0, k=4, hosts_per_edge=2)
        net = topo.network
        # Edge: k/2 aggs + hosts_per_edge hosts = 4 faces.
        assert len(net["edge1-0"].faces) == 4
        # Aggregation: k/2 edges + k/2 cores = 4 faces.
        assert len(net["agg1-0"].faces) == 4
        # Core: one agg per pod = k faces (core0 also links to P).
        assert len(net["core1"].faces) == 4
        assert len(net["core0"].faces) == 5

    def test_depth_is_edge_agg_core(self):
        topo = fat_tree(seed=0, k=4)
        walked = follow_route(topo.network, "edge3-1")
        # edge -> agg -> core0-column core -> P (3 router hops).
        assert len(walked) == 4
        assert walked[1].startswith("agg3-")
        assert walked[2].startswith("core")

    def test_odd_or_tiny_arity_rejected(self):
        with pytest.raises(TopologyError, match="even"):
            fat_tree(seed=0, k=3)
        with pytest.raises(TopologyError, match="even"):
            fat_tree(seed=0, k=0)
        with pytest.raises(TopologyError, match="U and Adv"):
            fat_tree(seed=0, hosts_per_edge=1)


class TestRocketfuelShape:
    def test_deterministic_from_seed(self):
        def link_set(seed):
            topo = rocketfuel_isp(seed=seed)
            links = set()
            for router in topo.network.routers.values():
                for face in router.faces:
                    peer = face.peer.owner
                    if getattr(peer, "fib", None) is not None:
                        links.add(tuple(sorted((router.name, peer.name))))
            return links

        assert link_set(7) == link_set(7)
        # Chord sampling must depend on the seed (ring + tiers are fixed).
        assert link_set(7) != link_set(8)

    def test_small_ring_rejected(self):
        with pytest.raises(TopologyError, match=">= 3 backbone"):
            rocketfuel_isp(seed=0, backbones=2)

    def test_tier_counts(self):
        topo = rocketfuel_isp(
            seed=0, backbones=4, gateways_per_backbone=2, leaves_per_gateway=3
        )
        routers = set(topo.network.routers)
        assert sum(r.startswith("b") for r in routers) == 4
        assert sum(r.startswith("g") for r in routers) == 8
        assert sum(r.startswith("l") for r in routers) == 24


class TestGeantShape:
    def test_fixed_city_map(self):
        topo = geant_backbone(seed=0)
        assert set(topo.network.routers) == {
            "london", "dublin", "paris", "madrid", "geneva", "milan",
            "amsterdam", "frankfurt", "copenhagen", "vienna", "budapest",
            "stockholm",
        }
        assert topo.router.name == "madrid"

    def test_graph_identical_across_seeds(self):
        # Seeds only feed link jitter; the map itself is fixed.
        def degree_profile(seed):
            topo = geant_backbone(seed=seed)
            return {
                name: len(router.faces)
                for name, router in topo.network.routers.items()
            }

        assert degree_profile(1) == degree_profile(99)


class TestLpmCache:
    def test_lookups_memoized_then_invalidated_by_route_change(self):
        topo = fat_tree(seed=0, k=2)
        fib = topo.router.fib
        fib.longest_prefix_match(CONTENT)
        assert CONTENT in fib._lpm_cache
        topo.network.add_route(topo.router.name, "/other", "agg0-0")
        assert not fib._lpm_cache

    def test_fresh_graphs_do_not_share_caches(self):
        a = fat_tree(seed=0, k=2)
        b = fat_tree(seed=0, k=2)
        a.router.fib.longest_prefix_match(CONTENT)
        assert CONTENT in a.router.fib._lpm_cache
        assert a.router.fib._lpm_cache is not b.router.fib._lpm_cache
        assert CONTENT not in b.router.fib._lpm_cache
        # The memoized hop must point into its own graph's faces.
        hops = a.router.fib.longest_prefix_match(CONTENT)
        assert hops[0].face.owner is a.router
