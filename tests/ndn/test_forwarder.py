"""Unit tests for the NDN forwarder pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.core.schemes.uniform import UniformRandomCache
from repro.ndn.cs import ContentStore
from repro.ndn.forwarder import Forwarder
from repro.ndn.link import Face, FixedDelay, Link
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest
from repro.sim.engine import Engine


class AppRecorder:
    """End-host stub recording received packets with timestamps."""

    def __init__(self, engine):
        self.engine = engine
        self.interests = []
        self.data = []

    def receive_interest(self, interest, face):
        self.interests.append((self.engine.now, interest, face))

    def receive_data(self, data, face):
        self.data.append((self.engine.now, data, face))


class ProducerStub:
    """Serves any interest instantly with matching (non-private) content."""

    def __init__(self, private=False):
        self.private = private
        self.served = 0

    def receive_interest(self, interest, face):
        self.served += 1
        face.send_data(Data(name=interest.name, private=self.private))

    def receive_data(self, data, face):
        raise AssertionError("producer stub received data")


def build(engine, scheme=None, consumer_delay=1.0, producer_delay=5.0,
          capacity=None, honor_scope=True, producer_private=False):
    """consumer -- R -- producer with fixed link delays."""
    router = Forwarder(
        engine, "R",
        cs=ContentStore(capacity=capacity),
        scheme=scheme,
        honor_scope=honor_scope,
    )
    consumer = AppRecorder(engine)
    producer = ProducerStub(private=producer_private)
    c_face = Face(consumer, "c")
    r_down = router.create_face("down")
    Link(engine, c_face, r_down, FixedDelay(consumer_delay), np.random.default_rng(0))
    p_face = Face(producer, "p")
    r_up = router.create_face("up")
    Link(engine, r_up, p_face, FixedDelay(producer_delay), np.random.default_rng(1))
    router.fib.add_route(Name.root(), r_up)
    return router, consumer, producer, c_face


class TestMissPath:
    def test_miss_fetches_from_producer(self, engine):
        router, consumer, producer, c_face = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert producer.served == 1
        assert len(consumer.data) == 1
        # RTT: 2 * (1 + 5) = 12 ms.
        assert consumer.data[0][0] == pytest.approx(12.0)

    def test_content_cached_after_miss(self, engine):
        router, consumer, _, c_face = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert Name.parse("/a") in router.cs

    def test_fetch_delay_recorded_on_entry(self, engine):
        router, consumer, _, c_face = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        entry = router.cs.lookup_exact(Name.parse("/a"), engine.now, touch=False)
        assert entry.fetch_delay == pytest.approx(10.0)  # 2 * producer link

    def test_no_route_drops_interest(self, engine):
        router, consumer, _, c_face = build(engine)
        router.fib = type(router.fib)()  # empty FIB
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert consumer.data == []
        assert router.monitor.counter("no_route") == 1
        assert len(router.pit) == 0


class TestHitPath:
    def test_second_request_served_from_cache(self, engine):
        router, consumer, producer, c_face = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert producer.served == 1  # not contacted again
        assert len(consumer.data) == 2
        # Hit RTT: 2 * 1 = 2 ms.
        rtt = consumer.data[1][0] - 12.0
        assert rtt == pytest.approx(2.0)
        assert router.monitor.counter("cs_hit") == 1

    def test_prefix_interest_hits_cached_longer_name(self, engine):
        router, consumer, producer, c_face = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a/b/c")))
        engine.run()
        c_face.send_interest(Interest(name=Name.parse("/a/b")))
        engine.run()
        assert producer.served == 1
        assert len(consumer.data) == 2


class TestPitBehavior:
    def test_same_face_new_nonce_is_retransmission(self, engine):
        # A fresh nonce from a face that already has an in-record is a
        # consumer retransmission: collapsed into the PIT but re-forwarded
        # upstream (the original may have been lost).
        router, consumer, producer, c_face = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert producer.served == 2
        assert router.monitor.counter("pit_collapse") == 1
        assert router.monitor.counter("interest_retransmitted") == 1
        assert len(consumer.data) >= 1

    def test_duplicate_nonce_not_reforwarded(self, engine):
        # The exact same interest looping back (same nonce) is collapsed
        # without re-forwarding.
        router, consumer, producer, c_face = build(engine)
        interest = Interest(name=Name.parse("/a"))
        c_face.send_interest(interest)
        c_face.send_interest(interest)
        engine.run()
        assert producer.served == 1
        assert router.monitor.counter("interest_retransmitted") == 0

    def test_collapsed_interest_from_second_face_gets_data(self, engine):
        router, consumer, producer, c_face = build(engine)
        consumer2 = AppRecorder(engine)
        c2_face = Face(consumer2, "c2")
        r_down2 = router.create_face("down2")
        Link(engine, c2_face, r_down2, FixedDelay(1.0), np.random.default_rng(2))
        c_face.send_interest(Interest(name=Name.parse("/a")))
        c2_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert producer.served == 1
        assert len(consumer.data) == 1
        assert len(consumer2.data) == 1

    def test_pit_cleared_after_satisfaction(self, engine):
        router, consumer, _, c_face = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert len(router.pit) == 0

    def test_unsolicited_data_dropped(self, engine):
        router, consumer, _, c_face = build(engine)
        upstream_face = router.faces[1]
        upstream_face.peer.send_data(Data(name=Name.parse("/spam")))
        engine.run()
        assert router.monitor.counter("unsolicited_data") == 1
        assert Name.parse("/spam") not in router.cs
        assert consumer.data == []


class TestScope:
    def test_scope2_interest_dies_at_router_on_miss(self, engine):
        router, consumer, producer, c_face = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a"), scope=2))
        engine.run()
        assert producer.served == 0
        assert consumer.data == []
        assert router.monitor.counter("scope_drop") == 1

    def test_scope2_interest_answered_on_hit(self, engine):
        router, consumer, producer, c_face = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        c_face.send_interest(Interest(name=Name.parse("/a"), scope=2))
        engine.run()
        assert len(consumer.data) == 2
        assert producer.served == 1

    def test_scope_ignored_when_disabled(self, engine):
        router, consumer, producer, c_face = build(engine, honor_scope=False)
        c_face.send_interest(Interest(name=Name.parse("/a"), scope=2))
        engine.run()
        assert producer.served == 1
        assert len(consumer.data) == 1


class TestSchemeIntegration:
    def test_always_delay_hides_private_hit_timing(self, engine):
        router, consumer, producer, c_face = build(
            engine, scheme=AlwaysDelayScheme(), producer_private=True
        )
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        first_time = consumer.data[0][0]
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        second_rtt = consumer.data[1][0] - first_time
        # Disguised hit: 2*consumer_link + recorded fetch delay = 2 + 10.
        assert second_rtt == pytest.approx(12.0)
        assert producer.served == 1  # bandwidth still saved
        assert router.monitor.counter("cs_disguised_hit") == 1

    def test_no_privacy_serves_private_hit_fast(self, engine):
        router, consumer, producer, c_face = build(
            engine, scheme=NoPrivacyScheme(), producer_private=True
        )
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        first_time = consumer.data[0][0]
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert consumer.data[1][0] - first_time == pytest.approx(2.0)

    def test_uniform_scheme_eventually_hits(self, engine):
        scheme = UniformRandomCache(K=4, rng=np.random.default_rng(0))
        router, consumer, producer, c_face = build(
            engine, scheme=scheme, producer_private=True
        )
        rtts = []
        last = 0.0
        for _ in range(8):
            c_face.send_interest(Interest(name=Name.parse("/a")))
            engine.run()
            rtts.append(consumer.data[-1][0] - last)
            last = consumer.data[-1][0]
        assert producer.served == 1
        # Eventually the fast (2 ms) genuine hit appears.
        assert any(r == pytest.approx(2.0) for r in rtts)
        # And every disguised miss looks exactly like a real one (12 ms).
        assert all(r == pytest.approx(2.0) or r == pytest.approx(12.0) for r in rtts)

    def test_scheme_on_evict_called(self, engine):
        scheme = UniformRandomCache(K=4, rng=np.random.default_rng(0))
        router, consumer, producer, c_face = build(
            engine, scheme=scheme, capacity=1, producer_private=True
        )
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert scheme.tracked_groups == 1
        c_face.send_interest(Interest(name=Name.parse("/b")))
        engine.run()
        # /a evicted by capacity; its group state must be dropped.
        assert scheme.tracked_groups == 1
        assert Name.parse("/a") not in router.cs


class TestCacheFilter:
    def test_cache_filter_blocks_admission(self, engine):
        router, consumer, producer, c_face = build(engine)
        router.cache_filter = lambda data: False
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert Name.parse("/a") not in router.cs
        assert router.monitor.counter("cache_skipped") == 1
        # Data still forwarded to the consumer.
        assert len(consumer.data) == 1

    def test_flush_cache_resets(self, engine):
        router, consumer, _, c_face = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        router.flush_cache()
        assert len(router.cs) == 0
