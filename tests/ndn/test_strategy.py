"""Tests for forwarding strategies (best-route vs multicast)."""

from __future__ import annotations

import pytest

from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry


def diamond(strategy: str, seed: int = 0, slow_loss: float = 0.0,
            fast_loss: float = 0.0):
    """consumer - R - {pathA (fast), pathB (slow)} - producer."""
    net = Network(rng=RngRegistry(seed))
    router = net.add_router("R", strategy=strategy)
    consumer = net.add_consumer("c")
    pa = net.add_producer("pa", "/data")
    pb = net.add_producer("pb", "/data")
    net.connect("c", "R", FixedDelay(1.0))
    net.connect("R", "pa", FixedDelay(2.0), loss_rate=fast_loss)
    net.connect("R", "pb", FixedDelay(10.0), loss_rate=slow_loss)
    net.add_route("R", "/data", "pa", cost=1)
    net.add_route("R", "/data", "pb", cost=5)
    return net, router, consumer, pa, pb


class TestBestRoute:
    def test_uses_cheapest_path_only(self):
        net, router, consumer, pa, pb = diamond("best-route")
        results = []

        def proc():
            result = yield from consumer.fetch("/data/x")
            results.append(result)

        net.spawn(proc(), "driver")
        net.run()
        assert results[0].rtt == pytest.approx(6.0)  # 2*(1+2)
        assert pa.monitor.counter("data_served") == 1
        assert pb.monitor.counter("data_served") == 0

    def test_lost_best_path_not_recovered_without_retry(self):
        net, router, consumer, pa, pb = diamond(
            "best-route", seed=1, fast_loss=0.999
        )
        results = []

        def proc():
            result = yield from consumer.fetch("/data/x", timeout=100.0)
            results.append(result)

        net.spawn(proc(), "driver")
        net.run()
        assert results == [None]  # single path, and it lost the packet


class TestMulticast:
    def test_forwards_on_all_paths(self):
        net, router, consumer, pa, pb = diamond("multicast")
        results = []

        def proc():
            result = yield from consumer.fetch("/data/x")
            results.append(result)

        net.spawn(proc(), "driver")
        net.run()
        # Fast path answers first; the consumer sees the fast RTT.
        assert results[0].rtt == pytest.approx(6.0)
        assert pa.monitor.counter("data_served") == 1
        assert pb.monitor.counter("data_served") == 1

    def test_duplicate_data_dropped_as_unsolicited(self):
        net, router, consumer, pa, pb = diamond("multicast")

        def proc():
            yield from consumer.fetch("/data/x")

        net.spawn(proc(), "driver")
        net.run()
        # The slow path's copy arrives after the PIT entry was satisfied.
        assert router.monitor.counter("unsolicited_data") == 1

    def test_survives_total_loss_on_one_path(self):
        net, router, consumer, pa, pb = diamond(
            "multicast", seed=2, fast_loss=0.999
        )
        results = []

        def proc():
            result = yield from consumer.fetch("/data/x", timeout=100.0)
            results.append(result)

        net.spawn(proc(), "driver")
        net.run()
        assert results[0] is not None
        assert results[0].rtt == pytest.approx(22.0)  # served via slow path


class TestValidation:
    def test_unknown_strategy_rejected(self, engine):
        from repro.ndn.forwarder import Forwarder

        with pytest.raises(ValueError, match="unknown strategy"):
            Forwarder(engine, "R", strategy="flooding")
