"""Direct unit tests for the interactive endpoint (session runs are
covered by the integration suite)."""

from __future__ import annotations

import pytest

from repro.naming.session import SessionNamer
from repro.ndn.apps.interactive import InteractiveEndpoint
from repro.ndn.link import Face, FixedDelay, Link
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest
from repro.sim.engine import Engine

import numpy as np

SECRET = b"unit-secret"


def endpoint(engine):
    namer = SessionNamer(SECRET, "/alice/voip", "/bob/voip")
    return InteractiveEndpoint(engine, namer, label="alice")


class TestPublishing:
    def test_publish_frame_layout(self, engine):
        ep = endpoint(engine)
        data = ep.publish_frame(0)
        assert Name.parse("/alice/voip").is_prefix_of(data.name)
        assert data.private
        assert data.exact_match_only
        assert ep.monitor.counter("frames_published") == 1

    def test_frames_reproducible_per_sequence(self, engine):
        ep = endpoint(engine)
        assert ep.publish_frame(3).name == ep.publish_frame(3).name


class TestServing:
    def test_serves_exact_published_frame(self, engine):
        ep = endpoint(engine)
        data = ep.publish_frame(0)
        sent = []
        face = Face(ep, "f")

        class PeerSink:
            def receive_interest(self, interest, f):
                pass

            def receive_data(self, d, f):
                sent.append(d)

        Link(engine, face, Face(PeerSink(), "peer"), FixedDelay(0.1),
             np.random.default_rng(0))
        ep.receive_interest(Interest(name=data.name), face)
        engine.run()
        assert sent == [data]
        assert ep.monitor.counter("frames_served") == 1

    def test_unknown_interest_ignored(self, engine):
        ep = endpoint(engine)
        ep.publish_frame(0)
        ep.receive_interest(
            Interest(name=Name.parse("/alice/voip/999/bogus")), None
        )
        assert ep.monitor.counter("unknown_interest") == 1


class TestRequesting:
    def test_request_frame_requires_face(self, engine):
        ep = endpoint(engine)
        with pytest.raises(RuntimeError):
            ep.request_frame(0)

    def test_unsolicited_data_counted(self, engine):
        ep = endpoint(engine)
        ep.receive_data(Data(name=Name.parse("/bob/voip/0/ffff")), None)
        assert ep.monitor.counter("unsolicited_data") == 1

    def test_request_resolved_by_matching_data(self, engine):
        ep = endpoint(engine)
        ep.create_face()

        class Absorb:
            def receive_interest(self, interest, f):
                pass

            def receive_data(self, d, f):
                pass

        Link(engine, ep.face, Face(Absorb(), "net"), FixedDelay(0.1),
             np.random.default_rng(0))
        signal = ep.request_frame(0)
        expected = ep.namer.incoming_name(0)
        ep.receive_data(Data(name=expected), ep.face)
        assert signal.triggered
        assert ep.monitor.counter("frames_received") == 1
