"""Unit tests for cache replacement policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ndn.errors import CacheError
from repro.ndn.name import Name
from repro.ndn.replacement import (
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)


def n(uri: str) -> Name:
    return Name.parse(uri)


class TestLru:
    def test_victim_is_least_recent_insert(self):
        policy = LruPolicy()
        policy.on_insert(n("/a"))
        policy.on_insert(n("/b"))
        assert policy.choose_victim() == n("/a")

    def test_access_refreshes_recency(self):
        policy = LruPolicy()
        policy.on_insert(n("/a"))
        policy.on_insert(n("/b"))
        policy.on_access(n("/a"))
        assert policy.choose_victim() == n("/b")

    def test_remove_untracks(self):
        policy = LruPolicy()
        policy.on_insert(n("/a"))
        policy.on_remove(n("/a"))
        assert len(policy) == 0
        with pytest.raises(CacheError):
            policy.choose_victim()

    def test_access_untracked_raises(self):
        with pytest.raises(CacheError):
            LruPolicy().on_access(n("/ghost"))


class TestFifo:
    def test_access_does_not_refresh(self):
        policy = FifoPolicy()
        policy.on_insert(n("/a"))
        policy.on_insert(n("/b"))
        policy.on_access(n("/a"))
        assert policy.choose_victim() == n("/a")

    def test_reinsert_moves_to_back(self):
        policy = FifoPolicy()
        policy.on_insert(n("/a"))
        policy.on_insert(n("/b"))
        policy.on_insert(n("/a"))
        assert policy.choose_victim() == n("/b")

    def test_empty_victim_raises(self):
        with pytest.raises(CacheError):
            FifoPolicy().choose_victim()


class TestLfu:
    def test_victim_is_least_frequent(self):
        policy = LfuPolicy()
        policy.on_insert(n("/a"))
        policy.on_insert(n("/b"))
        policy.on_access(n("/a"))
        assert policy.choose_victim() == n("/b")

    def test_tie_breaks_fifo(self):
        policy = LfuPolicy()
        policy.on_insert(n("/a"))
        policy.on_insert(n("/b"))
        assert policy.choose_victim() == n("/a")

    def test_remove_clears_state(self):
        policy = LfuPolicy()
        policy.on_insert(n("/a"))
        policy.on_remove(n("/a"))
        assert len(policy) == 0

    def test_access_untracked_raises(self):
        with pytest.raises(CacheError):
            LfuPolicy().on_access(n("/ghost"))


class TestRandom:
    def test_victim_is_tracked_name(self):
        policy = RandomPolicy(np.random.default_rng(0))
        names = [n(f"/x/{i}") for i in range(10)]
        for name in names:
            policy.on_insert(name)
        assert policy.choose_victim() in names

    def test_remove_keeps_structure_consistent(self):
        policy = RandomPolicy(np.random.default_rng(0))
        names = [n(f"/x/{i}") for i in range(5)]
        for name in names:
            policy.on_insert(name)
        policy.on_remove(n("/x/2"))
        assert len(policy) == 4
        for _ in range(20):
            assert policy.choose_victim() != n("/x/2")

    def test_deterministic_with_seed(self):
        def victims(seed):
            policy = RandomPolicy(np.random.default_rng(seed))
            for i in range(10):
                policy.on_insert(n(f"/x/{i}"))
            return [policy.choose_victim() for _ in range(5)]

        assert victims(7) == victims(7)

    def test_duplicate_insert_ignored(self):
        policy = RandomPolicy(np.random.default_rng(0))
        policy.on_insert(n("/a"))
        policy.on_insert(n("/a"))
        assert len(policy) == 1


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("lru", LruPolicy),
        ("fifo", FifoPolicy),
        ("lfu", LfuPolicy),
        ("random", RandomPolicy),
    ])
    def test_make_policy(self, kind, cls):
        assert isinstance(make_policy(kind, np.random.default_rng(0)), cls)

    def test_unknown_policy_rejected(self):
        with pytest.raises(CacheError):
            make_policy("mru")
