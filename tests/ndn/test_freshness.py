"""Tests for content-freshness expiry in the Content Store."""

from __future__ import annotations

import pytest

from repro.ndn.cs import ContentStore
from repro.ndn.name import Name
from repro.ndn.packets import Data


def fresh_data(uri: str, freshness=None) -> Data:
    return Data(name=Name.parse(uri), freshness=freshness)


class TestFreshnessExpiry:
    def test_fresh_entry_served(self):
        cs = ContentStore()
        cs.insert(fresh_data("/a", freshness=100.0), now=0.0)
        assert cs.lookup_exact(Name.parse("/a"), now=99.0) is not None

    def test_stale_entry_dropped_on_exact_lookup(self):
        cs = ContentStore()
        cs.insert(fresh_data("/a", freshness=100.0), now=0.0)
        assert cs.lookup_exact(Name.parse("/a"), now=101.0) is None
        assert Name.parse("/a") not in cs
        assert cs.stale_drops == 1

    def test_stale_entry_dropped_on_prefix_lookup(self):
        cs = ContentStore()
        cs.insert(fresh_data("/a/b", freshness=50.0), now=0.0)
        assert cs.lookup(Name.parse("/a"), now=60.0) is None
        assert cs.stale_drops == 1

    def test_prefix_lookup_skips_stale_finds_fresh(self):
        cs = ContentStore()
        # "aaa-old" sorts before "zzz-new", so the deterministic prefix
        # scan visits (and drops) the stale entry first.
        cs.insert(fresh_data("/a/aaa-old", freshness=10.0), now=0.0)
        cs.insert(fresh_data("/a/zzz-new", freshness=1000.0), now=0.0)
        entry = cs.lookup(Name.parse("/a"), now=50.0)
        assert entry is not None
        assert entry.name == Name.parse("/a/zzz-new")
        assert cs.stale_drops == 1

    def test_no_freshness_never_expires(self):
        cs = ContentStore()
        cs.insert(fresh_data("/a"), now=0.0)
        assert cs.lookup_exact(Name.parse("/a"), now=1e12) is not None

    def test_boundary_is_inclusive(self):
        cs = ContentStore()
        cs.insert(fresh_data("/a", freshness=100.0), now=0.0)
        assert cs.lookup_exact(Name.parse("/a"), now=100.0) is not None

    def test_stale_drop_fires_evict_listener_but_not_eviction_count(self):
        # Schemes must release per-entry state when content expires, but
        # staleness is not capacity pressure: listeners fire, the eviction
        # counter does not move.
        cs = ContentStore()
        fired = []
        cs.add_evict_listener(lambda e: fired.append(e.name))
        cs.insert(fresh_data("/a", freshness=10.0), now=0.0)
        cs.lookup_exact(Name.parse("/a"), now=20.0)
        assert fired == [Name.parse("/a")]
        assert cs.evictions == 0
        assert cs.stale_drops == 1

    def test_stale_drop_releases_scheme_state(self):
        from repro.core.schemes.uniform import UniformRandomCache

        cs = ContentStore()
        scheme = UniformRandomCache(K=10)
        cs.add_evict_listener(scheme.on_evict)
        entry = cs.insert(fresh_data("/a", freshness=10.0), now=0.0,
                          private=True)
        scheme.on_insert(entry, private=True, now=0.0)
        assert scheme.tracked_groups == 1
        cs.lookup_exact(Name.parse("/a"), now=20.0)
        assert scheme.tracked_groups == 0

    def test_reinsert_restarts_freshness_window(self):
        cs = ContentStore()
        cs.insert(fresh_data("/a", freshness=100.0), now=0.0)
        cs.lookup_exact(Name.parse("/a"), now=101.0)  # expires
        cs.insert(fresh_data("/a", freshness=100.0), now=200.0)
        assert cs.lookup_exact(Name.parse("/a"), now=250.0) is not None
