"""Unit tests for hierarchical NDN names."""

from __future__ import annotations

import pytest

from repro.ndn.errors import NameError_
from repro.ndn.name import PRIVATE_COMPONENT, Name, name_of


class TestConstruction:
    def test_parse_roundtrip(self):
        name = Name.parse("/cnn/news/2013may20")
        assert str(name) == "/cnn/news/2013may20"
        assert name.components == ("cnn", "news", "2013may20")

    def test_root_name(self):
        assert str(Name.root()) == "/"
        assert len(Name.root()) == 0
        assert Name.parse("/") == Name.root()

    def test_parse_requires_leading_slash(self):
        with pytest.raises(NameError_):
            Name.parse("cnn/news")

    def test_parse_rejects_empty_component(self):
        with pytest.raises(NameError_):
            Name.parse("/cnn//news")

    def test_component_with_slash_rejected(self):
        with pytest.raises(NameError_):
            Name(("a/b",))

    def test_empty_component_rejected(self):
        with pytest.raises(NameError_):
            Name(("",))

    def test_non_string_component_rejected(self):
        with pytest.raises(NameError_):
            Name((1,))  # type: ignore[arg-type]

    def test_name_of_coercion(self):
        assert name_of("/a/b") == Name(("a", "b"))
        n = Name(("x",))
        assert name_of(n) is n
        with pytest.raises(NameError_):
            name_of(42)  # type: ignore[arg-type]


class TestHierarchy:
    def test_append(self):
        assert Name.parse("/a").append("b", "c") == Name.parse("/a/b/c")

    def test_parent(self):
        assert Name.parse("/a/b/c").parent() == Name.parse("/a/b")

    def test_parent_of_root_raises(self):
        with pytest.raises(NameError_):
            Name.root().parent()

    def test_prefix(self):
        name = Name.parse("/a/b/c/d")
        assert name.prefix(2) == Name.parse("/a/b")
        assert name.prefix(0) == Name.root()
        assert name.prefix(4) == name

    def test_prefix_out_of_range(self):
        with pytest.raises(NameError_):
            Name.parse("/a").prefix(2)

    def test_prefixes_longest_first(self):
        prefixes = list(Name.parse("/a/b").prefixes())
        assert prefixes == [Name.parse("/a/b"), Name.parse("/a"), Name.root()]

    def test_last_component(self):
        assert Name.parse("/a/b/137").last == "137"
        with pytest.raises(NameError_):
            _ = Name.root().last

    def test_getitem_and_slice(self):
        name = Name.parse("/a/b/c")
        assert name[1] == "b"
        assert name[:2] == Name.parse("/a/b")


class TestMatching:
    """The paper's footnote-2 rule: X matches X' iff X is a prefix of X'."""

    def test_name_is_prefix_of_itself(self):
        name = Name.parse("/cnn/news")
        assert name.is_prefix_of(name)

    def test_shorter_prefix_matches(self):
        assert Name.parse("/cnn/news").is_prefix_of(
            Name.parse("/cnn/news/2013may20")
        )

    def test_longer_name_does_not_match_shorter(self):
        assert not Name.parse("/cnn/news/2013may20").is_prefix_of(
            Name.parse("/cnn/news")
        )

    def test_sibling_does_not_match(self):
        assert not Name.parse("/cnn/sports").is_prefix_of(
            Name.parse("/cnn/news/x")
        )

    def test_component_boundary_respected(self):
        # /cn is NOT a prefix of /cnn at the component level.
        assert not Name.parse("/cn").is_prefix_of(Name.parse("/cnn"))

    def test_root_matches_everything(self):
        assert Name.root().is_prefix_of(Name.parse("/anything/at/all"))

    def test_matches_alias(self):
        assert Name.parse("/a").matches(Name.parse("/a/b"))


class TestPrivacyMarking:
    def test_private_component_detected(self):
        assert Name.parse(f"/site/{PRIVATE_COMPONENT}/doc").marked_private

    def test_private_as_last_component(self):
        assert Name.parse(f"/site/doc/{PRIVATE_COMPONENT}").marked_private

    def test_unmarked_name(self):
        assert not Name.parse("/site/doc").marked_private

    def test_has_component(self):
        assert Name.parse("/a/b/c").has_component("b")
        assert not Name.parse("/a/b/c").has_component("z")


class TestInterning:
    def test_parse_is_memoized(self):
        assert Name.parse("/intern/a") is Name.parse("/intern/a")

    def test_intern_of_equal_values_is_same_object(self):
        via_parse = Name.parse("/intern/b/c")
        assert Name.intern("/intern/b/c") is via_parse
        assert Name.intern(Name(("intern", "b", "c"))) is via_parse
        assert Name.intern(["intern", "b", "c"]) is via_parse

    def test_root_is_interned(self):
        assert Name.root() is Name.root()
        assert Name.parse("/") is Name.root()

    def test_interned_names_are_plain_names(self):
        name = Name.intern("/intern/plain")
        assert name == Name(("intern", "plain"))
        assert isinstance(name, Name)

    def test_intern_validates(self):
        with pytest.raises(NameError_):
            Name.intern(["bad/slash"])

    def test_str_is_cached(self):
        name = Name(("cache", "uri"))
        assert str(name) is str(name)
        assert str(name) == "/cache/uri"

    def test_str_cached_on_root(self):
        root = Name(())
        assert str(root) is str(root) == "/"

    def test_prefixes_cached_and_interned(self):
        name = Name.parse("/intern/p/q")
        first = list(name.prefixes())
        second = list(name.prefixes())
        assert first == [
            Name.parse("/intern/p/q"), Name.parse("/intern/p"),
            Name.parse("/intern"), Name.root(),
        ]
        for a, b in zip(first, second):
            assert a is b  # the chain is computed once

    def test_clear_caches_resets_pool(self):
        before = Name.parse("/intern/reset")
        Name.clear_caches()
        after = Name.parse("/intern/reset")
        assert before == after
        assert after is Name.parse("/intern/reset")

    def test_pickle_roundtrip_drops_caches(self):
        import pickle

        name = Name.parse("/intern/pickled/name")
        str(name)
        list(name.prefixes())
        clone = pickle.loads(pickle.dumps(name))
        assert clone == name
        assert str(clone) == "/intern/pickled/name"
        assert list(clone.prefixes()) == list(name.prefixes())


class TestDunder:
    def test_equality_and_hash(self):
        assert Name.parse("/a/b") == Name.parse("/a/b")
        assert hash(Name.parse("/a/b")) == hash(Name.parse("/a/b"))
        assert Name.parse("/a/b") != Name.parse("/a/c")

    def test_names_usable_as_dict_keys(self):
        d = {Name.parse("/a"): 1}
        assert d[Name.parse("/a")] == 1

    def test_ordering(self):
        assert Name.parse("/a") < Name.parse("/b")
        assert Name.parse("/a") < Name.parse("/a/b")

    def test_equality_with_other_type(self):
        assert Name.parse("/a") != "/a"

    def test_iteration(self):
        assert list(Name.parse("/x/y")) == ["x", "y"]

    def test_repr(self):
        assert repr(Name.parse("/a")) == "Name('/a')"
