"""Unit tests for faces, links, and delay models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ndn.errors import TopologyError
from repro.ndn.link import (
    Face,
    FixedDelay,
    GaussianJitterDelay,
    Link,
    LogNormalDelay,
)
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest


class Recorder:
    """Minimal PacketHandler recording everything it receives."""

    def __init__(self):
        self.interests = []
        self.data = []

    def receive_interest(self, interest, face):
        self.interests.append((interest, face))

    def receive_data(self, data, face):
        self.data.append((data, face))


def wire(engine, delay=1.0, loss=0.0, seed=0):
    a, b = Recorder(), Recorder()
    face_a, face_b = Face(a, "a"), Face(b, "b")
    link = Link(
        engine, face_a, face_b,
        delay_model=FixedDelay(delay),
        rng=np.random.default_rng(seed),
        loss_rate=loss,
    )
    return a, b, face_a, face_b, link


class TestDelayModels:
    def test_fixed_delay(self, rng):
        assert FixedDelay(2.5).sample(rng) == 2.5
        assert FixedDelay(2.5).mean == 2.5

    def test_fixed_delay_rejects_negative(self):
        with pytest.raises(TopologyError):
            FixedDelay(-1.0)

    def test_gaussian_jitter_respects_floor(self, rng):
        model = GaussianJitterDelay(base=1.0, jitter_std=5.0, floor=0.9)
        samples = [model.sample(rng) for _ in range(200)]
        assert min(samples) >= 0.9

    def test_gaussian_jitter_mean_near_base(self, rng):
        model = GaussianJitterDelay(base=5.0, jitter_std=0.1)
        samples = [model.sample(rng) for _ in range(500)]
        assert abs(np.mean(samples) - 5.0) < 0.05

    def test_lognormal_always_above_base(self, rng):
        model = LogNormalDelay(base=3.0, tail_scale=1.0)
        samples = [model.sample(rng) for _ in range(200)]
        assert min(samples) > 3.0

    def test_lognormal_mean_formula(self, rng):
        model = LogNormalDelay(base=0.0, tail_scale=1.0, sigma=0.5)
        samples = [model.sample(rng) for _ in range(200_000)]
        assert abs(np.mean(samples) - model.mean) < 0.02

    def test_lognormal_invalid_params(self):
        with pytest.raises(TopologyError):
            LogNormalDelay(base=-1.0, tail_scale=1.0)
        with pytest.raises(TopologyError):
            LogNormalDelay(base=1.0, tail_scale=1.0, sigma=0.0)


class TestLinkTransmission:
    def test_interest_delivered_to_peer(self, engine):
        a, b, face_a, face_b, _ = wire(engine, delay=2.0)
        interest = Interest(name=Name.parse("/x"))
        face_a.send_interest(interest)
        engine.run()
        assert len(b.interests) == 1
        assert b.interests[0][0] is interest
        assert b.interests[0][1] is face_b
        assert engine.now == 2.0

    def test_data_delivered_to_peer(self, engine):
        a, b, face_a, face_b, _ = wire(engine)
        face_b.send_data(Data(name=Name.parse("/x")))
        engine.run()
        assert len(a.data) == 1

    def test_bidirectional(self, engine):
        a, b, face_a, face_b, _ = wire(engine)
        face_a.send_interest(Interest(name=Name.parse("/x")))
        face_b.send_interest(Interest(name=Name.parse("/y")))
        engine.run()
        assert len(a.interests) == 1
        assert len(b.interests) == 1

    def test_loss_drops_packets(self, engine):
        a, b, face_a, _, link = wire(engine, loss=0.5, seed=3)
        for _ in range(200):
            face_a.send_interest(Interest(name=Name.parse("/x")))
        engine.run()
        assert link.packets_lost > 50
        assert len(b.interests) == 200 - link.packets_lost

    def test_zero_loss_delivers_all(self, engine):
        a, b, face_a, _, link = wire(engine, loss=0.0)
        for _ in range(50):
            face_a.send_interest(Interest(name=Name.parse("/x")))
        engine.run()
        assert len(b.interests) == 50
        assert link.packets_lost == 0

    def test_counters(self, engine):
        a, b, face_a, face_b, link = wire(engine)
        face_a.send_interest(Interest(name=Name.parse("/x")))
        face_b.send_data(Data(name=Name.parse("/x")))
        engine.run()
        assert face_a.interests_out == 1
        assert face_b.data_out == 1
        assert link.packets_sent == 2


class TestWiringErrors:
    def test_unattached_face_cannot_send(self):
        face = Face(Recorder(), "lonely")
        with pytest.raises(TopologyError):
            face.send_interest(Interest(name=Name.parse("/x")))

    def test_face_cannot_join_two_links(self, engine):
        a, b, face_a, face_b, _ = wire(engine)
        c = Recorder()
        face_c = Face(c, "c")
        with pytest.raises(TopologyError):
            Link(engine, face_a, face_c, FixedDelay(1.0), np.random.default_rng(0))

    def test_peer_resolution(self, engine):
        a, b, face_a, face_b, link = wire(engine)
        assert face_a.peer is face_b
        assert link.other_end(face_b) is face_a

    def test_other_end_foreign_face_raises(self, engine):
        a, b, face_a, face_b, link = wire(engine)
        foreign = Face(Recorder(), "foreign")
        with pytest.raises(TopologyError):
            link.other_end(foreign)

    @pytest.mark.parametrize("rate", [-0.1, 1.01, 2.0])
    def test_invalid_loss_rate(self, engine, rate):
        a, b = Recorder(), Recorder()
        with pytest.raises(TopologyError):
            Link(
                engine, Face(a), Face(b), FixedDelay(1.0),
                np.random.default_rng(0), loss_rate=rate,
            )

    def test_loss_rate_and_loss_model_are_exclusive(self, engine):
        from repro.faults.loss import IidLoss

        a, b = Recorder(), Recorder()
        with pytest.raises(TopologyError):
            Link(
                engine, Face(a), Face(b), FixedDelay(1.0),
                np.random.default_rng(0), loss_rate=0.3,
                loss_model=IidLoss(0.3),
            )

    def test_unknown_packet_type_rejected(self, engine):
        a, b, face_a, _, link = wire(engine)
        with pytest.raises(TopologyError):
            link.transmit("not-a-packet", face_a)


class TestFaultSurface:
    def test_blackhole_link_accepted_and_drops_everything(self, engine):
        """loss_rate == 1.0 is a legal blackhole (the fault-test staple)."""
        a, b, face_a, _, link = wire(engine, loss=1.0)
        for _ in range(20):
            face_a.send_interest(Interest(name=Name.parse("/x")))
        engine.run()
        assert b.interests == []
        assert link.packets_lost == 20

    def test_down_link_drops_and_accounts(self, engine):
        a, b, face_a, face_b, link = wire(engine)
        link.set_down()
        face_a.send_interest(Interest(name=Name.parse("/x")))
        face_b.send_data(Data(name=Name.parse("/x")))
        engine.run()
        assert b.interests == [] and a.data == []
        assert link.packets_dropped_down == 2
        assert link.packets_lost == 0  # down-drops are not random loss
        assert link.down_windows == 1
        link.set_up()
        face_a.send_interest(Interest(name=Name.parse("/y")))
        engine.run()
        assert len(b.interests) == 1

    def test_set_down_idempotent_window_count(self, engine):
        *_, link = wire(engine)
        link.set_down()
        link.set_down()
        link.set_up()
        link.set_down()
        assert link.down_windows == 2

    def test_extra_delay_add_remove(self, engine):
        a, b, face_a, _, link = wire(engine, delay=2.0)
        link.add_extra_delay(10.0)
        face_a.send_interest(Interest(name=Name.parse("/x")))
        engine.run()
        assert engine.now == 12.0
        link.remove_extra_delay(10.0)
        face_a.send_interest(Interest(name=Name.parse("/y")))
        engine.run()
        assert engine.now == 14.0
        with pytest.raises(TopologyError):
            link.add_extra_delay(-1.0)

    def test_loss_model_stack(self, engine):
        from repro.faults.loss import GilbertElliottLoss, IidLoss

        a, b, face_a, _, link = wire(engine)
        burst = GilbertElliottLoss(p=1.0, r=0.0)  # all-bad after first packet
        link.push_loss_model(IidLoss(0.0))
        link.push_loss_model(burst)
        assert link.loss_model is burst
        link.pop_loss_model(burst)
        assert isinstance(link.loss_model, IidLoss)
        with pytest.raises(TopologyError):
            link.pop_loss_model(burst)  # not the active model
        link.pop_loss_model()
        with pytest.raises(TopologyError):
            link.pop_loss_model()  # empty stack

    def test_installed_loss_model_consulted(self, engine):
        from repro.faults.loss import IidLoss

        a, b, face_a, _, link = wire(engine)
        link.push_loss_model(IidLoss(1.0))
        for _ in range(10):
            face_a.send_interest(Interest(name=Name.parse("/x")))
        engine.run()
        assert link.packets_lost == 10
        assert b.interests == []


class TestByteAccounting:
    def test_bytes_counted_per_packet(self, engine):
        from repro.ndn.wire import wire_size

        a, b, face_a, face_b, link = wire(engine)
        interest = Interest(name=Name.parse("/x"))
        face_a.send_interest(interest)
        engine.run()
        assert link.bytes_sent == wire_size(interest)

    def test_data_bytes_include_payload(self, engine):
        from repro.ndn.wire import wire_size

        a, b, face_a, face_b, link = wire(engine)
        data = Data(name=Name.parse("/x"), size=4096)
        face_b.send_data(data)
        engine.run()
        assert link.bytes_sent == wire_size(data) + 4096

    def test_lost_packets_still_consume_bandwidth(self, engine):
        a, b, face_a, _, link = wire(engine, loss=0.5, seed=3)
        for _ in range(100):
            face_a.send_interest(Interest(name=Name.parse("/x")))
        engine.run()
        # The sender transmitted every packet; loss happens in flight.
        assert link.bytes_sent > 0
        assert link.packets_lost > 0
