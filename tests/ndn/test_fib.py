"""Unit tests for the Forwarding Interest Base."""

from __future__ import annotations

import pytest

from repro.ndn.errors import FibError
from repro.ndn.fib import Fib
from repro.ndn.name import Name


class TestRoutes:
    def test_add_and_match(self):
        fib = Fib()
        fib.add_route(Name.parse("/cnn"), "faceA")
        assert fib.next_hop(Name.parse("/cnn/news/today")) == "faceA"

    def test_longest_prefix_wins(self):
        fib = Fib()
        fib.add_route(Name.parse("/cnn"), "short")
        fib.add_route(Name.parse("/cnn/news"), "long")
        assert fib.next_hop(Name.parse("/cnn/news/today")) == "long"
        assert fib.next_hop(Name.parse("/cnn/sports")) == "short"

    def test_no_match_returns_none(self):
        fib = Fib()
        fib.add_route(Name.parse("/cnn"), "faceA")
        assert fib.next_hop(Name.parse("/bbc")) is None

    def test_default_route_via_root(self):
        fib = Fib()
        fib.add_route(Name.root(), "default")
        assert fib.next_hop(Name.parse("/anything")) == "default"

    def test_cost_ordering(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "expensive", cost=10)
        fib.add_route(Name.parse("/a"), "cheap", cost=1)
        assert fib.next_hop(Name.parse("/a/x")) == "cheap"
        hops = fib.longest_prefix_match(Name.parse("/a/x"))
        assert [h.face for h in hops] == ["cheap", "expensive"]

    def test_duplicate_registration_updates_cost(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f", cost=5)
        fib.add_route(Name.parse("/a"), "f", cost=1)
        hops = fib.longest_prefix_match(Name.parse("/a"))
        assert len(hops) == 1
        assert hops[0].cost == 1


class TestRemoval:
    def test_remove_route(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f1")
        fib.add_route(Name.parse("/a"), "f2")
        fib.remove_route(Name.parse("/a"), "f1")
        assert fib.next_hop(Name.parse("/a")) == "f2"

    def test_remove_last_route_clears_prefix(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f1")
        fib.remove_route(Name.parse("/a"), "f1")
        assert Name.parse("/a") not in fib
        assert len(fib) == 0

    def test_remove_unknown_prefix_raises(self):
        with pytest.raises(FibError):
            Fib().remove_route(Name.parse("/a"), "f1")

    def test_remove_unknown_face_raises(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f1")
        with pytest.raises(FibError):
            fib.remove_route(Name.parse("/a"), "other")


class TestIntrospection:
    def test_prefixes_sorted(self):
        fib = Fib()
        fib.add_route(Name.parse("/z"), "f")
        fib.add_route(Name.parse("/a"), "f")
        assert fib.prefixes == [Name.parse("/a"), Name.parse("/z")]

    def test_contains(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f")
        assert Name.parse("/a") in fib
        assert Name.parse("/b") not in fib
