"""Unit tests for the Forwarding Interest Base."""

from __future__ import annotations

import pytest

from repro.ndn.errors import FibError
from repro.ndn.fib import Fib
from repro.ndn.name import Name


class TestRoutes:
    def test_add_and_match(self):
        fib = Fib()
        fib.add_route(Name.parse("/cnn"), "faceA")
        assert fib.next_hop(Name.parse("/cnn/news/today")) == "faceA"

    def test_longest_prefix_wins(self):
        fib = Fib()
        fib.add_route(Name.parse("/cnn"), "short")
        fib.add_route(Name.parse("/cnn/news"), "long")
        assert fib.next_hop(Name.parse("/cnn/news/today")) == "long"
        assert fib.next_hop(Name.parse("/cnn/sports")) == "short"

    def test_no_match_returns_none(self):
        fib = Fib()
        fib.add_route(Name.parse("/cnn"), "faceA")
        assert fib.next_hop(Name.parse("/bbc")) is None

    def test_default_route_via_root(self):
        fib = Fib()
        fib.add_route(Name.root(), "default")
        assert fib.next_hop(Name.parse("/anything")) == "default"

    def test_cost_ordering(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "expensive", cost=10)
        fib.add_route(Name.parse("/a"), "cheap", cost=1)
        assert fib.next_hop(Name.parse("/a/x")) == "cheap"
        hops = fib.longest_prefix_match(Name.parse("/a/x"))
        assert [h.face for h in hops] == ["cheap", "expensive"]

    def test_duplicate_registration_updates_cost(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f", cost=5)
        fib.add_route(Name.parse("/a"), "f", cost=1)
        hops = fib.longest_prefix_match(Name.parse("/a"))
        assert len(hops) == 1
        assert hops[0].cost == 1


class TestRemoval:
    def test_remove_route(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f1")
        fib.add_route(Name.parse("/a"), "f2")
        fib.remove_route(Name.parse("/a"), "f1")
        assert fib.next_hop(Name.parse("/a")) == "f2"

    def test_remove_last_route_clears_prefix(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f1")
        fib.remove_route(Name.parse("/a"), "f1")
        assert Name.parse("/a") not in fib
        assert len(fib) == 0

    def test_remove_unknown_prefix_raises(self):
        with pytest.raises(FibError):
            Fib().remove_route(Name.parse("/a"), "f1")

    def test_remove_unknown_face_raises(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f1")
        with pytest.raises(FibError):
            fib.remove_route(Name.parse("/a"), "other")


class TestLpmCache:
    """The memoized longest-prefix match must never serve stale routes."""

    def test_repeat_lookup_same_result(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f")
        name = Name.parse("/a/x")
        assert fib.longest_prefix_match(name) is fib.longest_prefix_match(name)

    def test_add_route_invalidates_hit(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "short")
        name = Name.parse("/a/b/c")
        assert fib.next_hop(name) == "short"
        fib.add_route(Name.parse("/a/b"), "long")
        assert fib.next_hop(name) == "long"

    def test_add_route_invalidates_cached_miss(self):
        fib = Fib()
        name = Name.parse("/new/route")
        assert fib.next_hop(name) is None  # miss is memoized
        fib.add_route(Name.parse("/new"), "f")
        assert fib.next_hop(name) == "f"

    def test_remove_route_invalidates(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "outer")
        fib.add_route(Name.parse("/a/b"), "inner")
        name = Name.parse("/a/b/c")
        assert fib.next_hop(name) == "inner"
        fib.remove_route(Name.parse("/a/b"), "inner")
        assert fib.next_hop(name) == "outer"
        fib.remove_route(Name.parse("/a"), "outer")
        assert fib.next_hop(name) is None

    def test_cost_update_invalidates(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f1", cost=1)
        fib.add_route(Name.parse("/a"), "f2", cost=2)
        assert fib.next_hop(Name.parse("/a/x")) == "f1"
        fib.add_route(Name.parse("/a"), "f2", cost=0)
        assert fib.next_hop(Name.parse("/a/x")) == "f2"

    def test_equal_but_distinct_name_objects_share_semantics(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f")
        assert fib.next_hop(Name(("a", "x"))) == "f"
        assert fib.next_hop(Name(("a", "x"))) == "f"


class TestIntrospection:
    def test_prefixes_sorted(self):
        fib = Fib()
        fib.add_route(Name.parse("/z"), "f")
        fib.add_route(Name.parse("/a"), "f")
        assert fib.prefixes == [Name.parse("/a"), Name.parse("/z")]

    def test_prefixes_view_tracks_mutation(self):
        """The cached sorted view is refreshed on add/remove (regression:
        a stale cache would keep serving dropped or missing prefixes)."""
        fib = Fib()
        fib.add_route(Name.parse("/m"), "f")
        assert fib.prefixes == [Name.parse("/m")]
        fib.add_route(Name.parse("/b"), "f")
        assert fib.prefixes == [Name.parse("/b"), Name.parse("/m")]
        fib.remove_route(Name.parse("/m"), "f")
        assert fib.prefixes == [Name.parse("/b")]

    def test_prefixes_returns_fresh_list(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f")
        view = fib.prefixes
        view.append(Name.parse("/corrupted"))
        assert fib.prefixes == [Name.parse("/a")]

    def test_contains(self):
        fib = Fib()
        fib.add_route(Name.parse("/a"), "f")
        assert Name.parse("/a") in fib
        assert Name.parse("/b") not in fib
