"""Forwarder failure paths: PIT expiry, no_route, scope_drop, and
retransmission re-forwarding when the upstream drops packets.

Complements test_forwarder.py (happy paths) with the loss/outage behaviors
exercised by the fault-injection subsystem.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import IidLoss, RetryPolicy
from repro.ndn.cs import ContentStore
from repro.ndn.forwarder import Forwarder
from repro.ndn.link import Face, FixedDelay, Link
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.ndn.packets import Data, Interest
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry


class SilentApp:
    """Endpoint that records traffic and never replies."""

    def __init__(self, engine):
        self.engine = engine
        self.interests = []
        self.data = []

    def receive_interest(self, interest, face):
        self.interests.append((self.engine.now, interest))

    def receive_data(self, data, face):
        self.data.append((self.engine.now, data))


class EchoProducer:
    """Answers every interest immediately with matching content."""

    def __init__(self):
        self.served = 0

    def receive_interest(self, interest, face):
        self.served += 1
        face.send_data(Data(name=interest.name))

    def receive_data(self, data, face):
        raise AssertionError("producer received data")


def build(engine, producer=None, consumer_delay=1.0, producer_delay=5.0):
    """consumer -- R -- producer; returns the upstream link for fault poking."""
    router = Forwarder(engine, "R", cs=ContentStore(capacity=16))
    consumer = SilentApp(engine)
    producer = producer if producer is not None else EchoProducer()
    c_face = Face(consumer, "c")
    Link(engine, c_face, router.create_face("down"),
         FixedDelay(consumer_delay), np.random.default_rng(0))
    p_face = Face(producer, "p")
    r_up = router.create_face("up")
    up_link = Link(engine, r_up, p_face,
                   FixedDelay(producer_delay), np.random.default_rng(1))
    router.fib.add_route(Name.root(), r_up)
    return router, consumer, producer, c_face, up_link


class TestPitExpiry:
    def test_expiry_timer_fires_and_clears_entry(self, engine):
        router, consumer, _, c_face, _ = build(engine, producer=SilentApp(engine))
        c_face.send_interest(Interest(name=Name.parse("/a"), lifetime=20.0))
        engine.run()
        assert router.monitor.counter("pit_expired") == 1
        assert len(router.pit) == 0
        assert consumer.data == []
        # Entry expired at receive time (t=1) + lifetime.
        assert engine.now == pytest.approx(21.0)

    def test_retransmission_extends_expiry(self, engine):
        router, _, _, c_face, _ = build(engine, producer=SilentApp(engine))
        c_face.send_interest(Interest(name=Name.parse("/a"), lifetime=20.0))
        engine.schedule(
            10.0,
            lambda: c_face.send_interest(
                Interest(name=Name.parse("/a"), lifetime=20.0)
            ),
        )
        engine.run()
        assert router.monitor.counter("pit_expired") == 1  # one entry, one timer
        assert engine.now == pytest.approx(31.0)  # refreshed at t=11

    def test_data_after_expiry_is_unsolicited(self, engine):
        # Producer RTT (2 * 30 ms) exceeds the 20 ms PIT lifetime.
        router, consumer, _, c_face, _ = build(engine, producer_delay=30.0)
        c_face.send_interest(Interest(name=Name.parse("/a"), lifetime=20.0))
        engine.run()
        assert router.monitor.counter("pit_expired") == 1
        assert router.monitor.counter("unsolicited_data") == 1
        assert consumer.data == []


class TestNoRoute:
    def test_unroutable_prefix_dropped_routable_still_served(self, engine):
        router, consumer, producer, c_face, _ = build(engine)
        router.fib = type(router.fib)()
        up_face = router.faces[-1]
        router.fib.add_route(Name.parse("/data"), up_face)

        c_face.send_interest(Interest(name=Name.parse("/other/x")))
        c_face.send_interest(Interest(name=Name.parse("/data/x")))
        engine.run()
        assert router.monitor.counter("no_route") == 1
        assert router.monitor.counter("interest_forwarded") == 1
        assert len(router.pit) == 0
        assert producer.served == 1
        assert [str(data.name) for _, data in consumer.data] == ["/data/x"]


class TestScopeDrop:
    def test_scope_drop_leaves_no_pit_state(self, engine):
        router, consumer, producer, c_face, _ = build(engine)
        c_face.send_interest(Interest(name=Name.parse("/a"), scope=2))
        engine.run()
        assert router.monitor.counter("scope_drop") == 1
        assert len(router.pit) == 0
        # The same name remains fetchable without the scope cap.
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert producer.served == 1
        assert len(consumer.data) == 1

    def test_scoped_retransmission_not_reforwarded(self, engine):
        # Slow producer: the retransmission arrives while the PIT entry is
        # still open, but its exhausted scope forbids re-forwarding.
        router, consumer, producer, c_face, _ = build(engine, producer_delay=50.0)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.schedule(
            5.0,
            lambda: c_face.send_interest(
                Interest(name=Name.parse("/a"), scope=2)
            ),
        )
        engine.run()
        assert router.monitor.counter("pit_collapse") == 1
        assert router.monitor.counter("interest_retransmitted") == 0
        assert producer.served == 1
        assert len(consumer.data) == 1


class TestRetransmitUnderLoss:
    def test_retransmission_reforwarded_after_upstream_outage(self, engine):
        router, consumer, producer, c_face, up_link = build(engine)
        up_link.set_down()
        c_face.send_interest(Interest(name=Name.parse("/a")))

        def recover():
            up_link.set_up()
            c_face.send_interest(Interest(name=Name.parse("/a")))

        engine.schedule(10.0, recover)
        engine.run()
        assert up_link.packets_dropped_down == 1
        assert router.monitor.counter("interest_forwarded") == 1
        assert router.monitor.counter("interest_retransmitted") == 1
        assert producer.served == 1
        assert len(consumer.data) == 1

    def test_retransmission_reforwarded_after_burst_loss(self, engine):
        router, consumer, producer, c_face, up_link = build(engine)
        blackhole = IidLoss(1.0)
        up_link.push_loss_model(blackhole)
        c_face.send_interest(Interest(name=Name.parse("/a")))

        def recover():
            up_link.pop_loss_model(blackhole)
            c_face.send_interest(Interest(name=Name.parse("/a")))

        engine.schedule(10.0, recover)
        engine.run()
        assert up_link.packets_lost == 1
        assert router.monitor.counter("interest_retransmitted") == 1
        assert producer.served == 1
        assert len(consumer.data) == 1


class TestConsumerRetry:
    """The fetch() retransmission loop against a faulty network."""

    def _chain(self, seed=0):
        net = Network(rng=RngRegistry(seed))
        net.add_router("R")
        net.add_consumer("c")
        net.add_producer("p", "/data")
        net.connect("c", "R", FixedDelay(1.0))
        net.connect("R", "p", FixedDelay(3.0))
        net.add_route("R", "/data", "p")
        return net

    def test_budget_exhaustion_counts_failure(self):
        net = self._chain()
        net["p"].auto_generate = False  # content never materializes
        outcome = []

        def proc():
            result = yield from net["c"].fetch(
                "/data/x",
                retry=RetryPolicy(retries=2, timeout=10.0, backoff=2.0),
            )
            outcome.append((net.engine.now, result))

        net.spawn(proc(), "driver")
        net.run()
        (when, result), = outcome
        assert result is None
        # Backoff schedule 10 + 20 + 40 ms, giving up at t=70.
        assert when == pytest.approx(70.0)
        monitor = net["c"].monitor
        assert monitor.counter("fetch_timeouts") == 3
        assert monitor.counter("fetch_retransmits") == 2
        assert monitor.counter("fetch_failures") == 1

    def test_retry_recovers_from_lossy_link(self):
        net = self._chain(seed=5)
        net.links["c<->R"].push_loss_model(IidLoss(0.3))
        record = []

        def proc():
            for i in range(10):
                result = yield from net["c"].fetch(
                    f"/data/obj-{i}",
                    retry=RetryPolicy(retries=8, timeout=30.0, backoff=1.5),
                )
                record.append(result is not None)
                yield Timeout(10.0)

        net.spawn(proc(), "driver")
        net.run()
        assert all(record)  # every fetch eventually lands
        assert net["c"].monitor.counter("fetch_retransmits") > 0
        assert net["c"].monitor.counter("fetch_failures") == 0

    def test_jittered_retry_is_seed_reproducible(self):
        def run(seed):
            net = self._chain(seed=3)
            net.links["c<->R"].push_loss_model(IidLoss(0.4))
            times = []

            def proc():
                rng = np.random.default_rng(seed)
                for i in range(5):
                    yield from net["c"].fetch(
                        f"/data/obj-{i}",
                        retry=RetryPolicy(
                            retries=6, timeout=20.0, backoff=2.0, jitter=0.3
                        ),
                        rng=rng,
                    )
                    times.append(net.engine.now)

            net.spawn(proc(), "driver")
            net.run()
            return tuple(times)

        assert run(1) == run(1)
        assert run(1) != run(2)
