"""Nack plane: wire codec, forwarder rejection paths, consumer backoff."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.retry import RetryPolicy
from repro.ndn.admission import InterestRateLimit
from repro.ndn.errors import PacketError
from repro.ndn.forwarder import Forwarder
from repro.ndn.link import Face, FixedDelay, Link
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.ndn.packets import (
    NACK_CONGESTION,
    NACK_NO_ROUTE,
    NACK_PIT_FULL,
    NACK_REASONS,
    Data,
    Interest,
    Nack,
)
from repro.ndn.pit import Pit
from repro.ndn.wire import decode_packet, encode_packet, wire_size
from repro.sim.rng import RngRegistry


class NackRecorder:
    """End-host stub recording every packet, Nacks included."""

    def __init__(self, engine):
        self.engine = engine
        self.data = []
        self.nacks = []

    def receive_interest(self, interest, face):
        raise AssertionError("recorder received an interest")

    def receive_data(self, data, face):
        self.data.append((self.engine.now, data))

    def receive_nack(self, nack, face):
        self.nacks.append((self.engine.now, nack))


class LegacyRecorder:
    """Pre-Nack handler: no ``receive_nack`` method at all."""

    def __init__(self):
        self.data = []

    def receive_interest(self, interest, face):
        pass

    def receive_data(self, data, face):
        self.data.append(data)


class SilentProducer:
    """Never answers: every forwarded interest dangles in the PIT."""

    def receive_interest(self, interest, face):
        pass

    def receive_data(self, data, face):
        raise AssertionError("silent producer received data")


class NackingProducer:
    """Refuses every interest with a congestion Nack."""

    def receive_interest(self, interest, face):
        face.send_nack(Nack.for_interest(interest, NACK_CONGESTION))

    def receive_data(self, data, face):
        raise AssertionError("nacking producer received data")


def build(engine, upstream, pit=None, rate_limit=None, nack_on_no_route=False,
          routed=True):
    """consumer -- R -- upstream, 1 ms / 5 ms fixed delays."""
    router = Forwarder(
        engine, "R", pit=pit, rate_limit=rate_limit,
        nack_on_no_route=nack_on_no_route,
    )
    consumer = NackRecorder(engine)
    c_face = Face(consumer, "c")
    r_down = router.create_face("down")
    Link(engine, c_face, r_down, FixedDelay(1.0), np.random.default_rng(0))
    p_face = Face(upstream, "p")
    r_up = router.create_face("up")
    Link(engine, r_up, p_face, FixedDelay(5.0), np.random.default_rng(1))
    if routed:
        router.fib.add_route(Name.root(), r_up)
    return router, consumer, c_face


class TestNackPacket:
    def test_unknown_reason_rejected(self):
        with pytest.raises(PacketError):
            Nack(name=Name.parse("/a"), reason="because")

    def test_invalid_hops_rejected(self):
        with pytest.raises(PacketError):
            Nack(name=Name.parse("/a"), hops=0)

    def test_for_interest_copies_name_and_nonce(self):
        interest = Interest(name=Name.parse("/a/b"))
        nack = Nack.for_interest(interest, NACK_PIT_FULL)
        assert nack.name == interest.name
        assert nack.nonce == interest.nonce
        assert nack.reason == NACK_PIT_FULL

    def test_hop_increments_and_preserves_identity(self):
        nack = Nack(name=Name.parse("/a"), nonce=42, reason=NACK_NO_ROUTE)
        hopped = nack.hop()
        assert hopped.hops == nack.hops + 1
        assert hopped.nonce == 42
        assert hopped.reason == NACK_NO_ROUTE


class TestNackWire:
    @pytest.mark.parametrize("reason", NACK_REASONS)
    def test_roundtrip(self, reason):
        nack = Nack(
            name=Name.parse("/cnn/news/2013may20"), nonce=77,
            reason=reason, hops=3,
        )
        assert decode_packet(encode_packet(nack)) == nack

    def test_wire_size_positive(self):
        assert wire_size(Nack(name=Name.parse("/a"))) > 0

    def test_decode_distinguishes_packet_types(self):
        packets = [
            Interest(name=Name.parse("/a")),
            Data(name=Name.parse("/a")),
            Nack(name=Name.parse("/a")),
        ]
        decoded = [decode_packet(encode_packet(p)) for p in packets]
        assert [type(p) for p in decoded] == [Interest, Data, Nack]


class TestForwarderRejections:
    def test_pit_full_drop_new_nacks_arrival_face(self, engine):
        router, consumer, c_face = build(
            engine, SilentProducer(), pit=Pit(capacity=1, overflow="drop-new")
        )
        c_face.send_interest(Interest(name=Name.parse("/a")))
        c_face.send_interest(Interest(name=Name.parse("/b")))
        engine.run(until=50.0)
        assert router.monitor.counter("pit_overflow_drop") == 1
        assert len(consumer.nacks) == 1
        _, nack = consumer.nacks[0]
        assert nack.name == Name.parse("/b")
        assert nack.reason == NACK_PIT_FULL

    def test_preemption_nacks_the_evicted_entrys_faces(self, engine):
        router, consumer, c_face = build(
            engine, SilentProducer(),
            pit=Pit(capacity=1, overflow="evict-oldest-expiry"),
        )
        c_face.send_interest(Interest(name=Name.parse("/victim")))
        c_face.send_interest(Interest(name=Name.parse("/winner")))
        engine.run(until=50.0)
        assert router.monitor.counter("pit_preempted") == 1
        # The preempted entry's face was told, and the new interest won.
        assert [n.name for _, n in consumer.nacks] == [Name.parse("/victim")]
        assert consumer.nacks[0][1].reason == NACK_PIT_FULL
        assert Name.parse("/winner") in router.pit

    def test_rate_limit_nacks_congestion(self, engine):
        router, consumer, c_face = build(
            engine, SilentProducer(),
            rate_limit=InterestRateLimit(rate=100.0, burst=1.0),
        )
        # Two back-to-back interests against a 1-token bucket.
        c_face.send_interest(Interest(name=Name.parse("/a")))
        c_face.send_interest(Interest(name=Name.parse("/b")))
        engine.run(until=50.0)
        assert router.monitor.counter("rate_limited") == 1
        assert len(consumer.nacks) == 1
        assert consumer.nacks[0][1].reason == NACK_CONGESTION

    def test_no_route_silent_by_default(self, engine):
        router, consumer, c_face = build(engine, SilentProducer(), routed=False)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert router.monitor.counter("no_route") == 1
        assert consumer.nacks == []

    def test_no_route_nacks_when_enabled(self, engine):
        router, consumer, c_face = build(
            engine, SilentProducer(), routed=False, nack_on_no_route=True
        )
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert router.monitor.counter("no_route") == 1
        assert len(consumer.nacks) == 1
        assert consumer.nacks[0][1].reason == NACK_NO_ROUTE


class TestNackPropagation:
    def test_upstream_nack_clears_pit_and_reaches_consumer(self, engine):
        router, consumer, c_face = build(engine, NackingProducer())
        c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        # c->R (1) + R->p (5) + p->R (5) + R->c (1) = 12 ms.
        assert [t for t, _ in consumer.nacks] == [pytest.approx(12.0)]
        nack = consumer.nacks[0][1]
        assert nack.reason == NACK_CONGESTION
        assert nack.hops == 2  # incremented by the forwarder on the way down
        assert len(router.pit) == 0
        assert router.monitor.counter("pit_nacked") == 1
        assert router.monitor.counter("nack_in") == 1

    def test_nack_fans_out_to_all_collapsed_faces(self, engine):
        router = Forwarder(engine, "R")
        consumers = [NackRecorder(engine), NackRecorder(engine)]
        faces = []
        for i, consumer in enumerate(consumers):
            c_face = Face(consumer, f"c{i}")
            Link(engine, c_face, router.create_face(), FixedDelay(1.0),
                 np.random.default_rng(i))
            faces.append(c_face)
        p_face = Face(NackingProducer(), "p")
        r_up = router.create_face("up")
        Link(engine, r_up, p_face, FixedDelay(5.0), np.random.default_rng(9))
        router.fib.add_route(Name.root(), r_up)
        for c_face in faces:
            c_face.send_interest(Interest(name=Name.parse("/a")))
        engine.run()
        assert router.pit.collapsed == 1
        for consumer in consumers:
            assert len(consumer.nacks) == 1

    def test_nack_without_pit_entry_is_counted_and_dropped(self, engine):
        router, consumer, c_face = build(engine, SilentProducer())
        router.receive_nack(
            Nack(name=Name.parse("/never/asked")), router.faces[1]
        )
        engine.run()
        assert router.monitor.counter("nack_no_pit") == 1
        assert consumer.nacks == []

    def test_legacy_handler_without_receive_nack_keeps_working(self, engine):
        legacy = LegacyRecorder()
        router = Forwarder(engine, "R", pit=Pit(capacity=1, overflow="drop-new"))
        c_face = Face(legacy, "c")
        link = Link(engine, c_face, router.create_face(), FixedDelay(1.0),
                    np.random.default_rng(0))
        p_face = Face(SilentProducer(), "p")
        r_up = router.create_face("up")
        Link(engine, r_up, p_face, FixedDelay(5.0), np.random.default_rng(1))
        router.fib.add_route(Name.root(), r_up)
        c_face.send_interest(Interest(name=Name.parse("/a")))
        c_face.send_interest(Interest(name=Name.parse("/b")))
        engine.run(until=50.0)
        # The Nack for /b died at the link, visibly, and nothing crashed.
        assert link.nacks_unhandled == 1
        assert router.monitor.counter("pit_overflow_drop") == 1


class TestConsumerBackoff:
    def net(self, nack_on_no_route=True):
        net = Network(rng=RngRegistry(3))
        net.add_router("R", nack_on_no_route=nack_on_no_route)
        net.add_consumer("c")
        net.connect("c", "R", FixedDelay(1.0))
        return net

    def test_fetch_backs_off_on_nack_and_exhausts_budget(self):
        net = self.net()
        outcome = {}

        def proc():
            result = yield from net["c"].fetch(
                "/nowhere/x",
                retry=RetryPolicy(retries=2, timeout=50.0, backoff=2.0),
            )
            outcome["result"] = result
            outcome["time"] = net.engine.now

        net.spawn(proc(), "fetcher")
        net.run()
        assert outcome["result"] is None
        consumer = net["c"].monitor
        assert consumer.counter("fetch_nacked") == 3  # every attempt refused
        assert consumer.counter("nacks_received") == 3
        assert consumer.counter("fetch_failures") == 1
        # Each Nacked attempt waits out its full backoff window before
        # retrying: 50 + 100 + 200 ms, plus the 2 ms Nack round trips.
        assert outcome["time"] >= 350.0

    def test_unsolicited_nack_counted(self):
        net = self.net()
        consumer = net["c"]
        consumer.receive_nack(
            Nack(name=Name.parse("/never/asked")), consumer.face
        )
        assert consumer.monitor.counter("unsolicited_nack") == 1


class TestStatsSummary:
    def test_summary_mirrors_state_and_pushes_gauges(self, engine):
        router, consumer, c_face = build(
            engine, SilentProducer(), pit=Pit(capacity=2, overflow="drop-new")
        )
        for name in ("/a", "/b", "/c"):
            c_face.send_interest(Interest(name=Name.parse(name)))
        engine.run(until=50.0)
        summary = router.stats_summary()
        assert summary["pit_size"] == 2.0
        assert summary["pit_capacity"] == 2.0
        assert summary["pit_overflow_dropped"] == 1.0
        assert summary["nack_out"] == 1.0
        for key, value in summary.items():
            assert router.monitor.gauge(key) == value

    def test_unbounded_tables_report_infinite_capacity(self, engine):
        router = Forwarder(engine, "R")
        summary = router.stats_summary()
        assert summary["pit_capacity"] == float("inf")
        assert summary["cs_capacity"] == float("inf")
