"""Tests for the NDN TLV wire codec."""

from __future__ import annotations

import pytest

from repro.ndn.errors import PacketError
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest
from repro.ndn.wire import (
    decode_name,
    decode_packet,
    decode_var_number,
    encode_name,
    encode_packet,
    encode_var_number,
    iter_tlvs,
    wire_size,
)


class TestVarNumbers:
    @pytest.mark.parametrize("value", [0, 1, 252, 253, 254, 255, 65535,
                                       65536, 2**32 - 1, 2**32, 2**60])
    def test_roundtrip(self, value):
        encoded = encode_var_number(value)
        decoded, offset = decode_var_number(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    def test_short_form_is_one_byte(self):
        assert len(encode_var_number(252)) == 1
        assert len(encode_var_number(253)) == 3

    def test_negative_rejected(self):
        with pytest.raises(PacketError):
            encode_var_number(-1)

    def test_truncated_rejected(self):
        with pytest.raises(PacketError):
            decode_var_number(b"", 0)
        with pytest.raises(PacketError):
            decode_var_number(b"\xfd\x01", 0)  # needs 2 more bytes


class TestNameCodec:
    @pytest.mark.parametrize("uri", ["/", "/a", "/cnn/news/2013may20",
                                     "/youtube/alice/video-749.avi/137"])
    def test_roundtrip(self, uri):
        name = Name.parse(uri)
        encoded = encode_name(name)
        tlvs = list(iter_tlvs(encoded))
        assert len(tlvs) == 1
        assert decode_name(tlvs[0][1]) == name

    def test_unicode_components(self):
        name = Name(("café", "日本"))
        tlvs = list(iter_tlvs(encode_name(name)))
        assert decode_name(tlvs[0][1]) == name

    def test_foreign_tlv_inside_name_rejected(self):
        from repro.ndn.wire import _tlv, TLV_NAME

        bogus = _tlv(0x63, b"junk")
        with pytest.raises(PacketError):
            decode_name(bogus)


class TestInterestCodec:
    def test_minimal_roundtrip(self):
        interest = Interest(name=Name.parse("/a/b"))
        decoded = decode_packet(encode_packet(interest))
        assert isinstance(decoded, Interest)
        assert decoded.name == interest.name
        assert decoded.nonce == interest.nonce
        assert decoded.scope is None
        assert not decoded.private
        assert decoded.hops == 1

    def test_full_roundtrip(self):
        interest = Interest(
            name=Name.parse("/x/y/z"), scope=2, private=True,
            lifetime=250.0, hops=3,
        )
        decoded = decode_packet(encode_packet(interest))
        assert decoded.scope == 2
        assert decoded.private
        assert decoded.lifetime == 250.0
        assert decoded.hops == 3

    def test_missing_name_rejected(self):
        from repro.ndn.wire import _tlv, TLV_INTEREST, TLV_NONCE

        body = _tlv(TLV_NONCE, b"\x01")
        with pytest.raises(PacketError, match="missing Name"):
            decode_packet(_tlv(TLV_INTEREST, body))

    def test_unknown_fields_skipped(self):
        from repro.ndn.wire import _tlv, TLV_INTEREST, TLV_NAME, TLV_NONCE
        from repro.ndn.wire import encode_name as en

        body = en(Name.parse("/a")) + _tlv(TLV_NONCE, b"\x07") + _tlv(0x90, b"??")
        decoded = decode_packet(_tlv(TLV_INTEREST, body))
        assert decoded.name == Name.parse("/a")
        assert decoded.nonce == 7


class TestDataCodec:
    def test_minimal_roundtrip(self):
        data = Data(name=Name.parse("/a"))
        decoded = decode_packet(encode_packet(data))
        assert isinstance(decoded, Data)
        assert decoded == data

    def test_full_roundtrip(self):
        data = Data(
            name=Name.parse("/alice/skype/0/deadbeef"),
            producer="alice",
            private=True,
            size=4096,
            freshness=1500.0,
            exact_match_only=True,
        )
        assert decode_packet(encode_packet(data)) == data

    def test_zero_size(self):
        data = Data(name=Name.parse("/a"), size=0)
        assert decode_packet(encode_packet(data)).size == 0


class TestTopLevel:
    def test_unknown_type_rejected(self):
        from repro.ndn.wire import _tlv

        with pytest.raises(PacketError, match="unknown top-level"):
            decode_packet(_tlv(0x42, b""))

    def test_trailing_garbage_rejected(self):
        encoded = encode_packet(Interest(name=Name.parse("/a")))
        with pytest.raises(PacketError):
            decode_packet(encoded + encoded)

    def test_overrun_length_rejected(self):
        encoded = bytearray(encode_packet(Interest(name=Name.parse("/a"))))
        encoded[1] += 5  # inflate the claimed length
        with pytest.raises(PacketError):
            decode_packet(bytes(encoded))

    def test_wire_size_reasonable(self):
        interest = Interest(name=Name.parse("/cnn/news"))
        assert 15 < wire_size(interest) < 60

    def test_non_packet_rejected(self):
        with pytest.raises(PacketError):
            encode_packet("not a packet")  # type: ignore[arg-type]


class TestFastWireSize:
    """fast_wire_size must equal wire_size bit-for-bit on every packet
    shape — bytes_sent is an observable statistic of the simulator."""

    def test_interest_field_grid(self):
        from repro.ndn.wire import fast_wire_size

        names = [Name.parse("/"), Name.parse("/a"),
                 Name.parse("/cnn/news/2013may20"), Name(("café", "日本"))]
        # Nonces straddling every var-int byte-length boundary.
        nonces = [0, 1, 255, 256, 65535, 65536, 2**24, 2**32 - 1, 2**32]
        for name in names:
            for nonce in nonces:
                for scope in (None, 1, 2, 300):
                    for private in (False, True):
                        for hops in (1, 254, 70000):
                            packet = Interest(
                                name=name, nonce=nonce, scope=scope,
                                private=private, lifetime=4000.0, hops=hops,
                            )
                            assert fast_wire_size(packet) == wire_size(packet)

    def test_data_field_grid(self):
        from repro.ndn.wire import fast_wire_size

        for name in (Name.parse("/a/b"), Name(("日本", "x"))):
            for producer in ("p", "producer-with-longer-id", "日本"):
                for size in (0, 1, 1024, 2**20):
                    for private in (False, True):
                        for freshness in (None, 0.5, 5000.0):
                            for exact in (False, True):
                                packet = Data(
                                    name=name, producer=producer, size=size,
                                    private=private, freshness=freshness,
                                    exact_match_only=exact,
                                )
                                assert fast_wire_size(packet) == wire_size(packet)

    def test_nack_parity(self):
        from repro.ndn.packets import Nack
        from repro.ndn.wire import fast_wire_size

        for nonce in (0, 255, 256, 2**32):
            for reason in ("congestion", "no-route", "pit-full"):
                for hops in (1, 300):
                    packet = Nack(
                        name=Name.parse("/x/y"), nonce=nonce,
                        reason=reason, hops=hops,
                    )
                    assert fast_wire_size(packet) == wire_size(packet)

    def test_randomized_interests(self):
        import random

        from repro.ndn.wire import fast_wire_size

        rng = random.Random(7)
        for _ in range(300):
            depth = rng.randint(0, 5)
            name = Name(tuple(
                "c" * rng.randint(1, 12) for _ in range(depth)
            ))
            packet = Interest(
                name=name,
                nonce=rng.randrange(2**rng.choice([1, 8, 16, 32, 40])),
                scope=rng.choice([None, rng.randint(1, 500)]),
                private=rng.random() < 0.5,
                lifetime=rng.choice([0.5, 500.0, 4000.0, 1e6]),
                hops=rng.randint(1, 10**6),
            )
            assert fast_wire_size(packet) == wire_size(packet)

    def test_unsizeable_rejected(self):
        from repro.ndn.wire import fast_wire_size

        with pytest.raises(PacketError):
            fast_wire_size("not a packet")  # type: ignore[arg-type]

    def test_cache_clear_keeps_parity(self):
        from repro.ndn.wire import clear_size_caches, fast_wire_size

        packet = Interest(name=Name.parse("/clear/test"))
        first = fast_wire_size(packet)
        clear_size_caches()
        assert fast_wire_size(packet) == first == wire_size(packet)
