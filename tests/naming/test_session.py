"""Unit tests for interactive-session naming."""

from __future__ import annotations

import pytest

from repro.naming.session import SessionNamer
from repro.ndn.name import Name

SECRET = b"alice-and-bob"


def pair():
    alice = SessionNamer(SECRET, "/alice/voip", "/bob/voip")
    bob = SessionNamer(SECRET, "/bob/voip", "/alice/voip")
    return alice, bob


class TestSessionNamer:
    def test_endpoints_agree_on_names(self):
        alice, bob = pair()
        # Bob predicts Alice's outgoing frame names and vice versa.
        assert bob.incoming_name(0) == alice.outgoing_name(0)
        assert alice.incoming_name(5) == bob.outgoing_name(5)

    def test_next_outgoing_advances(self):
        alice, _ = pair()
        first = alice.next_outgoing_name()
        second = alice.next_outgoing_name()
        assert first != second
        assert alice.sent_frames == 2
        assert first == alice.outgoing_name(0)

    def test_outgoing_name_does_not_advance(self):
        alice, _ = pair()
        alice.outgoing_name(9)
        assert alice.sent_frames == 0

    def test_names_under_correct_prefixes(self):
        alice, _ = pair()
        assert Name.parse("/alice/voip").is_prefix_of(alice.outgoing_name(0))
        assert Name.parse("/bob/voip").is_prefix_of(alice.incoming_name(0))

    def test_verify_own_and_peer_names(self):
        alice, bob = pair()
        assert alice.verify(bob.outgoing_name(3))
        assert bob.verify(alice.outgoing_name(3))

    def test_outsider_cannot_forge(self):
        alice, _ = pair()
        outsider = SessionNamer(b"wrong", "/alice/voip", "/bob/voip")
        assert not alice.verify(outsider.outgoing_name(0))

    def test_distinct_sessions_distinct_names(self):
        session1 = SessionNamer(b"s1", "/alice/voip", "/bob/voip")
        session2 = SessionNamer(b"s2", "/alice/voip", "/bob/voip")
        assert session1.outgoing_name(0) != session2.outgoing_name(0)

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            SessionNamer(b"", "/a", "/b")
