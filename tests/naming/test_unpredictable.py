"""Unit tests for unpredictable name derivation."""

from __future__ import annotations

import pytest

from repro.naming.unpredictable import (
    RAND_LENGTH,
    derive_rand,
    make_unpredictable_name,
    verify_unpredictable_name,
)
from repro.ndn.name import Name


SECRET = b"shared-session-secret"


class TestDeriveRand:
    def test_deterministic(self):
        base = Name.parse("/alice/skype")
        assert derive_rand(SECRET, base, 0) == derive_rand(SECRET, base, 0)

    def test_varies_with_sequence(self):
        base = Name.parse("/alice/skype")
        assert derive_rand(SECRET, base, 0) != derive_rand(SECRET, base, 1)

    def test_varies_with_secret(self):
        base = Name.parse("/alice/skype")
        assert derive_rand(SECRET, base, 0) != derive_rand(b"other", base, 0)

    def test_varies_with_base_name(self):
        assert derive_rand(SECRET, Name.parse("/a"), 0) != derive_rand(
            SECRET, Name.parse("/b"), 0
        )

    def test_length(self):
        assert len(derive_rand(SECRET, Name.parse("/a"), 0)) == RAND_LENGTH

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            derive_rand(b"", Name.parse("/a"), 0)

    def test_negative_sequence_rejected(self):
        with pytest.raises(ValueError):
            derive_rand(SECRET, Name.parse("/a"), -1)


class TestMakeAndVerify:
    def test_layout(self):
        name = make_unpredictable_name(SECRET, "/alice/skype", 7)
        assert len(name) == 4
        assert name.prefix(2) == Name.parse("/alice/skype")
        assert name[2] == "7"

    def test_roundtrip_verification(self):
        name = make_unpredictable_name(SECRET, "/alice/skype", 3)
        assert verify_unpredictable_name(SECRET, name)

    def test_wrong_secret_fails_verification(self):
        name = make_unpredictable_name(SECRET, "/alice/skype", 3)
        assert not verify_unpredictable_name(b"eavesdropper-guess", name)

    def test_tampered_rand_fails(self):
        name = make_unpredictable_name(SECRET, "/alice/skype", 3)
        forged = name.parent().append("0" * RAND_LENGTH)
        assert not verify_unpredictable_name(SECRET, forged)

    def test_tampered_sequence_fails(self):
        name = make_unpredictable_name(SECRET, "/alice/skype", 3)
        forged = Name.parse("/alice/skype").append("4", name.last)
        assert not verify_unpredictable_name(SECRET, forged)

    def test_short_names_rejected(self):
        assert not verify_unpredictable_name(SECRET, Name.parse("/a/b"))

    def test_non_numeric_sequence_rejected(self):
        assert not verify_unpredictable_name(
            SECRET, Name.parse("/a/not-a-number/deadbeef")
        )

    def test_negative_sequence_component_rejected(self):
        assert not verify_unpredictable_name(
            SECRET, Name.parse("/a/-3/deadbeef")
        )
