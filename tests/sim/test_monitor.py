"""Unit tests for the measurement monitor."""

from __future__ import annotations

import math

import pytest

from repro.sim.monitor import Monitor


class TestCounters:
    def test_counter_starts_at_zero(self):
        assert Monitor().counter("anything") == 0

    def test_count_increments(self):
        m = Monitor()
        m.count("hits")
        m.count("hits", 2)
        assert m.counter("hits") == 3

    def test_counters_snapshot(self):
        m = Monitor()
        m.count("a")
        m.count("b", 5)
        assert m.counters == {"a": 1, "b": 5}


class TestSeries:
    def test_record_and_values(self):
        m = Monitor()
        m.record("rtt", 1.0, 3.5)
        m.record("rtt", 2.0, 4.5)
        assert list(m.values("rtt")) == [3.5, 4.5]
        assert list(m.times("rtt")) == [1.0, 2.0]

    def test_series_names_only_nonempty(self):
        m = Monitor()
        m.record("x", 0.0, 1.0)
        assert m.series_names == ["x"]

    def test_summary_statistics(self):
        m = Monitor()
        for v in (1.0, 2.0, 3.0):
            m.record("s", 0.0, v)
        summary = m.summary("s")
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_summary_of_empty_series(self):
        summary = Monitor().summary("missing")
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_summary_single_sample_zero_std(self):
        m = Monitor()
        m.record("one", 0.0, 5.0)
        assert m.summary("one").std == 0.0

    def test_summary_str_contains_stats(self):
        m = Monitor()
        m.record("s", 0.0, 1.0)
        text = str(m.summary("s"))
        assert "s:" in text and "n=1" in text


class TestMerge:
    def test_merge_combines_counters_and_series(self):
        a, b = Monitor(), Monitor()
        a.count("hits", 2)
        b.count("hits", 3)
        b.count("misses")
        a.record("rtt", 0.0, 1.0)
        b.record("rtt", 1.0, 2.0)
        a.merge(b)
        assert a.counter("hits") == 5
        assert a.counter("misses") == 1
        assert list(a.values("rtt")) == [1.0, 2.0]


class TestGauges:
    def test_gauge_defaults_when_never_set(self):
        m = Monitor()
        assert m.gauge("pit_size") == 0.0
        assert m.gauge("pit_size", default=7.5) == 7.5

    def test_set_gauge_overwrites(self):
        m = Monitor()
        m.set_gauge("pit_size", 3)
        m.set_gauge("pit_size", 5.0)
        assert m.gauge("pit_size") == 5.0

    def test_set_gauge_coerces_to_float(self):
        m = Monitor()
        m.set_gauge("cs_size", 4)
        assert isinstance(m.gauge("cs_size"), float)

    def test_gauges_snapshot_is_a_copy(self):
        m = Monitor()
        m.set_gauge("a", 1.0)
        snapshot = m.gauges
        snapshot["a"] = 99.0
        assert m.gauge("a") == 1.0

    def test_merge_latest_snapshot_wins(self):
        a, b = Monitor(), Monitor()
        a.set_gauge("pit_size", 1.0)
        a.set_gauge("only_a", 2.0)
        b.set_gauge("pit_size", 9.0)
        a.merge(b)
        assert a.gauge("pit_size") == 9.0
        assert a.gauge("only_a") == 2.0
