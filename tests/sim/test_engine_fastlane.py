"""Determinism tests for the engine's fire-and-forget fast lane.

The fast lane (:meth:`Engine.schedule_fire_and_forget`) shares one
sequence counter with the regular cancellable lane, so interleaving the
two at equal timestamps must fire callbacks in exact insertion order —
the tie-break contract every bit-identity guarantee in the simulator
rests on.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Engine
from repro.sim.errors import ClockError


class TestFireAndForget:
    def test_runs_callback_at_time(self):
        engine = Engine()
        seen = []
        engine.schedule_fire_and_forget(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]

    def test_args_passed_through(self):
        engine = Engine()
        seen = []
        engine.schedule_fire_and_forget(1.0, seen.append, "payload")
        engine.run()
        assert seen == ["payload"]

    def test_negative_delay_raises(self):
        with pytest.raises(ClockError):
            Engine().schedule_fire_and_forget(-0.1, lambda: None)

    def test_returns_no_handle(self):
        assert Engine().schedule_fire_and_forget(1.0, lambda: None) is None


class TestInterleavedTieOrder:
    def test_equal_timestamps_fire_in_insertion_order(self):
        """Alternating lanes at one timestamp: strict insertion order."""
        engine = Engine()
        fired = []
        for i in range(10):
            if i % 2 == 0:
                engine.schedule(3.0, fired.append, i)
            else:
                engine.schedule_fire_and_forget(3.0, fired.append, i)
        engine.run()
        assert fired == list(range(10))

    def test_fast_lane_respects_earlier_slow_lane(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "slow")
        engine.schedule_fire_and_forget(1.0, fired.append, "fast")
        engine.schedule(1.0, fired.append, "slow2")
        engine.run()
        assert fired == ["slow", "fast", "slow2"]

    def test_cancel_between_fast_lane_entries(self):
        """A cancelled slow-lane event must not disturb fast-lane order."""
        engine = Engine()
        fired = []
        engine.schedule_fire_and_forget(2.0, fired.append, 0)
        handle = engine.schedule(2.0, fired.append, "cancelled")
        engine.schedule_fire_and_forget(2.0, fired.append, 1)
        handle.cancel()
        engine.run()
        assert fired == [0, 1]


class TestPendingCount:
    def test_counts_both_lanes(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.schedule_fire_and_forget(2.0, lambda: None)
        assert engine.pending_count == 2

    def test_exact_across_fire_and_cancel(self):
        engine = Engine()
        handle = engine.schedule(5.0, lambda: None)
        engine.schedule_fire_and_forget(1.0, lambda: None)
        engine.schedule_fire_and_forget(2.0, lambda: None)
        assert engine.pending_count == 3
        engine.run(until=1.5)
        assert engine.pending_count == 2
        handle.cancel()
        assert engine.pending_count == 1
        engine.run()
        assert engine.pending_count == 0

    def test_step_drains_both_lanes(self):
        engine = Engine()
        fired = []
        engine.schedule_fire_and_forget(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        assert engine.step() and engine.step()
        assert not engine.step()
        assert fired == ["a", "b"]
        assert engine.pending_count == 0


class TestRandomInterleavings:
    """Property-style: any seeded interleaving of the two lanes fires in
    (time, insertion) order, and pending_count stays exact throughout."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_order_matches_reference(self, seed):
        rng = random.Random(seed)
        engine = Engine()
        fired = []
        expected = []  # (time, insertion index)
        cancelled = set()
        handles = {}
        for i in range(200):
            delay = rng.choice([0.0, 1.0, 1.0, 2.5, 7.0])
            if rng.random() < 0.5:
                engine.schedule_fire_and_forget(delay, fired.append, i)
            else:
                handles[i] = engine.schedule(delay, fired.append, i)
            expected.append((delay, i))
        # Cancel a random subset of the cancellable ones.
        for i, handle in handles.items():
            if rng.random() < 0.3:
                handle.cancel()
                cancelled.add(i)
        want = [
            i
            for _, i in sorted(
                (entry for entry in expected if entry[1] not in cancelled),
                key=lambda entry: (entry[0], entry[1]),
            )
        ]
        assert engine.pending_count == 200 - len(cancelled)
        engine.run()
        assert fired == want
        assert engine.pending_count == 0
        assert engine.events_processed == len(want)
