"""Calendar-queue determinism: heap-identical ``(time, seq)`` ordering.

The batch kernel's correctness rests on :class:`CalendarQueue` popping
entries in exactly the order a ``heapq`` over the same tuples would —
including ties at equal timestamps (broken by the monotonic ``seq``) and
lazy cancellation.  The property suite drives both structures through
random interleaved schedule/cancel programs, biased toward equal
timestamps and far-future overflow entries, and asserts identical drain
order.
"""

from __future__ import annotations

import heapq

from hypothesis import given, settings, strategies as st

from repro.sim.calendar import CalendarQueue

# One program step: (delay-bucket choice, cancel-target fraction or None).
# Delays mix three regimes: zero (same-time ties), near (wheel slots),
# and far (the overflow heap beyond the wheel horizon).
steps = st.lists(
    st.tuples(
        st.sampled_from([0.0, 0.25, 1.0, 3.5, 7.0, 1500.0, 8000.0]),
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0)),
    ),
    min_size=1,
    max_size=200,
)


def run_program(program, bucket_width=1.0, n_slots=8):
    """Execute one schedule/cancel program against both structures.

    A tiny wheel (8 slots) forces heavy wrap-around and overflow-heap
    traffic at small scale.  Returns (calendar_order, heap_order).
    """
    cal = CalendarQueue(bucket_width=bucket_width, n_slots=n_slots)
    heap = []
    cancelled = set()
    live = []  # seqs currently queued in both structures
    seq = 0
    clock = 0.0
    cal_out, heap_out = [], []

    def pop_heap():
        while heap:
            entry = heapq.heappop(heap)
            if entry[1] in cancelled:
                cancelled.discard(entry[1])
                continue
            return entry
        return None

    for delay, cancel_frac in program:
        if cancel_frac is not None and live:
            victim = live.pop(int(cancel_frac * (len(live) - 1)))
            cal.cancel(victim)
            cancelled.add(victim)
        else:
            entry = (clock + delay, seq, "payload", seq)
            cal.push(entry)
            heapq.heappush(heap, entry)
            live.append(seq)
            seq += 1
        # Interleave pops so the clock advances mid-program (events may
        # be scheduled relative to partially drained state).
        if len(live) > 4:
            a, b = cal.pop(), pop_heap()
            assert a == b
            clock = a[0]
            live.remove(a[1])
            cal_out.append(a)
            heap_out.append(b)

    while True:
        a, b = cal.pop(), pop_heap()
        assert a == b
        if a is None:
            break
        cal_out.append(a)
        heap_out.append(b)
    assert len(cal) == 0
    return cal_out, heap_out


@given(steps)
@settings(max_examples=200, deadline=None)
def test_calendar_matches_heap_under_random_programs(program):
    cal_out, heap_out = run_program(program)
    assert cal_out == heap_out


@given(steps, st.sampled_from([0.5, 1.0, 4.0]), st.sampled_from([2, 8, 64]))
@settings(max_examples=100, deadline=None)
def test_calendar_matches_heap_across_geometries(program, width, n_slots):
    cal_out, heap_out = run_program(program, bucket_width=width, n_slots=n_slots)
    assert cal_out == heap_out


def test_equal_time_ties_break_by_seq():
    cal = CalendarQueue()
    entries = [(5.0, seq, f"p{seq}") for seq in (3, 1, 4, 0, 2)]
    for entry in entries:
        cal.push(entry)
    assert [cal.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]
    assert cal.pop() is None


def test_cancel_is_lazy_and_size_accurate():
    cal = CalendarQueue()
    cal.push((1.0, 0))
    cal.push((2.0, 1))
    cal.push((3.0, 2))
    assert len(cal) == 3
    cal.cancel(1)
    assert len(cal) == 2
    assert [cal.pop()[1] for _ in range(2)] == [0, 2]
    assert cal.pop() is None


def test_overflow_clock_jump():
    # Everything lands far beyond the wheel horizon: popping must jump
    # the clock through the overflow heap without scanning empty slots.
    cal = CalendarQueue(bucket_width=1.0, n_slots=4)
    cal.push((10_000.0, 0))
    cal.push((50_000.0, 1))
    cal.push((10_000.0, 2))  # same far bucket, later seq
    assert cal.pop() == (10_000.0, 0)
    assert cal.pop() == (10_000.0, 2)
    assert cal.pop() == (50_000.0, 1)
    assert cal.pop() is None


def test_constructor_validation():
    import pytest

    with pytest.raises(ValueError):
        CalendarQueue(bucket_width=0.0)
    with pytest.raises(ValueError):
        CalendarQueue(n_slots=1)
