"""Unit tests for the named random-stream registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.errors import RngError
from repro.sim.rng import RngRegistry


class TestStreamIdentity:
    def test_same_name_returns_same_generator(self, registry):
        assert registry.stream("a") is registry.stream("a")

    def test_different_names_different_generators(self, registry):
        assert registry.stream("a") is not registry.stream("b")

    def test_empty_name_rejected(self, registry):
        with pytest.raises(RngError):
            registry.stream("")

    def test_non_int_seed_rejected(self):
        with pytest.raises(RngError):
            RngRegistry(root_seed="nope")  # type: ignore[arg-type]


class TestReproducibility:
    def test_same_seed_same_draws(self):
        a = RngRegistry(1).stream("link").random(5)
        b = RngRegistry(1).stream("link").random(5)
        assert np.array_equal(a, b)

    def test_different_seed_different_draws(self):
        a = RngRegistry(1).stream("link").random(5)
        b = RngRegistry(2).stream("link").random(5)
        assert not np.array_equal(a, b)

    def test_different_streams_are_independent(self):
        reg = RngRegistry(1)
        a = reg.stream("alpha").random(5)
        b = reg.stream("beta").random(5)
        assert not np.array_equal(a, b)

    def test_stream_isolation_from_consumption_order(self):
        # Draw order on one stream must not affect another stream's values.
        reg1 = RngRegistry(1)
        reg1.stream("noise").random(100)
        value_after = reg1.stream("signal").random()

        reg2 = RngRegistry(1)
        value_direct = reg2.stream("signal").random()
        assert value_after == value_direct

    def test_fork_does_not_advance_cached_stream(self):
        reg = RngRegistry(3)
        fork_draw = reg.fork("mc").random()
        cached_draw = reg.stream("mc").random()
        assert fork_draw == cached_draw  # fork starts from the same state

    def test_fork_is_fresh_each_time(self):
        reg = RngRegistry(3)
        assert reg.fork("mc").random() == reg.fork("mc").random()


class TestIntrospection:
    def test_stream_names_sorted(self, registry):
        registry.stream("z")
        registry.stream("a")
        assert registry.stream_names == ["a", "z"]

    def test_fork_not_recorded(self, registry):
        registry.fork("ghost")
        assert registry.stream_names == []
