"""Batch kernel vs reference engine: parity and fallback transparency."""

from __future__ import annotations

import pytest

from repro.ndn.link import FixedDelay, GaussianJitterDelay, LogNormalDelay
from repro.ndn.network import Network
from repro.perf.simcore import (
    run_star,
    run_star_batch,
    run_tree,
    run_tree_batch,
)
from repro.sim.batch import (
    BatchCompileError,
    ConsumerScript,
    FetchStep,
    SleepStep,
    diff_observables,
    run_scripts,
    run_scripts_batch,
    run_scripts_reference,
)
from repro.sim.rng import RngRegistry


def small_star(seed=0, loss_rate=0.0, consumers=3, capacity=4):
    net = Network(rng=RngRegistry(seed))
    net.add_router("R", capacity=capacity)
    net.add_producer("P", "/content")
    net.connect(
        "R",
        "P",
        LogNormalDelay(base=1.0, tail_scale=0.7, sigma=0.8),
        loss_rate=loss_rate,
    )
    net.add_route("R", "/content", "P")
    names = []
    for j in range(consumers):
        name = f"C{j}"
        net.add_consumer(name)
        net.connect(
            name, "R", GaussianJitterDelay(base=1.8, jitter_std=0.12, floor=1.5)
        )
        names.append(name)
    return net, names


def star_scripts(names, requests=12, universe=6, timeout=4000.0):
    return [
        ConsumerScript(
            consumer=name,
            steps=tuple(
                FetchStep(
                    f"/content/obj-{(i * 3 + j) % universe}",
                    timeout=timeout,
                    private=((i + j) % 3 == 0),
                )
                for i in range(requests)
            )
            + (SleepStep(1.5),),
        )
        for j, name in enumerate(names)
    ]


def test_star_parity_bit_identical():
    net, names = small_star()
    oracle = run_scripts_reference(net, star_scripts(names))
    net, names = small_star()
    batch = run_scripts_batch(net, star_scripts(names))
    assert batch.kernel == "batch"
    assert oracle.kernel == "reference"
    assert diff_observables(oracle, batch) == []
    assert batch.total_delivered == 3 * 12
    assert batch.end_time == oracle.end_time  # full float precision


def test_tree_parity_with_timeouts_and_retransmission():
    def build():
        net = Network(rng=RngRegistry(3))
        net.add_producer("P", "/content", processing_delay=0.4)
        net.add_router("R0", capacity=3, processing_delay=0.2)
        net.connect("R0", "P", FixedDelay(1.0))
        net.add_route("R0", "/content", "P")
        names = []
        for a in range(2):
            leaf = f"R1-{a}"
            net.add_router(leaf, capacity=3)
            net.connect(leaf, "R0", FixedDelay(0.5))
            net.add_route(leaf, "/content", "R0")
            for c in range(2):
                name = f"C{a}{c}"
                net.add_consumer(name)
                net.connect(name, leaf, FixedDelay(0.3))
                names.append(name)
        # A 2.4 ms budget is below the >=5.2 ms first-fetch RTT: every
        # consumer times out and refetches, exercising PIT expiry and
        # the in-PIT retransmission path on both engines.
        return net, star_scripts(names, requests=10, universe=5, timeout=2.4)

    net, scripts = build()
    oracle = run_scripts_reference(net, scripts)
    net, scripts = build()
    batch = run_scripts_batch(net, scripts)
    assert diff_observables(oracle, batch) == []
    # Timed-out fetches leave gaps, and the refetch collapses onto the
    # still-pending PIT entry — the race both engines must break alike.
    assert oracle.total_delivered < 4 * 10
    assert oracle.router_counters["R0"].get("pit_collapse", 0) > 0


def test_auto_falls_back_transparently_on_lossy_link():
    net, names = small_star(loss_rate=0.1)
    scripts = star_scripts(names, requests=4)
    obs = run_scripts(net, scripts, kernel="auto")
    # The unsupported combination silently takes the oracle path, and
    # the observables say so rather than pretending it was batched.
    assert obs.kernel == "reference"
    assert obs.total_delivered > 0


def test_batch_kernel_raises_on_unsupported_topology():
    net, names = small_star(loss_rate=0.1)
    scripts = star_scripts(names, requests=4)
    with pytest.raises(BatchCompileError, match="loss"):
        run_scripts_batch(net, scripts)


def test_shared_scheme_instance_is_rejected():
    from repro.core.schemes.uniform import UniformRandomCache
    import numpy as np

    shared = UniformRandomCache(K=4, rng=np.random.default_rng(0))
    net = Network(rng=RngRegistry(0))
    net.add_router("R0", capacity=4, scheme=shared)
    net.add_router("R1", capacity=4, scheme=shared)
    net.add_producer("P", "/content")
    net.add_consumer("C")
    net.connect("C", "R0", FixedDelay(0.5))
    net.connect("R0", "R1", FixedDelay(0.5))
    net.connect("R1", "P", FixedDelay(0.5))
    net.add_route("R0", "/content", "R1")
    net.add_route("R1", "/content", "P")
    scripts = [ConsumerScript("C", (FetchStep("/content/obj-0"),))]
    with pytest.raises(BatchCompileError, match="shared"):
        run_scripts_batch(net, scripts)
    # ... and the auto path still runs it on the reference engine.
    net_obs = run_scripts(net, scripts, kernel="auto")
    assert net_obs.kernel == "reference"
    assert net_obs.total_delivered == 1


def test_unknown_kernel_name_rejected():
    net, names = small_star()
    with pytest.raises(ValueError, match="unknown kernel"):
        run_scripts(net, star_scripts(names, requests=1), kernel="vector")


def test_simcore_batch_matches_reference_counts():
    ref = run_star(consumers=4, requests_per_consumer=25)
    fast = run_star_batch(consumers=4, requests_per_consumer=25)
    assert (fast.packet_hops, fast.events, fast.delivered, fast.cache_hits) == (
        ref.packet_hops,
        ref.events,
        ref.delivered,
        ref.cache_hits,
    )
    assert fast.sim_end_ms == ref.sim_end_ms

    ref = run_tree(requests_per_consumer=20)
    fast = run_tree_batch(requests_per_consumer=20)
    assert (fast.packet_hops, fast.events, fast.delivered, fast.cache_hits) == (
        ref.packet_hops,
        ref.events,
        ref.delivered,
        ref.cache_hits,
    )
    assert fast.sim_end_ms == ref.sim_end_ms
