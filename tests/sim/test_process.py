"""Unit tests for generator-based simulation processes."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.errors import ProcessError
from repro.sim.events import Signal
from repro.sim.process import TIMED_OUT, Timeout, WaitSignal


class TestTimeout:
    def test_timeout_advances_simulated_time(self, engine):
        times = []

        def proc():
            times.append(engine.now)
            yield Timeout(10.0)
            times.append(engine.now)
            yield Timeout(5.0)
            times.append(engine.now)

        engine.spawn(proc())
        engine.run()
        assert times == [0.0, 10.0, 15.0]

    def test_zero_timeout_allowed(self, engine):
        steps = []

        def proc():
            yield Timeout(0.0)
            steps.append(engine.now)

        engine.spawn(proc())
        engine.run()
        assert steps == [0.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ProcessError):
            Timeout(-1.0)


class TestWaitSignal:
    def test_receives_payload(self, engine):
        sig = Signal("data")
        got = []

        def waiter():
            value = yield WaitSignal(sig)
            got.append(value)

        engine.spawn(waiter())
        engine.schedule(3.0, sig.trigger, "hello")
        engine.run()
        assert got == ["hello"]

    def test_timeout_returns_sentinel(self, engine):
        sig = Signal("never")
        got = []

        def waiter():
            value = yield WaitSignal(sig, timeout=5.0)
            got.append(value)
            got.append(engine.now)

        engine.spawn(waiter())
        engine.run()
        assert got == [TIMED_OUT, 5.0]

    def test_signal_beats_timeout(self, engine):
        sig = Signal("fast")
        got = []

        def waiter():
            value = yield WaitSignal(sig, timeout=10.0)
            got.append(value)

        engine.spawn(waiter())
        engine.schedule(1.0, sig.trigger, "won")
        engine.run()
        assert got == ["won"]
        # Timeout timer must not resume the process a second time.
        assert engine.now >= 1.0

    def test_late_trigger_after_timeout_ignored(self, engine):
        sig = Signal("late")
        got = []

        def waiter():
            value = yield WaitSignal(sig, timeout=2.0)
            got.append(value)

        engine.spawn(waiter())
        engine.schedule(5.0, sig.trigger, "too-late")
        engine.run()
        assert got == [TIMED_OUT]

    def test_timed_out_sentinel_is_falsy_singleton(self):
        from repro.sim.process import _TimedOut

        assert not TIMED_OUT
        assert _TimedOut() is TIMED_OUT
        assert repr(TIMED_OUT) == "TIMED_OUT"


class TestProcessLifecycle:
    def test_result_captured_on_return(self, engine):
        def proc():
            yield Timeout(1.0)
            return "finished"

        process = engine.spawn(proc())
        engine.run()
        assert process.finished
        assert process.result == "finished"

    def test_done_signal_fires_with_result(self, engine):
        def proc():
            yield Timeout(1.0)
            return 99

        process = engine.spawn(proc())
        got = []
        process.done_signal.add_waiter(got.append)
        engine.run()
        assert got == [99]

    def test_unknown_command_raises(self, engine):
        def proc():
            yield "not-a-command"

        with pytest.raises(ProcessError):
            engine.spawn(proc())

    def test_immediate_return_process(self, engine):
        def proc():
            return "instant"
            yield  # pragma: no cover - makes this a generator

        process = engine.spawn(proc())
        assert process.finished
        assert process.result == "instant"

    def test_two_processes_interleave(self, engine):
        order = []

        def a():
            yield Timeout(1.0)
            order.append("a1")
            yield Timeout(2.0)
            order.append("a2")

        def b():
            yield Timeout(2.0)
            order.append("b1")

        engine.spawn(a())
        engine.spawn(b())
        engine.run()
        assert order == ["a1", "b1", "a2"]

    def test_delegation_with_yield_from(self, engine):
        log = []

        def inner():
            yield Timeout(1.0)
            return "inner-value"

        def outer():
            value = yield from inner()
            log.append(value)

        engine.spawn(outer())
        engine.run()
        assert log == ["inner-value"]
