"""Unit tests for Event and Signal primitives."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.errors import EventStateError
from repro.sim.events import Event, EventState, Signal


class TestEvent:
    def test_new_event_is_pending(self, engine):
        event = engine.schedule(1.0, lambda: None)
        assert event.pending
        assert event.state is EventState.PENDING

    def test_fired_event_state(self, engine):
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        assert event.state is EventState.FIRED
        assert not event.pending

    def test_cancel_pending(self, engine):
        event = engine.schedule(1.0, lambda: None)
        event.cancel()
        assert event.state is EventState.CANCELLED

    def test_cancel_twice_is_noop(self, engine):
        event = engine.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.state is EventState.CANCELLED

    def test_cancel_fired_raises(self, engine):
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(EventStateError):
            event.cancel()

    def test_ordering_by_time_then_seq(self):
        a = Event(1.0, 0, lambda: None)
        b = Event(1.0, 1, lambda: None)
        c = Event(0.5, 2, lambda: None)
        assert c < a < b


class TestSignal:
    def test_trigger_resumes_waiters(self):
        sig = Signal("s")
        seen = []
        sig.add_waiter(seen.append)
        sig.add_waiter(seen.append)
        sig.trigger("payload")
        assert seen == ["payload", "payload"]

    def test_waiter_added_after_trigger_resumes_immediately(self):
        sig = Signal("s")
        sig.trigger(42)
        seen = []
        sig.add_waiter(seen.append)
        assert seen == [42]

    def test_double_trigger_raises(self):
        sig = Signal("s")
        sig.trigger()
        with pytest.raises(EventStateError):
            sig.trigger()

    def test_trigger_records_time(self):
        sig = Signal("s")
        sig.trigger("x", time=12.5)
        assert sig.trigger_time == 12.5
        assert sig.payload == "x"

    def test_untriggered_state(self):
        sig = Signal("s")
        assert not sig.triggered
        assert sig.payload is None
