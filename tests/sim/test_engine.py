"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.errors import ClockError, SimulationError


class TestScheduling:
    def test_initial_time_is_zero(self, engine):
        assert engine.now == 0.0

    def test_custom_start_time(self):
        assert Engine(start_time=42.5).now == 42.5

    def test_schedule_runs_callback_at_delay(self, engine):
        seen = []
        engine.schedule(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]

    def test_schedule_passes_args(self, engine):
        seen = []
        engine.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "x")
        engine.run()
        assert seen == [(1, "x")]

    def test_schedule_at_absolute_time(self, engine):
        seen = []
        engine.schedule_at(7.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [7.0]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(ClockError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, engine):
        engine.schedule(10.0, lambda: None)
        engine.run()
        with pytest.raises(ClockError):
            engine.schedule_at(5.0, lambda: None)

    def test_zero_delay_runs_at_current_time(self, engine):
        seen = []
        engine.schedule(0.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.0]


class TestExecutionOrder:
    def test_events_run_in_time_order(self, engine):
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, engine):
        order = []
        for tag in "abcde":
            engine.schedule(1.0, order.append, tag)
        engine.run()
        assert order == list("abcde")

    def test_callback_can_schedule_more_events(self, engine):
        order = []

        def first():
            order.append("first")
            engine.schedule(1.0, lambda: order.append("nested"))

        engine.schedule(1.0, first)
        engine.run()
        assert order == ["first", "nested"]
        assert engine.now == 2.0

    def test_nested_event_at_same_time_runs(self, engine):
        order = []
        engine.schedule(1.0, lambda: engine.schedule(0.0, order.append, "x"))
        engine.run()
        assert order == ["x"]


class TestRunControl:
    def test_run_until_stops_clock_at_horizon(self, engine):
        engine.schedule(10.0, lambda: None)
        stopped = engine.run(until=5.0)
        assert stopped == 5.0
        assert engine.now == 5.0

    def test_run_until_leaves_future_events_pending(self, engine):
        seen = []
        engine.schedule(10.0, lambda: seen.append("late"))
        engine.run(until=5.0)
        assert seen == []
        engine.run()
        assert seen == ["late"]

    def test_run_until_past_queue_advances_clock(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run(until=100.0)
        assert engine.now == 100.0

    def test_max_events_limit(self, engine):
        seen = []
        for i in range(10):
            engine.schedule(float(i + 1), seen.append, i)
        engine.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_step_executes_single_event(self, engine):
        seen = []
        engine.schedule(1.0, seen.append, "a")
        engine.schedule(2.0, seen.append, "b")
        assert engine.step() is True
        assert seen == ["a"]

    def test_step_on_empty_queue_returns_false(self, engine):
        assert engine.step() is False

    def test_engine_not_reentrant(self, engine):
        failure = []

        def reenter():
            try:
                engine.run()
            except SimulationError:
                failure.append(True)

        engine.schedule(1.0, reenter)
        engine.run()
        assert failure == [True]

    def test_events_processed_counter(self, engine):
        for i in range(5):
            engine.schedule(float(i), lambda: None)
        engine.run()
        assert engine.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_run(self, engine):
        seen = []
        event = engine.schedule(1.0, seen.append, "x")
        event.cancel()
        engine.run()
        assert seen == []

    def test_cancel_between_events(self, engine):
        seen = []
        later = engine.schedule(5.0, seen.append, "late")
        engine.schedule(1.0, later.cancel)
        engine.run()
        assert seen == []

    def test_peek_skips_cancelled(self, engine):
        event = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        event.cancel()
        assert engine.peek() == 2.0

    def test_peek_empty_queue(self, engine):
        assert engine.peek() is None

    def test_pending_count_excludes_cancelled(self, engine):
        e1 = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        e1.cancel()
        assert engine.pending_count == 1

    def test_pending_count_tracks_fires_and_cancels(self, engine):
        events = [engine.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert engine.pending_count == 4
        engine.step()
        assert engine.pending_count == 3
        events[1].cancel()
        events[1].cancel()  # idempotent: no double decrement
        assert engine.pending_count == 2
        engine.run()
        assert engine.pending_count == 0

    def test_pending_count_with_reschedule_from_callback(self, engine):
        def chain(depth: int):
            if depth:
                engine.schedule(1.0, chain, depth - 1)

        engine.schedule(1.0, chain, 3)
        assert engine.pending_count == 1
        engine.run()
        assert engine.pending_count == 0
