"""Closed-loop acceptance and determinism tests (ROADMAP item 5).

The acceptance demo: under a seeded pollution attack the adaptive
defense alarms within a bounded attacker-request budget and restores the
honest edge hit rate to within 10% of the attack-free baseline.  The
determinism suite pins the defense loop's decisions bit-identical across
repeated runs — including under link chaos — and the transparency guard
proves installing a passive defense cannot perturb the data path.
"""

from __future__ import annotations

import pytest

from repro.defense import (
    DefenseConfig,
    DefenseScenarioSpec,
    defense_transparency_mismatches,
    install_defense,
    run_closed_loop,
    run_defense_scenario,
)
from repro.faults import (
    BurstLossWindow,
    CachePollutionWindow,
    DelaySpikeWindow,
    FaultSchedule,
)
from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry

#: The detection budget the pollution detector is configured for:
#: ``min_samples`` attacker requests lift the cold-start floor, and the
#: EWMA crosses threshold within a few dozen more.  150 gives headroom
#: without letting detection degrade silently.
DETECTION_BUDGET_REQUESTS = 150


class TestAcceptance:
    """The ISSUE's closed-loop demo, asserted end to end."""

    def test_adaptive_defense_restores_hit_rate_under_pollution(self):
        report = run_closed_loop(defense="adaptive", attack="pollution", seed=0)
        attacked = report.attacked
        # Detection: a pollution alarm inside the attack window, within
        # the bounded attacker-request budget.
        assert attacked.alarms >= 1
        assert attacked.detection_latency is not None
        assert (
            attacked.attacker_requests_before_alarm <= DETECTION_BUDGET_REQUESTS
        )
        # Mitigation engaged and acted.
        assert attacked.mitigations >= 1
        assert attacked.throttled > 0
        assert attacked.quarantined > 0
        # Utility restored: within 10% of the attack-free baseline.
        assert report.utility_metric == "edge_hit_rate"
        assert report.recovery_ratio >= 0.9
        # The loop never broke a conservation law.
        assert attacked.invariant_violations == 0
        assert report.baseline.invariant_violations == 0
        # And the baseline run never false-alarmed or mitigated.
        assert report.baseline.alarms == 0
        assert report.baseline.mitigations == 0

    def test_undefended_pollution_does_real_damage(self):
        off = run_closed_loop(defense="off", attack="pollution", seed=0)
        adaptive = run_closed_loop(defense="adaptive", attack="pollution", seed=0)
        assert off.attack_success > adaptive.attack_success
        # The damage the defense erases is substantial, not noise.
        assert off.attack_success >= 0.05

    def test_flood_detected_and_shed(self):
        report = run_closed_loop(defense="adaptive", attack="flood", seed=0)
        attacked = report.attacked
        assert report.utility_metric == "delivery_rate"
        assert attacked.detection_latency is not None
        assert attacked.shed > 0
        assert attacked.invariant_violations == 0
        assert report.recovery_ratio >= 0.9

    def test_adaptive_attacker_beats_static_defense_not_adaptive(self):
        report = run_closed_loop(defense="adaptive", attack="adaptive", seed=0)
        attacked = report.attacked
        # The Thompson-sampling attacker reports its own telemetry...
        assert attacked.attacker_attempts is not None
        assert attacked.attacker_delivered is not None
        assert attacked.attacker_attempts >= attacked.attacker_delivered
        # ...and the closed loop still holds the recovery bar.
        assert report.recovery_ratio >= 0.9
        assert attacked.detection_latency is not None
        assert attacked.invariant_violations == 0


class TestDeterminism:
    """Defense decisions are a pure function of (spec, seed)."""

    @pytest.mark.parametrize("attack", ["pollution", "flood", "adaptive"])
    def test_repeated_runs_bit_identical(self, attack):
        spec = DefenseScenarioSpec(
            defense="adaptive",
            attack=attack,
            seed=3,
            horizon=8000.0,
            attack_start=1500.0,
            attack_end=6000.0,
        )
        first = run_defense_scenario(spec)
        second = run_defense_scenario(spec)
        assert first == second  # every field, alarm line, and counter

    def test_seed_changes_the_run(self):
        kwargs = dict(
            defense="adaptive",
            attack="pollution",
            horizon=8000.0,
            attack_start=1500.0,
            attack_end=6000.0,
        )
        a = run_defense_scenario(DefenseScenarioSpec(seed=0, **kwargs))
        b = run_defense_scenario(DefenseScenarioSpec(seed=1, **kwargs))
        assert a.router_stats != b.router_stats


def _chaos_run(seed: int):
    """A defended edge under pollution *and* link chaos, end to end."""
    net = Network(rng=RngRegistry(seed))
    net.add_router("E", capacity=8, pit_capacity=32)
    net.add_consumer("U")
    net.add_consumer("A")
    net.add_producer("P", "/content")
    net.connect("U", "E", FixedDelay(0.5))
    net.connect("A", "E", FixedDelay(0.5))
    net.connect("E", "P", FixedDelay(2.0))
    net.add_route("E", "/content", "P")
    agent = install_defense(net.routers["E"], DefenseConfig.preset("adaptive"))
    FaultSchedule(
        [
            CachePollutionWindow(
                attacker="A",
                prefix="/content",
                start=500.0,
                end=4000.0,
                interval=2.0,
                catalog=400,
                seed=seed + 1,
            ),
            DelaySpikeWindow(
                link="E<->P", start=1000.0, end=2000.0, extra_delay=5.0
            ),
            BurstLossWindow(link="A<->E", start=1500.0, end=3000.0),
        ]
    ).apply(net)
    outcomes = []

    def honest(consumer, rng):
        while consumer.engine.now < 5000.0:
            pick = int(rng.integers(0, 16))
            result = yield from consumer.fetch(
                f"/content/hot-{pick:02d}", lifetime=800.0
            )
            outcomes.append(result is not None)
            yield Timeout(4.0)

    net.engine.spawn(honest(net["U"], net.rng.stream("honest")), label="honest")
    net.engine.run()
    return (
        tuple(str(a) for a in agent.log.alarms),
        tuple(str(m) for m in agent.mitigations),
        dict(net.routers["E"].stats_summary()),
        tuple(outcomes),
    )


class TestChaosDeterminism:
    def test_defense_decisions_identical_under_fault_schedule_chaos(self):
        first = _chaos_run(seed=11)
        second = _chaos_run(seed=11)
        assert first == second
        alarms, mitigations, _, _ = first
        # The chaos run actually exercised the loop (alarm + mitigation).
        assert alarms
        assert mitigations


class TestTransparency:
    """Installing a passive defense cannot perturb what it watches."""

    def test_off_and_monitor_runs_bit_identical(self):
        assert defense_transparency_mismatches(seed=0) == []
