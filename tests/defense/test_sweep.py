"""Tests for the detection-frontier sweep (repro.analysis.defense)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.defense import (
    DefenseFrontier,
    DefensePoint,
    SWEEP_ATTACKS,
    run_defense_point,
    run_defense_sweep,
)
from repro.perf.timing import BenchReporter

#: Short spec so a sweep cell runs in a fraction of the default demo.
FAST = dict(horizon=8000.0, attack_start=1500.0, attack_end=6000.0)


@pytest.fixture(scope="module")
def small_frontier():
    return run_defense_sweep(
        defenses=("off", "adaptive"), attacks=("pollution",), seed=0, **FAST
    )


class TestPoint:
    def test_point_fields_are_consistent(self):
        point = run_defense_point("adaptive", "pollution", seed=0, **FAST)
        assert point.defense == "adaptive"
        assert point.attack == "pollution"
        assert point.utility_metric == "edge_hit_rate"
        assert 0.0 <= point.attack_success <= 1.0
        assert point.attack_success == pytest.approx(
            min(1.0, max(0.0, 1.0 - point.recovery_ratio))
        )
        assert point.detection_latency is not None
        assert point.attacker_requests_before_alarm is not None
        assert point.false_alarms == 0
        assert point.false_mitigations == 0
        assert point.invariant_violations == 0

    def test_flood_point_uses_delivery_rate(self):
        point = run_defense_point("off", "flood", seed=0, **FAST)
        assert point.utility_metric == "delivery_rate"
        assert point.detection_latency is None  # nothing watching
        assert point.alarms == 0


class TestSweep:
    def test_grid_order_and_size(self, small_frontier):
        assert [(p.defense, p.attack) for p in small_frontier.points] == [
            ("off", "pollution"),
            ("adaptive", "pollution"),
        ]

    def test_best_defense_prefers_the_closed_loop(self, small_frontier):
        assert small_frontier.best_defense("pollution").defense == "adaptive"

    def test_best_defense_unknown_attack_raises(self, small_frontier):
        with pytest.raises(ValueError, match="no frontier points"):
            small_frontier.best_defense("teleportation")

    def test_unknown_preset_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown defenses"):
            run_defense_sweep(defenses=("off", "rubber"), attacks=("pollution",))

    def test_default_attack_axis(self):
        assert SWEEP_ATTACKS == ("pollution", "flood", "adaptive")

    def test_to_dict_is_the_json_artifact(self, small_frontier):
        artifact = small_frontier.to_dict()
        assert artifact["experiment"] == "defense_detection_frontier"
        assert artifact["seed"] == 0
        assert len(artifact["points"]) == 2
        assert artifact["points"][0]["defense"] == "off"
        json.dumps(artifact)  # must be serializable as-is

    def test_render_tabulates_every_point(self, small_frontier):
        table = small_frontier.render()
        assert "defense" in table.splitlines()[0]
        assert len(table.splitlines()) == 2 + len(small_frontier.points)
        assert "adaptive" in table


class TestBenchIntegration:
    def test_benched_sweep_runs_the_requested_cells(self, small_frontier):
        """Regression: reporter.time treats kwargs as record meta, so a
        naive call would silently run every cell with default arguments.
        The benched sweep must produce the exact same points."""
        reporter = BenchReporter("detection-test")
        benched = run_defense_sweep(
            defenses=("off", "adaptive"),
            attacks=("pollution",),
            seed=0,
            reporter=reporter,
            **FAST,
        )
        assert benched.points == small_frontier.points
        assert [r.label for r in reporter.records] == [
            "off/pollution",
            "adaptive/pollution",
        ]
        meta = reporter.records[-1].meta
        point = benched.points[-1]
        assert meta["attack_success"] == point.attack_success
        assert meta["detection_latency"] == point.detection_latency
        assert meta["false_alarms"] == point.false_alarms

    def test_bench_artifact_round_trips(self, tmp_path):
        reporter = BenchReporter("detection-test", scale={"cells": 1})
        run_defense_sweep(
            defenses=("monitor",), attacks=("pollution",), seed=0,
            reporter=reporter, **FAST,
        )
        path = reporter.write(tmp_path)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] >= 2
        assert payload["scale"] == {"cells": 1}
        assert len(payload["records"]) == 1


class TestFromReport:
    def test_false_alarm_columns_come_from_the_baseline(self):
        from repro.defense import run_closed_loop

        report = run_closed_loop("monitor", "pollution", seed=0, **FAST)
        point = DefensePoint.from_report(report)
        assert point.false_alarms == report.baseline.alarms
        assert point.false_mitigations == report.baseline.mitigations
        assert point.mitigations == 0  # monitor never mitigates
        assert point.alarms == report.attacked.alarms >= 1

    def test_frontier_accumulates_points(self):
        frontier = DefenseFrontier(seed=5)
        assert frontier.points == []
        assert frontier.to_dict()["points"] == []
