"""Unit tests for the mitigation controller on a real forwarder.

A three-face router (honest "good", suspect "bad", upstream producer plus
a black-hole route for dangling PIT state) exercises the full
graceful-degradation ladder: throttle, quarantine, shed, hysteretic
release — and the audit ledger every action must append to.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.defense.alarms import Alarm
from repro.defense.controller import MitigationController, MitigationPolicy
from repro.ndn.cs import ContentStore
from repro.ndn.forwarder import Forwarder
from repro.ndn.link import Face, FixedDelay, Link
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest


class Sink:
    """End host recording arrivals; never answers (PIT entries dangle)."""

    def __init__(self):
        self.interests = []
        self.data = []
        self.nacks = []

    def receive_interest(self, interest, face):
        self.interests.append(interest)

    def receive_data(self, data, face):
        self.data.append(data)

    def receive_nack(self, nack, face):
        self.nacks.append(nack)


class ProducerStub:
    """Answers any interest instantly with matching content."""

    def receive_interest(self, interest, face):
        face.send_data(Data(name=interest.name))

    def receive_data(self, data, face):  # pragma: no cover - defensive
        raise AssertionError("producer received data")


def build(engine):
    """good/bad consumers -> R -> producer (/content) + void (/void)."""
    router = Forwarder(engine, "R", cs=ContentStore(capacity=16))
    hosts = {}
    faces = {}
    for label, app in (
        ("good", Sink()),
        ("bad", Sink()),
        ("up", ProducerStub()),
        ("void", Sink()),
    ):
        host_face = Face(app, f"{label}-host")
        router_face = router.create_face(label)
        Link(
            engine,
            host_face,
            router_face,
            FixedDelay(1.0),
            np.random.default_rng(0),
        )
        hosts[label] = (app, host_face)
        faces[label] = router_face
    router.fib.add_route(Name.parse("/content"), faces["up"])
    router.fib.add_route(Name.parse("/void"), faces["void"])
    return router, hosts, faces


def alarm(kind="pollution", label="bad", time=100.0):
    return Alarm(
        kind=kind, router="R", face_label=label, time=time, severity=0.9
    )


class TestEscalation:
    def test_alarm_throttles_fresh_suspect(self, engine):
        router, _, faces = build(engine)
        ctrl = MitigationController(
            router, MitigationPolicy(throttle_rate=50.0, throttle_burst=2.0)
        )
        assert not ctrl.active
        ctrl.on_alarm(alarm(), now=100.0)
        assert ctrl.active
        assert ctrl.suspect_labels() == ["bad"]
        assert [m.action for m in ctrl.mitigations] == ["throttle"]
        # The escalated bucket admits the burst, then rejects.
        assert ctrl.allow_interest(faces["bad"], now=100.0)
        assert ctrl.allow_interest(faces["bad"], now=100.0)
        assert not ctrl.allow_interest(faces["bad"], now=100.0)
        # 50/s = one token every 20 ms.
        assert ctrl.allow_interest(faces["bad"], now=121.0)

    def test_honest_face_never_throttled(self, engine):
        router, _, faces = build(engine)
        ctrl = MitigationController(router)
        ctrl.on_alarm(alarm(), now=100.0)
        for i in range(50):
            assert ctrl.allow_interest(faces["good"], now=100.0 + i * 0.01)

    def test_realarm_is_idempotent_on_the_ledger(self, engine):
        router, _, _ = build(engine)
        ctrl = MitigationController(
            router, MitigationPolicy(quarantine=False, shed=False)
        )
        ctrl.on_alarm(alarm(time=100.0), now=100.0)
        ctrl.on_alarm(alarm(time=200.0), now=200.0)
        assert [m.action for m in ctrl.mitigations] == ["throttle"]


class TestQuarantine:
    def _prime_cs(self, engine, router, hosts, names):
        _, bad_face = hosts["bad"]
        for name in names:
            bad_face.send_interest(Interest(name=Name.parse(name)))
        engine.run(until=50.0)
        for name in names:
            assert Name.parse(name) in router.cs

    def test_pollution_alarm_purges_suspect_entries(self, engine):
        router, hosts, _ = build(engine)
        ctrl = MitigationController(router)
        names = [f"/content/junk-{i}" for i in range(4)]
        self._prime_cs(engine, router, hosts, names)
        ctrl.on_alarm(
            alarm(kind="pollution"),
            now=60.0,
            purge_names=[Name.parse(n) for n in names[:3]],
        )
        for name in names[:3]:
            assert router.cs.lookup_exact(Name.parse(name), 60.0) is None
        assert router.cs.lookup_exact(Name.parse(names[3]), 60.0) is not None
        assert router.monitor.counter("cache_quarantined") == 3
        assert [m.action for m in ctrl.mitigations] == ["throttle", "quarantine"]

    def test_quarantine_disabled_by_policy(self, engine):
        router, hosts, _ = build(engine)
        ctrl = MitigationController(router, MitigationPolicy(quarantine=False))
        names = ["/content/junk-0"]
        self._prime_cs(engine, router, hosts, names)
        ctrl.on_alarm(
            alarm(kind="pollution"),
            now=60.0,
            purge_names=[Name.parse(names[0])],
        )
        assert router.cs.lookup_exact(Name.parse(names[0]), 60.0) is not None
        assert router.monitor.counter("cache_quarantined") == 0

    def test_veto_cache_only_when_all_downstreams_suspect(self, engine):
        router, _, faces = build(engine)
        ctrl = MitigationController(router)
        name = Name.parse("/content/x")
        ctrl.on_alarm(alarm(), now=100.0)
        assert ctrl.veto_cache(name, [faces["bad"]])
        assert not ctrl.veto_cache(name, [faces["bad"], faces["good"]])
        assert not ctrl.veto_cache(name, [faces["good"]])
        assert not ctrl.veto_cache(name, [])


class TestShed:
    def _dangle(self, engine, hosts, sender, names):
        _, host_face = hosts[sender]
        for name in names:
            host_face.send_interest(
                Interest(name=Name.parse(name), lifetime=4000.0)
            )
        engine.run(until=engine.now + 10.0)

    def test_flood_alarm_sheds_only_sole_face_entries(self, engine):
        router, hosts, _ = build(engine)
        ctrl = MitigationController(router)
        self._dangle(engine, hosts, "bad", ["/void/a", "/void/b"])
        self._dangle(engine, hosts, "good", ["/void/a", "/void/c"])
        assert len(router.pit) == 3
        ctrl.on_alarm(alarm(kind="flood"), now=20.0)
        # /void/b was held open solely by the suspect; /void/a collapsed
        # with an honest consumer and /void/c is honest-only: both stay.
        assert router.pit.lookup(Name.parse("/void/b")) is None
        assert router.pit.lookup(Name.parse("/void/a")) is not None
        assert router.pit.lookup(Name.parse("/void/c")) is not None
        assert router.monitor.counter("pit_shed") == 1
        assert "shed" in [m.action for m in ctrl.mitigations]
        # The suspect's dangling fetch was answered with a Nack, not
        # silence — graceful degradation, not a black hole.
        engine.run(until=30.0)
        bad_app, _ = hosts["bad"]
        assert len(bad_app.nacks) == 1

    def test_max_shed_bounds_one_alarm(self, engine):
        router, hosts, _ = build(engine)
        ctrl = MitigationController(router, MitigationPolicy(max_shed=2))
        self._dangle(
            engine, hosts, "bad", [f"/void/f-{i}" for i in range(5)]
        )
        ctrl.on_alarm(alarm(kind="flood"), now=20.0)
        assert router.monitor.counter("pit_shed") == 2
        assert len(router.pit) == 3


class TestDeescalation:
    def test_release_after_quiet_hold(self, engine):
        router, _, faces = build(engine)
        ctrl = MitigationController(
            router,
            MitigationPolicy(hold=4000.0, throttle_burst=1.0),
        )
        ctrl.on_alarm(alarm(time=100.0), now=100.0)
        assert ctrl.deescalate(now=3000.0) == []
        assert ctrl.active
        assert ctrl.deescalate(now=4100.0) == ["bad"]
        assert not ctrl.active
        assert [m.action for m in ctrl.mitigations] == ["throttle", "release"]
        # Static admission restored exactly: no residual bucket.
        for i in range(20):
            assert ctrl.allow_interest(faces["bad"], now=4100.0 + i * 0.01)

    def test_fresh_alarm_refreshes_the_hold(self, engine):
        router, _, _ = build(engine)
        ctrl = MitigationController(router, MitigationPolicy(hold=4000.0))
        ctrl.on_alarm(alarm(time=100.0), now=100.0)
        ctrl.on_alarm(alarm(time=2000.0), now=2000.0)
        assert ctrl.deescalate(now=4100.0) == []  # quiet only since 2000
        assert ctrl.deescalate(now=6000.0) == ["bad"]

    def test_reset_clears_ledger_and_suspects(self, engine):
        router, _, _ = build(engine)
        ctrl = MitigationController(router)
        ctrl.on_alarm(alarm(), now=100.0)
        ctrl.reset()
        assert not ctrl.active
        assert ctrl.mitigations == []


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"throttle_rate": 0.0},
            {"throttle_burst": 0.0},
            {"hold": 0.0},
            {"max_shed": -1},
        ],
    )
    def test_rejects_bad_policy(self, kwargs):
        with pytest.raises(ValueError):
            MitigationPolicy(**kwargs)
