"""Benign false-positive suite: a diurnal IRCache day must raise nothing.

A defended edge router replays a synthetic IRCache proxy trace
(:mod:`repro.workload.ircache` — Zipf popularity, heavy-tailed users,
diurnal rate profile, browsing-session locality) for every privacy
scheme × caching strategy pair.  The acceptance bar is absolute: zero
alarms AND zero mitigations — the audit ledger stays empty on benign
traffic no matter how the cache behaves behind the detectors.

Hypothesis widens the arrival jitter and trace seed to make sure the
zero-FP property is not an artifact of one fixed replay.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.core.schemes.uniform import UniformRandomCache
from repro.defense import DefenseConfig, install_defense
from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.ndn.strategy import STRATEGIES
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator

SCHEMES = ("no-privacy", "uniform", "exponential", "always-delay")

#: Consumer faces at the edge; trace users hash onto them, so each face
#: aggregates a handful of users — the per-face view the detectors see.
FACES = 4


def _make_scheme(name: str, rng):
    return {
        "no-privacy": lambda: NoPrivacyScheme(),
        "uniform": lambda: UniformRandomCache(K=8, rng=rng),
        "exponential": lambda: ExponentialRandomCache(alpha=0.5, K=16, rng=rng),
        "always-delay": lambda: AlwaysDelayScheme(),
    }[name]()


@lru_cache(maxsize=4)
def _benign_trace(seed: int):
    """A scaled-down diurnal proxy day (cached: the grid reuses it).

    The scale preserves what the detectors key on — Zipf re-request
    locality within each face's stream — while replaying in milliseconds:
    8 users browsing a 90-object catalog over a compressed diurnal day.
    (Calibrated against the pollution detector's novelty margin: the
    worst per-face first-seen EWMA across the widened seed family stays
    ≈0.44, well under the 0.55 alarm threshold.)
    """
    config = IrcacheConfig(
        requests=700,
        users=8,
        objects=90,
        sites=24,
        popularity_exponent=1.0,
        session_locality=0.4,
        duration_hours=0.25,
        seed=seed,
    )
    return IrcacheGenerator(config).generate()


def _replay(scheme: str, strategy: str, trace_seed: int = 0, jitter_ms: float = 0.0):
    """Replay the benign trace through a defended edge; returns the agent
    plus (requests, delivered) so the test can prove traffic flowed."""
    net = Network(rng=RngRegistry(trace_seed))
    edge = net.add_router(
        "E",
        capacity=64,
        scheme=_make_scheme(scheme, net.rng.stream("scheme:E")),
        caching=strategy,
    )
    net.add_producer("P", "/")
    consumers = [net.add_consumer(f"F{i}") for i in range(FACES)]
    for consumer in consumers:
        net.connect(consumer.name, "E", FixedDelay(0.5))
    net.connect("E", "P", FixedDelay(2.0))
    net.add_route("E", "/", "P")
    agent = install_defense(edge, DefenseConfig.preset("adaptive"))

    trace = _benign_trace(trace_seed)
    jitter_rng = np.random.default_rng(trace_seed + 1000)
    per_face = [[] for _ in range(FACES)]
    for request in trace:
        jitter = jitter_rng.uniform(0.0, jitter_ms) if jitter_ms > 0 else 0.0
        per_face[request.user % FACES].append(
            (request.time + jitter, request.name)
        )
    delivered = [0]
    total = sum(len(reqs) for reqs in per_face)

    def replay(consumer, reqs):
        for time, name in sorted(reqs):
            if time > consumer.engine.now:
                yield Timeout(time - consumer.engine.now)
            result = yield from consumer.fetch(name, lifetime=5000.0)
            if result is not None:
                delivered[0] += 1

    for consumer, reqs in zip(consumers, per_face):
        net.engine.spawn(replay(consumer, reqs), label=f"replay:{consumer.name}")
    net.engine.run()
    return agent, edge, total, delivered[0]


def _assert_silent(agent, edge, requests, delivered):
    assert agent.log.total == 0, [str(a) for a in agent.log.alarms]
    assert agent.mitigations == []
    assert edge.monitor.counter("defense_throttled") == 0
    assert edge.monitor.counter("cache_quarantined") == 0
    assert edge.monitor.counter("pit_shed") == 0
    # The silence is meaningful only if the day actually replayed.
    assert requests == 700
    assert delivered >= int(0.95 * requests)


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
@pytest.mark.parametrize("scheme", SCHEMES)
def test_benign_diurnal_day_raises_nothing(scheme, strategy):
    """Every scheme × strategy pair: empty alarm log, empty ledger."""
    _assert_silent(*_replay(scheme, strategy))


def test_benign_replay_is_seed_reproducible():
    agent_a, edge_a, *_ = _replay("uniform", "probcache")
    agent_b, edge_b, *_ = _replay("uniform", "probcache")
    assert dict(edge_a.stats_summary()) == dict(edge_b.stats_summary())
    assert agent_a.log.total == agent_b.log.total == 0


@settings(max_examples=8, deadline=None)
@given(
    jitter_ms=st.floats(min_value=0.0, max_value=500.0),
    trace_seed=st.integers(min_value=0, max_value=3),
)
def test_benign_silence_survives_widened_jitter(jitter_ms, trace_seed):
    """Arrival perturbation and fresh trace seeds must not manufacture
    alarms: the zero-FP bar holds across the widened replay family."""
    _assert_silent(
        *_replay("uniform", "lce", trace_seed=trace_seed, jitter_ms=jitter_ms)
    )
