"""Unit tests for the streaming detectors (no forwarder involved).

Detectors consume (name, face label, time, hit) observations directly, so
these tests drive them with synthetic packet sequences and check the
firing rules: evidence thresholds, cold-start floors, cooldowns, and the
disarm rules that keep benign traffic alarm-free.
"""

from __future__ import annotations

import pytest

from repro.defense.detectors import (
    FloodDetector,
    PollutionDetector,
    ProbeDetector,
)
from repro.ndn.name import Name


def _n(i: int) -> Name:
    return Name.parse(f"/content/obj-{i:05d}")


class TestPollutionDetector:
    def test_sustained_novelty_fires_at_min_samples(self):
        det = PollutionDetector(min_samples=96)
        fired = None
        for i in range(200):
            fired = det.observe_interest(_n(i), "bad", now=float(i), hit=False)
            if fired is not None:
                break
        assert fired is not None
        severity, detail = fired
        # An all-novel stream fires exactly when the cold-start floor lifts.
        assert i == 95  # 96th observation
        assert severity >= det.threshold
        assert "first-seen EWMA" in detail

    def test_repeating_hot_set_never_fires(self):
        det = PollutionDetector(min_samples=96)
        for i in range(400):
            fired = det.observe_interest(
                _n(i % 8), "good", now=float(i), hit=True
            )
            assert fired is None
        assert det.first_seen_ewma("good") < det.threshold

    def test_cooldown_suppresses_back_to_back_alarms(self):
        det = PollutionDetector(min_samples=96, cooldown=1000.0)
        alarms = []
        for i in range(400):
            now = float(i) * 10.0  # sustained attack spanning 4 s
            fired = det.observe_interest(_n(i), "bad", now=now, hit=False)
            if fired is not None:
                alarms.append(now)
        assert len(alarms) >= 2
        for earlier, later in zip(alarms, alarms[1:]):
            assert later - earlier >= det.cooldown

    def test_faces_tracked_independently(self):
        det = PollutionDetector(min_samples=96)
        for i in range(200):
            det.observe_interest(_n(i), "bad", now=float(i), hit=False)
            det.observe_interest(_n(i % 4), "good", now=float(i), hit=True)
        assert det.first_seen_ewma("bad") > det.first_seen_ewma("good")

    def test_recent_first_seen_returns_quarantine_candidates(self):
        det = PollutionDetector(recent_depth=16)
        for i in range(40):
            det.observe_interest(_n(i), "bad", now=float(i), hit=False)
        recent = det.recent_first_seen("bad")
        assert len(recent) == 16
        assert recent[-1] == _n(39)
        assert det.recent_first_seen("never-seen") == ()

    def test_reset_drops_state(self):
        det = PollutionDetector()
        det.observe_interest(_n(0), "f", now=0.0, hit=False)
        assert det.first_seen_ewma("f") > 0.0
        det.reset()
        assert det.first_seen_ewma("f") == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sketch_bits": 0},
            {"sketch_bits": 25},
            {"generation": 0},
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"threshold": 0.0},
        ],
    )
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            PollutionDetector(**kwargs)


class TestFloodDetector:
    def test_fires_on_expiry_ratio(self):
        det = FloodDetector(threshold=0.5, min_expired=20)
        for i in range(30):
            det.observe_interest(_n(i), "bad", now=float(i), hit=False)
        fired = None
        for i in range(20):
            fired = det.observe_pit_expired(
                _n(i), ["bad"], now=100.0 + i
            )
            if fired is not None:
                break
        assert fired is not None
        severity, detail = fired
        assert severity >= 0.5
        assert "expired" in detail
        assert det.last_offender() == "bad"

    def test_below_evidence_floor_never_fires(self):
        det = FloodDetector(threshold=0.5, min_expired=20)
        for i in range(10):
            det.observe_interest(_n(i), "f", now=float(i), hit=False)
        for i in range(19):  # one short of the floor
            assert det.observe_pit_expired(_n(i), ["f"], now=50.0 + i) is None

    def test_low_ratio_never_fires(self):
        det = FloodDetector(threshold=0.5, min_expired=20)
        # 1000 forwarded misses, only 25 expiries: ratio far below 0.5.
        for i in range(1000):
            det.observe_interest(_n(i), "f", now=float(i), hit=False)
        for i in range(25):
            assert det.observe_pit_expired(_n(i), ["f"], now=2000.0 + i) is None

    def test_overflow_rejections_count_as_evidence(self):
        det = FloodDetector(threshold=0.5, min_expired=20)
        for i in range(20):
            det.observe_interest(_n(i), "bad", now=float(i), hit=False)
        fired = None
        for i in range(20):
            fired = det.observe_pit_overflow(_n(1000 + i), "bad", now=30.0 + i)
            if fired is not None:
                break
        assert fired is not None
        assert "overflow" in fired[1]

    def test_counters_reset_after_alarm(self):
        det = FloodDetector(threshold=0.5, min_expired=20, cooldown=0.1)
        for i in range(20):
            det.observe_interest(_n(i), "bad", now=float(i), hit=False)
        for i in range(20):
            det.observe_pit_overflow(_n(i), "bad", now=30.0 + i)
        # Evidence was consumed by the alarm: the next expiry alone cannot
        # re-fire without a fresh batch crossing the floor.
        assert det.observe_pit_expired(_n(99), ["bad"], now=500.0) is None

    @pytest.mark.parametrize(
        "kwargs", [{"threshold": 0.0}, {"threshold": 1.5}, {"min_expired": 0}]
    )
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            FloodDetector(**kwargs)


class TestProbeDetector:
    def _prime(self, det, label="probe", count=6, now=0.0):
        ref = Name.parse("/content/reference")
        for i in range(count):
            assert det.observe_interest(ref, label, now + i, hit=True) is None
        return now + count

    def test_streak_then_distinct_probes_fire(self):
        det = ProbeDetector(streak_min=5, distinct_min=12)
        now = self._prime(det)
        fired = None
        for i in range(12):
            fired = det.observe_interest(_n(i), "probe", now + i, hit=False)
            if fired is not None:
                break
        assert fired is not None
        assert i == 11  # exactly distinct_min one-shot probes
        assert "streak" in fired[1]

    def test_revisit_while_armed_disarms(self):
        det = ProbeDetector(streak_min=5, distinct_min=12)
        now = self._prime(det)
        for i in range(5):
            assert det.observe_interest(_n(i), "probe", now + i, hit=False) is None
        # A benign consumer re-requests its working set: stand down.
        assert det.observe_interest(_n(0), "probe", now + 6, hit=True) is None
        for i in range(5, 40):
            assert (
                det.observe_interest(_n(i), "probe", now + 10 + i, hit=False)
                is None
            )

    def test_distinct_run_without_streak_never_fires(self):
        det = ProbeDetector(streak_min=5, distinct_min=12)
        for i in range(60):
            assert det.observe_interest(_n(i), "f", float(i), hit=False) is None

    def test_armed_window_expires(self):
        det = ProbeDetector(streak_min=5, distinct_min=12, armed_window=100.0)
        now = self._prime(det)
        # The first distinct name opens the armed window...
        assert det.observe_interest(_n(0), "probe", now, hit=False) is None
        # ...but the rest of the probe run arrives after it closed.
        for i in range(1, 12):
            fired = det.observe_interest(
                _n(i), "probe", now + 200.0 + i, hit=False
            )
            assert fired is None

    def test_cooldown_suppresses_repeat_alarms(self):
        det = ProbeDetector(streak_min=5, distinct_min=4, cooldown=5000.0)
        now = self._prime(det)
        fired = [
            det.observe_interest(_n(i), "probe", now + i, hit=False)
            for i in range(4)
        ]
        assert fired[-1] is not None
        now = self._prime(det, now=now + 10.0)
        again = [
            det.observe_interest(_n(100 + i), "probe", now + i, hit=False)
            for i in range(4)
        ]
        assert all(f is None for f in again)

    @pytest.mark.parametrize("kwargs", [{"streak_min": 1}, {"distinct_min": 0}])
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ValueError):
            ProbeDetector(**kwargs)
