"""Unit tests for the defense agent: presets, hooks, install contract."""

from __future__ import annotations

import pytest

from repro.defense.agent import (
    DEFENSE_PRESETS,
    DefenseAgent,
    DefenseConfig,
    install_defense,
    install_network_defense,
    uninstall_defense,
)
from repro.ndn.link import FixedDelay
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.sim.rng import RngRegistry

from tests.defense.test_controller import build


def _feed_novel(agent, face, count, start=0.0, step=1.0):
    """Push a pure-novelty interest stream through the agent's hook."""
    for i in range(count):
        agent.observe_interest(
            Name.parse(f"/content/novel-{i:05d}"),
            face,
            start + i * step,
            hit=False,
        )


class TestPresets:
    def test_registry_order_spans_the_frontier(self):
        assert DEFENSE_PRESETS == ("off", "static", "monitor", "adaptive")

    @pytest.mark.parametrize("name", ["off", "static"])
    def test_passive_presets_install_no_agent(self, name):
        assert DefenseConfig.preset(name) is None

    def test_monitor_preset_disarms_mitigation(self):
        config = DefenseConfig.preset("monitor")
        assert config is not None and not config.mitigate

    def test_adaptive_preset_is_the_full_loop(self):
        config = DefenseConfig.preset("adaptive")
        assert config is not None and config.mitigate

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown defense preset"):
            DefenseConfig.preset("rubber-stamp")

    def test_monitoring_only_copy(self):
        config = DefenseConfig()
        assert config.mitigate
        assert not config.monitoring_only().mitigate


class TestInstall:
    def test_install_and_uninstall_toggle_the_forwarder_slot(self, engine):
        router, _, _ = build(engine)
        assert router.defense is None
        agent = install_defense(router)
        assert router.defense is agent
        uninstall_defense(router)
        assert router.defense is None

    def test_network_install_targets_named_routers(self):
        net = Network(rng=RngRegistry(0))
        for name in ("R1", "R2", "R3"):
            net.add_router(name, capacity=4)
        net.add_consumer("U")
        net.connect("U", "R1", FixedDelay(1.0))
        net.connect("R1", "R2", FixedDelay(1.0))
        net.connect("R2", "R3", FixedDelay(1.0))
        agents = install_network_defense(net, routers=("R1", "R2"))
        assert sorted(agents) == ["R1", "R2"]
        assert net.routers["R1"].defense is agents["R1"]
        assert net.routers["R3"].defense is None


class TestMonitorMode:
    def test_alarms_log_but_nothing_mitigates(self, engine):
        router, _, faces = build(engine)
        agent = install_defense(router, DefenseConfig.preset("monitor"))
        _feed_novel(agent, faces["bad"], 200)
        assert agent.log.total >= 1
        assert agent.controller is None
        assert agent.mitigations == []
        # The throttle gate stays wide open in monitor mode.
        for i in range(200):
            assert agent.allow_interest(None, faces["bad"], float(i) * 0.01)
        assert not agent.veto_cache(Name.parse("/x"), [faces["bad"]])


class TestAdaptiveMode:
    def test_pollution_alarm_closes_the_loop(self, engine):
        router, _, faces = build(engine)
        agent = install_defense(router, DefenseConfig.preset("adaptive"))
        _feed_novel(agent, faces["bad"], 200)
        assert agent.log.total >= 1
        assert agent.log.first("pollution") is not None
        assert agent.controller is not None and agent.controller.active
        assert "bad" in agent.controller.suspect_labels()
        assert any(m.action == "throttle" for m in agent.mitigations)
        # The suspect face is now rate-limited far below its send rate.
        now = 200.0
        verdicts = [
            agent.allow_interest(None, faces["bad"], now + i * 0.1)
            for i in range(100)
        ]
        assert not all(verdicts)

    def test_status_snapshot_is_json_ready(self, engine):
        import json

        router, _, faces = build(engine)
        agent = install_defense(router, DefenseConfig.preset("adaptive"))
        _feed_novel(agent, faces["bad"], 120)
        status = agent.status()
        assert status["router"] == "R"
        assert status["mitigate"] is True
        assert status["alarms"] == agent.log.total
        assert status["suspects"] == ["bad"]
        assert status["mitigations"] == len(agent.mitigations)
        json.dumps(status)  # must not raise

    def test_reset_restores_a_fresh_agent(self, engine):
        router, _, faces = build(engine)
        agent = install_defense(router, DefenseConfig.preset("adaptive"))
        _feed_novel(agent, faces["bad"], 200)
        assert agent.log.total >= 1
        agent.reset()
        assert agent.log.total == 0
        assert agent.mitigations == []
        assert not agent.controller.active

    def test_deescalation_polled_from_observe_path(self, engine):
        router, _, faces = build(engine)
        config = DefenseConfig.preset("adaptive")
        agent = install_defense(router, config)
        _feed_novel(agent, faces["bad"], 150)
        assert agent.controller.active
        # Quiet benign traffic keeps flowing past the hysteresis hold:
        # the observe path itself must release the suspect.
        hold = config.policy.hold
        for i in range(40):
            agent.observe_interest(
                Name.parse("/content/hot-000"),
                faces["good"],
                200.0 + hold + i * float(config.check_interval),
                hit=True,
            )
        assert not agent.controller.active
        assert any(m.action == "release" for m in agent.mitigations)
