"""Tests for the CLI report command."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestReportCommand:
    def test_report_written_with_all_sections(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([
            "report", "--out", str(out),
            "--requests", "2000", "--objects", "6", "--trials", "1",
        ]) == 0
        text = out.read_text()
        assert "# Reproduction report" in text
        assert "## Figure 3" in text
        assert "fig3a_lan" in text and "fig3d_local_host" in text
        assert "## Section III — amplification" in text
        assert "## Figure 4" in text
        assert "peak utility differences" in text
        assert "## Figure 5" in text
        assert "Figure 5(b)" in text
        assert "wrote reproduction report" in capsys.readouterr().out

    def test_report_requires_out(self):
        with pytest.raises(SystemExit):
            main(["report"])
