"""Unit tests for the statistical hypothesis-test helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.hypothesis_tests import (
    KsResult,
    ks_two_sample,
    mann_whitney_auc,
)


class TestKsTwoSample:
    def test_same_distribution_not_rejected(self):
        rng = np.random.default_rng(0)
        a = rng.normal(5, 1, 400)
        b = rng.normal(5, 1, 400)
        result = ks_two_sample(a, b)
        assert result.indistinguishable_at(0.01)
        assert result.statistic < 0.15

    def test_shifted_distribution_rejected(self):
        rng = np.random.default_rng(1)
        a = rng.normal(5, 1, 400)
        b = rng.normal(7, 1, 400)
        result = ks_two_sample(a, b)
        assert not result.indistinguishable_at(0.01)
        assert result.p_value < 1e-6

    def test_statistic_bounds(self):
        result = ks_two_sample([1.0, 2.0], [10.0, 11.0])
        assert result.statistic == pytest.approx(1.0)
        result = ks_two_sample([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.statistic == pytest.approx(0.0)

    def test_sample_sizes_recorded(self):
        result = ks_two_sample([1.0] * 10, [1.0] * 20)
        assert result.n1 == 10 and result.n2 == 20

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])

    def test_countermeasure_validation_scenario(self):
        """AlwaysDelay's disguised hits are distributionally identical to
        genuine misses: the KS test must not reject."""
        rng = np.random.default_rng(2)
        fetch_delays = 5 + 20 * rng.lognormal(0.5, 0.5, 300)
        genuine = fetch_delays + rng.normal(0, 0.5, 300)
        disguised = fetch_delays + rng.normal(0, 0.5, 300)
        assert ks_two_sample(genuine, disguised).indistinguishable_at(0.01)


class TestMannWhitneyAuc:
    def test_no_separation_is_half(self):
        rng = np.random.default_rng(3)
        samples = rng.normal(0, 1, 2000)
        auc = mann_whitney_auc(samples, rng.normal(0, 1, 2000))
        assert auc == pytest.approx(0.5, abs=0.03)

    def test_full_separation_is_one(self):
        assert mann_whitney_auc([1.0, 2.0], [10.0, 20.0]) == 1.0

    def test_reversed_separation_is_zero(self):
        assert mann_whitney_auc([10.0, 20.0], [1.0, 2.0]) == 0.0

    def test_ties_count_half(self):
        assert mann_whitney_auc([5.0], [5.0]) == 0.5

    def test_matches_analytic_gaussian(self):
        """AUC for N(0,1) vs N(d,1) is Φ(d/√2)."""
        from math import erf, sqrt

        rng = np.random.default_rng(4)
        d = 1.5
        auc = mann_whitney_auc(
            rng.normal(0, 1, 20000), rng.normal(d, 1, 20000)
        )
        analytic = 0.5 * (1 + erf(d / sqrt(2) / sqrt(2)))
        assert auc == pytest.approx(analytic, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_auc([1.0], [])
