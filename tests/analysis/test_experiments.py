"""Tests for the per-figure experiment drivers (small-scale runs)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    run_amplification,
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig5a,
    run_fig5b,
)
from repro.workload.ircache import small_test_trace


class TestFig3Driver:
    def test_lan_panel(self):
        result = run_fig3("fig3a_lan", objects_per_trial=15, trials=2)
        assert result.bayes_success > 0.99
        assert result.miss_mean > result.hit_mean
        assert "Figure 3" in result.render()
        assert "Bayes success" in result.render()

    def test_unknown_setting_rejected(self):
        with pytest.raises(ValueError, match="unknown setting"):
            run_fig3("fig9z_nonsense")


class TestFig4Drivers:
    def test_fig4a_structure(self):
        result = run_fig4a(k=1, delta=0.05, epsilons=(0.03, 0.05), c_max=50)
        assert result.uniform_K == 40
        assert len(result.uniform_utilities) == 50
        assert set(result.exponential) == {0.03, 0.05}
        # Exponential dominates uniform for all epsilon (Figure 4(a) shape).
        for _eps, (_a, _K, utilities) in result.exponential.items():
            assert all(
                e >= u - 1e-9
                for e, u in zip(utilities, result.uniform_utilities)
            )
        assert "Figure 4(a)" in result.render()

    def test_fig4a_utility_increases_with_c(self):
        result = run_fig4a(k=5, c_max=80)
        u = result.uniform_utilities
        assert all(a <= b + 1e-12 for a, b in zip(u, u[1:]))

    def test_fig4b_peak_about_12_percent(self):
        result = run_fig4b(k=1, c_max=100)
        assert result.max_difference(0.05) == pytest.approx(0.12, abs=0.02)

    def test_fig4b_ordering_in_delta(self):
        result = run_fig4b(k=1)
        assert (
            result.max_difference(0.01)
            < result.max_difference(0.03)
            < result.max_difference(0.05)
        )
        assert "Figure 4(b)" in result.render()

    def test_fig4b_k5_smaller_differences(self):
        k1 = run_fig4b(k=1).max_difference(0.01)
        k5 = run_fig4b(k=5).max_difference(0.01)
        assert k5 < k1


class TestFig5Drivers:
    @pytest.fixture(scope="class")
    def trace(self):
        return small_test_trace(requests=5000, seed=7)

    def test_fig5a_ordering(self, trace):
        # At this small scale the exponential-vs-uniform gap is within
        # sampling noise (the paper's own curves nearly overlap), so only
        # the robust orderings are asserted; the full-scale bench checks
        # the complete No-Privacy >= Expo >= Uniform >= Always-Delay chain.
        result = run_fig5a(trace, cache_sizes=(100, 500, None))
        for i in range(3):
            none = result.hit_rates["no-privacy"][i]
            expo = result.hit_rates["exponential"][i]
            uni = result.hit_rates["uniform"][i]
            delay = result.hit_rates["always-delay"][i]
            assert none > max(expo, uni, delay)
            assert expo >= delay - 1e-9
            assert uni >= delay - 1e-9
            assert abs(expo - uni) < 3.0  # percentage points
        assert "Figure 5(a)" in result.render()

    def test_fig5a_hit_rate_grows_with_cache(self, trace):
        result = run_fig5a(trace, cache_sizes=(50, 500, None))
        for rates in result.hit_rates.values():
            assert rates[0] <= rates[1] <= rates[2] + 1e-9

    def test_fig5b_private_share_monotone(self, trace):
        result = run_fig5b(
            trace, cache_sizes=(500, None),
            private_fractions=(0.05, 0.2, 0.4),
        )
        labels = ["5% private", "20% private", "40% private"]
        for i in range(2):
            rates = [result.hit_rates[label][i] for label in labels]
            assert rates[0] >= rates[1] >= rates[2]
        assert "Figure 5(b)" in result.render()

    def test_fig5_stats_recorded(self, trace):
        result = run_fig5a(trace, cache_sizes=(None,))
        stats = result.stats[("no-privacy", None)]
        assert stats.requests == len(trace)


class TestAmplificationDriver:
    def test_paper_numbers(self):
        result = run_amplification(0.59, max_fragments=8)
        assert result.analytic_success[0] == pytest.approx(0.59)
        assert result.analytic_success[7] == pytest.approx(0.999, abs=0.001)
        assert "amplification" in result.render()


class TestSchemeFactory:
    def test_unknown_scheme_rejected(self):
        from repro.analysis.experiments import _scheme_factory

        with pytest.raises(ValueError, match="unknown scheme"):
            _scheme_factory("mystery", k=5, epsilon=0.01, delta=0.05, seed=0)

    def test_all_known_schemes_construct(self):
        from repro.analysis.experiments import _scheme_factory

        for name in ("no-privacy", "always-delay", "uniform", "exponential"):
            scheme = _scheme_factory(name, k=5, epsilon=0.01, delta=0.05, seed=0)
            assert scheme is not None
