"""Unit tests for the repro-experiments CLI."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestFig4Commands:
    def test_fig4a_prints_series(self, capsys):
        assert main(["fig4a", "--k", "1", "--c-max", "20"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4(a)" in out
        assert "uniform" in out and "expo(eps=0.05)" in out

    def test_fig4b_prints_peaks(self, capsys):
        assert main(["fig4b", "--k", "1", "--c-max", "50"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4(b)" in out
        assert "max difference (delta=0.05)" in out

    def test_fig4a_custom_epsilons(self, capsys):
        assert main(["fig4a", "--k", "2", "--epsilons", "0.02", "--c-max", "10"]) == 0
        assert "expo(eps=0.02)" in capsys.readouterr().out


class TestFig3Command:
    def test_single_setting(self, capsys):
        assert main(["fig3", "fig3a_lan", "--objects", "8", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3 [fig3a_lan]" in out
        assert "Bayes success" in out

    def test_unknown_setting_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "not-a-setting"])


class TestFig5Commands:
    def test_fig5a_small(self, capsys):
        assert main([
            "fig5a", "--requests", "3000", "--sizes", "200", "inf",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out
        assert "Inf" in out

    def test_fig5b_small(self, capsys):
        assert main([
            "fig5b", "--requests", "3000", "--sizes", "200",
            "--private-fractions", "0.1", "0.4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 5(b)" in out
        assert "10% private" in out and "40% private" in out


class TestUtilityCommands:
    def test_amplification(self, capsys):
        assert main(["amplification", "--p", "0.59", "--fragments", "8"]) == 0
        out = capsys.readouterr().out
        assert "0.9992" in out  # 1 - 0.41^8

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "trace.tsv"
        assert main(["trace", "--requests", "500", "--out", str(out_path)]) == 0
        assert "wrote 500 requests" in capsys.readouterr().out
        from repro.workload.trace import Trace

        assert len(Trace.load(out_path)) == 500

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
