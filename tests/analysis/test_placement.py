"""Tests for the privacy-vs-placement frontier sweep and its CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis.placement import (
    SWEEP_SCHEMES,
    SWEEP_STRATEGIES,
    SWEEP_TOPOLOGIES,
    PlacementFrontier,
    PlacementPoint,
    run_placement_point,
    run_placement_sweep,
)
from repro.cli import main
from repro.ndn.strategy import STRATEGIES
from repro.ndn.topology import SCALE_TOPOLOGIES
from repro.perf.timing import BenchReporter


class TestRegistries:
    def test_sweep_topologies_cover_lan_and_scale_graphs(self):
        assert set(SWEEP_TOPOLOGIES) == {"fig3a_lan"} | set(SCALE_TOPOLOGIES)

    def test_sweep_strategies_cover_registry(self):
        assert set(SWEEP_STRATEGIES) == set(STRATEGIES)

    def test_sweep_schemes(self):
        assert set(SWEEP_SCHEMES) == {"no-privacy", "uniform", "exponential"}


class TestPoint:
    def test_lce_baseline_attack_succeeds(self):
        point = run_placement_point(
            "fig3a_lan", "no-privacy", "lce", trials=1, targets_per_trial=10
        )
        assert point.probe_accuracy == 1.0
        assert point.cache_declined == 0
        assert point.verdicts == 10
        assert 0.0 < point.probe_hit_rate <= 1.0

    def test_lcd_on_fat_tree_suppresses_probe(self):
        point = run_placement_point(
            "fat_tree", "no-privacy", "lcd", trials=1, targets_per_trial=10
        )
        # LCD keeps the first copies away from the edge probe router, so
        # the adversary cannot beat coin-flipping by much.
        assert point.probe_accuracy <= 0.7
        assert point.cache_declined > 0

    def test_uniform_scheme_engages_under_lce(self):
        # Producer-driven marking keeps the hot set private, so the
        # scheme disguises probes: accuracy falls to coin-flip and the
        # probe router pays the utility cost (u < 1) that LCD avoids.
        point = run_placement_point(
            "fig3a_lan", "uniform", "lce", trials=1, targets_per_trial=10
        )
        assert point.probe_accuracy <= 0.7
        assert point.utility < 1.0

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            run_placement_point("fig3a_lan", "no-privacy", "mru")

    def test_rejects_tiny_target_count(self):
        with pytest.raises(ValueError, match="targets_per_trial"):
            run_placement_point(
                "fig3a_lan", "no-privacy", "lce", targets_per_trial=1
            )

    def test_deterministic_given_seed(self):
        def run():
            return run_placement_point(
                "fig3a_lan", "uniform", "bernoulli",
                trials=1, targets_per_trial=8, base_seed=77,
            )

        assert run() == run()


class TestSweep:
    def test_sweep_and_frontier_shape(self):
        reporter = BenchReporter("strategy", scale={"test": True})
        frontier = run_placement_sweep(
            topologies=["fig3a_lan"],
            schemes=["no-privacy"],
            strategies=["lce", "lcd"],
            trials=1,
            targets_per_trial=8,
            reporter=reporter,
        )
        assert len(frontier.points) == 2
        assert all(isinstance(p, PlacementPoint) for p in frontier.points)
        assert len(reporter.records) == 2
        assert all(
            "probe_accuracy" in r.meta for r in reporter.records
        )
        payload = frontier.to_dict()
        assert payload["experiment"] == "strategy_placement_frontier"
        assert len(payload["points"]) == 2
        rendered = frontier.render()
        assert "fig3a_lan" in rendered and "lcd" in rendered

    def test_best_privacy_picks_closest_to_coin_flip(self):
        frontier = PlacementFrontier(points=[
            PlacementPoint("t", "s", "lce", 1.0, 0.5, 0.5, 1.0, 0, 8),
            PlacementPoint("t", "s", "lcd", 0.55, 0.2, 0.3, 1.0, 4, 8),
        ])
        assert frontier.best_privacy().strategy == "lcd"

    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topologies"):
            run_placement_sweep(topologies=["moebius"])


class TestStrategyCommand:
    def test_writes_artifact_and_bench_record(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        out = tmp_path / "frontier.json"
        assert main([
            "strategy", "--topologies", "fig3a_lan",
            "--strategies", "lce", "--schemes", "no-privacy",
            "--trials", "1", "--targets", "8", "--out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "best privacy point" in printed
        artifact = json.loads(out.read_text())
        assert artifact["experiment"] == "strategy_placement_frontier"
        assert len(artifact["points"]) == 1
        bench = json.loads((tmp_path / "BENCH_strategy.json").read_text())
        assert bench["schema_version"] == 2
        assert bench["scale"]["strategies"] == ["lce"]
        assert len(bench["records"]) == 1

    def test_no_bench_flag_skips_record(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        out = tmp_path / "frontier.json"
        assert main([
            "strategy", "--topologies", "fig3a_lan",
            "--strategies", "lce", "--schemes", "no-privacy",
            "--trials", "1", "--targets", "8", "--out", str(out),
            "--no-bench",
        ]) == 0
        assert out.exists()
        assert not (tmp_path / "BENCH_strategy.json").exists()
