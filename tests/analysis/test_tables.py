"""Unit tests for plain-text result rendering."""

from __future__ import annotations

import pytest

from repro.analysis.tables import (
    format_histogram_ascii,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.23456], ["b", 2]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.2346" in text  # float formatting
        assert "2" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_no_title(self):
        text = format_table(["x"], [[1]])
        assert not text.startswith("\n")
        assert text.splitlines()[0].startswith("x")


class TestFormatSeries:
    def test_columns_per_series(self):
        text = format_series(
            "c", [1, 2], {"uniform": [0.1, 0.2], "expo": [0.15, 0.25]}
        )
        header = text.splitlines()[0]
        assert "c" in header and "uniform" in header and "expo" in header
        assert "0.2500" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("c", [1, 2], {"bad": [0.1]})


class TestHistogramAscii:
    def test_bars_scale_with_density(self):
        text = format_histogram_ascii([1.0, 2.0], [0.5, 1.0], width=10, label="pdf")
        lines = text.splitlines()
        assert lines[0] == "pdf"
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_zero_density(self):
        text = format_histogram_ascii([1.0], [0.0], width=10)
        assert "#" not in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_histogram_ascii([1.0], [0.5, 0.6])
