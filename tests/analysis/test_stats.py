"""Unit tests for analysis statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_mean_ci,
    empirical_cdf,
    pdf_pair,
    separation_score,
)


class TestPdfPair:
    def test_densities_integrate_to_one(self):
        rng = np.random.default_rng(0)
        pair = pdf_pair(rng.normal(3, 1, 1000), rng.normal(7, 1, 1000), bins=50)
        widths = np.diff(pair.bin_edges)
        assert np.sum(np.asarray(pair.hit_density) * widths) == pytest.approx(1.0)
        assert np.sum(np.asarray(pair.miss_density) * widths) == pytest.approx(1.0)

    def test_shared_grid(self):
        pair = pdf_pair([1.0, 2.0], [8.0, 9.0], bins=10)
        assert pair.bin_edges[0] == 1.0
        assert pair.bin_edges[-1] == 9.0
        assert len(pair.bin_centers) == 10

    def test_disjoint_classes_no_overlap(self):
        pair = pdf_pair([1.0, 1.1, 1.2], [9.0, 9.1, 9.2], bins=20)
        assert pair.overlap() == pytest.approx(0.0)
        assert pair.bayes_success() == pytest.approx(1.0)

    def test_identical_classes_full_overlap(self):
        samples = list(np.random.default_rng(1).normal(5, 1, 2000))
        pair = pdf_pair(samples, samples, bins=30)
        assert pair.overlap() == pytest.approx(1.0)
        assert pair.bayes_success() == pytest.approx(0.5)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            pdf_pair([], [1.0])

    def test_degenerate_range_handled(self):
        pair = pdf_pair([5.0, 5.0], [5.0, 5.0], bins=5)
        assert len(pair.bin_centers) == 5


class TestBootstrap:
    def test_ci_contains_mean(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(10.0, 2.0, 500)
        mean, low, high = bootstrap_mean_ci(samples)
        assert low <= mean <= high
        assert low == pytest.approx(10.0, abs=0.5)

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(3)
        _, l1, h1 = bootstrap_mean_ci(rng.normal(0, 1, 50), seed=1)
        _, l2, h2 = bootstrap_mean_ci(rng.normal(0, 1, 5000), seed=1)
        assert (h2 - l2) < (h1 - l1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)


class TestCdfAndSeparation:
    def test_empirical_cdf(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert list(probs) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_separation_score_scales_with_gap(self):
        rng = np.random.default_rng(4)
        hits = rng.normal(0, 1, 2000)
        assert separation_score(hits, rng.normal(4, 1, 2000)) > separation_score(
            hits, rng.normal(1, 1, 2000)
        )

    def test_separation_score_value(self):
        rng = np.random.default_rng(5)
        score = separation_score(rng.normal(0, 1, 20000), rng.normal(2, 1, 20000))
        assert score == pytest.approx(2.0, abs=0.1)

    def test_separation_needs_two_samples(self):
        with pytest.raises(ValueError):
            separation_score([1.0], [2.0, 3.0])
