"""Integration tests for the scope-field probe."""

from __future__ import annotations

import pytest

from repro.attacks.scope_probe import ScopeProbeAttack
from repro.ndn.topology import local_lan
from repro.sim.process import Timeout


def run_scope_attack(honor_scope: bool, seed: int = 0):
    topo = local_lan(seed=seed)
    topo.router.honor_scope = honor_scope
    hot = [f"/content/hot-{i}" for i in range(5)]
    cold = [f"/content/cold-{i}" for i in range(5)]
    attack = ScopeProbeAttack(topo, probe_timeout=500.0)

    def user_proc():
        for name in hot:
            result = yield from topo.user.fetch(name)
            assert result is not None
            yield Timeout(2.0)

    def adv_proc():
        yield Timeout(200.0)
        yield from attack.run(hot + cold)

    topo.engine.spawn(user_proc(), label="user")
    topo.engine.spawn(adv_proc(), label="adv")
    topo.engine.run()
    return attack, hot


class TestScopeProbe:
    def test_scope_honoring_router_is_perfect_oracle(self):
        """Answered scope-2 probe == definitive cache hit (Section III)."""
        attack, hot = run_scope_attack(honor_scope=True)
        assert attack.accuracy(hot) == 1.0

    def test_hits_have_finite_rtt_misses_infinite(self):
        attack, hot = run_scope_attack(honor_scope=True)
        for verdict in attack.verdicts:
            if verdict.decided_hit:
                assert verdict.rtt < float("inf")
            else:
                assert verdict.rtt == float("inf")

    def test_scope_ignoring_router_answers_everything(self):
        """The countermeasure: disregard scope; all probes are answered
        and the oracle degrades to timing analysis."""
        attack, hot = run_scope_attack(honor_scope=False)
        assert all(v.answered for v in attack.verdicts)
        # The answered-implies-hit decision now mislabels every cold probe.
        assert attack.accuracy(hot) == pytest.approx(0.5)

    def test_accuracy_requires_verdicts(self):
        topo = local_lan(seed=0)
        attack = ScopeProbeAttack(topo)
        with pytest.raises(RuntimeError):
            attack.accuracy([])
