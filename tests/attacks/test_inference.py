"""Tests for the Bayesian request-count inference extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.inference import RequestCountInference
from repro.core.privacy.distributions import (
    DegenerateK,
    TruncatedGeometric,
    UniformK,
)
from repro.core.schemes.uniform import UniformRandomCache


class TestPosteriorMechanics:
    def test_posterior_normalized(self):
        inf = RequestCountInference(UniformK(10), x_max=5, t=12)
        for m in range(13):
            posterior = inf.posterior(m)
            assert sum(posterior.values()) == pytest.approx(1.0)

    def test_impossible_observation_falls_back_to_prior(self):
        # Prefix longer than any k+1 can produce under every hypothesis:
        # with K=3 the max prefix is 3 (k=2 plus fetch) for x=0.
        inf = RequestCountInference(UniformK(3), x_max=2, t=10)
        posterior = inf.posterior(9)
        assert posterior == pytest.approx({0: 1 / 3, 1: 1 / 3, 2: 1 / 3})

    def test_custom_prior_respected(self):
        prior = [0.7, 0.2, 0.1]
        inf = RequestCountInference(UniformK(50), x_max=2, t=3, prior=prior)
        # With a near-uninformative observation the posterior tracks the
        # prior mode.
        assert inf.map_estimate(2) in (0, 1, 2)
        assert inf.report().baseline_accuracy == pytest.approx(0.7)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            RequestCountInference(UniformK(5), x_max=0, t=3)
        with pytest.raises(ValueError):
            RequestCountInference(UniformK(5), x_max=2, t=0)
        with pytest.raises(ValueError):
            RequestCountInference(UniformK(5), x_max=2, t=3, prior=[0.5, 0.5])
        inf = RequestCountInference(UniformK(5), x_max=2, t=3)
        with pytest.raises(ValueError):
            inf.posterior(4)
        with pytest.raises(ValueError):
            inf.likelihood(0, 9)


class TestLeakageSpectrum:
    def test_degenerate_scheme_fully_identified(self):
        """The naive k-threshold leaks x exactly (counting attack)."""
        k = 5
        inf = RequestCountInference(DegenerateK(k), x_max=k, t=k + 2)
        report = inf.report()
        assert report.map_accuracy == pytest.approx(1.0)
        # Every observation pins x: m = k + 1 - x exactly.
        for x in range(k + 1):
            m = min(k + 1 - x, k + 2) if x > 0 else k + 1
            assert inf.map_estimate(m) == x

    def test_uniform_scheme_nearly_flat(self):
        """Large-K uniform: the posterior barely moves off the prior."""
        K, k = 400, 5
        inf = RequestCountInference(UniformK(K), x_max=k, t=K + k)
        report = inf.report()
        # Theorem VI.1 flavor: the identifying mass is O(k/K) per pair.
        assert report.advantage < 0.05
        assert report.information_gain_bits < 0.25

    def test_exponential_leaks_more_than_uniform_at_same_K(self):
        K = 60
        uniform_report = RequestCountInference(
            UniformK(K), x_max=5, t=K + 5
        ).report()
        expo_report = RequestCountInference(
            TruncatedGeometric(0.7, K), x_max=5, t=K + 5
        ).report()
        assert expo_report.map_accuracy > uniform_report.map_accuracy
        assert expo_report.information_gain_bits > uniform_report.information_gain_bits

    def test_smaller_K_leaks_more(self):
        tight = RequestCountInference(UniformK(10), x_max=5, t=20).report()
        loose = RequestCountInference(UniformK(200), x_max=5, t=210).report()
        assert tight.map_accuracy > loose.map_accuracy

    def test_accuracy_bounds(self):
        report = RequestCountInference(UniformK(20), x_max=5, t=30).report()
        assert report.baseline_accuracy <= report.map_accuracy <= 1.0
        assert report.information_gain_bits >= -1e-9


class TestMonteCarloValidation:
    def test_simulated_accuracy_matches_analytic(self):
        K, k = 12, 3
        inf = RequestCountInference(UniformK(K), x_max=k, t=K + k)
        analytic = inf.report().map_accuracy
        simulated = inf.simulate_accuracy(
            lambda rng: UniformRandomCache(K=K, rng=rng), trials=1500
        )
        assert simulated == pytest.approx(analytic, abs=0.05)
