"""Unit tests for multi-fragment amplification (Section III)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.amplification import (
    amplified_success,
    empirical_amplified_success,
    fragments_needed,
    majority_vote,
    mean_rtt_vote,
    success_curve,
)
from repro.attacks.classifier import ThresholdClassifier


class TestAnalyticFormula:
    def test_paper_headline_number(self):
        """p = 0.59, n = 8 → 1 − 0.41^8 ≈ 0.999 (Section III)."""
        assert amplified_success(0.59, 8) == pytest.approx(0.999, abs=0.001)

    def test_single_fragment_is_identity(self):
        assert amplified_success(0.7, 1) == pytest.approx(0.7)

    def test_monotone_in_fragments(self):
        curve = success_curve(0.3, 20)
        assert all(a < b for a, b in zip(curve, curve[1:]))

    def test_certainty_preserved(self):
        assert amplified_success(1.0, 5) == 1.0
        assert amplified_success(0.0, 5) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            amplified_success(1.5, 2)
        with pytest.raises(ValueError):
            amplified_success(0.5, 0)
        with pytest.raises(ValueError):
            success_curve(0.5, 0)


class TestFragmentsNeeded:
    def test_inverts_formula(self):
        n = fragments_needed(0.59, 0.999)
        assert n == 8
        assert amplified_success(0.59, n) >= 0.999
        assert amplified_success(0.59, n - 1) < 0.999

    def test_strong_single_probe_needs_one(self):
        assert fragments_needed(0.999, 0.99) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fragments_needed(0.0, 0.9)
        with pytest.raises(ValueError):
            fragments_needed(0.5, 1.0)


class TestVoting:
    def test_majority_vote(self):
        clf = ThresholdClassifier(threshold=5.0, training_accuracy=1.0)
        verdict = majority_vote([1.0, 2.0, 9.0], clf)
        assert verdict.decided_hit
        assert verdict.fragment_votes == (True, True, False)

    def test_majority_vote_tie_is_miss(self):
        clf = ThresholdClassifier(threshold=5.0, training_accuracy=1.0)
        assert not majority_vote([1.0, 9.0], clf).decided_hit

    def test_majority_vote_empty_rejected(self):
        clf = ThresholdClassifier(threshold=5.0, training_accuracy=1.0)
        with pytest.raises(ValueError):
            majority_vote([], clf)

    def test_mean_rtt_vote(self):
        verdict = mean_rtt_vote([3.0, 3.2, 2.9], hit_mean=3.0, miss_mean=6.0)
        assert verdict.decided_hit
        verdict = mean_rtt_vote([5.8, 6.1], hit_mean=3.0, miss_mean=6.0)
        assert not verdict.decided_hit

    def test_mean_rtt_vote_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_rtt_vote([], 1.0, 2.0)


class TestEmpiricalAmplification:
    def test_amplification_improves_weak_probe(self):
        rng = np.random.default_rng(0)
        hits = rng.normal(200.0, 10.0, 3000)
        misses = rng.normal(205.0, 10.0, 3000)
        single = empirical_amplified_success(hits, misses, fragments=1)
        eight = empirical_amplified_success(hits, misses, fragments=8)
        assert 0.5 < single < 0.7  # the weak Figure 3(c) regime
        assert eight > single + 0.1

    def test_strong_probe_saturates(self):
        hits = [1.0] * 100
        misses = [10.0] * 100
        assert empirical_amplified_success(hits, misses, fragments=2) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            empirical_amplified_success([1.0], [2.0], fragments=0)
        with pytest.raises(ValueError):
            empirical_amplified_success([], [2.0], fragments=1)
