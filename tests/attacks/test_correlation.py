"""Unit tests for the correlation attack and the grouping countermeasure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.correlation import (
    correlation_attack_advantage,
    probe_correlated_set,
)
from repro.core.schemes.grouping import NamespaceGrouping
from repro.core.schemes.uniform import UniformRandomCache
from tests.conftest import make_entry


def ungrouped(rng):
    return UniformRandomCache(K=10, rng=rng)


def grouped(rng):
    return UniformRandomCache(K=10, rng=rng, grouping=NamespaceGrouping(depth=2))


class TestProbeCorrelatedSet:
    def test_unrequested_set_never_yields_hits(self):
        """CM cannot hide misses: fresh content always misses first."""
        scheme = ungrouped(np.random.default_rng(0))
        entries = [make_entry(uri=f"/site/video/frag-{i}") for i in range(20)]
        verdict = probe_correlated_set(scheme, entries, previously_requested=False)
        assert verdict.hits_observed == 0
        assert not verdict.decided_requested

    def test_requested_large_set_usually_detected(self):
        detections = 0
        for seed in range(50):
            scheme = ungrouped(np.random.default_rng(seed))
            entries = [make_entry(uri=f"/site/video/frag-{i}") for i in range(30)]
            verdict = probe_correlated_set(
                scheme, entries, previously_requested=True, requests_per_object=3
            )
            detections += int(verdict.decided_requested)
        # Per-object hit chance = P[k_C < 3] = 3/10; over 30 objects
        # detection is nearly certain: 1 - 0.7^30 ≈ 0.99997.
        assert detections >= 48

    def test_empty_set_rejected(self):
        scheme = ungrouped(np.random.default_rng(0))
        with pytest.raises(ValueError):
            probe_correlated_set(scheme, [], previously_requested=True)

    def test_invalid_request_count(self):
        scheme = ungrouped(np.random.default_rng(0))
        with pytest.raises(ValueError):
            probe_correlated_set(
                scheme, [make_entry()], previously_requested=True,
                requests_per_object=0,
            )


class TestAdvantage:
    def test_ungrouped_advantage_grows_with_set_size(self):
        small = correlation_attack_advantage(ungrouped, group_size=2, trials=400)
        large = correlation_attack_advantage(ungrouped, group_size=25, trials=400)
        assert large > small

    def test_ungrouped_matches_analytic(self):
        """Advantage ≈ 1 − (1 − v/K)^m with v=2, K=10, m=10."""
        advantage = correlation_attack_advantage(
            ungrouped, group_size=10, requests_per_object=2, trials=1500
        )
        analytic = 1 - (1 - 2 / 10) ** 10
        assert advantage == pytest.approx(analytic, abs=0.05)

    def test_grouped_probes_sample_single_trajectory(self):
        """Section VI's fix, stated precisely: with one shared (c, k) per
        group, probing m distinct members walks a single Algorithm 1
        trajectory — the adversary gets one k_C sample, not m independent
        draws.  The observable across members is therefore a monotone
        miss-prefix-then-hits pattern, identical in law to probing a
        single object m times (which is what the theorems bound)."""
        from repro.core.schemes.base import DecisionKind

        for seed in range(30):
            scheme = grouped(np.random.default_rng(seed))
            entries = [make_entry(uri=f"/site/video/frag-{i}") for i in range(15)]
            for entry in entries:
                scheme.on_insert(entry, private=True, now=0.0)
            outputs = [
                scheme.on_request(e, private=True, now=0.0).kind is DecisionKind.HIT
                for e in entries
            ]
            first_hit = outputs.index(True) if True in outputs else len(outputs)
            assert all(outputs[first_hit:]), "hits must persist once started"
            assert not any(outputs[:first_hit]), "prefix must be all misses"

    def test_ungrouped_probes_sample_independent_draws(self):
        """Without grouping the same probe pattern mixes independent
        per-object draws — hits and misses interleave, which is exactly
        the extra information the correlation attack exploits."""
        from repro.core.schemes.base import DecisionKind

        interleavings = 0
        for seed in range(30):
            scheme = ungrouped(np.random.default_rng(seed))
            entries = [make_entry(uri=f"/site/video/frag-{i}") for i in range(15)]
            for entry in entries:
                scheme.on_insert(entry, private=True, now=0.0)
                for _ in range(4):  # push some objects past their k_C
                    scheme.on_request(entry, private=True, now=0.0)
            outputs = [
                scheme.on_request(e, private=True, now=0.0).kind is DecisionKind.HIT
                for e in entries
            ]
            # Count miss-after-hit transitions: impossible for grouped.
            for a, b in zip(outputs, outputs[1:]):
                if a and not b:
                    interleavings += 1
        assert interleavings > 0

    def test_grouping_does_not_hide_popular_groups(self):
        """Past k total group requests the content is 'popular' and hits
        are served — grouping preserves utility rather than hiding
        popularity (Definition IV.3 only protects counts up to k)."""
        grouped_adv = correlation_attack_advantage(
            grouped, group_size=25, requests_per_object=3, trials=200
        )
        assert grouped_adv > 0.9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            correlation_attack_advantage(ungrouped, group_size=0)
        with pytest.raises(ValueError):
            correlation_attack_advantage(ungrouped, group_size=1, trials=0)
