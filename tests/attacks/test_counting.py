"""Unit tests for the counting attack on the naive threshold scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.counting import (
    CountingAttack,
    counting_attack_accuracy,
)
from repro.core.schemes.naive_threshold import NaiveThresholdScheme
from repro.core.schemes.uniform import UniformRandomCache
from tests.conftest import make_entry


def prepared_scheme(k: int, victim_requests: int):
    scheme = NaiveThresholdScheme(k, rng=np.random.default_rng(0))
    entry = make_entry()
    if victim_requests >= 1:
        scheme.on_insert(entry, private=True, now=0.0)
        for _ in range(victim_requests - 1):
            scheme.on_request(entry, private=True, now=0.0)
    return scheme, entry


class TestExactRecovery:
    @pytest.mark.parametrize("victim_requests", [1, 2, 3, 4, 5])
    def test_recovers_victim_count_exactly(self, victim_requests):
        """The paper's claim: Adv learns exactly k − c' prior requests."""
        k = 5
        scheme, entry = prepared_scheme(k, victim_requests)
        attack = CountingAttack(k)
        result = attack.run(scheme, entry, content_cached=True)
        assert result.inferred_prior_requests == victim_requests

    def test_zero_requests_detected(self):
        k = 5
        scheme, entry = prepared_scheme(k, 0)
        attack = CountingAttack(k)
        result = attack.run(scheme, entry, content_cached=False)
        assert result.inferred_prior_requests == 0
        assert result.probes_until_hit == k + 2

    def test_saturated_content_flagged(self):
        k = 3
        scheme, entry = prepared_scheme(k, 10)  # already past threshold
        attack = CountingAttack(k)
        result = attack.run(scheme, entry, content_cached=True)
        assert result.saturated
        assert result.inferred_prior_requests == k + 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CountingAttack(-1)

    def test_no_hit_raises(self):
        # A mismatched (huge) scheme threshold starves the attack.
        scheme, entry = prepared_scheme(50, 1)
        attack = CountingAttack(5)
        with pytest.raises(RuntimeError):
            attack.run(scheme, entry, content_cached=True, max_probes=10)


class TestAccuracySweep:
    def test_naive_scheme_fully_leaks(self):
        """100% recovery over every victim count up to k."""
        assert counting_attack_accuracy(k=5, max_victim_requests=5) == 1.0

    def test_saturation_handled(self):
        assert counting_attack_accuracy(k=3, max_victim_requests=6) == 1.0

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            counting_attack_accuracy(k=3, max_victim_requests=-1)


class TestRandomizedSchemeResists:
    def test_uniform_random_cache_breaks_counting(self):
        """Against Random-Cache the same inference is mostly wrong —
        the randomized k_C is exactly what defeats the attack."""
        rng = np.random.default_rng(7)
        k, K = 5, 100
        correct = 0
        trials = 300
        for trial in range(trials):
            victim_requests = trial % (k + 1)
            scheme = UniformRandomCache(K=K, rng=rng)
            entry = make_entry()
            if victim_requests >= 1:
                scheme.on_insert(entry, private=True, now=0.0)
                for _ in range(victim_requests - 1):
                    scheme.on_request(entry, private=True, now=0.0)
            attack = CountingAttack(k)
            result = attack.run(
                scheme, entry, content_cached=victim_requests >= 1
            )
            correct += int(result.inferred_prior_requests == victim_requests)
        assert correct / trials < 0.3
