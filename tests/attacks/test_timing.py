"""Integration-level tests for the consumer-privacy timing attack."""

from __future__ import annotations

import pytest

from repro.attacks.timing import (
    RttDistributions,
    attack_accuracy,
    collect_rtt_distributions,
)
from repro.ndn.topology import local_host, local_lan


class TestRttDistributions:
    def test_extend_merges(self):
        a = RttDistributions(hit_rtts=[1.0], miss_rtts=[5.0])
        b = RttDistributions(hit_rtts=[1.1], miss_rtts=[5.1])
        a.extend(b)
        assert a.hit_rtts == [1.0, 1.1]
        assert a.miss_rtts == [5.0, 5.1]

    def test_bayes_success_property(self):
        dists = RttDistributions(hit_rtts=[1.0] * 20, miss_rtts=[9.0] * 20)
        assert dists.bayes_success_probability == pytest.approx(1.0)


class TestCollectDistributions:
    def test_lan_campaign_separates_classes(self):
        dists = collect_rtt_distributions(
            local_lan, objects_per_trial=20, trials=2
        )
        assert len(dists.hit_rtts) == 40
        assert len(dists.miss_rtts) == 40
        assert max(dists.hit_rtts) < min(dists.miss_rtts)
        assert dists.bayes_success_probability > 0.99

    def test_local_host_campaign(self):
        dists = collect_rtt_distributions(
            local_host, objects_per_trial=15, trials=2
        )
        assert dists.bayes_success_probability > 0.99

    def test_trials_are_reproducible(self):
        a = collect_rtt_distributions(local_lan, objects_per_trial=5, trials=1)
        b = collect_rtt_distributions(local_lan, objects_per_trial=5, trials=1)
        assert a.hit_rtts == b.hit_rtts
        assert a.miss_rtts == b.miss_rtts

    def test_different_seeds_differ(self):
        a = collect_rtt_distributions(
            local_lan, objects_per_trial=5, trials=1, base_seed=0
        )
        b = collect_rtt_distributions(
            local_lan, objects_per_trial=5, trials=1, base_seed=99
        )
        assert a.hit_rtts != b.hit_rtts

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            collect_rtt_distributions(local_lan, objects_per_trial=0)
        with pytest.raises(ValueError):
            collect_rtt_distributions(local_lan, trials=0)


class TestEndToEndAttack:
    def test_adversary_procedure_accuracy_on_lan(self):
        """The full d1-vs-d2 decision procedure, scored with ground truth."""
        accuracy = attack_accuracy(
            local_lan, targets_per_trial=20, trials=2
        )
        assert accuracy > 0.95

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            attack_accuracy(local_lan, targets_per_trial=1)
