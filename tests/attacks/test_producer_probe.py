"""Integration tests for the producer-privacy probe (Figure 3(c))."""

from __future__ import annotations

import pytest

from repro.attacks.producer_probe import (
    FetchTwiceProbe,
    collect_producer_probe_distributions,
)
from repro.ndn.topology import wan_producer
from repro.sim.process import Timeout


class TestDistributionCampaign:
    def test_weak_single_probe_separation(self):
        """The one-link difference hides in WAN jitter: success well below
        the LAN attack's, in the paper's 55–70% band."""
        dists = collect_producer_probe_distributions(
            wan_producer, objects_per_trial=40, trials=6
        )
        success = dists.bayes_success_probability
        assert 0.52 < success < 0.80

    def test_means_ordered_but_close(self):
        import numpy as np

        dists = collect_producer_probe_distributions(
            wan_producer, objects_per_trial=30, trials=4
        )
        hit_mean = float(np.mean(dists.hit_rtts))
        miss_mean = float(np.mean(dists.miss_rtts))
        assert miss_mean > hit_mean  # producer fetch adds the R-P leg
        assert miss_mean - hit_mean < 15.0  # but only a few ms in ~200

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            collect_producer_probe_distributions(wan_producer, objects_per_trial=1)


class TestFetchTwice:
    def test_second_fetch_is_fast(self):
        """Adv's own first fetch caches at R: d2 << d1 for quiet content."""
        topo = wan_producer(seed=5)
        probe = FetchTwiceProbe(topo, gap_threshold=3.0)

        def adv_proc():
            yield Timeout(10.0)
            yield from probe.probe("/content/quiet-object")

        topo.engine.spawn(adv_proc(), label="adv")
        topo.engine.run()
        verdict = probe.verdicts[0]
        assert verdict.d1 > verdict.d2 - 5.0  # d1 includes the extra R-P leg

    def test_recently_requested_detected(self):
        topo = wan_producer(seed=6)
        probe = FetchTwiceProbe(topo, gap_threshold=3.0)
        done = {}

        def user_proc():
            result = yield from topo.user.fetch("/content/hot", timeout=10_000.0)
            assert result is not None
            done["user"] = True

        def adv_proc():
            yield Timeout(2000.0)
            verdict = yield from probe.probe("/content/hot")
            done["verdict"] = verdict

        topo.engine.spawn(user_proc(), label="user")
        topo.engine.spawn(adv_proc(), label="adv")
        topo.engine.run()
        assert done["user"]
        # Content was cached at R: d1 - d2 should be small (both R-served).
        verdict = done["verdict"]
        assert abs(verdict.d1 - verdict.d2) < 25.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            FetchTwiceProbe(wan_producer(seed=0), gap_threshold=0.0)
