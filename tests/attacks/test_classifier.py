"""Unit tests for RTT hit/miss classifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.classifier import (
    ThresholdClassifier,
    bayes_success,
    gaussian_success,
    optimal_threshold,
)


class TestOptimalThreshold:
    def test_separable_classes_perfect_accuracy(self):
        t, acc = optimal_threshold([1.0, 1.1, 1.2], [5.0, 5.1, 5.2])
        assert acc == 1.0
        assert 1.2 < t <= 5.0

    def test_identical_classes_chance_accuracy(self):
        samples = [1.0, 2.0, 3.0]
        _t, acc = optimal_threshold(samples, samples)
        assert acc == pytest.approx(0.5, abs=0.2)

    def test_overlapping_classes_between_half_and_one(self):
        rng = np.random.default_rng(0)
        hits = rng.normal(3.0, 1.0, 500)
        misses = rng.normal(5.0, 1.0, 500)
        _t, acc = optimal_threshold(hits, misses)
        assert 0.7 < acc < 0.95

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            optimal_threshold([], [1.0])
        with pytest.raises(ValueError):
            optimal_threshold([1.0], [])


class TestBayesSuccess:
    def test_disjoint_distributions(self):
        assert bayes_success([1.0] * 50, [10.0] * 50) == pytest.approx(1.0)

    def test_identical_distributions_near_half(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(5.0, 1.0, 3000)
        success = bayes_success(samples, samples)
        assert success == pytest.approx(0.5, abs=0.02)

    def test_gaussian_case_matches_analytic(self):
        rng = np.random.default_rng(2)
        shift, sigma = 2.0, 1.0
        hits = rng.normal(3.0, sigma, 30000)
        misses = rng.normal(3.0 + shift, sigma, 30000)
        estimated = bayes_success(hits, misses, bins=80)
        analytic = gaussian_success(shift, sigma)
        assert estimated == pytest.approx(analytic, abs=0.03)

    def test_degenerate_equal_values(self):
        assert bayes_success([5.0, 5.0], [5.0, 5.0]) == 0.5

    def test_more_separation_more_success(self):
        rng = np.random.default_rng(3)
        hits = rng.normal(0.0, 1.0, 5000)
        near = rng.normal(1.0, 1.0, 5000)
        far = rng.normal(4.0, 1.0, 5000)
        assert bayes_success(hits, far) > bayes_success(hits, near)


class TestGaussianSuccess:
    def test_no_shift_is_chance(self):
        assert gaussian_success(0.0, 1.0) == pytest.approx(0.5)

    def test_large_shift_is_certain(self):
        assert gaussian_success(100.0, 1.0) == pytest.approx(1.0)

    def test_paper_fig3c_regime(self):
        """A one-link delta inside multi-hop jitter: success ≈ 0.59."""
        assert gaussian_success(5.0, 10.5) == pytest.approx(0.59, abs=0.02)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            gaussian_success(1.0, 0.0)


class TestThresholdClassifier:
    def test_fit_and_classify(self):
        clf = ThresholdClassifier.fit([1.0, 1.2], [4.0, 4.5])
        assert clf.is_hit(1.1)
        assert not clf.is_hit(4.2)
        assert clf.training_accuracy == 1.0

    def test_from_reference_hits_only(self):
        """The paper's d2 procedure: threshold from repeated cached fetches."""
        reference = [2.0, 2.1, 1.9, 2.05, 2.0]
        clf = ThresholdClassifier.from_reference(reference, margin_sigmas=4.0)
        assert clf.is_hit(2.1)
        assert not clf.is_hit(8.0)

    def test_from_reference_single_sample(self):
        clf = ThresholdClassifier.from_reference([3.0])
        assert clf.is_hit(3.0 - 1e-9)

    def test_accuracy_on_holdout(self):
        rng = np.random.default_rng(4)
        clf = ThresholdClassifier.fit(
            rng.normal(2, 0.2, 200), rng.normal(6, 0.5, 200)
        )
        acc = clf.accuracy(rng.normal(2, 0.2, 200), rng.normal(6, 0.5, 200))
        assert acc > 0.99


class TestLikelihoodRatioClassifier:
    def test_separable_classes_perfect(self):
        from repro.attacks.classifier import LikelihoodRatioClassifier

        clf = LikelihoodRatioClassifier([1.0, 1.1, 1.2] * 20, [5.0, 5.1] * 20)
        assert clf.is_hit(1.05)
        assert not clf.is_hit(5.05)

    def test_out_of_range_assignment(self):
        from repro.attacks.classifier import LikelihoodRatioClassifier

        clf = LikelihoodRatioClassifier([2.0] * 10, [6.0] * 10)
        assert clf.is_hit(0.5)        # faster than anything seen: hit
        assert not clf.is_hit(50.0)   # slower than anything seen: miss

    def test_log_ratio_signs(self):
        from repro.attacks.classifier import LikelihoodRatioClassifier

        rng = np.random.default_rng(6)
        clf = LikelihoodRatioClassifier(
            rng.normal(3, 0.5, 2000), rng.normal(6, 0.5, 2000)
        )
        assert clf.log_likelihood_ratio(3.0) > 0
        assert clf.log_likelihood_ratio(6.0) < 0

    def test_matches_bayes_ceiling_on_gaussians(self):
        from repro.attacks.classifier import LikelihoodRatioClassifier

        rng = np.random.default_rng(7)
        shift, sigma = 2.0, 1.0
        train_h = rng.normal(3, sigma, 20000)
        train_m = rng.normal(3 + shift, sigma, 20000)
        clf = LikelihoodRatioClassifier(train_h, train_m, bins=60)
        acc = clf.accuracy(rng.normal(3, sigma, 4000),
                           rng.normal(3 + shift, sigma, 4000))
        assert acc == pytest.approx(gaussian_success(shift, sigma), abs=0.02)

    def test_at_least_as_good_as_threshold_on_overlap(self):
        """On a bimodal miss distribution a single threshold is suboptimal;
        the likelihood rule is not."""
        from repro.attacks.classifier import LikelihoodRatioClassifier

        rng = np.random.default_rng(8)
        hits = rng.normal(5.0, 0.4, 6000)
        # Misses on BOTH sides of the hit mode (e.g. a miss served by a
        # nearer alternate path plus the far producer).
        misses = np.concatenate([
            rng.normal(2.0, 0.4, 3000), rng.normal(8.0, 0.4, 3000),
        ])
        lr = LikelihoodRatioClassifier(hits, misses, bins=60)
        threshold = ThresholdClassifier.fit(hits, misses)
        test_h = rng.normal(5.0, 0.4, 2000)
        test_m = np.concatenate([
            rng.normal(2.0, 0.4, 1000), rng.normal(8.0, 0.4, 1000),
        ])
        assert lr.accuracy(test_h, test_m) > threshold.accuracy(test_h, test_m) + 0.2
