"""Property-based invariants of the cache-hierarchy replay."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.ndn.name import Name
from repro.workload.hierarchy import CacheHierarchy, LevelConfig, replay_hierarchy
from repro.workload.marking import ContentMarking
from repro.workload.trace import Request, Trace

object_ids = st.integers(min_value=0, max_value=12)
request_lists = st.lists(object_ids, min_size=1, max_size=80)
edge_sizes = st.one_of(st.none(), st.integers(min_value=1, max_value=6))
private_fracs = st.sampled_from([0.0, 0.5, 1.0])


def trace_of(ids):
    return Trace([
        Request(time=float(i), user=0, name=Name.parse(f"/s/o{obj}"))
        for i, obj in enumerate(ids)
    ])


def levels(edge_size, scheme=None):
    return [
        LevelConfig("edge", cache_size=edge_size, scheme=scheme, link_delay=1.0),
        LevelConfig("core", cache_size=None, link_delay=4.0),
    ]


@given(request_lists, edge_sizes, private_fracs)
@settings(max_examples=120, deadline=None)
def test_accounting_identity(ids, edge_size, frac):
    trace = trace_of(ids)
    stats = replay_hierarchy(
        trace, levels(edge_size), marking=ContentMarking(frac)
    )
    observable_hits = sum(stats.hits_by_level.values())
    # Every request is either an observable hit somewhere, a disguised/
    # origin response; origin fetches are a subset of the remainder.
    assert observable_hits + stats.origin_fetches <= stats.requests
    assert stats.requests == len(ids)
    assert 0.0 <= stats.total_hit_rate <= 1.0


@given(request_lists, edge_sizes)
@settings(max_examples=100, deadline=None)
def test_latency_bounds(ids, edge_size):
    trace = trace_of(ids)
    stats = replay_hierarchy(trace, levels(edge_size), origin_delay=40.0)
    # Every response costs at least the edge round trip and at most the
    # full path to the origin.
    assert 2.0 - 1e-9 <= stats.mean_latency <= 90.0 + 1e-9


@given(request_lists)
@settings(max_examples=80, deadline=None)
def test_unlimited_levels_first_touch_only_origin(ids):
    trace = trace_of(ids)
    stats = replay_hierarchy(trace, levels(None))
    assert stats.origin_fetches == trace.unique_objects


@given(request_lists, edge_sizes)
@settings(max_examples=80, deadline=None)
def test_all_private_always_delay_no_observable_hits(ids, edge_size):
    trace = trace_of(ids)
    stats = replay_hierarchy(
        trace,
        [
            LevelConfig("edge", cache_size=edge_size,
                        scheme=AlwaysDelayScheme(), link_delay=1.0),
            LevelConfig("core", cache_size=None,
                        scheme=AlwaysDelayScheme(), link_delay=4.0),
        ],
        marking=ContentMarking(1.0),
    )
    assert stats.total_hit_rate == 0.0


@given(request_lists, private_fracs)
@settings(max_examples=80, deadline=None)
def test_origin_traffic_independent_of_delays(ids, frac):
    """Artificial delays never change what is fetched from the origin."""
    trace = trace_of(ids)
    plain = replay_hierarchy(trace, levels(3), marking=ContentMarking(frac))
    delayed = replay_hierarchy(
        trace, levels(3, scheme=AlwaysDelayScheme()),
        marking=ContentMarking(frac),
    )
    assert plain.origin_fetches == delayed.origin_fetches
