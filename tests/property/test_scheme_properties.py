"""Property-based tests on scheme output laws (Algorithm 1 invariants)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.privacy.distributions import (
    DegenerateK,
    TruncatedGeometric,
    UniformK,
)
from repro.core.schemes.base import DecisionKind
from repro.core.schemes.random_cache import RandomCacheScheme
from tests.conftest import make_entry

distributions = st.one_of(
    st.integers(min_value=1, max_value=30).map(UniformK),
    st.integers(min_value=0, max_value=10).map(DegenerateK),
    st.tuples(
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=1, max_value=30),
    ).map(lambda t: TruncatedGeometric(*t)),
)


@given(distributions, st.integers(min_value=1, max_value=60), st.integers())
@settings(max_examples=200, deadline=None)
def test_output_is_miss_prefix_then_hits(dist, requests, seed):
    """Algorithm 1's observable is always misses^j then hits — never a
    miss after a hit (for one content, no eviction)."""
    scheme = RandomCacheScheme(dist, rng=np.random.default_rng(seed % 2**32))
    entry = make_entry()
    scheme.on_insert(entry, private=True, now=0.0)
    outputs = [
        scheme.on_request(entry, private=True, now=0.0).kind is DecisionKind.HIT
        for _ in range(requests)
    ]
    if True in outputs:
        first_hit = outputs.index(True)
        assert all(outputs[first_hit:])


@given(distributions, st.integers())
@settings(max_examples=200, deadline=None)
def test_miss_count_equals_drawn_k(dist, seed):
    """The number of post-insert misses is exactly the drawn k_C."""
    scheme = RandomCacheScheme(dist, rng=np.random.default_rng(seed % 2**32))
    entry = make_entry()
    scheme.on_insert(entry, private=True, now=0.0)
    drawn_k = scheme.group_state(entry.name).k
    misses = 0
    for _ in range(drawn_k + 5):
        decision = scheme.on_request(entry, private=True, now=0.0)
        if decision.kind is DecisionKind.DELAYED_HIT:
            misses += 1
    assert misses == drawn_k


@given(distributions, st.integers())
@settings(max_examples=100, deadline=None)
def test_drawn_k_within_support(dist, seed):
    scheme = RandomCacheScheme(dist, rng=np.random.default_rng(seed % 2**32))
    entry = make_entry()
    scheme.on_insert(entry, private=True, now=0.0)
    k = scheme.group_state(entry.name).k
    assert k >= 0
    if dist.domain_size is not None:
        assert k < dist.domain_size


@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=40),
    st.integers(),
)
@settings(max_examples=100, deadline=None)
def test_disguised_delay_equals_fetch_delay(fetch_delay, requests, seed):
    """Every disguised miss replays exactly γ_C — the property that makes
    it indistinguishable from a genuine miss."""
    scheme = RandomCacheScheme(
        UniformK(10), rng=np.random.default_rng(seed % 2**32)
    )
    entry = make_entry(fetch_delay=float(fetch_delay))
    scheme.on_insert(entry, private=True, now=0.0)
    for _ in range(requests):
        decision = scheme.on_request(entry, private=True, now=0.0)
        if decision.kind is DecisionKind.DELAYED_HIT:
            assert decision.delay == float(fetch_delay)


@given(st.integers(min_value=1, max_value=50), st.integers())
@settings(max_examples=100, deadline=None)
def test_non_private_never_delayed(requests, seed):
    scheme = RandomCacheScheme(
        UniformK(10), rng=np.random.default_rng(seed % 2**32)
    )
    entry = make_entry(private=False)
    scheme.on_insert(entry, private=False, now=0.0)
    for _ in range(requests):
        decision = scheme.on_request(entry, private=False, now=0.0)
        assert decision.kind is DecisionKind.HIT
