"""Property-based round-trip tests for the TLV wire codec."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest
from repro.ndn.wire import decode_packet, encode_packet

component = st.text(
    alphabet=st.characters(blacklist_characters="/", min_codepoint=33,
                           max_codepoint=0x2FFF),
    min_size=1, max_size=20,
)
names = st.lists(component, min_size=0, max_size=6).map(Name)

interests = st.builds(
    Interest,
    name=names,
    nonce=st.integers(min_value=0, max_value=2**40),
    scope=st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
    private=st.booleans(),
    lifetime=st.integers(min_value=1, max_value=100_000).map(float),
    hops=st.integers(min_value=1, max_value=32),
)

datas = st.builds(
    Data,
    name=names,
    producer=st.text(min_size=0, max_size=30),
    private=st.booleans(),
    size=st.integers(min_value=0, max_value=2**24),
    freshness=st.one_of(
        st.none(), st.integers(min_value=1, max_value=10**7).map(float)
    ),
    exact_match_only=st.booleans(),
)


@given(interests)
@settings(max_examples=300, deadline=None)
def test_interest_roundtrip(interest):
    assert decode_packet(encode_packet(interest)) == interest


@given(datas)
@settings(max_examples=300, deadline=None)
def test_data_roundtrip(data):
    assert decode_packet(encode_packet(data)) == data


@given(st.one_of(interests, datas))
@settings(max_examples=200, deadline=None)
def test_encoding_is_deterministic(packet):
    assert encode_packet(packet) == encode_packet(packet)


@given(names)
@settings(max_examples=200, deadline=None)
def test_wire_size_monotone_in_name_length(name):
    short = Interest(name=name, nonce=1)
    longer = Interest(name=name.append("xx"), nonce=1)
    assert len(encode_packet(longer)) > len(encode_packet(short))
