"""Property-based round-trip and fuzz tests for the TLV wire codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ndn.errors import PacketError
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest, Nack
from repro.ndn.wire import decode_packet, encode_packet

component = st.text(
    alphabet=st.characters(blacklist_characters="/", min_codepoint=33,
                           max_codepoint=0x2FFF),
    min_size=1, max_size=20,
)
names = st.lists(component, min_size=0, max_size=6).map(Name)

interests = st.builds(
    Interest,
    name=names,
    nonce=st.integers(min_value=0, max_value=2**40),
    scope=st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
    private=st.booleans(),
    lifetime=st.integers(min_value=1, max_value=100_000).map(float),
    hops=st.integers(min_value=1, max_value=32),
)

datas = st.builds(
    Data,
    name=names,
    producer=st.text(min_size=0, max_size=30),
    private=st.booleans(),
    size=st.integers(min_value=0, max_value=2**24),
    freshness=st.one_of(
        st.none(), st.integers(min_value=1, max_value=10**7).map(float)
    ),
    exact_match_only=st.booleans(),
)


@given(interests)
@settings(max_examples=300, deadline=None)
def test_interest_roundtrip(interest):
    assert decode_packet(encode_packet(interest)) == interest


@given(datas)
@settings(max_examples=300, deadline=None)
def test_data_roundtrip(data):
    assert decode_packet(encode_packet(data)) == data


@given(st.one_of(interests, datas))
@settings(max_examples=200, deadline=None)
def test_encoding_is_deterministic(packet):
    assert encode_packet(packet) == encode_packet(packet)


@given(names)
@settings(max_examples=200, deadline=None)
def test_wire_size_monotone_in_name_length(name):
    short = Interest(name=name, nonce=1)
    longer = Interest(name=name.append("xx"), nonce=1)
    assert len(encode_packet(longer)) > len(encode_packet(short))


# ----------------------------------------------------------------------
# Fuzz hardening: hostile buffers must only ever raise PacketError.
#
# Faces drop anything raising PacketError and count it malformed; any
# other exception type would escape the `except PacketError` guard and
# kill the face's receive task.  So the contract under test is: for
# arbitrary bytes, decode_packet either returns a packet or raises
# exactly PacketError — never IndexError, ValueError, OverflowError,
# UnicodeDecodeError, or anything else.
# ----------------------------------------------------------------------
def _decode_must_be_clean(buffer: bytes) -> None:
    try:
        packet = decode_packet(buffer)
    except PacketError:
        return
    assert isinstance(packet, (Interest, Data, Nack))


@given(st.binary(min_size=0, max_size=400))
@settings(max_examples=500, deadline=None)
def test_arbitrary_bytes_never_leak_exceptions(buffer):
    _decode_must_be_clean(buffer)


@given(st.one_of(interests, datas), st.data())
@settings(max_examples=300, deadline=None)
def test_truncated_valid_packets_never_leak_exceptions(packet, data):
    wire = encode_packet(packet)
    cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    _decode_must_be_clean(wire[:cut])


@given(st.one_of(interests, datas), st.data())
@settings(max_examples=300, deadline=None)
def test_mutated_valid_packets_never_leak_exceptions(packet, data):
    wire = bytearray(encode_packet(packet))
    flips = data.draw(st.integers(min_value=1, max_value=8))
    for _ in range(flips):
        index = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        wire[index] ^= data.draw(st.integers(min_value=1, max_value=255))
    _decode_must_be_clean(bytes(wire))


def test_seeded_random_buffer_sweep_never_leaks_exceptions():
    """Belt-and-braces pure-random sweep, independent of hypothesis."""
    rng = np.random.default_rng(20260808)
    for _ in range(2000):
        size = int(rng.integers(0, 300))
        _decode_must_be_clean(rng.bytes(size))


def test_seeded_mutation_sweep_never_leaks_exceptions():
    """Mutate real encodings byte-by-byte: every single-byte flip is safe."""
    rng = np.random.default_rng(42)
    packets = [
        Interest(name=Name(["a", "b"]), nonce=7, scope=2, lifetime=1000.0),
        Data(name=Name(["a", "b", "c"]), producer="p", size=512, freshness=50.0),
        Nack(name=Name(["x"]), nonce=9, reason="congestion"),
    ]
    for packet in packets:
        wire = encode_packet(packet)
        for index in range(len(wire)):
            for _ in range(4):
                mutated = bytearray(wire)
                mutated[index] ^= int(rng.integers(1, 256))
                _decode_must_be_clean(bytes(mutated))


@pytest.mark.parametrize(
    "buffer",
    [
        b"",
        b"\x05",                     # bare interest type, no length
        b"\x05\xff",                 # 8-byte length prefix, truncated
        b"\x05\x04\x07\x02\x08\xff", # name component length past end
        # Interest whose nonce field claims 9 bytes (would overflow float()
        # paths if width were uncapped).
        b"\x05\x0f\x07\x03\x08\x01a\x0a\x09" + b"\xff" * 9,
        # Data with a producer field that is invalid UTF-8.
        b"\x06\x0a\x07\x03\x08\x01a\x83\x02\xff\xfe",
        # Name component with an embedded '/' (NameError_ territory).
        b"\x05\x08\x07\x04\x08\x02a/\x0a\x01\x01",
    ],
)
def test_known_hostile_buffers_raise_packet_error_only(buffer):
    _decode_must_be_clean(buffer)
