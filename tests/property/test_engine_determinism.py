"""Property-based determinism tests: same seed, same universe."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ndn.link import GaussianJitterDelay, LogNormalDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry


def run_universe(seed: int, loss: float, n_objects: int):
    """A small stochastic scenario; returns its full observable outcome."""
    net = Network(rng=RngRegistry(seed))
    router = net.add_router("R", capacity=max(2, n_objects // 2))
    consumer = net.add_consumer("c")
    net.add_producer("p", "/data")
    net.connect("c", "R", GaussianJitterDelay(1.5, 0.2), loss_rate=loss)
    net.connect("R", "p", LogNormalDelay(2.0, 0.5))
    net.add_route("R", "/data", "p")
    rtts = []

    def proc():
        for i in range(n_objects):
            result = yield from consumer.fetch(f"/data/o{i % 7}", timeout=80.0)
            rtts.append(round(result.rtt, 9) if result else None)
            yield Timeout(3.0)

    net.spawn(proc(), "driver")
    end = net.run()
    return (
        tuple(rtts),
        end,
        router.monitor.counter("cs_hit"),
        router.cs.evictions,
        net.engine.events_processed,
    )


@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from([0.0, 0.1, 0.3]),
    st.integers(min_value=1, max_value=25),
)
@settings(max_examples=25, deadline=None)
def test_identical_seeds_identical_universes(seed, loss, n_objects):
    assert run_universe(seed, loss, n_objects) == run_universe(
        seed, loss, n_objects
    )


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_different_seeds_differ_somewhere(seed):
    # With jittery links two seeds virtually never produce identical RTTs.
    a = run_universe(seed, 0.0, 10)
    b = run_universe(seed + 1, 0.0, 10)
    assert a[0] != b[0]


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=20, deadline=None)
def test_replay_determinism(seed):
    from repro.core.schemes.uniform import UniformRandomCache
    from repro.workload.ircache import small_test_trace
    from repro.workload.marking import ContentMarking
    from repro.workload.replay import replay

    trace = small_test_trace(requests=400, seed=seed)

    def run():
        return replay(
            trace,
            scheme=UniformRandomCache.for_privacy_target(3, 0.1),
            marking=ContentMarking(0.3, salt=seed),
            cache_size=40,
            seed=seed,
        )

    a, b = run(), run()
    assert (a.hits, a.disguised_hits, a.misses, a.evictions) == (
        b.hits, b.disguised_hits, b.misses, b.evictions
    )
