"""Property-based tests for the indistinguishability machinery."""

from __future__ import annotations

import math

from hypothesis import assume, given, settings, strategies as st

from repro.core.privacy.indistinguishability import (
    min_delta,
    min_epsilon,
    total_variation,
)


@st.composite
def distribution(draw, outcomes=6):
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=outcomes,
            max_size=outcomes,
        )
    )
    total = sum(weights)
    assume(total > 1e-6)
    return {i: w / total for i, w in enumerate(weights) if w > 0}


@given(distribution(), distribution(), st.floats(min_value=0.0, max_value=3.0))
@settings(max_examples=200, deadline=None)
def test_delta_in_valid_range(d1, d2, eps):
    result = min_delta(d1, d2, eps)
    assert 0.0 <= result.delta <= 2.0


@given(distribution(), distribution())
@settings(max_examples=200, deadline=None)
def test_delta_monotone_in_epsilon(d1, d2):
    deltas = [min_delta(d1, d2, eps).delta for eps in (0.0, 0.5, 1.0, 2.0)]
    assert all(a >= b - 1e-12 for a, b in zip(deltas, deltas[1:]))


@given(distribution())
@settings(max_examples=100, deadline=None)
def test_self_distance_zero(d):
    assert min_delta(d, d, 0.0).delta == 0.0
    assert total_variation(d, d) == 0.0


@given(distribution(), distribution())
@settings(max_examples=200, deadline=None)
def test_symmetry(d1, d2):
    for eps in (0.0, 0.7):
        assert min_delta(d1, d2, eps).delta == min_delta(d2, d1, eps).delta
    assert total_variation(d1, d2) == total_variation(d2, d1)


@given(distribution(), distribution())
@settings(max_examples=150, deadline=None)
def test_delta_at_least_2tv_at_zero_eps(d1, d2):
    assert min_delta(d1, d2, 0.0).delta >= 2 * total_variation(d1, d2) - 1e-9


@given(distribution(), distribution())
@settings(max_examples=100, deadline=None)
def test_min_epsilon_consistent_with_min_delta(d1, d2):
    """δ_min at the ε returned for a budget must fit within that budget."""
    budget = 0.3
    eps = min_epsilon(d1, d2, budget)
    if math.isfinite(eps):
        achieved = min_delta(d1, d2, eps + 1e-9).delta
        assert achieved <= budget + 1e-6


@given(distribution(), distribution(), st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=150, deadline=None)
def test_bad_outcomes_have_combined_mass_delta(d1, d2, eps):
    result = min_delta(d1, d2, eps)
    mass = sum(d1.get(o, 0.0) + d2.get(o, 0.0) for o in result.bad_outcomes)
    assert math.isclose(mass, result.delta, rel_tol=1e-9, abs_tol=1e-9)
