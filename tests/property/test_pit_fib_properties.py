"""Property-based tests for PIT and FIB invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ndn.fib import Fib
from repro.ndn.name import Name
from repro.ndn.packets import Interest
from repro.ndn.pit import Pit

uri = st.lists(
    st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4
).map(lambda parts: Name(parts))


@given(st.lists(st.tuples(uri, st.integers(0, 3)), max_size=40))
@settings(max_examples=150, deadline=None)
def test_pit_satisfy_removes_exactly_one(entries):
    pit = Pit()
    clock = 0.0
    for name, face in entries:
        clock += 1.0
        pit.insert_or_collapse(Interest(name=name), f"face{face}", now=clock)
    for name, _face in entries:
        before = len(pit)
        result = pit.satisfy(name)
        after = len(pit)
        if result is not None:
            assert after == before - 1
            assert result.name.is_prefix_of(name)
        else:
            assert after == before


@given(st.lists(st.tuples(uri, st.integers(0, 3)), min_size=1, max_size=40))
@settings(max_examples=150, deadline=None)
def test_pit_faces_unique_per_entry(entries):
    pit = Pit()
    for name, face in entries:
        pit.insert_or_collapse(Interest(name=name), f"face{face}", now=0.0)
    for pending in pit.names:
        entry = pit.lookup(pending)
        assert len(entry.faces) == len(set(entry.faces))


@given(st.lists(st.tuples(uri, st.integers(0, 3)), max_size=30), uri)
@settings(max_examples=150, deadline=None)
def test_fib_lpm_is_longest_registered_prefix(routes, query):
    fib = Fib()
    for prefix, face in routes:
        fib.add_route(prefix, f"face{face}")
    hops = fib.longest_prefix_match(query)
    registered = {prefix for prefix, _ in routes}
    matching = [p for p in registered if p.is_prefix_of(query)]
    if matching:
        assert hops is not None
        best_len = max(len(p) for p in matching)
        # The returned hop set belongs to a prefix of maximal length.
        returned_prefixes = [
            p for p in matching
            if any(h.face in {f"face{f}" for pr, f in routes if pr == p} for h in hops)
        ]
        assert any(len(p) == best_len for p in returned_prefixes)
    else:
        assert hops is None


@given(st.lists(st.tuples(uri, st.integers(0, 3), st.integers(0, 9)), max_size=30))
@settings(max_examples=150, deadline=None)
def test_fib_next_hop_is_cheapest(routes):
    fib = Fib()
    for prefix, face, cost in routes:
        fib.add_route(prefix, f"face{face}", cost=cost)
    for prefix, _face, _cost in routes:
        hops = fib.longest_prefix_match(prefix)
        assert hops is not None
        costs = [h.cost for h in hops]
        assert costs == sorted(costs)
        assert fib.next_hop(prefix) is hops[0].face
