"""Property-based tests for Name invariants."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.ndn.name import Name

component = st.text(
    alphabet=st.characters(blacklist_characters="/", min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=12,
)
components = st.lists(component, min_size=0, max_size=6)


@given(components)
def test_parse_str_roundtrip(comps):
    name = Name(comps)
    assert Name.parse(str(name)) == name


@given(components)
def test_prefix_of_self(comps):
    name = Name(comps)
    assert name.is_prefix_of(name)


@given(components, components)
def test_prefix_relation_via_components(a, b):
    na, nb = Name(a), Name(b)
    expected = tuple(b[: len(a)]) == tuple(a)
    assert na.is_prefix_of(nb) == expected


@given(components, component)
def test_parent_inverts_append(comps, extra):
    name = Name(comps)
    assert name.append(extra).parent() == name


@given(components)
def test_prefixes_are_all_prefixes(comps):
    name = Name(comps)
    listed = list(name.prefixes())
    assert len(listed) == len(name) + 1
    for prefix in listed:
        assert prefix.is_prefix_of(name)
    # Longest first, strictly decreasing length.
    lengths = [len(p) for p in listed]
    assert lengths == sorted(lengths, reverse=True)


@given(components, components)
def test_prefix_transitivity(a, b):
    na, nb = Name(a), Name(b)
    if na.is_prefix_of(nb):
        for prefix in na.prefixes():
            assert prefix.is_prefix_of(nb)


@given(components, components)
def test_equality_consistent_with_hash(a, b):
    na, nb = Name(a), Name(b)
    if na == nb:
        assert hash(na) == hash(nb)


@given(components, components)
def test_mutual_prefix_implies_equal(a, b):
    na, nb = Name(a), Name(b)
    if na.is_prefix_of(nb) and nb.is_prefix_of(na):
        assert na == nb


@given(components)
def test_prefix_lengths(comps):
    name = Name(comps)
    for length in range(len(name) + 1):
        assert len(name.prefix(length)) == length
