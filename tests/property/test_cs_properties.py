"""Property-based tests for Content Store invariants under random workloads."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ndn.cs import ContentStore
from repro.ndn.name import Name
from repro.ndn.packets import Data
from repro.ndn.replacement import FifoPolicy, LfuPolicy, LruPolicy

# Operations: (op, object id) with a small id space to force collisions.
ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "remove"]),
        st.integers(min_value=0, max_value=30),
    ),
    max_size=120,
)

policies = st.sampled_from([LruPolicy, FifoPolicy, LfuPolicy])
capacities = st.one_of(st.none(), st.integers(min_value=1, max_value=10))


def apply_ops(cs: ContentStore, operations) -> None:
    clock = 0.0
    for op, obj in operations:
        clock += 1.0
        name = Name.parse(f"/s/o{obj}")
        if op == "insert":
            cs.insert(Data(name=name), now=clock)
        elif op == "lookup":
            cs.lookup_exact(name, now=clock)
        else:
            cs.remove(name)


@given(ops, capacities, policies)
@settings(max_examples=150, deadline=None)
def test_size_never_exceeds_capacity(operations, capacity, policy_cls):
    cs = ContentStore(capacity=capacity, policy=policy_cls())
    apply_ops(cs, operations)
    if capacity is not None:
        assert len(cs) <= capacity


@given(ops, capacities, policies)
@settings(max_examples=150, deadline=None)
def test_policy_tracks_exactly_cached_names(operations, capacity, policy_cls):
    cs = ContentStore(capacity=capacity, policy=policy_cls())
    apply_ops(cs, operations)
    assert len(cs.policy) == len(cs)


@given(ops, capacities, policies)
@settings(max_examples=100, deadline=None)
def test_accounting_identity(operations, capacity, policy_cls):
    """insertions == still-cached + evicted + explicitly-removed."""
    cs = ContentStore(capacity=capacity, policy=policy_cls())
    removed = 0
    clock = 0.0
    for op, obj in operations:
        clock += 1.0
        name = Name.parse(f"/s/o{obj}")
        if op == "insert":
            cs.insert(Data(name=name), now=clock)
        elif op == "lookup":
            cs.lookup_exact(name, now=clock)
        else:
            if cs.remove(name) is not None:
                removed += 1
    assert cs.insertions == len(cs) + cs.evictions + removed


@given(ops, capacities)
@settings(max_examples=100, deadline=None)
def test_prefix_index_consistent(operations, capacity):
    """Prefix lookups find a name iff some cached name extends the prefix."""
    cs = ContentStore(capacity=capacity)
    apply_ops(cs, operations)
    cached = set(cs.names)
    prefix = Name.parse("/s")
    found = cs.lookup(prefix, now=9999.0, touch=False)
    if cached:
        assert found is not None
        assert prefix.is_prefix_of(found.name)
    else:
        assert found is None


@given(ops)
@settings(max_examples=100, deadline=None)
def test_eviction_listener_sees_every_eviction(operations):
    cs = ContentStore(capacity=3)
    evicted = []
    cs.add_evict_listener(lambda entry: evicted.append(entry.name))
    apply_ops(cs, operations)
    assert len(evicted) == cs.evictions
    # Evicted names are no longer cached unless re-inserted later; at
    # minimum the listener got real names.
    for name in evicted:
        assert isinstance(name, Name)
