"""Property tests: strategy RNG determinism + hop-count TLV hardening."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ndn.errors import PacketError
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest, Nack
from repro.ndn.strategy import make_strategy
from repro.ndn.wire import decode_packet, encode_packet, fast_wire_size
from repro.sim.rng import RngRegistry

router_names = st.lists(
    st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12),
    min_size=1, max_size=6, unique=True,
)


def decisions(kind, registry, router, hop_sequence, **params):
    """The admission decision sequence one router's strategy makes."""
    strategy = make_strategy(
        kind, rng=registry.stream(f"caching:{router}"), **params
    )
    name = Name.parse("/content/x")
    return [strategy.admit(name, hops, None) for hops in hop_sequence]


# ----------------------------------------------------------------------
# Seeding discipline: a router's admission decisions are a pure function
# of (root seed, router name, decision index).  Worker count and stream
# construction order must not matter — a parallel sweep shard that only
# builds *its* routers sees the same streams as a run that builds all of
# them in any order.
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    routers=router_names,
    hops=st.lists(st.integers(min_value=0, max_value=12),
                  min_size=1, max_size=40),
    kind=st.sampled_from(["bernoulli", "probcache"]),
)
@settings(max_examples=150, deadline=None)
def test_decisions_independent_of_construction_order(seed, routers, hops, kind):
    forward = RngRegistry(seed)
    reverse = RngRegistry(seed)
    got_forward = {
        r: decisions(kind, forward, r, hops) for r in routers
    }
    got_reverse = {
        r: decisions(kind, reverse, r, hops) for r in reversed(routers)
    }
    assert got_forward == got_reverse


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    routers=router_names,
    hops=st.lists(st.integers(min_value=0, max_value=12),
                  min_size=1, max_size=40),
    kind=st.sampled_from(["bernoulli", "probcache"]),
    workers=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_decisions_independent_of_worker_sharding(
    seed, routers, hops, kind, workers
):
    """Shard the routers across N 'workers', each with its own registry
    (as a process pool would); the union must equal the 1-worker run."""
    single = RngRegistry(seed)
    whole = {r: decisions(kind, single, r, hops) for r in routers}
    sharded = {}
    for w in range(workers):
        registry = RngRegistry(seed)
        for r in routers[w::workers]:
            sharded[r] = decisions(kind, registry, r, hops)
    assert sharded == whole


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    router=st.text(alphabet="abc0", min_size=1, max_size=8),
    hops=st.lists(st.integers(min_value=0, max_value=12),
                  min_size=1, max_size=30),
)
@settings(max_examples=100, deadline=None)
def test_unrelated_streams_do_not_perturb_decisions(seed, router, hops):
    plain = RngRegistry(seed)
    noisy = RngRegistry(seed)
    # Consuming other namespaces (policy:, link:) must not move caching:.
    noisy.stream(f"policy:{router}").random(17)
    noisy.stream("link:a<->b").random(5)
    assert decisions("probcache", plain, router, hops) == decisions(
        "probcache", noisy, router, hops
    )


# ----------------------------------------------------------------------
# Wire: the origin-hops TLV round-trips, stays byte-identical when zero,
# and never widens the decoder's failure modes beyond PacketError.
# ----------------------------------------------------------------------
component = st.text(
    alphabet=st.characters(blacklist_characters="/", min_codepoint=33,
                           max_codepoint=0x2FFF),
    min_size=1, max_size=20,
)
names = st.lists(component, min_size=0, max_size=6).map(Name)

datas_with_hops = st.builds(
    Data,
    name=names,
    producer=st.text(min_size=0, max_size=30),
    private=st.booleans(),
    size=st.integers(min_value=0, max_value=2**24),
    freshness=st.one_of(
        st.none(), st.integers(min_value=1, max_value=10**7).map(float)
    ),
    exact_match_only=st.booleans(),
    origin_hops=st.integers(min_value=0, max_value=200),
)


@given(datas_with_hops)
@settings(max_examples=300, deadline=None)
def test_origin_hops_roundtrip(data):
    decoded = decode_packet(encode_packet(data))
    assert decoded == data
    assert decoded.origin_hops == data.origin_hops


@given(datas_with_hops)
@settings(max_examples=200, deadline=None)
def test_fast_wire_size_matches_encoding(data):
    assert fast_wire_size(data) == len(encode_packet(data))


@given(datas_with_hops.filter(lambda d: d.origin_hops > 0))
@settings(max_examples=150, deadline=None)
def test_zero_hops_encoding_is_hop_free(data):
    """origin_hops=0 must encode byte-identically to a pre-TLV build."""
    baseline = Data(
        name=data.name, producer=data.producer, private=data.private,
        size=data.size, freshness=data.freshness,
        exact_match_only=data.exact_match_only,
    )
    assert encode_packet(baseline) == encode_packet(data.at_origin())
    assert len(encode_packet(data)) > len(encode_packet(baseline))


@given(datas_with_hops, st.data())
@settings(max_examples=300, deadline=None)
def test_mutated_hop_packets_never_leak_exceptions(data, draw):
    wire = bytearray(encode_packet(data))
    flips = draw.draw(st.integers(min_value=1, max_value=8))
    for _ in range(flips):
        index = draw.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        wire[index] ^= draw.draw(st.integers(min_value=1, max_value=255))
    try:
        packet = decode_packet(bytes(wire))
    except PacketError:
        return
    assert isinstance(packet, (Interest, Data, Nack))


@given(datas_with_hops, st.data())
@settings(max_examples=200, deadline=None)
def test_truncated_hop_packets_never_leak_exceptions(data, draw):
    wire = encode_packet(data)
    cut = draw.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    try:
        packet = decode_packet(wire[:cut])
    except PacketError:
        return
    assert isinstance(packet, (Interest, Data, Nack))
