"""Tests for the runtime validation subsystem."""
