"""Differential validation: oracle replay vs the fast kernel."""

from __future__ import annotations

import dataclasses

import pytest

from repro.validation import (
    DifferentialCase,
    DifferentialReport,
    default_differential_cases,
    diff_replay_stats,
    validate_differential,
)
from repro.validation.differential import CaseResult, small_validation_trace
from repro.workload.replay import replay


@pytest.fixture(scope="module")
def tiny_trace():
    return small_validation_trace(requests=400, seed=1)


class TestDiffReplayStats:
    def test_identical_stats_diff_empty(self, tiny_trace):
        from repro.perf.parallel import build_scheme

        stats = replay(tiny_trace, scheme=build_scheme("no-privacy", seed=0))
        assert diff_replay_stats(stats, stats) == []

    def test_doctored_field_is_named(self, tiny_trace):
        from repro.perf.parallel import build_scheme

        stats = replay(tiny_trace, scheme=build_scheme("no-privacy", seed=0))
        doctored = dataclasses.replace(stats, hits=stats.hits + 1)
        mismatches = diff_replay_stats(stats, doctored)
        assert len(mismatches) == 1
        assert mismatches[0].startswith("hits:")


class TestCaseGrid:
    def test_default_grid_covers_schemes_and_sizes(self):
        cases = default_differential_cases(seed=4)
        assert len(cases) == 8
        assert {c.scheme for c in cases} == {
            "no-privacy", "always-delay", "uniform", "exponential",
        }
        assert {c.cache_size for c in cases} == {64, None}
        assert all(c.seed == 4 for c in cases)
        assert len({c.label for c in cases}) == len(cases)

    def test_label_spells_out_the_configuration(self):
        case = DifferentialCase(scheme="uniform", cache_size=None, seed=2)
        assert case.label == "uniform/cap=inf/mark=0.3/seed=2"


class TestValidateDifferential:
    def test_full_grid_is_bit_identical(self, tiny_trace):
        report = validate_differential(trace=tiny_trace, seed=1)
        assert report.ok, report.summary()
        assert report.failures == []
        assert report.trace_requests == len(tiny_trace)
        assert len(report.results) == 8
        assert report.summary().count("ok") == 8

    def test_single_case_subset(self, tiny_trace):
        report = validate_differential(
            trace=tiny_trace,
            cases=[DifferentialCase(scheme="exponential", cache_size=16, seed=1)],
        )
        assert report.ok
        assert len(report.results) == 1
        # The oracle actually did work (this is not a vacuous pass).
        assert report.results[0].oracle.requests == len(tiny_trace)

    def test_report_surfaces_mismatches(self, tiny_trace):
        good = validate_differential(
            trace=tiny_trace,
            cases=[DifferentialCase(scheme="no-privacy", seed=1)],
        ).results[0]
        doctored = CaseResult(
            case=good.case,
            oracle=good.oracle,
            fast=dataclasses.replace(good.fast, misses=good.fast.misses + 7),
            mismatches=diff_replay_stats(
                good.oracle, dataclasses.replace(good.fast, misses=good.fast.misses + 7)
            ),
        )
        report = DifferentialReport(
            results=[good, doctored], trace_requests=len(tiny_trace)
        )
        assert not report.ok
        assert report.failures == [doctored]
        assert "MISMATCH" in report.summary()
        assert "misses" in report.summary()
