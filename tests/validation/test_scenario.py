"""The canonical overload scenario at test scale."""

from __future__ import annotations

import pytest

from repro.ndn.admission import InterestRateLimit
from repro.validation import InvariantChecker, run_overload_scenario

FAST = dict(
    fetches=10,
    fetch_interval=20.0,
    flood_start=50.0,
    flood_end=250.0,
    flood_interval=4.0,
    flood_lifetime=200.0,
    check_interval=100.0,
)


class TestOverloadScenario:
    def test_unbounded_baseline_swells_and_stays_consistent(self):
        result = run_overload_scenario(pit_capacity=None, **FAST)
        assert result.attempted == 10
        assert result.delivery_rate == 1.0
        # ~lifetime/interval flood entries dangle at once.
        assert result.peak_pit_size >= 40
        assert result.checker.checks_run > 0
        result.checker.assert_ok()

    def test_bounded_router_holds_the_cap_and_delivers(self):
        result = run_overload_scenario(
            pit_capacity=8,
            pit_overflow="evict-oldest-expiry",
            rate_limit=InterestRateLimit(rate=200.0, burst=20.0),
            **FAST,
        )
        assert result.peak_pit_size <= 8
        assert result.delivery_rate >= 0.9
        assert result.router_summary["nack_out"] > 0
        result.checker.assert_ok()

    def test_pollution_adds_cs_churn(self):
        clean = run_overload_scenario(pit_capacity=8, cs_capacity=4, **FAST)
        polluted = run_overload_scenario(
            pit_capacity=8, cs_capacity=4, pollution=True, **FAST
        )
        assert (
            polluted.router_summary["cs_evictions"]
            > clean.router_summary["cs_evictions"]
        )
        polluted.checker.assert_ok()

    def test_caller_supplied_checker_is_used(self):
        checker = InvariantChecker()
        result = run_overload_scenario(pit_capacity=8, checker=checker, **FAST)
        assert result.checker is checker
        assert checker.checks_run > 0

    def test_result_exposes_the_summary_observables(self):
        result = run_overload_scenario(pit_capacity=8, **FAST)
        for key in (
            "pit_size", "pit_peak_size", "pit_capacity", "rate_limited",
            "nack_in", "nack_out", "cs_size", "cs_evictions",
        ):
            assert key in result.router_summary
        assert result.events > 0
        assert result.delivery_rate == pytest.approx(
            result.delivered / result.attempted
        )
