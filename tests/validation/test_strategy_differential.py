"""Strategy × scheme × policy differential grid + compiler fallback."""

from __future__ import annotations

import pytest

from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.ndn.strategy import LcdStrategy
from repro.sim.batch import (
    BatchCompileError,
    ConsumerScript,
    FetchStep,
    SleepStep,
    diff_observables,
    run_scripts,
    run_scripts_reference,
)
from repro.sim.batch.compile import compile_topology
from repro.validation.differential import (
    TopologyCase,
    default_topology_cases,
    validate_topology_differential,
)


def strategy_cases():
    return [c for c in default_topology_cases() if c.caching != "lce"]


def test_grid_includes_strategy_axis():
    cases = strategy_cases()
    # Every non-LCE strategy appears, on more than one topology, and at
    # least one strategy case rides a non-default replacement policy.
    assert {c.caching for c in cases} == {
        "lcd", "probcache", "edge", "cl4m", "bernoulli",
    }
    assert len({c.topology for c in cases}) >= 3
    assert {c.policy for c in cases} != {"lru"}


def test_strategy_cases_bit_identical():
    report = validate_topology_differential(cases=strategy_cases())
    assert report.ok, report.summary()


def test_fallback_case_runs_reference_and_matches():
    fallback = [c for c in default_topology_cases() if c.expect_fallback]
    assert fallback, "grid must include a transparent-fallback case"
    report = validate_topology_differential(cases=fallback)
    assert report.ok, report.summary()
    for result in report.results:
        assert result.batch.kernel == "reference"


def two_hop_network(caching=None, mixed=False):
    """C - R1 - R2 - p, with a strategy spec per router."""
    net = Network()
    net.add_consumer("C0")
    net.add_router("R1", capacity=4, caching=caching)
    net.add_router("R2", capacity=4, caching=caching)
    net.add_producer("p", "/content")
    net.connect("C0", "R1", FixedDelay(1.0))
    net.connect("R1", "R2", FixedDelay(1.0))
    net.connect("R2", "p", FixedDelay(1.0))
    net.add_route_chain("/content", "R1", "R2", "p")
    if mixed:
        # Simulate a network assembled from parts: one router counts
        # origin hops, the other does not.
        net["R1"].count_origin_hops = True
        net["R2"].count_origin_hops = False
    return net


SCRIPTS = [
    ConsumerScript(
        consumer="C0",
        steps=(
            FetchStep("/content/a", timeout=4000.0),
            SleepStep(5.0),
            FetchStep("/content/a", timeout=4000.0),
            FetchStep("/content/b", timeout=4000.0),
        ),
    )
]


class UnloweredStrategy(LcdStrategy):
    """A user-defined subclass the compiler must refuse (exact-type
    lowering), triggering the documented reference fallback."""

    kind = "lcd-custom"


def test_custom_strategy_subclass_refused_by_compiler():
    net = two_hop_network(caching=UnloweredStrategy())
    with pytest.raises(BatchCompileError, match="unsupported caching strategy"):
        compile_topology(net, SCRIPTS)


def test_custom_strategy_subclass_falls_back_transparently():
    net = two_hop_network(caching=UnloweredStrategy())
    batch = run_scripts(net, SCRIPTS, kernel="auto")
    assert batch.kernel == "reference"
    oracle = run_scripts_reference(
        two_hop_network(caching=UnloweredStrategy()), SCRIPTS
    )
    assert diff_observables(oracle, batch) == []


def test_custom_strategy_subclass_strict_kernel_raises():
    net = two_hop_network(caching=UnloweredStrategy())
    with pytest.raises(BatchCompileError):
        run_scripts(net, SCRIPTS, kernel="batch")


def test_mixed_hop_counting_refused():
    net = two_hop_network(caching="lce", mixed=True)
    with pytest.raises(BatchCompileError, match="count_origin_hops"):
        compile_topology(net, SCRIPTS)


@pytest.mark.parametrize("caching", ["lcd", "probcache", "bernoulli"])
def test_builtin_strategies_compile_and_match(caching):
    oracle = run_scripts_reference(two_hop_network(caching=caching), SCRIPTS)
    batch = run_scripts(two_hop_network(caching=caching), SCRIPTS, kernel="batch")
    assert batch.kernel == "batch"
    assert diff_observables(oracle, batch) == []


def test_declined_admissions_visible_in_observables():
    batch = run_scripts(two_hop_network(caching="lcd"), SCRIPTS, kernel="batch")
    declined = sum(
        counters.get("cache_declined", 0)
        for counters in batch.router_counters.values()
    )
    assert declined > 0
