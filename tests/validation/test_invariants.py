"""InvariantChecker: detects seeded violations, stays silent on clean runs."""

from __future__ import annotations

import pytest

from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry
from repro.validation import InvariantChecker, InvariantError, Violation


def chain(seed=0, **router_kwargs):
    net = Network(rng=RngRegistry(seed))
    net.add_router("R", capacity=4, **router_kwargs)
    net.add_consumer("c")
    net.add_producer("p", "/data")
    net.connect("c", "R", FixedDelay(1.0))
    net.connect("R", "p", FixedDelay(3.0))
    net.add_route("R", "/data", "p")
    return net


def run_workload(net, count=12, gap=20.0):
    consumer = net["c"]

    def proc():
        for i in range(count):
            yield from consumer.fetch(f"/data/obj-{i % 6}")
            yield Timeout(gap)

    net.spawn(proc(), "workload")
    net.run()


class TestCleanRuns:
    def test_clean_network_has_zero_violations(self):
        net = chain()
        run_workload(net)
        checker = InvariantChecker()
        assert checker.check_network(net) == []
        assert checker.checks_run == 1
        checker.assert_ok()

    def test_bounded_router_stays_clean(self):
        net = chain(pit_capacity=2, pit_overflow="evict-oldest-expiry")
        run_workload(net)
        checker = InvariantChecker()
        checker.assert_ok(net)
        assert checker.checks_run == 1


class TestSeededViolations:
    def test_law_a_catches_unclassified_interest(self):
        net = chain()
        run_workload(net)
        net["R"].monitor.count("interest_in")  # one phantom ingress
        found = InvariantChecker().check_network(net)
        assert [v.law for v in found] == ["A:interest-conservation"]
        assert found[0].router == "R"

    def test_law_b_catches_leaked_pit_accounting(self):
        net = chain()
        run_workload(net)
        net["R"].monitor.count("pit_insert")
        found = InvariantChecker().check_network(net)
        assert [v.law for v in found] == [
            "A:interest-conservation",
            "B:pit-ledger",
        ]

    def test_law_c_catches_capacity_breach(self):
        net = chain()
        run_workload(net)
        router = net["R"]
        # Shrink the declared capacity below the observed peak.
        router.pit.capacity = 0.5
        found = InvariantChecker().check_network(net)
        assert any(v.law == "C:pit-capacity" for v in found)

    def test_law_c_catches_cs_overflow(self):
        net = chain()
        run_workload(net)
        net["R"].cs.capacity = 1
        found = InvariantChecker().check_network(net)
        assert [v.law for v in found] == ["C:cs-capacity"]

    def test_law_d_catches_unbalanced_cs_ledger(self):
        net = chain()
        run_workload(net)
        net["R"].cs.insertions += 1
        found = InvariantChecker().check_network(net)
        assert [v.law for v in found] == ["D:cs-ledger"]

    def test_assert_ok_raises_with_every_violation_listed(self):
        checker = InvariantChecker()
        checker.violations.append(Violation("R", "A:interest-conservation", "x"))
        checker.violations.append(Violation("S", "D:cs-ledger", "y"))
        with pytest.raises(InvariantError) as excinfo:
            checker.assert_ok()
        message = str(excinfo.value)
        assert "2 invariant violation(s)" in message
        assert "[R] A:interest-conservation" in message
        assert "[S] D:cs-ledger" in message
        assert excinfo.value.violations == checker.violations


class TestToggle:
    def test_disabled_checker_is_a_noop(self):
        net = chain()
        run_workload(net)
        net["R"].monitor.count("interest_in")  # would violate law A
        checker = InvariantChecker(enabled=False)
        assert checker.check_network(net) == []
        assert checker.checks_run == 0
        checker.assert_ok(net)  # does not raise

    def test_disabled_install_schedules_nothing(self):
        net = chain()
        before = net.engine.pending_count
        assert InvariantChecker(enabled=False).install(
            net, interval=10.0, horizon=100.0
        ) == 0
        assert net.engine.pending_count == before


class TestPeriodicInstall:
    def test_install_rejects_nonpositive_interval(self):
        net = chain()
        with pytest.raises(ValueError):
            InvariantChecker().install(net, interval=0.0, horizon=100.0)

    def test_scheduled_checks_run_during_the_simulation(self):
        net = chain()
        checker = InvariantChecker()
        scheduled = checker.install(net, interval=50.0, horizon=300.0)
        assert scheduled == 6
        run_workload(net)
        # One audit per scheduled slot (the single-router network).
        assert checker.checks_run == scheduled
        checker.assert_ok(net)

    def test_periodic_checks_observe_midrun_state(self):
        net = chain(pit_capacity=3, pit_overflow="drop-new")
        checker = InvariantChecker()
        checker.install(net, interval=25.0, horizon=400.0)
        run_workload(net)
        assert checker.checks_run > 0
        assert checker.violations == []
