"""Topology differential: reference engine vs batch kernel, whole grids."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.batch import (
    ConsumerScript,
    FetchStep,
    SleepStep,
    diff_observables,
    run_scripts_batch,
    run_scripts_reference,
)
from repro.validation.differential import (
    TopologyCase,
    default_topology_cases,
    validate_topology_differential,
)

from tests.sim.test_batch_kernel import small_star


def test_default_grid_is_bit_identical():
    report = validate_topology_differential()
    assert report.ok, report.summary()
    assert report.failures == []
    # The grid covers the advertised surface: all three topologies, the
    # privacy schemes next to no-privacy, every replacement policy, and
    # a sub-RTT timeout case.
    cases = [r.case for r in report.results]
    assert {c.topology for c in cases} == {
        "star", "tree", "fig3a_lan", "fat_tree",
    }
    assert {c.scheme for c in cases} >= {
        "no-privacy",
        "uniform",
        "exponential",
        "always-delay",
    }
    assert {c.policy for c in cases} == {"lru", "fifo", "lfu", "random"}
    # The grid exercises every caching strategy kind, plus one case that
    # must transparently fall back to the reference engine.
    assert {c.caching for c in cases} == {
        "lce", "lcd", "probcache", "edge", "cl4m", "bernoulli",
    }
    assert any(c.expect_fallback for c in cases)
    assert any(c.timeout < 10.0 for c in cases)
    for result in report.results:
        assert result.oracle.kernel == "reference"
        expected = "reference" if result.case.expect_fallback else "batch"
        assert result.batch.kernel == expected
        assert result.oracle.total_delivered > 0


def test_summary_reports_one_line_per_case():
    cases = default_topology_cases()
    report = validate_topology_differential(cases=cases[:2])
    lines = report.summary().splitlines()
    assert len(lines) == 2
    assert all(line.endswith(": ok") for line in lines)


def test_case_labels_are_unique():
    labels = [c.label for c in default_topology_cases()]
    assert len(labels) == len(set(labels))


def test_unknown_topology_rejected():
    import pytest

    with pytest.raises(ValueError, match="unknown topology"):
        validate_topology_differential(
            cases=[TopologyCase(topology="ring")]
        )


# Fuzz: random fault/workload schedules — arbitrary interleavings of
# fetches (random object, privacy mark, sub-RTT or generous timeouts)
# and idle gaps must stay bit-identical between the engines.
step_st = st.one_of(
    st.tuples(
        st.integers(min_value=0, max_value=5),  # object id
        st.booleans(),  # privacy mark
        st.sampled_from([4000.0, 3.0, 5.5]),  # wait budget (two sub-RTT)
    ),
    st.floats(min_value=0.1, max_value=6.0),  # sleep gap
)
program_st = st.lists(
    st.lists(step_st, min_size=1, max_size=12), min_size=1, max_size=3
)


def _scripts_from_program(program):
    scripts = []
    for j, steps in enumerate(program):
        compiled = []
        for step in steps:
            if isinstance(step, float):
                compiled.append(SleepStep(step))
            else:
                obj, private, timeout = step
                compiled.append(
                    FetchStep(
                        f"/content/obj-{obj}", timeout=timeout, private=private
                    )
                )
        scripts.append(ConsumerScript(consumer=f"C{j}", steps=tuple(compiled)))
    return scripts


@given(program_st, st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_random_schedules_stay_bit_identical(program, seed):
    net, _ = small_star(seed=seed, consumers=len(program), capacity=3)
    scripts = _scripts_from_program(program)
    if not any(
        isinstance(s, FetchStep) for sc in scripts for s in sc.steps
    ):
        return  # compile requires at least one fetch; nothing to compare
    oracle = run_scripts_reference(net, scripts)
    net, _ = small_star(seed=seed, consumers=len(program), capacity=3)
    batch = run_scripts_batch(net, scripts)
    assert diff_observables(oracle, batch) == []
