"""Loss models: i.i.d. and Gilbert–Elliott burst loss."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.errors import FaultConfigError
from repro.faults.loss import GilbertElliottLoss, IidLoss


def run_model(model, n, seed=0):
    rng = np.random.default_rng(seed)
    return [model.drops(rng) for _ in range(n)]


class TestIidLoss:
    def test_rate_bounds(self):
        IidLoss(0.0)
        IidLoss(1.0)
        with pytest.raises(FaultConfigError):
            IidLoss(-0.01)
        with pytest.raises(FaultConfigError):
            IidLoss(1.01)

    def test_mean_matches_rate(self):
        model = IidLoss(0.3)
        drops = run_model(model, 20_000)
        assert model.mean_loss == 0.3
        assert abs(np.mean(drops) - 0.3) < 0.02

    def test_extremes(self):
        assert run_model(IidLoss(0.0), 100) == [False] * 100
        assert run_model(IidLoss(1.0), 100) == [True] * 100


class TestGilbertElliott:
    def test_param_validation(self):
        with pytest.raises(FaultConfigError):
            GilbertElliottLoss(p=1.5, r=0.1)
        with pytest.raises(FaultConfigError):
            GilbertElliottLoss(p=0.1, r=0.1, loss_bad=2.0)

    def test_stationary_mean_loss(self):
        model = GilbertElliottLoss(p=0.05, r=0.2)
        # pi_bad = 0.05 / 0.25 = 0.2; loss_bad = 1 => mean 0.2.
        assert model.mean_loss == pytest.approx(0.2)
        drops = run_model(model, 50_000)
        assert abs(np.mean(drops) - 0.2) < 0.02

    def test_for_mean_loss_calibration(self):
        model = GilbertElliottLoss.for_mean_loss(mean=0.1, burst_length=5.0)
        assert model.mean_loss == pytest.approx(0.1)
        assert 1.0 / model.r == pytest.approx(5.0)
        drops = run_model(model, 50_000)
        assert abs(np.mean(drops) - 0.1) < 0.02

    def test_for_mean_loss_validation(self):
        with pytest.raises(FaultConfigError):
            GilbertElliottLoss.for_mean_loss(mean=0.5, burst_length=0.5)
        with pytest.raises(FaultConfigError):
            GilbertElliottLoss.for_mean_loss(mean=1.0, burst_length=5.0)

    def test_burstiness_exceeds_iid(self):
        """Same mean rate, but losses clump: the mean burst run length of
        the GE model beats i.i.d. loss at equal rate."""

        def mean_run(drops):
            runs, current = [], 0
            for dropped in drops:
                if dropped:
                    current += 1
                elif current:
                    runs.append(current)
                    current = 0
            if current:
                runs.append(current)
            return np.mean(runs) if runs else 0.0

        ge = run_model(GilbertElliottLoss.for_mean_loss(0.15, 8.0), 40_000, seed=1)
        iid = run_model(IidLoss(0.15), 40_000, seed=1)
        assert mean_run(ge) > 2.0 * mean_run(iid)

    def test_reset_restores_initial_state(self):
        model = GilbertElliottLoss(p=1.0, r=0.0)  # enters BAD after 1 packet
        rng = np.random.default_rng(0)
        model.drops(rng)
        assert model.in_bad_state
        model.reset()
        assert not model.in_bad_state

    def test_deterministic_given_seed(self):
        first = run_model(GilbertElliottLoss(0.1, 0.3), 1000, seed=9)
        second = run_model(GilbertElliottLoss(0.1, 0.3), 1000, seed=9)
        assert first == second
