"""FaultSchedule: windows fire as events, crash semantics, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    BurstLossWindow,
    DelaySpikeWindow,
    FaultConfigError,
    FaultSchedule,
    GilbertElliottLoss,
    LinkDownWindow,
    RetryPolicy,
    RouterCrash,
    random_link_flaps,
)
from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry


def chain(seed=0):
    net = Network(rng=RngRegistry(seed))
    net.add_router("R")
    net.add_consumer("c")
    net.add_producer("p", "/data")
    net.connect("c", "R", FixedDelay(1.0))
    net.connect("R", "p", FixedDelay(3.0))
    net.add_route("R", "/data", "p")
    return net


def fetch_loop(net, count=10, gap=50.0, retry=None, record=None, timeout=30.0):
    consumer = net["c"]

    def proc():
        for i in range(count):
            result = yield from consumer.fetch(
                f"/data/obj-{i}", timeout=timeout, retry=retry
            )
            if record is not None:
                record.append((i, result is not None))
            yield Timeout(gap)

    net.spawn(proc(), "driver")


class TestValidation:
    def test_unknown_link_rejected_before_scheduling(self):
        net = chain()
        schedule = FaultSchedule([LinkDownWindow("c<->X", 10, 20)])
        before = net.engine.pending_count
        with pytest.raises(FaultConfigError, match="unknown link"):
            net.apply_faults(schedule)
        assert net.engine.pending_count == before  # nothing partially applied

    def test_unknown_router_rejected(self):
        net = chain()
        with pytest.raises(FaultConfigError, match="unknown router"):
            net.apply_faults(FaultSchedule([RouterCrash("X", 10)]))

    def test_window_in_the_past_rejected(self):
        net = chain()
        net.engine.schedule(100.0, lambda: None)
        net.run(until=50.0)
        with pytest.raises(FaultConfigError, match="past"):
            net.apply_faults(FaultSchedule([LinkDownWindow("c<->R", 10, 20)]))

    @pytest.mark.parametrize(
        "fault",
        [
            lambda: LinkDownWindow("l", 20, 10),
            lambda: LinkDownWindow("l", -1, 10),
            lambda: DelaySpikeWindow("l", 0, 10, extra_delay=0.0),
            lambda: RouterCrash("r", 10, restart_at=5),
            lambda: RouterCrash("r", 10, mode="mystery"),
        ],
    )
    def test_bad_fault_construction(self, fault):
        with pytest.raises(FaultConfigError):
            fault()

    def test_add_rejects_unknown_type(self):
        with pytest.raises(FaultConfigError):
            FaultSchedule().add("not-a-fault")


class TestLinkWindows:
    def test_down_window_blocks_then_recovers(self):
        net = chain()
        record = []
        # Fetches at t=0,51,102,...; link down for [40, 160).
        net.apply_faults(FaultSchedule([LinkDownWindow("c<->R", 40.0, 160.0)]))
        fetch_loop(net, count=6, gap=43.0, record=record)
        net.run()
        outcomes = dict(record)
        assert outcomes[0] is True  # before the outage
        assert not all(outcomes.values())  # outage cost at least one fetch
        assert outcomes[5] is True  # recovered after the window
        assert net.links["c<->R"].packets_dropped_down > 0

    def test_retry_policy_rides_through_outage(self):
        net = chain()
        record = []
        net.apply_faults(FaultSchedule([LinkDownWindow("c<->R", 40.0, 160.0)]))
        retry = RetryPolicy(retries=6, timeout=40.0, backoff=1.5)
        fetch_loop(net, count=6, gap=43.0, retry=retry, record=record)
        net.run()
        assert all(ok for _, ok in record)  # retransmission recovers everything
        assert net["c"].monitor.counter("fetch_retransmits") > 0

    def test_delay_spike_window(self):
        net = chain()
        rtts = net["c"].rtts
        net.apply_faults(
            FaultSchedule([DelaySpikeWindow("c<->R", 100.0, 200.0, extra_delay=20.0)])
        )
        fetch_loop(net, count=3, gap=100.0, timeout=300.0)
        net.run()
        # Fetch 0 at t=0 (clean), fetch 1 at ~t=108 (spiked both ways).
        assert rtts[0] == pytest.approx(8.0)
        assert rtts[1] == pytest.approx(48.0)
        assert rtts[2] == pytest.approx(8.0)  # spike removed

    def test_burst_loss_window_installs_and_restores(self):
        net = chain(seed=11)
        link = net.links["c<->R"]
        model = GilbertElliottLoss(p=1.0, r=0.0, loss_bad=1.0)  # all-loss after 1 pkt
        net.apply_faults(FaultSchedule([BurstLossWindow("c<->R", 50.0, 150.0, model)]))
        record = []
        fetch_loop(net, count=4, gap=60.0, record=record)
        net.run()
        assert link.loss_model is None  # restored after the window
        assert link.packets_lost > 0
        outcomes = dict(record)
        assert outcomes[0] is True
        assert outcomes[3] is True  # clean again after the episode


class TestRouterCrash:
    def _crash_net(self, mode):
        net = chain()
        record = []
        schedule = FaultSchedule(
            [RouterCrash("R", at=100.0, restart_at=150.0, mode=mode)]
        )
        net.apply_faults(schedule)
        consumer = net["c"]

        def proc():
            # Warm the cache, then probe the same object after the restart.
            first = yield from consumer.fetch("/data/x", timeout=50.0)
            record.append(first is not None)
            yield Timeout(200.0)  # crash + restart happen in here
            again = yield from consumer.fetch("/data/x", timeout=50.0)
            record.append(again is not None)

        net.spawn(proc(), "driver")
        net.run()
        return net, record

    def test_crash_flush_empties_cs(self):
        net, record = self._crash_net("flush")
        assert record == [True, True]
        router = net["R"]
        assert router.monitor.counter("crashes") == 1
        assert router.monitor.counter("restarts") == 1
        # Cold restart: the re-fetch missed at R and went to the producer.
        assert router.monitor.counter("cs_miss") == 2

    def test_crash_warm_preserves_cs(self):
        net, record = self._crash_net("warm")
        assert record == [True, True]
        router = net["R"]
        # Warm restore: the re-fetch hit the surviving CS entry.
        assert router.monitor.counter("cs_hit") == 1
        assert router.monitor.counter("cs_miss") == 1

    def test_down_router_drops_and_counts(self):
        net = chain()
        net.apply_faults(FaultSchedule([RouterCrash("R", at=0.5)]))  # no restart
        record = []
        fetch_loop(net, count=2, gap=40.0, record=record)
        net.run()
        assert all(not ok for _, ok in record)
        assert net["R"].monitor.counter("down_dropped_interest") >= 2

    def test_crash_cancels_pit_timers(self):
        net = chain()
        router = net["R"]
        net["p"].auto_generate = False  # never answers: PIT entry lingers
        net.apply_faults(FaultSchedule([RouterCrash("R", at=20.0, restart_at=30.0)]))
        fetch_loop(net, count=1)
        net.run()
        assert len(router.pit) == 0
        assert router.monitor.counter("pit_expired") == 0  # cancelled, not fired

    def test_double_crash_and_restart_idempotent(self, engine):
        net = chain()
        router = net["R"]
        router.crash()
        router.crash()
        assert router.monitor.counter("crashes") == 1
        router.restart()
        router.restart()
        assert router.monitor.counter("restarts") == 1
        with pytest.raises(ValueError):
            router.crash(mode="mystery")


def run_fault_scenario(seed):
    """One full faulted run; returns a stats snapshot for comparison."""
    net = chain(seed=seed)
    rng = net.rng.fork("fault-schedule")
    schedule = random_link_flaps(
        rng, ["c<->R", "R<->p"], horizon=2000.0, mean_uptime=300.0, mean_downtime=60.0
    )
    schedule.add(RouterCrash("R", at=900.0, restart_at=1000.0, mode="flush"))
    schedule.add(DelaySpikeWindow("R<->p", 1200.0, 1500.0, extra_delay=15.0))
    net.apply_faults(schedule)
    record = []
    fetch_loop(
        net,
        count=20,
        gap=70.0,
        retry=RetryPolicy(retries=3, timeout=25.0, backoff=2.0),
        record=record,
    )
    net.run()
    link = net.links["c<->R"]
    return {
        "outcomes": tuple(record),
        "rtts": tuple(net["c"].rtts),
        "now": net.engine.now,
        "events": net.engine.events_processed,
        "sent": link.packets_sent,
        "lost": link.packets_lost,
        "down_dropped": link.packets_dropped_down,
        "router": dict(net["R"].monitor.counters),
        "consumer": dict(net["c"].monitor.counters),
    }


class TestDeterminism:
    def test_same_schedule_and_seed_identical_stats(self):
        """The ISSUE acceptance criterion: repeated runs are bit-identical."""
        assert run_fault_scenario(3) == run_fault_scenario(3)

    def test_different_seed_differs(self):
        assert run_fault_scenario(3) != run_fault_scenario(4)

    def test_random_link_flaps_reproducible(self):
        first = random_link_flaps(
            np.random.default_rng(5), ["a", "b"], 1000.0, 100.0, 20.0
        )
        second = random_link_flaps(
            np.random.default_rng(5), ["a", "b"], 1000.0, 100.0, 20.0
        )
        assert first.faults == second.faults
        assert len(first) > 0
        for fault in first:
            assert 0.0 <= fault.start < fault.end <= 1000.0

    def test_random_link_flaps_respects_settle_time(self):
        schedule = random_link_flaps(
            np.random.default_rng(5), ["a"], 500.0, 10.0, 10.0, settle_time=100.0
        )
        assert all(fault.start >= 100.0 for fault in schedule)

    def test_random_link_flaps_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(FaultConfigError):
            random_link_flaps(rng, ["a"], 0.0, 10.0, 10.0)
        with pytest.raises(FaultConfigError):
            random_link_flaps(rng, ["a"], 100.0, -1.0, 10.0)
