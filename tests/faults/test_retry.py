"""RetryPolicy: backoff arithmetic, jitter, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.errors import FaultConfigError
from repro.faults.retry import RetryPolicy


class TestValidation:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.attempts == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"timeout": 0.0},
            {"backoff": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"timeout": 100.0, "max_timeout": 50.0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(FaultConfigError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_growth(self):
        policy = RetryPolicy(retries=3, timeout=100.0, backoff=2.0)
        assert [policy.timeout_for(i) for i in range(4)] == [
            100.0, 200.0, 400.0, 800.0,
        ]
        assert policy.total_budget() == 1500.0

    def test_max_timeout_clamps(self):
        policy = RetryPolicy(retries=5, timeout=100.0, backoff=2.0, max_timeout=300.0)
        assert policy.timeout_for(4) == 300.0

    def test_fixed_timeout_with_unit_backoff(self):
        policy = RetryPolicy(retries=2, timeout=50.0, backoff=1.0)
        assert [policy.timeout_for(i) for i in range(3)] == [50.0, 50.0, 50.0]

    def test_negative_attempt_rejected(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy().timeout_for(-1)


class TestJitter:
    def test_jitter_stays_in_band_and_is_seeded(self):
        policy = RetryPolicy(retries=0, timeout=100.0, jitter=0.25)
        draws = [
            policy.timeout_for(0, np.random.default_rng(seed))
            for seed in range(200)
        ]
        assert all(75.0 <= value <= 125.0 for value in draws)
        assert len(set(round(v, 9) for v in draws)) > 100  # actually varies
        # Same seed, same draw: reproducible.
        assert policy.timeout_for(0, np.random.default_rng(7)) == policy.timeout_for(
            0, np.random.default_rng(7)
        )

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(retries=0, timeout=100.0, jitter=0.25)
        assert policy.timeout_for(0) == 100.0


class TestMaxDelay:
    def test_max_delay_caps_backoff(self):
        policy = RetryPolicy(retries=5, timeout=100.0, backoff=2.0, max_delay=500.0)
        assert [policy.timeout_for(i) for i in range(6)] == [
            100.0, 200.0, 400.0, 500.0, 500.0, 500.0,
        ]

    def test_effective_cap_is_min_of_max_delay_and_max_timeout(self):
        assert RetryPolicy(
            timeout=100.0, max_delay=300.0, max_timeout=700.0
        ).delay_cap == 300.0
        assert RetryPolicy(
            timeout=100.0, max_delay=700.0, max_timeout=300.0
        ).delay_cap == 300.0
        assert RetryPolicy(timeout=100.0).delay_cap is None

    def test_jitter_never_exceeds_cap(self):
        policy = RetryPolicy(
            retries=6, timeout=100.0, backoff=2.0, jitter=0.5, max_delay=400.0
        )
        for seed in range(100):
            rng = np.random.default_rng(seed)
            for attempt in range(policy.attempts):
                assert policy.timeout_for(attempt, rng) <= 400.0

    def test_capped_attempt_still_consumes_one_rng_draw(self):
        # Whether or not the cap engages, each attempt draws exactly once,
        # so jitter sequences stay aligned across capped/uncapped policies.
        capped = RetryPolicy(retries=4, timeout=100.0, backoff=2.0,
                             jitter=0.3, max_delay=150.0)
        free = RetryPolicy(retries=4, timeout=100.0, backoff=2.0, jitter=0.3)
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        for attempt in range(5):
            got = capped.timeout_for(attempt, rng_a)
            raw = free.timeout_for(attempt, rng_b)
            assert got == min(raw, 150.0)

    def test_seeded_jitter_sequence_is_deterministic(self):
        policy = RetryPolicy(retries=4, timeout=50.0, backoff=2.0,
                             jitter=0.25, max_delay=300.0)
        seq1 = [policy.timeout_for(i, np.random.default_rng(99)) for i in range(5)]
        seq2 = [policy.timeout_for(i, np.random.default_rng(99)) for i in range(5)]
        assert seq1 == seq2

    def test_rejects_max_delay_below_timeout(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy(timeout=100.0, max_delay=50.0)


class TestDeadline:
    def test_deadline_bounds_total_budget(self):
        policy = RetryPolicy(retries=3, timeout=100.0, backoff=2.0,
                             deadline=600.0)
        assert policy.total_budget() == 600.0

    def test_loose_deadline_leaves_budget_alone(self):
        policy = RetryPolicy(retries=3, timeout=100.0, backoff=2.0,
                             deadline=10_000.0)
        assert policy.total_budget() == 1500.0

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(FaultConfigError):
            RetryPolicy(deadline=-5.0)
