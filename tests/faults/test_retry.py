"""RetryPolicy: backoff arithmetic, jitter, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.errors import FaultConfigError
from repro.faults.retry import RetryPolicy


class TestValidation:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.attempts == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"timeout": 0.0},
            {"backoff": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"timeout": 100.0, "max_timeout": 50.0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(FaultConfigError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_growth(self):
        policy = RetryPolicy(retries=3, timeout=100.0, backoff=2.0)
        assert [policy.timeout_for(i) for i in range(4)] == [
            100.0, 200.0, 400.0, 800.0,
        ]
        assert policy.total_budget() == 1500.0

    def test_max_timeout_clamps(self):
        policy = RetryPolicy(retries=5, timeout=100.0, backoff=2.0, max_timeout=300.0)
        assert policy.timeout_for(4) == 300.0

    def test_fixed_timeout_with_unit_backoff(self):
        policy = RetryPolicy(retries=2, timeout=50.0, backoff=1.0)
        assert [policy.timeout_for(i) for i in range(3)] == [50.0, 50.0, 50.0]

    def test_negative_attempt_rejected(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy().timeout_for(-1)


class TestJitter:
    def test_jitter_stays_in_band_and_is_seeded(self):
        policy = RetryPolicy(retries=0, timeout=100.0, jitter=0.25)
        draws = [
            policy.timeout_for(0, np.random.default_rng(seed))
            for seed in range(200)
        ]
        assert all(75.0 <= value <= 125.0 for value in draws)
        assert len(set(round(v, 9) for v in draws)) > 100  # actually varies
        # Same seed, same draw: reproducible.
        assert policy.timeout_for(0, np.random.default_rng(7)) == policy.timeout_for(
            0, np.random.default_rng(7)
        )

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(retries=0, timeout=100.0, jitter=0.25)
        assert policy.timeout_for(0) == 100.0
