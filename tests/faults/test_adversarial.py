"""Adversarial load generators: flooding, pollution, composition."""

from __future__ import annotations

import pytest

from repro.faults import (
    AdaptiveAttackLog,
    AdaptivePollutionWindow,
    CachePollutionSchedule,
    CachePollutionWindow,
    FaultConfigError,
    FaultSchedule,
    InterestFloodSchedule,
    InterestFloodWindow,
    LinkDownWindow,
)
from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.sim.rng import RngRegistry


def star(seed=0, pit_capacity=None, cs_capacity=8):
    """attacker a and consumer c behind R; /data answers, /flood dangles."""
    net = Network(rng=RngRegistry(seed))
    net.add_router("R", capacity=cs_capacity, pit_capacity=pit_capacity)
    net.add_consumer("c")
    net.add_consumer("a")
    net.add_producer("p", "/data", auto_generate=True)
    net.add_producer("f", "/flood", auto_generate=False)
    net.connect("c", "R", FixedDelay(1.0))
    net.connect("a", "R", FixedDelay(1.0))
    net.connect("R", "p", FixedDelay(3.0))
    net.connect("R", "f", FixedDelay(3.0))
    net.add_route("R", "/data", "p")
    net.add_route("R", "/flood", "f")
    return net


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            lambda: InterestFloodWindow("a", "/flood", start=20, end=10),
            lambda: InterestFloodWindow("a", "/flood", 0, 10, interval=0.0),
            lambda: InterestFloodWindow("a", "/flood", 0, 10, lifetime=0.0),
            lambda: InterestFloodWindow("a", "/flood", 0, 10, jitter=-1.0),
            lambda: CachePollutionWindow("a", "/data", start=-1, end=10),
            lambda: CachePollutionWindow("a", "/data", 0, 10, interval=0.0),
            lambda: CachePollutionWindow("a", "/data", 0, 10, catalog=0),
            lambda: CachePollutionWindow("a", "/data", 0, 10, lifetime=0.0),
        ],
    )
    def test_bad_parameters_rejected_at_construction(self, bad):
        with pytest.raises(FaultConfigError):
            bad()

    def test_unknown_attacker_rejected_at_apply(self):
        net = star()
        schedule = FaultSchedule(
            [InterestFloodWindow("ghost", "/flood", 10.0, 20.0)]
        )
        with pytest.raises(FaultConfigError, match="unknown entity"):
            net.apply_faults(schedule)

    def test_router_attacker_rejected(self):
        net = star()
        schedule = FaultSchedule([InterestFloodWindow("R", "/flood", 10.0, 20.0)])
        with pytest.raises(FaultConfigError, match="no attached face"):
            net.apply_faults(schedule)

    def test_window_in_the_past_rejected(self):
        net = star()
        net.engine.schedule(100.0, lambda: None)
        net.run(until=50.0)
        schedule = FaultSchedule([InterestFloodWindow("a", "/flood", 10.0, 20.0)])
        with pytest.raises(FaultConfigError, match="past"):
            net.apply_faults(schedule)


class TestInterestFlood:
    def test_count_matches_window_and_interval(self):
        window = InterestFloodWindow("a", "/flood", 100.0, 300.0, interval=2.0)
        assert window.count == 100

    def test_flood_fills_unbounded_pit_with_distinct_names(self):
        net = star()
        window = InterestFloodWindow(
            "a", "/flood", start=10.0, end=50.0, interval=2.0, lifetime=5000.0
        )
        assert net.apply_faults(FaultSchedule([window])) == window.count
        net.run(until=60.0)
        router = net["R"]
        # Nothing answers /flood, so every distinct name dangles.
        assert len(router.pit) == window.count
        assert router.monitor.counter("interest_in") == window.count

    def test_flood_entries_expire_after_lifetime(self):
        net = star()
        window = InterestFloodWindow(
            "a", "/flood", start=10.0, end=30.0, interval=5.0, lifetime=100.0
        )
        net.apply_faults(FaultSchedule([window]))
        net.run()
        router = net["R"]
        assert len(router.pit) == 0
        assert router.monitor.counter("pit_expired") == window.count

    def test_same_seed_same_attack(self):
        def pending_names(seed):
            net = star()
            net.apply_faults(
                FaultSchedule(
                    [
                        InterestFloodWindow(
                            "a", "/flood", 10.0, 40.0, interval=3.0,
                            lifetime=5000.0, jitter=2.0, seed=seed,
                        )
                    ]
                )
            )
            net.run(until=50.0)
            return net["R"].pit.names

        assert pending_names(5) == pending_names(5)
        assert pending_names(5) != pending_names(6)


class TestCachePollution:
    def test_pollution_requests_are_answered_and_churn_the_cs(self):
        net = star(cs_capacity=4)
        window = CachePollutionWindow(
            "a", "/data", start=10.0, end=210.0, interval=5.0, catalog=100,
        )
        net.apply_faults(FaultSchedule([window]))
        net.run()
        router = net["R"]
        # A wide catalog over a tiny CS forces real evictions...
        assert router.cs.evictions > 0
        assert len(router.cs) <= 4
        # ...and, unlike the flood, leaves no dangling PIT state behind.
        assert len(router.pit) == 0

    def test_same_seed_same_request_sequence(self):
        def insertions(seed):
            net = star(cs_capacity=4)
            net.apply_faults(
                FaultSchedule(
                    [
                        CachePollutionWindow(
                            "a", "/data", 10.0, 110.0, interval=5.0,
                            catalog=50, seed=seed,
                        )
                    ]
                )
            )
            net.run()
            return net["R"].cs.insertions

        assert insertions(3) == insertions(3)


class TestComposition:
    def test_attacks_compose_with_builtin_faults(self):
        net = star()
        flood = InterestFloodWindow("a", "/flood", 10.0, 30.0, interval=5.0)
        schedule = FaultSchedule([LinkDownWindow("c<->R", 15.0, 25.0), flood])
        schedule.add(
            CachePollutionWindow("a", "/data", 10.0, 30.0, interval=10.0)
        )
        scheduled = net.apply_faults(schedule)
        # Two events per down window plus one per attack interest.
        assert scheduled == 2 + flood.count + 2
        net.run()

    def test_one_window_schedules(self):
        flood = InterestFloodSchedule(
            attacker="a", prefix="/flood", start=10.0, end=20.0, interval=5.0
        )
        assert isinstance(flood.window, InterestFloodWindow)
        pollution = CachePollutionSchedule(
            attacker="a", prefix="/data", start=10.0, end=20.0, interval=5.0
        )
        assert isinstance(pollution.window, CachePollutionWindow)
        net = star()
        flood.add(pollution.window)
        assert net.apply_faults(flood) == 2 + 2
        net.run()


class TestAdaptivePollution:
    """The Thompson-sampling attacker (the defense loop's sparring partner)."""

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: AdaptivePollutionWindow("a", "/data", start=20, end=10),
            lambda: AdaptivePollutionWindow("a", "/data", 0, 10, arms=()),
            lambda: AdaptivePollutionWindow("a", "/data", 0, 10, arms=(1.0, 0.0)),
            lambda: AdaptivePollutionWindow("a", "/data", 0, 10, catalog=0),
            lambda: AdaptivePollutionWindow("a", "/data", 0, 10, lifetime=0.0),
            lambda: AdaptivePollutionWindow("a", "/data", 0, 10, timeout=0.0),
        ],
    )
    def test_bad_parameters_rejected_at_construction(self, bad):
        with pytest.raises(FaultConfigError):
            bad()

    def test_unknown_attacker_rejected_at_apply(self):
        net = star()
        schedule = FaultSchedule(
            [AdaptivePollutionWindow("ghost", "/data", 10.0, 20.0)]
        )
        with pytest.raises(FaultConfigError, match="unknown entity"):
            schedule.apply(net)

    def test_router_attacker_rejected_at_apply(self):
        net = star()
        schedule = FaultSchedule(
            [AdaptivePollutionWindow("R", "/data", 10.0, 20.0)]
        )
        with pytest.raises(FaultConfigError, match="must be\\s+a consumer"):
            schedule.apply(net)

    def test_attack_runs_and_records_telemetry(self):
        net = star()
        window = AdaptivePollutionWindow(
            "a", "/data", start=10.0, end=500.0, catalog=50, seed=3
        )
        assert net.apply_faults(FaultSchedule([window])) == 1
        net.run()
        log = window.log
        assert log.attempts > 0
        assert 0 <= log.delivered <= log.attempts
        assert sum(log.pulls) == log.attempts
        assert len(log.attempt_times) == log.attempts
        assert all(10.0 <= t < 500.0 for t in log.attempt_times)
        assert 0 <= window.log.favored_arm() < len(window.arms)
        # An undefended, always-answering producer: every fetch lands.
        assert log.success_rate == 1.0

    def test_same_seed_same_attack(self):
        def run(seed):
            net = star(seed=seed)
            window = AdaptivePollutionWindow(
                "a", "/data", start=10.0, end=400.0, catalog=50, seed=7
            )
            net.apply_faults(FaultSchedule([window]))
            net.run()
            return window.log

        a, b = run(0), run(0)
        assert (a.attempts, a.delivered, a.pulls, a.wins) == (
            b.attempts, b.delivered, b.pulls, b.wins,
        )
        assert a.attempt_times == b.attempt_times

    def test_requests_before_counts_strictly_earlier_attempts(self):
        log = AdaptiveAttackLog(attempt_times=[1.0, 2.0, 3.0, 3.0, 9.0])
        log.attempts = 5
        assert log.requests_before(0.5) == 0
        assert log.requests_before(3.0) == 2
        assert log.requests_before(100.0) == 5

    def test_fresh_log_is_inert(self):
        log = AdaptiveAttackLog()
        assert log.favored_arm() == -1
        assert log.success_rate == 0.0

    def test_telemetry_excluded_from_window_equality(self):
        a = AdaptivePollutionWindow("a", "/data", 0.0, 10.0)
        b = AdaptivePollutionWindow("a", "/data", 0.0, 10.0)
        a.log.attempts = 42
        assert a == b  # the log is runtime telemetry, not configuration
