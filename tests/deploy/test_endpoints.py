"""AsyncConsumer: retransmission, deadline budget, stale-Nack suppression."""

from __future__ import annotations

import asyncio

import pytest

from repro.deploy.clock import RealTimeEngine
from repro.deploy.endpoints import AsyncConsumer, AsyncProducer, FetchFailed
from repro.deploy.faces import AsyncUdpFace
from repro.faults.retry import RetryPolicy
from repro.ndn.name import Name
from repro.ndn.packets import (
    NACK_CONGESTION,
    NACK_NO_ROUTE,
    Data,
    Interest,
    Nack,
)


class SilentUpstream:
    """Records interests, answers only when told to."""

    def __init__(self):
        self.interests = []
        self.face = None

    def receive_interest(self, interest, face):
        self.interests.append(interest)

    def receive_data(self, data, face):
        pass


async def consumer_rig():
    """Consumer wired to a silent upstream over loopback UDP."""
    engine = RealTimeEngine(asyncio.get_running_loop())
    upstream = SilentUpstream()
    upstream.face = await AsyncUdpFace.create(upstream, label="up")
    consumer = AsyncConsumer(engine, name="c")
    await consumer.attach(peer=upstream.face.local_addr)
    upstream.face.set_peer(consumer.face.local_addr)
    return engine, consumer, upstream


async def settle(predicate, timeout=2.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never held"
        await asyncio.sleep(0.005)


def test_timeout_drives_retransmission_then_success():
    async def scenario():
        engine, consumer, upstream = await consumer_rig()
        try:
            task = asyncio.ensure_future(
                consumer.fetch(
                    "/a/x",
                    retry=RetryPolicy(retries=2, timeout=80.0, backoff=1.0),
                )
            )
            # Let attempt 0 time out; answer attempt 1.
            await settle(lambda: len(upstream.interests) == 2)
            upstream.face.send_data(Data(name=Name.parse("/a/x")))
            result = await task
            assert result.attempts == 2
            assert consumer.fetch_retransmits == 1
            assert consumer.fetch_timeouts == 1
            assert consumer.pending_count == 0
        finally:
            await consumer.close()
            await upstream.face.close()

    asyncio.run(scenario())


def test_deadline_bounds_total_wait():
    async def scenario():
        engine, consumer, upstream = await consumer_rig()
        try:
            start = engine.now
            with pytest.raises(FetchFailed) as excinfo:
                await consumer.fetch(
                    "/a/never",
                    retry=RetryPolicy(retries=10, timeout=100.0, backoff=1.0),
                    deadline=250.0,
                )
            elapsed = engine.now - start
            # 10 retries x 100ms would be a full second; the deadline cut
            # it off around 250ms.
            assert elapsed < 600.0
            assert excinfo.value.reason in ("timeout", "deadline")
            # Lifetimes never exceeded the remaining budget.
            assert all(i.lifetime <= 250.0 for i in upstream.interests)
        finally:
            await consumer.close()
            await upstream.face.close()

    asyncio.run(scenario())


def test_retry_deadline_field_is_default_budget():
    async def scenario():
        engine, consumer, upstream = await consumer_rig()
        try:
            policy = RetryPolicy(
                retries=10, timeout=100.0, backoff=1.0, deadline=200.0
            )
            start = engine.now
            with pytest.raises(FetchFailed):
                await consumer.fetch("/a/never", retry=policy)
            assert engine.now - start < 500.0
        finally:
            await consumer.close()
            await upstream.face.close()

    asyncio.run(scenario())


def test_stale_nack_is_suppressed_live_attempt_survives():
    async def scenario():
        engine, consumer, upstream = await consumer_rig()
        try:
            task = asyncio.ensure_future(
                consumer.fetch(
                    "/a/x",
                    retry=RetryPolicy(retries=2, timeout=120.0, backoff=1.0),
                )
            )
            # Wait until attempt 0 timed out and attempt 1 is in flight.
            await settle(lambda: len(upstream.interests) == 2)
            stale_nonce = upstream.interests[0].nonce
            upstream.face.send_nack(
                Nack(name=Name.parse("/a/x"), nonce=stale_nonce,
                     reason=NACK_CONGESTION)
            )
            await settle(lambda: consumer.stale_nacks == 1)
            # The live attempt was not aborted: data still satisfies it.
            upstream.face.send_data(Data(name=Name.parse("/a/x")))
            result = await task
            assert result.attempts == 2
            assert consumer.fetch_nacked == 0
        finally:
            await consumer.close()
            await upstream.face.close()

    asyncio.run(scenario())


def test_matching_nack_aborts_and_no_route_fails_fast():
    async def scenario():
        engine, consumer, upstream = await consumer_rig()
        try:
            task = asyncio.ensure_future(
                consumer.fetch(
                    "/a/x",
                    retry=RetryPolicy(retries=3, timeout=500.0, backoff=1.0),
                )
            )
            await settle(lambda: len(upstream.interests) == 1)
            upstream.face.send_nack(
                Nack(name=Name.parse("/a/x"),
                     nonce=upstream.interests[0].nonce,
                     reason=NACK_NO_ROUTE)
            )
            with pytest.raises(FetchFailed) as excinfo:
                await task
            assert excinfo.value.reason == "no-route"
            assert excinfo.value.attempts == 1
            assert consumer.fetch_nacked == 1
        finally:
            await consumer.close()
            await upstream.face.close()

    asyncio.run(scenario())


def test_unsolicited_data_counted():
    async def scenario():
        engine, consumer, upstream = await consumer_rig()
        try:
            upstream.face.send_data(Data(name=Name.parse("/nobody/asked")))
            await settle(lambda: consumer.unsolicited_data == 1)
        finally:
            await consumer.close()
            await upstream.face.close()

    asyncio.run(scenario())


def test_producer_serves_over_udp():
    async def scenario():
        engine = RealTimeEngine(asyncio.get_running_loop())
        producer = AsyncProducer(engine, prefix="/shop", producer_id="shop")
        await producer.attach()
        consumer = AsyncConsumer(engine, name="c")
        await consumer.attach(peer=producer.face.local_addr)
        try:
            producer.publish("/shop/thing", size=128)
            result = await consumer.fetch(
                "/shop/thing",
                retry=RetryPolicy(retries=0, timeout=2000.0, backoff=1.0),
            )
            assert result.data.name == Name.parse("/shop/thing")
            assert result.data.size == 128
        finally:
            await consumer.close()
            await producer.close()

    asyncio.run(scenario())
