"""Live defense on the real-socket daemon: install, swap, observe.

The defense agent must attach to (and detach from) a *running*
forwarder, surface its state through the mgmt channel, and detect a
pollution blast arriving over real UDP faces — the deployment half of
the closed loop.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.defense.agent import DefenseAgent
from repro.deploy.daemon import DaemonConfig, ForwarderDaemon
from repro.deploy.endpoints import AsyncConsumer, AsyncProducer
from repro.deploy.mgmt import MgmtClient, MgmtError, MgmtServer
from repro.ndn.errors import TopologyError

from tests.deploy.test_daemon import daemon_rig, teardown


class TestSetDefense:
    def test_config_preset_installs_at_start(self):
        async def scenario():
            daemon, consumer, producer = await daemon_rig(defense="adaptive")
            try:
                assert isinstance(daemon.defense_agent, DefenseAgent)
                assert daemon.forwarder.defense is daemon.defense_agent
                status = daemon.defense_status()
                assert status["installed"] is True
                assert status["preset"] == "adaptive"
                assert status["mitigate"] is True
            finally:
                await teardown(daemon, consumer, producer)

        asyncio.run(scenario())

    def test_live_swap_and_detach(self):
        async def scenario():
            daemon, consumer, producer = await daemon_rig()
            try:
                assert daemon.defense_agent is None
                agent = daemon.set_defense("monitor")
                assert daemon.forwarder.defense is agent
                assert agent.controller is None  # monitor never mitigates
                # Swapping to the passive presets restores the seed path.
                for preset in ("off", "static"):
                    assert daemon.set_defense(preset) is None
                    assert daemon.forwarder.defense is None
                    assert daemon.defense_status()["installed"] is False
                # The data plane still works after a detach.
                result = await consumer.fetch("/shop/item-0")
                assert result.data is not None
            finally:
                await teardown(daemon, consumer, producer)

        asyncio.run(scenario())

    def test_set_defense_requires_started_daemon(self):
        daemon = ForwarderDaemon(DaemonConfig(name="cold"))
        with pytest.raises(TopologyError, match="not started"):
            daemon.set_defense("adaptive")

    def test_stats_include_defense_snapshot(self):
        async def scenario():
            daemon, consumer, producer = await daemon_rig(defense="monitor")
            try:
                stats = daemon.stats()
                assert stats["defense"]["installed"] is True
                assert stats["defense"]["preset"] == "monitor"
                assert stats["defense"]["alarms"] == 0
            finally:
                await teardown(daemon, consumer, producer)

        asyncio.run(scenario())


class TestMgmtDefenseCommands:
    def test_defense_and_alarms_commands(self):
        async def scenario():
            daemon = ForwarderDaemon(DaemonConfig(name="m"))
            await daemon.start()
            server = MgmtServer(daemon)
            host, port = await server.start()
            client = await MgmtClient(host, port).connect()
            try:
                reply = await client.send("defense adaptive")
                assert "adaptive" in reply and "armed" in reply
                alarms = await client.send_json("alarms")
                assert alarms["installed"] is True
                assert alarms["alarms"] == 0
                assert alarms["suspects"] == []
                reply = await client.send("defense off")
                assert "detached" in reply
                alarms = await client.send_json("alarms")
                assert alarms["installed"] is False
                with pytest.raises(MgmtError):
                    await client.send("defense rubber-stamp")
                with pytest.raises(MgmtError, match="usage"):
                    await client.send("defense")
            finally:
                await client.close()
                await server.stop()
                await daemon.stop()

        asyncio.run(scenario())


class TestLiveDetection:
    def test_pollution_blast_over_real_sockets_raises_alarm(self):
        async def scenario():
            daemon, consumer, producer = await daemon_rig(defense="monitor")
            try:
                agent = daemon.defense_agent
                # 120 never-repeated names from one face: past the
                # cold-start floor, the novelty EWMA must alarm.
                for i in range(120):
                    await consumer.fetch(f"/shop/burst-{i:04d}")
                assert agent.log.total >= 1
                assert agent.log.first("pollution") is not None
                # Monitor preset: detection without any mitigation.
                assert agent.mitigations == []
                assert daemon.forwarder.monitor.counter("defense_throttled") == 0
                status = daemon.defense_status()
                assert status["alarms"] == agent.log.total
                assert status["recent_alarms"]
            finally:
                await teardown(daemon, consumer, producer)

        asyncio.run(scenario())
