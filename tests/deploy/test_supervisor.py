"""Supervisor: watchdog respawn, backoff, abandonment, graceful shutdown."""

from __future__ import annotations

import asyncio

from repro.deploy.daemon import DaemonConfig, ForwarderDaemon
from repro.deploy.mgmt import MgmtClient
from repro.deploy.supervisor import Supervisor, SupervisorConfig


async def crash_face_task(face, index=0):
    """Replace one face task with a task that died on an exception."""

    async def crash():
        raise RuntimeError("simulated crash")

    loop = asyncio.get_running_loop()
    face._tasks[index].cancel()
    face._tasks[index] = loop.create_task(crash())
    await asyncio.sleep(0)  # let the crash task finish


async def settle(predicate, timeout=3.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never held"
        await asyncio.sleep(0.01)


def fast_config(**overrides):
    defaults = dict(
        check_interval=0.02,
        restart_backoff=0.01,
        restart_backoff_max=0.05,
        drain_grace_ms=500.0,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def test_watchdog_respawns_crashed_face_task():
    async def scenario():
        daemon = ForwarderDaemon(DaemonConfig(name="sup"))
        supervisor = Supervisor(daemon, fast_config())
        await supervisor.start()
        face = await daemon.add_udp_face(label="sup:f0")
        try:
            await crash_face_task(face)
            assert not face.tasks_alive
            await settle(lambda: face.tasks_alive)
            assert supervisor.restarts_total >= 1
            assert supervisor.running
        finally:
            await supervisor.shutdown()

    asyncio.run(scenario())


def test_max_restarts_abandons_hot_crashing_face():
    async def scenario():
        daemon = ForwarderDaemon(DaemonConfig(name="sup"))
        supervisor = Supervisor(daemon, fast_config(max_restarts=2))
        await supervisor.start()
        face = await daemon.add_udp_face(label="sup:f0")
        try:
            # A genuinely hot-crashing dispatch loop: every respawn dies
            # immediately, so the streak never decays and the watchdog
            # gives up after max_restarts.
            async def always_crash():
                raise RuntimeError("hot crash")

            face._dispatch_loop = always_crash
            await crash_face_task(face)
            await settle(lambda: supervisor.faces_abandoned == 1)
            assert supervisor.restarts_total == 2
            # Abandoned means no further respawns even after more sweeps.
            await asyncio.sleep(0.08)
            assert supervisor.restarts_total == 2
        finally:
            await supervisor.shutdown()

    asyncio.run(scenario())


def test_healthy_face_decays_crash_streak():
    async def scenario():
        daemon = ForwarderDaemon(DaemonConfig(name="sup"))
        supervisor = Supervisor(daemon, fast_config())
        await supervisor.start()
        face = await daemon.add_udp_face(label="sup:f0")
        try:
            await crash_face_task(face)
            await settle(lambda: face.tasks_alive)
            # A couple of healthy sweeps clear the streak bookkeeping.
            await asyncio.sleep(0.08)
            assert face.face_id not in supervisor._crash_counts
        finally:
            await supervisor.shutdown()

    asyncio.run(scenario())


def test_shutdown_drains_then_closes_everything():
    async def scenario():
        daemon = ForwarderDaemon(DaemonConfig(name="sup"))
        supervisor = Supervisor(daemon, fast_config())
        await supervisor.start()
        face = await daemon.add_udp_face(label="sup:f0")
        host, port = supervisor.mgmt_addr
        client = await MgmtClient(host, port).connect()
        assert await client.send("ready") == "ready"
        await client.close()

        await supervisor.shutdown()
        assert not supervisor.running
        assert daemon.draining
        assert face.closed
        # Mgmt channel is gone.
        try:
            await MgmtClient(host, port).connect()
            mgmt_down = False
        except (ConnectionError, OSError):
            mgmt_down = True
        assert mgmt_down
        # Second shutdown is a no-op, not an error.
        await supervisor.shutdown()
        await supervisor.wait_closed()

    asyncio.run(scenario())


def test_stats_snapshot():
    async def scenario():
        daemon = ForwarderDaemon(DaemonConfig(name="sup"))
        supervisor = Supervisor(daemon, fast_config())
        await supervisor.start()
        try:
            stats = supervisor.stats()
            assert stats["running"] and not stats["stopping"]
            assert stats["restarts_total"] == 0
        finally:
            await supervisor.shutdown()

    asyncio.run(scenario())
