"""The flagship checks: sim/socket differential and the hostile soak.

The differential is the deployment mode's correctness proof: the same
geo spec run in the discrete-event simulator and over real UDP sockets
(zero-loss proxy) must produce identical per-request cache decisions,
identical edge-cache contents at probe time, and identical probe
verdicts.  The soak is the robustness proof: a supervised daemon behind
a faulty proxy survives malformed floods, mgmt garbage, an interest
flood, and a producer crash with zero task deaths and the conservation
invariants intact.
"""

from __future__ import annotations

import pytest

from repro.deploy.chaos import ChaosConfig
from repro.deploy.scenario import (
    GeoSpec,
    SoakSpec,
    build_workload,
    differential,
    run_geo_sim,
    run_geo_socket,
    run_soak,
)

SMALL = dict(
    catalog_size=12,
    requests=20,
    probes=8,
    edge_cs_capacity=8,
    vpn_cs_capacity=4,
    fetch_timeout=2000.0,
    probe_timeout=200.0,
)


class TestWorkload:
    def test_workload_is_pure_in_the_seed(self):
        spec = GeoSpec(seed=3, **SMALL)
        assert build_workload(spec) == build_workload(spec)
        other = build_workload(GeoSpec(seed=4, **SMALL))
        assert build_workload(spec) != other

    def test_probe_targets_mix_hot_and_cold(self):
        requests, targets = build_workload(GeoSpec(seed=3, **SMALL))
        hot = [t for t in targets if t in requests]
        cold = [t for t in targets if t not in requests]
        assert hot and cold
        assert all(t.startswith("/cdn/cold-") for t in cold)


class TestGeoSim:
    def test_sim_run_is_reproducible(self):
        spec = GeoSpec(seed=5, scheme="uniform", **SMALL)
        a, b = run_geo_sim(spec), run_geo_sim(spec)
        assert a.decisions == b.decisions
        assert a.probe_verdicts == b.probe_verdicts
        assert not a.violations

    def test_no_privacy_probes_are_perfectly_accurate(self):
        spec = GeoSpec(seed=5, scheme="no-privacy", **SMALL)
        result = run_geo_sim(spec)
        assert result.probe_accuracy == 1.0
        assert result.fetch_failures == 0


class TestDifferential:
    @pytest.mark.parametrize("scheme", ["no-privacy", "uniform"])
    def test_socket_run_reproduces_sim_decisions(self, scheme):
        """The acceptance differential: zero mismatches, both schemes."""
        spec = GeoSpec(seed=7, scheme=scheme, **SMALL)
        sim = run_geo_sim(spec)
        socket = run_geo_socket(spec)
        mismatches = differential(sim, socket)
        assert mismatches == []
        assert not sim.violations and not socket.violations
        assert socket.fetch_failures == 0

    def test_differential_detects_disagreement(self):
        spec = GeoSpec(seed=7, scheme="uniform", **SMALL)
        sim = run_geo_sim(spec)
        # A different seed is a different run: the differential must see it.
        other = run_geo_sim(GeoSpec(seed=8, scheme="uniform", **SMALL))
        other.mode = "socket"
        assert differential(sim, other) != []


class TestSoak:
    def test_short_soak_survives_hostile_conditions(self):
        spec = SoakSpec(
            background_fetches=10,
            malformed_packets=60,
            mgmt_garbage_lines=10,
            flood_interests=40,
            crash_fetches=3,
            pit_capacity=32,
            fetch_timeout=200.0,
        )
        report = run_soak(spec)
        assert report.ok, report.summary()
        assert report.phases["malformed_flood"]["dropped"] > 0
        assert report.phases["mgmt_garbage"]["rejected"] == 10
        assert report.phases["producer_crash"]["recovered_after_restart"] > 0
        assert report.supervisor_stats["restarts_total"] == 0
