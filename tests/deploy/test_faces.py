"""AsyncUdpFace: codec over real sockets, hardening counters, respawn."""

from __future__ import annotations

import asyncio

from repro.deploy.faces import AsyncUdpFace
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest, Nack


class Recorder:
    """Packet handler that records everything it receives."""

    def __init__(self):
        self.interests = []
        self.data = []
        self.nacks = []

    def receive_interest(self, interest, face):
        self.interests.append(interest)

    def receive_data(self, data, face):
        self.data.append(data)

    def receive_nack(self, nack, face):
        self.nacks.append(nack)


async def face_pair():
    """Two faces pointed at each other over loopback UDP."""
    a_owner, b_owner = Recorder(), Recorder()
    a = await AsyncUdpFace.create(a_owner, label="a")
    b = await AsyncUdpFace.create(b_owner, label="b", peer=a.local_addr)
    a.set_peer(b.local_addr)
    return a, b, a_owner, b_owner


async def settle(predicate, timeout=2.0):
    """Poll until ``predicate()`` or fail the test on timeout."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never held"
        await asyncio.sleep(0.005)


def test_packets_roundtrip_over_loopback():
    async def scenario():
        a, b, a_owner, b_owner = await face_pair()
        try:
            interest = Interest(name=Name.parse("/x/y"), nonce=42, lifetime=500.0)
            data = Data(name=Name.parse("/x/y"), producer="p", size=64)
            nack = Nack(name=Name.parse("/x/y"), nonce=42, reason="congestion")
            a.send_interest(interest)
            a.send_data(data)
            a.send_nack(nack)
            await settle(lambda: len(b_owner.nacks) == 1)
            assert b_owner.interests == [interest]
            assert b_owner.data == [data]
            assert b_owner.nacks == [nack]
            assert b.interests_in == 1 and b.data_in == 1 and b.nacks_in == 1
            assert a.bytes_out > 0 and b.bytes_in == a.bytes_out
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


def test_malformed_datagrams_counted_and_dropped():
    async def scenario():
        a, b, _, b_owner = await face_pair()
        try:
            for junk in (b"", b"\xff" * 40, b"\x05\x02x", b"not-a-packet"):
                a.transport.sendto(junk, b.local_addr)
            a.send_interest(Interest(name=Name.parse("/ok")))
            await settle(lambda: len(b_owner.interests) == 1)
            # Empty datagrams may be elided by the stack; everything else
            # must land in malformed_dropped, and the face must stay up.
            assert b.malformed_dropped >= 3
            assert b.tasks_alive
            assert b.handler_errors == 0
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


def test_foreign_sender_dropped_when_peer_locked():
    async def scenario():
        a, b, _, b_owner = await face_pair()
        stranger = await AsyncUdpFace.create(Recorder(), label="stranger")
        stranger.set_peer(b.local_addr)
        try:
            stranger.send_interest(Interest(name=Name.parse("/evil")))
            a.send_interest(Interest(name=Name.parse("/ok")))
            await settle(lambda: len(b_owner.interests) == 1)
            assert b_owner.interests[0].name == Name.parse("/ok")
            assert b.foreign_dropped == 1
        finally:
            await a.close()
            await b.close()
            await stranger.close()

    asyncio.run(scenario())


def test_peer_learned_from_first_packet():
    async def scenario():
        listener_owner = Recorder()
        listener = await AsyncUdpFace.create(listener_owner, label="listen")
        caller_owner = Recorder()
        caller = await AsyncUdpFace.create(
            caller_owner, label="call", peer=listener.local_addr
        )
        try:
            caller.send_interest(Interest(name=Name.parse("/hello")))
            await settle(lambda: len(listener_owner.interests) == 1)
            assert listener.peer_addr == caller.local_addr
            # And the learned peer makes replies routable.
            listener.send_data(Data(name=Name.parse("/hello")))
            await settle(lambda: len(caller_owner.data) == 1)
        finally:
            await listener.close()
            await caller.close()

    asyncio.run(scenario())


def test_handler_exception_is_isolated():
    async def scenario():
        class Exploder(Recorder):
            def receive_interest(self, interest, face):
                raise RuntimeError("boom")

        owner = Exploder()
        target = await AsyncUdpFace.create(owner, label="t")
        src = await AsyncUdpFace.create(Recorder(), label="s", peer=target.local_addr)
        target.set_peer(src.local_addr)
        try:
            src.send_interest(Interest(name=Name.parse("/a")))
            src.send_data(Data(name=Name.parse("/b")))
            await settle(lambda: len(owner.data) == 1)
            assert target.handler_errors == 1
            assert target.tasks_alive  # poison packet did not kill dispatch
        finally:
            await target.close()
            await src.close()

    asyncio.run(scenario())


def test_respawn_dead_tasks_restores_service():
    async def scenario():
        a, b, _, b_owner = await face_pair()
        try:
            # Simulate a crashed dispatch task: replace it with one that
            # died on an exception (cancelled tasks are deliberate stops
            # and are never respawned).
            async def crash():
                raise RuntimeError("simulated task crash")

            loop = asyncio.get_running_loop()
            b._tasks[0].cancel()
            b._tasks[0] = loop.create_task(crash())
            await asyncio.sleep(0.02)
            assert not b.tasks_alive
            assert b.respawn_dead_tasks() == 1
            assert b.tasks_alive
            a.send_interest(Interest(name=Name.parse("/after")))
            await settle(lambda: len(b_owner.interests) == 1)
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


def test_interest_gate_refuses_before_dispatch():
    async def scenario():
        a, b, _, b_owner = await face_pair()
        refused = []
        b.interest_gate = lambda interest, face: (
            refused.append(interest) or False
        )
        try:
            a.send_interest(Interest(name=Name.parse("/gated")))
            await settle(lambda: len(refused) == 1)
            await asyncio.sleep(0.02)
            assert b_owner.interests == []
            assert b.interests_in == 1  # counted, then gated
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())
