"""ForwarderDaemon loopback: a real fetch through a real forwarder."""

from __future__ import annotations

import asyncio

import pytest

from repro.deploy.daemon import DaemonConfig, ForwarderDaemon, make_scheme
from repro.deploy.endpoints import AsyncConsumer, AsyncProducer, FetchFailed
from repro.faults.retry import RetryPolicy
from repro.ndn.errors import TopologyError
from repro.ndn.name import Name


async def daemon_rig(scheme="no-privacy", **cfg_kwargs):
    """daemon with one consumer-side and one producer-side face, wired up."""
    daemon = ForwarderDaemon(DaemonConfig(name="t", scheme=scheme, **cfg_kwargs))
    await daemon.start()
    consumer_face = await daemon.add_udp_face(label="t:consumer")
    producer_face = await daemon.add_udp_face(label="t:producer")

    consumer = AsyncConsumer(daemon.engine, name="c")
    await consumer.attach(peer=consumer_face.local_addr)
    consumer_face.set_peer(consumer.face.local_addr)

    producer = AsyncProducer(daemon.engine, prefix="/shop", producer_id="shop")
    await producer.attach(peer=producer_face.local_addr)
    producer_face.set_peer(producer.face.local_addr)

    daemon.add_route("/shop", producer_face.face_id)
    return daemon, consumer, producer


async def teardown(daemon, consumer, producer):
    await consumer.close()
    await producer.close()
    await daemon.stop()


ONE_SHOT = RetryPolicy(retries=0, timeout=2000.0, backoff=1.0)


def test_fetch_roundtrip_and_cache_hit():
    async def scenario():
        daemon, consumer, producer = await daemon_rig()
        try:
            result = await consumer.fetch("/shop/item", retry=ONE_SHOT)
            assert result.data.name == Name.parse("/shop/item")
            assert result.attempts == 1
            assert result.rtt > 0.0
            counters = daemon.forwarder.monitor.counters
            assert counters.get("cs_miss", 0) == 1
            # Second fetch is served from the daemon's Content Store.
            again = await consumer.fetch("/shop/item", retry=ONE_SHOT)
            assert again.data.name == Name.parse("/shop/item")
            assert daemon.forwarder.monitor.counters.get("cs_hit", 0) == 1
        finally:
            await teardown(daemon, consumer, producer)

    asyncio.run(scenario())


def test_no_route_nack_fails_fast():
    async def scenario():
        daemon, consumer, producer = await daemon_rig()
        try:
            with pytest.raises(FetchFailed) as excinfo:
                await consumer.fetch(
                    "/nowhere/x",
                    retry=RetryPolicy(retries=3, timeout=2000.0, backoff=1.0),
                )
            # Fast-fail: the no-route Nack ends the fetch on attempt 1
            # instead of burning the whole retry budget.
            assert excinfo.value.reason == "no-route"
            assert excinfo.value.attempts == 1
        finally:
            await teardown(daemon, consumer, producer)

    asyncio.run(scenario())


def test_drain_mode_refuses_with_congestion_nack():
    async def scenario():
        daemon, consumer, producer = await daemon_rig()
        try:
            daemon.drain()
            with pytest.raises(FetchFailed):
                # Short budget: the congestion Nack burns the remaining
                # deadline as backoff before the fetch gives up.
                await consumer.fetch(
                    "/shop/item",
                    retry=RetryPolicy(retries=0, timeout=200.0, backoff=1.0),
                )
            assert daemon.drained_interests == 1
            assert consumer.fetch_nacked == 1
            # Undrain restores service.
            daemon.undrain()
            result = await consumer.fetch("/shop/item", retry=ONE_SHOT)
            assert result.data is not None
        finally:
            await teardown(daemon, consumer, producer)

    asyncio.run(scenario())


def test_scheme_swap_flushes_cache_and_serves():
    async def scenario():
        daemon, consumer, producer = await daemon_rig()
        try:
            await consumer.fetch("/shop/item", retry=ONE_SHOT)
            assert len(daemon.forwarder.cs) == 1
            daemon.set_scheme("uniform")
            assert len(daemon.forwarder.cs) == 0
            assert daemon.forwarder.scheme.name == "uniform-random-cache"
            result = await consumer.fetch("/shop/item", retry=ONE_SHOT)
            assert result.data is not None
        finally:
            await teardown(daemon, consumer, producer)

    asyncio.run(scenario())


def test_route_management_and_health():
    async def scenario():
        daemon, consumer, producer = await daemon_rig()
        try:
            health = daemon.health()
            assert health["up"] and health["ready"]
            assert health["faces_alive"] == 2
            producer_face = daemon.face_tuple()[1]
            daemon.remove_route("/shop", producer_face.face_id)
            with pytest.raises(FetchFailed) as excinfo:
                await consumer.fetch("/shop/late", retry=ONE_SHOT)
            assert excinfo.value.reason == "no-route"
            with pytest.raises(TopologyError):
                daemon.add_route("/shop", 9999)
        finally:
            await teardown(daemon, consumer, producer)

    asyncio.run(scenario())


def test_deadline_propagates_into_interest_lifetime():
    async def scenario():
        daemon, consumer, producer = await daemon_rig()
        try:
            seen = []
            consumer_face = daemon.face_tuple()[0]
            original_gate = consumer_face.interest_gate

            def spy(interest, face):
                seen.append(interest)
                return original_gate(interest, face)

            consumer_face.interest_gate = spy
            await consumer.fetch(
                "/shop/item",
                retry=RetryPolicy(retries=0, timeout=700.0, backoff=1.0),
                deadline=700.0,
            )
            assert len(seen) == 1
            # Lifetime is the remaining deadline budget at send time.
            assert seen[0].lifetime <= 700.0
        finally:
            await teardown(daemon, consumer, producer)

    asyncio.run(scenario())


def test_make_scheme_rejects_unknown_name():
    with pytest.raises(TopologyError):
        make_scheme("definitely-not-a-scheme")
