"""ChaosUdpProxy: seeded fault injection between real UDP endpoints."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.deploy.chaos import ChaosConfig, ChaosUdpProxy
from repro.faults.errors import FaultConfigError
from repro.faults.loss import IidLoss


class _Echo(asyncio.DatagramProtocol):
    """Endpoint that records receptions and can send."""

    def __init__(self):
        self.received = []
        self.transport = None

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, payload, addr):
        self.received.append(payload)


async def udp_endpoint():
    loop = asyncio.get_running_loop()
    protocol = _Echo()
    transport, _ = await loop.create_datagram_endpoint(
        lambda: protocol, local_addr=("127.0.0.1", 0)
    )
    return transport, protocol, transport.get_extra_info("sockname")[:2]


async def settle(predicate, timeout=2.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never held"
        await asyncio.sleep(0.005)


def test_zero_loss_proxy_is_transparent_both_ways():
    async def scenario():
        t_a, p_a, addr_a = await udp_endpoint()
        t_b, p_b, addr_b = await udp_endpoint()
        proxy = ChaosUdpProxy(np.random.default_rng(0), ChaosConfig.zero_loss())
        side_a, side_b = await proxy.start(peer_a=addr_a, peer_b=addr_b)
        try:
            for i in range(10):
                t_a.sendto(b"a->b %d" % i, side_a)
            await settle(lambda: len(p_b.received) == 10)
            t_b.sendto(b"reply", side_b)
            await settle(lambda: len(p_a.received) == 1)
            stats = proxy.stats()
            assert stats["relayed"] == 11
            assert stats["dropped"] == stats["corrupted"] == 0
            assert stats["duplicated"] == stats["reordered"] == 0
        finally:
            await proxy.close()
            t_a.close()
            t_b.close()

    asyncio.run(scenario())


def test_loss_is_seeded_and_accounted():
    async def scenario():
        t_a, p_a, addr_a = await udp_endpoint()
        t_b, p_b, addr_b = await udp_endpoint()
        proxy = ChaosUdpProxy(
            np.random.default_rng(7), ChaosConfig(loss=IidLoss(0.5))
        )
        side_a, _ = await proxy.start(peer_a=addr_a, peer_b=addr_b)
        try:
            for i in range(60):
                t_a.sendto(b"x%d" % i, side_a)
            await settle(
                lambda: proxy.dropped + proxy.relayed == 60, timeout=3.0
            )
            # Same seed, same draws: the exact split is reproducible.
            assert proxy.dropped > 10 and proxy.relayed > 10
            rng = np.random.default_rng(7)
            model = IidLoss(0.5)
            drops = sum(model.drops(rng) for _ in range(60))
            assert proxy.dropped == drops
        finally:
            await proxy.close()
            t_a.close()
            t_b.close()

    asyncio.run(scenario())


def test_corrupt_duplicate_reorder_counters():
    async def scenario():
        t_a, p_a, addr_a = await udp_endpoint()
        t_b, p_b, addr_b = await udp_endpoint()
        proxy = ChaosUdpProxy(
            np.random.default_rng(3),
            ChaosConfig(corrupt_prob=1.0, duplicate_prob=1.0),
        )
        side_a, _ = await proxy.start(peer_a=addr_a, peer_b=addr_b)
        try:
            t_a.sendto(b"payload-bytes", side_a)
            await settle(lambda: len(p_b.received) == 2)
            assert proxy.corrupted == 1 and proxy.duplicated == 1
            # Duplicates carry the same (corrupted) payload.
            assert p_b.received[0] == p_b.received[1]
            assert p_b.received[0] != b"payload-bytes"
        finally:
            await proxy.close()
            t_a.close()
            t_b.close()

    asyncio.run(scenario())


def test_delay_band_defers_delivery():
    async def scenario():
        t_a, p_a, addr_a = await udp_endpoint()
        t_b, p_b, addr_b = await udp_endpoint()
        proxy = ChaosUdpProxy(
            np.random.default_rng(5),
            ChaosConfig(delay_range=(0.03, 0.05)),
        )
        side_a, _ = await proxy.start(peer_a=addr_a, peer_b=addr_b)
        try:
            loop = asyncio.get_running_loop()
            start = loop.time()
            t_a.sendto(b"slow", side_a)
            await settle(lambda: len(p_b.received) == 1)
            assert loop.time() - start >= 0.025
            assert proxy.delayed == 1
        finally:
            await proxy.close()
            t_a.close()
            t_b.close()

    asyncio.run(scenario())


def test_unpinned_side_is_unroutable_until_learned():
    async def scenario():
        t_a, p_a, addr_a = await udp_endpoint()
        t_b, p_b, addr_b = await udp_endpoint()
        proxy = ChaosUdpProxy(np.random.default_rng(0))
        side_a, side_b = await proxy.start(peer_a=addr_a)  # b unpinned
        try:
            t_a.sendto(b"nowhere to go", side_a)
            await settle(lambda: proxy.unroutable == 1)
            # b introduces itself; now a->b flows.
            t_b.sendto(b"hello from b", side_b)
            await settle(lambda: len(p_a.received) == 1)
            t_a.sendto(b"routed now", side_a)
            await settle(lambda: len(p_b.received) == 1)
        finally:
            await proxy.close()
            t_a.close()
            t_b.close()

    asyncio.run(scenario())


@pytest.mark.parametrize(
    "kwargs",
    [
        {"duplicate_prob": 1.5},
        {"reorder_prob": -0.1},
        {"corrupt_prob": 2.0},
        {"delay_range": (-0.1, 0.2)},
        {"delay_range": (0.2, 0.1)},
        {"reorder_delay": -1.0},
        {"corrupt_bytes": 0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(FaultConfigError):
        ChaosConfig(**kwargs)
