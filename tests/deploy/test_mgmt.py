"""TCP management channel: command dispatch, error replies, hardening."""

from __future__ import annotations

import asyncio

import pytest

from repro.deploy.daemon import DaemonConfig, ForwarderDaemon
from repro.deploy.mgmt import MgmtClient, MgmtError, MgmtServer
from repro.ndn.name import Name


async def mgmt_rig():
    daemon = ForwarderDaemon(DaemonConfig(name="m"))
    await daemon.start()
    face = await daemon.add_udp_face(label="m:f0")
    server = MgmtServer(daemon)
    host, port = await server.start()
    client = await MgmtClient(host, port).connect()
    return daemon, face, server, client


async def teardown(daemon, server, client):
    await client.close()
    await server.stop()
    await daemon.stop()


def test_health_ready_stats_faces():
    async def scenario():
        daemon, face, server, client = await mgmt_rig()
        try:
            health = await client.send_json("health")
            assert health["up"] and health["ready"]
            assert await client.send("ready") == "ready"
            stats = await client.send_json("stats")
            assert stats["name"] == "m"
            faces = await client.send_json("faces")
            assert str(face.face_id) in faces
        finally:
            await teardown(daemon, server, client)

    asyncio.run(scenario())


def test_route_and_scheme_commands():
    async def scenario():
        daemon, face, server, client = await mgmt_rig()
        try:
            reply = await client.send(f"add-route /shop {face.face_id}")
            assert "route" in reply
            assert daemon.forwarder.fib.longest_prefix_match(
                Name.parse("/shop/x")
            )
            await client.send(f"remove-route /shop {face.face_id}")
            assert not daemon.forwarder.fib.longest_prefix_match(
                Name.parse("/shop/x")
            )
            reply = await client.send("scheme uniform")
            assert "uniform" in reply
            assert daemon.forwarder.scheme.name == "uniform-random-cache"
        finally:
            await teardown(daemon, server, client)

    asyncio.run(scenario())


def test_drain_undrain_flow():
    async def scenario():
        daemon, face, server, client = await mgmt_rig()
        try:
            await client.send("drain")
            assert daemon.draining
            with pytest.raises(MgmtError):
                await client.send("ready")
            await client.send("undrain")
            assert not daemon.draining
            assert await client.send("ready") == "ready"
        finally:
            await teardown(daemon, server, client)

    asyncio.run(scenario())


def test_errors_are_replies_not_disconnects():
    async def scenario():
        daemon, face, server, client = await mgmt_rig()
        try:
            for bad in (
                "no-such-command",
                "add-route",                # missing args
                "add-route /x notanint",
                "scheme bogus",
                "add-route /x 424242",      # unknown face
            ):
                with pytest.raises(MgmtError):
                    await client.send(bad)
            # The connection survives every error and still serves.
            assert await client.send("ready") == "ready"
            assert server.command_errors >= 5
        finally:
            await teardown(daemon, server, client)

    asyncio.run(scenario())


def test_raw_garbage_lines_get_error_replies():
    async def scenario():
        daemon, face, server, client = await mgmt_rig()
        try:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(b"\xff\xfe binary junk\n")
            reply = await reader.readline()
            assert reply.startswith(b"error")
            writer.write(b"quit\n")
            assert (await reader.readline()).startswith(b"ok bye")
            writer.close()
            await writer.wait_closed()
        finally:
            await teardown(daemon, server, client)

    asyncio.run(scenario())
