"""RealTimeEngine: the sim scheduling contract over an asyncio loop."""

from __future__ import annotations

import asyncio

import pytest

from repro.deploy.clock import RealTimeEngine
from repro.sim.errors import ClockError


def test_now_advances_with_wall_clock():
    async def scenario():
        engine = RealTimeEngine(asyncio.get_running_loop())
        t0 = engine.now
        await asyncio.sleep(0.02)
        t1 = engine.now
        assert t1 - t0 >= 15.0  # ms, generous lower bound for slow CI

    asyncio.run(scenario())


def test_schedule_fires_with_args():
    async def scenario():
        engine = RealTimeEngine(asyncio.get_running_loop())
        fired = []
        engine.schedule(5.0, fired.append, "a")
        engine.schedule_fire_and_forget(5.0, fired.append, "b")
        await asyncio.sleep(0.05)
        assert sorted(fired) == ["a", "b"]
        assert engine.events_processed == 2
        assert engine.pending_count == 0

    asyncio.run(scenario())


def test_cancel_prevents_firing():
    async def scenario():
        engine = RealTimeEngine(asyncio.get_running_loop())
        fired = []
        event = engine.schedule(5.0, fired.append, "x")
        event.cancel()
        await asyncio.sleep(0.03)
        assert fired == []
        assert engine.pending_count == 0
        assert engine.events_processed == 0

    asyncio.run(scenario())


def test_schedule_at_absolute_time():
    async def scenario():
        engine = RealTimeEngine(asyncio.get_running_loop())
        fired = []
        engine.schedule_at(engine.now + 5.0, fired.append, 1)
        await asyncio.sleep(0.03)
        assert fired == [1]
        with pytest.raises(ClockError):
            engine.schedule_at(engine.now - 50.0, fired.append, 2)

    asyncio.run(scenario())


def test_time_scale_stretches_real_time():
    async def scenario():
        loop = asyncio.get_running_loop()
        engine = RealTimeEngine(loop, time_scale=2.0)
        # 10 engine-ms should take ~20 real ms.
        assert engine._to_loop_delay(10.0) == pytest.approx(0.02)
        start = loop.time()
        await asyncio.sleep(0.04)
        assert engine.now == pytest.approx((loop.time() - start) * 500.0, rel=0.25)

    asyncio.run(scenario())


def test_negative_delay_and_bad_scale_rejected():
    async def scenario():
        engine = RealTimeEngine(asyncio.get_running_loop())
        with pytest.raises(ClockError):
            engine.schedule(-1.0, lambda: None)
        with pytest.raises(ClockError):
            engine.schedule_fire_and_forget(-1.0, lambda: None)

    asyncio.run(scenario())
    with pytest.raises(ClockError):
        RealTimeEngine(asyncio.new_event_loop(), time_scale=0.0)


def test_sim_only_features_raise():
    async def scenario():
        engine = RealTimeEngine(asyncio.get_running_loop())
        with pytest.raises(ClockError):
            engine.spawn(iter(()))
        with pytest.raises(ClockError):
            engine.run()

    asyncio.run(scenario())
