"""Unit tests for the scheme interface and Decision type."""

from __future__ import annotations

import pytest

from repro.core.schemes.base import CacheScheme, Decision, DecisionKind
from tests.conftest import make_entry


class TestDecision:
    def test_hit_factory(self):
        d = Decision.hit()
        assert d.kind is DecisionKind.HIT
        assert d.counts_as_hit
        assert d.delay == 0.0

    def test_miss_factory(self):
        d = Decision.miss()
        assert d.kind is DecisionKind.MISS
        assert not d.counts_as_hit

    def test_delayed_factory(self):
        d = Decision.delayed(15.0)
        assert d.kind is DecisionKind.DELAYED_HIT
        assert d.delay == 15.0
        assert not d.counts_as_hit

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Decision.delayed(-0.1)

    def test_decision_is_frozen(self):
        d = Decision.hit()
        with pytest.raises(Exception):
            d.delay = 5.0  # type: ignore[misc]


class RecordingScheme(CacheScheme):
    """Always answers MISS for private content; records calls."""

    name = "recording"

    def __init__(self):
        self.private_calls = 0

    def decide_private(self, entry, now):
        self.private_calls += 1
        return Decision.miss()


class TestBaseDispatch:
    def test_non_private_requests_always_hit(self):
        scheme = RecordingScheme()
        decision = scheme.on_request(make_entry(), private=False, now=0.0)
        assert decision.kind is DecisionKind.HIT
        assert scheme.private_calls == 0

    def test_private_requests_dispatch_to_subclass(self):
        scheme = RecordingScheme()
        decision = scheme.on_request(make_entry(), private=True, now=0.0)
        assert decision.kind is DecisionKind.MISS
        assert scheme.private_calls == 1

    def test_default_hooks_are_noops(self):
        scheme = RecordingScheme()
        entry = make_entry()
        scheme.on_insert(entry, private=True, now=0.0)
        scheme.on_evict(entry)
        scheme.reset()  # none of these should raise

    def test_repr_contains_name(self):
        assert "recording" in repr(RecordingScheme())
