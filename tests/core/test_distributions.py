"""Unit tests for the first-hit distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.privacy.distributions import (
    DegenerateK,
    TruncatedGeometric,
    UniformK,
)


class TestUniformK:
    def test_pmf_uniform(self):
        d = UniformK(5)
        assert all(d.pmf(r) == pytest.approx(0.2) for r in range(5))
        assert d.pmf(-1) == 0.0
        assert d.pmf(5) == 0.0

    def test_pmf_sums_to_one(self):
        d = UniformK(17)
        assert sum(d.pmf(r) for r in range(17)) == pytest.approx(1.0)

    def test_cdf(self):
        d = UniformK(4)
        assert d.cdf(-1) == 0.0
        assert d.cdf(0) == pytest.approx(0.25)
        assert d.cdf(3) == pytest.approx(1.0)
        assert d.cdf(10) == 1.0

    def test_mean(self):
        assert UniformK(5).mean() == 2.0
        assert UniformK(1).mean() == 0.0

    def test_samples_in_domain(self, rng):
        d = UniformK(8)
        samples = [d.sample(rng) for _ in range(1000)]
        assert min(samples) >= 0
        assert max(samples) <= 7

    def test_sample_mean_converges(self, rng):
        d = UniformK(100)
        samples = [d.sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(d.mean(), abs=1.0)

    def test_invalid_K(self):
        with pytest.raises(ValueError):
            UniformK(0)


class TestTruncatedGeometric:
    def test_pmf_formula(self):
        d = TruncatedGeometric(0.5, 4)
        # (1-a) a^r / (1 - a^K) with a=0.5, K=4: norm = 15/16.
        assert d.pmf(0) == pytest.approx(0.5 / (15 / 16))
        assert d.pmf(3) == pytest.approx(0.0625 / (15 / 16))
        assert d.pmf(4) == 0.0

    def test_pmf_sums_to_one(self):
        d = TruncatedGeometric(0.7, 12)
        assert sum(d.pmf(r) for r in range(12)) == pytest.approx(1.0)

    def test_untruncated_pmf(self):
        d = TruncatedGeometric(0.3)
        assert d.pmf(0) == pytest.approx(0.7)
        assert d.pmf(2) == pytest.approx(0.7 * 0.09)
        assert sum(d.pmf(r) for r in range(100)) == pytest.approx(1.0)

    def test_cdf_matches_pmf_sums(self):
        d = TruncatedGeometric(0.6, 9)
        running = 0.0
        for r in range(9):
            running += d.pmf(r)
            assert d.cdf(r) == pytest.approx(running)

    def test_mean_matches_summation(self):
        d = TruncatedGeometric(0.8, 15)
        expected = sum(r * d.pmf(r) for r in range(15))
        assert d.mean() == pytest.approx(expected)

    def test_untruncated_mean(self):
        assert TruncatedGeometric(0.5).mean() == pytest.approx(1.0)

    def test_samples_in_domain(self, rng):
        d = TruncatedGeometric(0.9, 6)
        samples = [d.sample(rng) for _ in range(2000)]
        assert min(samples) >= 0
        assert max(samples) <= 5

    def test_sample_distribution_matches_pmf(self, rng):
        d = TruncatedGeometric(0.5, 8)
        samples = np.array([d.sample(rng) for _ in range(40000)])
        for r in range(8):
            assert np.mean(samples == r) == pytest.approx(d.pmf(r), abs=0.01)

    def test_untruncated_sample_mean(self, rng):
        d = TruncatedGeometric(0.75)
        samples = [d.sample(rng) for _ in range(40000)]
        assert np.mean(samples) == pytest.approx(3.0, abs=0.1)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            TruncatedGeometric(0.0)
        with pytest.raises(ValueError):
            TruncatedGeometric(1.0)

    def test_invalid_K(self):
        with pytest.raises(ValueError):
            TruncatedGeometric(0.5, 0)


class TestDegenerateK:
    def test_point_mass(self):
        d = DegenerateK(3)
        assert d.pmf(3) == 1.0
        assert d.pmf(2) == 0.0
        assert d.cdf(2) == 0.0
        assert d.cdf(3) == 1.0
        assert d.mean() == 3.0

    def test_sample_is_constant(self, rng):
        d = DegenerateK(7)
        assert all(d.sample(rng) == 7 for _ in range(10))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            DegenerateK(-1)
