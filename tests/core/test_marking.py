"""Unit tests for privacy marking and the trigger rule (Section V)."""

from __future__ import annotations

import pytest

from repro.core.schemes.marking import MarkingPolicy
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest
from tests.conftest import make_entry


def make_policy():
    return MarkingPolicy()


class TestInsertMarking:
    def test_producer_bit_makes_private(self):
        policy = make_policy()
        data = Data(name=Name.parse("/a"), private=True)
        assert policy.privacy_at_insert(data, requested_private=False)

    def test_reserved_name_component_makes_private(self):
        policy = make_policy()
        data = Data(name=Name.parse("/a/private/x"))
        assert policy.privacy_at_insert(data, requested_private=False)

    def test_consumer_request_makes_private(self):
        policy = make_policy()
        data = Data(name=Name.parse("/a"))
        assert policy.privacy_at_insert(data, requested_private=True)

    def test_unmarked_is_public(self):
        policy = make_policy()
        data = Data(name=Name.parse("/a"))
        assert not policy.privacy_at_insert(data, requested_private=False)


class TestTriggerRule:
    def test_producer_marked_stays_private_despite_public_interest(self):
        policy = make_policy()
        entry = make_entry(private=True, producer_private=True)
        policy.annotate_entry(entry, entry.data)
        decision = policy.on_request(
            entry, Interest(name=entry.name, private=False)
        )
        assert decision.private
        assert not decision.demoted
        assert entry.private

    def test_consumer_marked_demoted_by_public_interest(self):
        policy = make_policy()
        entry = make_entry(private=True, producer_private=False)
        policy.annotate_entry(entry, entry.data)
        decision = policy.on_request(
            entry, Interest(name=entry.name, private=False)
        )
        assert not decision.private
        assert decision.demoted
        assert not entry.private

    def test_demotion_is_permanent_for_cache_residency(self):
        """Once non-private, later private interests cannot re-promote —
        the paper's rule preventing the delayed/delayed distinguisher."""
        policy = make_policy()
        entry = make_entry(private=True, producer_private=False)
        policy.annotate_entry(entry, entry.data)
        policy.on_request(entry, Interest(name=entry.name, private=False))
        decision = policy.on_request(
            entry, Interest(name=entry.name, private=True)
        )
        assert not decision.private
        assert not entry.private

    def test_private_interests_keep_entry_private(self):
        policy = make_policy()
        entry = make_entry(private=True, producer_private=False)
        policy.annotate_entry(entry, entry.data)
        for _ in range(5):
            decision = policy.on_request(
                entry, Interest(name=entry.name, private=True)
            )
            assert decision.private

    def test_public_entry_stays_public(self):
        policy = make_policy()
        entry = make_entry(private=False, producer_private=False)
        policy.annotate_entry(entry, entry.data)
        decision = policy.on_request(
            entry, Interest(name=entry.name, private=True)
        )
        assert not decision.private

    def test_effective_privacy_flag_api(self):
        policy = make_policy()
        entry = make_entry(private=True, producer_private=False)
        policy.annotate_entry(entry, entry.data)
        assert policy.effective_privacy(entry, request_private=True).private
        assert not policy.effective_privacy(entry, request_private=False).private

    def test_unannotated_entry_treated_by_flag_only(self):
        policy = make_policy()
        entry = make_entry(private=True)
        decision = policy.effective_privacy(entry, request_private=True)
        assert decision.private
