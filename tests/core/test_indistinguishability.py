"""Unit tests for (ε, δ)-probabilistic indistinguishability (Def. IV.1)."""

from __future__ import annotations

import math

import pytest

from repro.core.privacy.indistinguishability import (
    min_delta,
    min_epsilon,
    total_variation,
    tradeoff_curve,
)


class TestMinDelta:
    def test_identical_distributions_need_nothing(self):
        d = {0: 0.5, 1: 0.5}
        result = min_delta(d, d, epsilon=0.0)
        assert result.delta == 0.0
        assert result.bad_outcomes == ()

    def test_disjoint_supports_are_maximally_distinguishable(self):
        result = min_delta({0: 1.0}, {1: 1.0}, epsilon=10.0)
        assert result.delta == pytest.approx(2.0)

    def test_one_sided_outcome_counts_both_masses(self):
        d1 = {0: 0.9, 1: 0.1}
        d2 = {0: 1.0}
        result = min_delta(d1, d2, epsilon=1.0)
        # Outcome 1 exists only in d1; outcome 0 ratio 0.9 within e^1.
        assert result.delta == pytest.approx(0.1)
        assert result.bad_outcomes == (1,)

    def test_epsilon_bound_respected(self):
        d1 = {0: 0.8, 1: 0.2}
        d2 = {0: 0.2, 1: 0.8}
        tight = min_delta(d1, d2, epsilon=math.log(4.0) + 1e-9)
        assert tight.delta == pytest.approx(0.0, abs=1e-12)
        loose = min_delta(d1, d2, epsilon=math.log(4.0) - 0.1)
        assert loose.delta == pytest.approx(2.0)

    def test_uniform_shift_structure(self):
        """The Theorem VI.1 structure: shifted uniforms differ only on the
        non-overlapping tails, each of mass x/K."""
        K, x = 10, 2
        d0 = {m: 1.0 / K for m in range(1, K + 1)}           # prefix = k+1
        d1 = {m: 1.0 / K for m in range(-x + 1, K - x + 1)}  # shifted by x
        result = min_delta(d0, d1, epsilon=0.0)
        assert result.delta == pytest.approx(2.0 * x / K)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            min_delta({0: 1.0}, {0: 1.0}, epsilon=-0.1)

    def test_unnormalized_rejected(self):
        with pytest.raises(ValueError):
            min_delta({0: 0.5}, {0: 1.0}, epsilon=0.0)

    def test_satisfied_by(self):
        result = min_delta({0: 0.6, 1: 0.4}, {0: 0.4, 1: 0.6}, epsilon=0.0)
        assert result.satisfied_by(0.0, 2.0)
        assert not result.satisfied_by(0.0, result.delta / 2)


class TestMinEpsilon:
    def test_identical_needs_zero(self):
        d = {0: 0.5, 1: 0.5}
        assert min_epsilon(d, d, delta=0.0) == 0.0

    def test_budget_covers_worst_outcomes(self):
        d1 = {0: 0.8, 1: 0.1, 2: 0.1}
        d2 = {0: 0.8, 1: 0.2}
        # Outcome 2 (one-sided, mass 0.1) must go into the delta budget;
        # outcome 1 then needs eps >= ln 2.
        eps = min_epsilon(d1, d2, delta=0.15)
        assert eps == pytest.approx(math.log(2.0))

    def test_infinite_when_budget_too_small(self):
        assert min_epsilon({0: 1.0}, {1: 1.0}, delta=0.5) == math.inf

    def test_consistency_with_min_delta(self):
        d1 = {0: 0.5, 1: 0.3, 2: 0.2}
        d2 = {0: 0.3, 1: 0.5, 2: 0.2}
        eps = min_epsilon(d1, d2, delta=0.0)
        assert min_delta(d1, d2, eps).delta == pytest.approx(0.0, abs=1e-12)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            min_epsilon({0: 1.0}, {0: 1.0}, delta=-0.1)


class TestCurveAndTv:
    def test_curve_is_monotone_nonincreasing(self):
        d1 = {0: 0.5, 1: 0.3, 2: 0.2}
        d2 = {0: 0.2, 1: 0.5, 2: 0.3}
        curve = tradeoff_curve(d1, d2)
        deltas = [delta for _eps, delta in curve]
        assert all(a >= b for a, b in zip(deltas, deltas[1:]))

    def test_curve_ends_at_zero_delta(self):
        d1 = {0: 0.5, 1: 0.5}
        d2 = {0: 0.4, 1: 0.6}
        curve = tradeoff_curve(d1, d2)
        assert curve[-1][1] == pytest.approx(0.0, abs=1e-12)

    def test_total_variation(self):
        assert total_variation({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)
        assert total_variation({0: 0.5, 1: 0.5}, {0: 0.5, 1: 0.5}) == 0.0
        assert total_variation({0: 0.7, 1: 0.3}, {0: 0.3, 1: 0.7}) == pytest.approx(0.4)

    def test_delta_at_zero_eps_at_least_2tv(self):
        # Every outcome with p1 != p2 violates the exact-ratio test, and
        # contributes p1 + p2 >= |p1 - p2|, so delta(0) >= 2 TV.
        d1 = {0: 0.6, 1: 0.4}
        d2 = {0: 0.5, 1: 0.5}
        assert min_delta(d1, d2, 0.0).delta >= 2 * total_variation(d1, d2) - 1e-12
