"""Monte-Carlo validation: running scheme code matches the theory."""

from __future__ import annotations

import pytest

from repro.core.privacy.distributions import TruncatedGeometric, UniformK
from repro.core.privacy.empirical import (
    estimate_privacy,
    estimate_utility,
    simulate_probe_prefix,
)
from repro.core.privacy.oracle import prefix_length_distribution
from repro.core.privacy.utility import exponential_utility, uniform_utility
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.uniform import UniformRandomCache


def uniform_factory(K):
    return lambda rng: UniformRandomCache(K=K, rng=rng)


def expo_factory(alpha, K):
    return lambda rng: ExponentialRandomCache(alpha=alpha, K=K, rng=rng)


class TestProbePrefixSimulation:
    def test_matches_oracle_s0(self):
        K, t = 6, 8
        empirical = simulate_probe_prefix(uniform_factory(K), 0, t, trials=8000)
        exact = prefix_length_distribution(UniformK(K), 0, t)
        for outcome, p in exact.items():
            assert empirical.get(outcome, 0.0) == pytest.approx(p, abs=0.03)

    def test_matches_oracle_s1(self):
        K, x, t = 6, 2, 8
        empirical = simulate_probe_prefix(uniform_factory(K), x, t, trials=8000)
        exact = prefix_length_distribution(UniformK(K), x, t)
        for outcome, p in exact.items():
            assert empirical.get(outcome, 0.0) == pytest.approx(p, abs=0.03)

    def test_exponential_matches_oracle(self):
        alpha, K, t = 0.7, 8, 10
        empirical = simulate_probe_prefix(expo_factory(alpha, K), 1, t, trials=8000)
        exact = prefix_length_distribution(TruncatedGeometric(alpha, K), 1, t)
        for outcome, p in exact.items():
            assert empirical.get(outcome, 0.0) == pytest.approx(p, abs=0.03)

    def test_probabilities_sum_to_one(self):
        d = simulate_probe_prefix(uniform_factory(5), 0, 6, trials=1000)
        assert sum(d.values()) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate_probe_prefix(uniform_factory(5), 0, 0, trials=10)
        with pytest.raises(ValueError):
            simulate_probe_prefix(uniform_factory(5), 0, 5, trials=0)


class TestEmpiricalPrivacy:
    # Strict ε=0 is degenerate on sampled distributions (any sampling noise
    # breaks an exact-ratio test), so the empirical checks use a small ε
    # that absorbs noise while still catching every one-sided outcome.
    NOISE_EPS = 0.2

    def test_uniform_delta_near_theorem(self):
        """Sampled δ approximates 2k/K (Theorem VI.1)."""
        k, K = 2, 10
        result = estimate_privacy(
            uniform_factory(K), k=k, t=K + k + 1, epsilon=self.NOISE_EPS,
            trials=20000,
        )
        assert result.delta == pytest.approx(2 * k / K, abs=0.05)

    def test_stronger_scheme_smaller_delta(self):
        weak = estimate_privacy(
            uniform_factory(6), 1, 10, self.NOISE_EPS, trials=8000
        )
        strong = estimate_privacy(
            uniform_factory(30), 1, 34, self.NOISE_EPS, trials=8000
        )
        assert strong.delta < weak.delta


class TestEmpiricalUtility:
    def test_uniform_matches_theorem_vi2(self):
        K = 10
        for c in (1, 5, 12):
            measured = estimate_utility(uniform_factory(K), c=c, trials=6000)
            assert measured == pytest.approx(uniform_utility(c, K), abs=0.02)

    def test_exponential_matches_theorem_vi4(self):
        alpha, K = 0.8, 15
        for c in (1, 4, 20):
            measured = estimate_utility(expo_factory(alpha, K), c=c, trials=6000)
            assert measured == pytest.approx(
                exponential_utility(c, alpha, K), abs=0.02
            )

    def test_first_request_never_hits(self):
        assert estimate_utility(uniform_factory(5), c=1, trials=500) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate_utility(uniform_factory(5), c=0)
        with pytest.raises(ValueError):
            estimate_utility(uniform_factory(5), c=1, trials=0)
