"""Unit tests for the exact Q_S oracle analysis."""

from __future__ import annotations

import pytest

from repro.core.privacy.distributions import TruncatedGeometric, UniformK
from repro.core.privacy.guarantees import exponential_privacy, uniform_privacy
from repro.core.privacy.oracle import (
    oracle_guarantee,
    oracle_min_epsilon,
    prefix_length_distribution,
)


class TestPrefixDistribution:
    def test_s0_distribution_structure(self):
        """Under S0 the prefix is min(k+1, t): pmf shifts by one."""
        d = prefix_length_distribution(UniformK(4), prior_requests=0, t=10)
        # k in {0..3} uniformly: prefix in {1..4} each 1/4.
        assert d == pytest.approx({1: 0.25, 2: 0.25, 3: 0.25, 4: 0.25})

    def test_s0_truncated_by_probe_budget(self):
        d = prefix_length_distribution(UniformK(4), prior_requests=0, t=2)
        # prefix = 1 iff k=0; prefix = 2 iff k >= 1.
        assert d == pytest.approx({1: 0.25, 2: 0.75})

    def test_s1_can_start_with_hit(self):
        d = prefix_length_distribution(UniformK(4), prior_requests=2, t=10)
        # m=0 iff k <= 1: probability 1/2.
        assert d[0] == pytest.approx(0.5)

    def test_distributions_sum_to_one(self):
        for x in range(4):
            for t in (1, 3, 8):
                d = prefix_length_distribution(TruncatedGeometric(0.8, 12), x, t)
                assert sum(d.values()) == pytest.approx(1.0)

    def test_s1_is_shift_of_s0(self):
        """Qt1(C, r) = Qt0(C, r − x) on the overlap (the theorem's Ω2)."""
        K, x, t = 12, 3, 30
        d0 = prefix_length_distribution(UniformK(K), 0, t)
        d1 = prefix_length_distribution(UniformK(K), x, t)
        for m in range(1, K - x):
            assert d1.get(m, 0.0) == pytest.approx(d0.get(m + x, 0.0))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            prefix_length_distribution(UniformK(4), -1, 5)
        with pytest.raises(ValueError):
            prefix_length_distribution(UniformK(4), 0, 0)


class TestOracleVsTheorems:
    def test_uniform_oracle_matches_theorem_vi1(self):
        """Exact δ at ε=0 equals 2k/K once t covers the domain."""
        k, K = 3, 30
        analysis = oracle_guarantee(UniformK(K), k=k, t=K + k + 1, epsilon=0.0)
        assert analysis.delta_at_zero == pytest.approx(
            uniform_privacy(k, K).delta
        )

    def test_uniform_oracle_epsilon_is_zero(self):
        """Uniform shifts need no ε at all — the overlap ratios are 1."""
        k, K = 2, 20
        analysis = oracle_guarantee(UniformK(K), k=k, t=K + k + 1, epsilon=0.0)
        assert analysis.delta_at_epsilon == analysis.delta_at_zero

    def test_exponential_oracle_matches_theorem_vi3(self):
        k, alpha, K = 2, 0.9, 25
        theorem = exponential_privacy(k, alpha, K)
        analysis = oracle_guarantee(
            TruncatedGeometric(alpha, K), k=k, t=K + k + 1, epsilon=theorem.epsilon
        )
        assert analysis.delta_at_epsilon == pytest.approx(theorem.delta, abs=1e-9)

    def test_small_probe_budgets_need_truncation_epsilon(self):
        """For t < K the 'all probes missed' outcome aggregates different
        tail masses under S0 and S1 — its ratio is (K−t+1)/(K−x−t+1), not 1.
        A small ε absorbing that ratio restores δ <= 2k/K; at strict ε=0
        the aggregated outcome must instead be covered by δ (which is why
        the theorem's (0, 2k/K) statement is a large-t/worst-strategy
        bound)."""
        import math

        k, K = 3, 30
        bound = uniform_privacy(k, K).delta
        for t in (2, 5, 10):
            eps_t = max(
                math.log((K - t + 1) / (K - x - t + 1)) for x in range(1, k + 1)
            )
            analysis = oracle_guarantee(UniformK(K), k=k, t=t, epsilon=eps_t)
            assert analysis.delta_at_epsilon <= bound + 1e-12
            # ...and the strict-zero-epsilon cost is indeed larger.
            strict = oracle_guarantee(UniformK(K), k=k, t=t, epsilon=0.0)
            assert strict.delta_at_zero > bound

    def test_degenerate_scheme_fully_leaks(self):
        """The naive threshold's oracle distributions are disjoint: δ = 2."""
        from repro.core.privacy.distributions import DegenerateK

        analysis = oracle_guarantee(DegenerateK(5), k=1, t=10, epsilon=0.0)
        assert analysis.delta_at_zero == pytest.approx(2.0)

    def test_oracle_min_epsilon_uniform_needs_none(self):
        k, K = 2, 20
        delta_budget = uniform_privacy(k, K).delta
        eps = oracle_min_epsilon(UniformK(K), k=k, t=K + k + 1, delta=delta_budget)
        assert eps == pytest.approx(0.0, abs=1e-9)

    def test_exponential_min_epsilon_at_most_theorem(self):
        k, alpha, K = 2, 0.85, 25
        theorem = exponential_privacy(k, alpha, K)
        eps = oracle_min_epsilon(
            TruncatedGeometric(alpha, K), k=k, t=K + k + 1, delta=theorem.delta
        )
        assert eps <= theorem.epsilon + 1e-9

    def test_as_guarantee(self):
        analysis = oracle_guarantee(UniformK(10), k=1, t=12, epsilon=0.0)
        guarantee = analysis.as_guarantee()
        assert guarantee.k == 1
        assert guarantee.delta == analysis.delta_at_epsilon
