"""Unit tests for artificial-delay policies."""

from __future__ import annotations

import pytest

from repro.core.schemes.delay_policies import (
    ConstantDelay,
    ContentSpecificDelay,
    DynamicDelay,
)
from tests.conftest import make_entry


class TestConstantDelay:
    def test_returns_gamma_regardless_of_entry(self):
        policy = ConstantDelay(25.0)
        assert policy.delay_for(make_entry(fetch_delay=5.0), now=0.0) == 25.0
        assert policy.delay_for(make_entry(fetch_delay=500.0), now=0.0) == 25.0

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)

    def test_zero_gamma_allowed(self):
        assert ConstantDelay(0.0).delay_for(make_entry(), now=0.0) == 0.0


class TestContentSpecificDelay:
    def test_replays_recorded_fetch_delay(self):
        policy = ContentSpecificDelay()
        assert policy.delay_for(make_entry(fetch_delay=42.0), now=0.0) == 42.0

    def test_different_entries_different_delays(self):
        policy = ContentSpecificDelay()
        near = make_entry(uri="/near", fetch_delay=2.0)
        far = make_entry(uri="/far", fetch_delay=200.0)
        assert policy.delay_for(near, 0.0) == 2.0
        assert policy.delay_for(far, 0.0) == 200.0


class TestDynamicDelay:
    def test_starts_at_fetch_delay(self):
        policy = DynamicDelay(floor=1.0, decay=0.9)
        entry = make_entry(fetch_delay=100.0)
        entry.access_count = 0
        assert policy.delay_for(entry, 0.0) == 100.0

    def test_decays_with_popularity(self):
        policy = DynamicDelay(floor=1.0, decay=0.5)
        entry = make_entry(fetch_delay=100.0)
        entry.access_count = 2
        assert policy.delay_for(entry, 0.0) == pytest.approx(25.0)

    def test_never_below_floor(self):
        """Definition IV.2 constraint: never faster than two-hop content."""
        policy = DynamicDelay(floor=8.0, decay=0.5)
        entry = make_entry(fetch_delay=100.0)
        entry.access_count = 50
        assert policy.delay_for(entry, 0.0) == 8.0

    def test_monotone_nonincreasing_in_popularity(self):
        policy = DynamicDelay(floor=2.0, decay=0.8)
        entry = make_entry(fetch_delay=60.0)
        delays = []
        for count in range(20):
            entry.access_count = count
            delays.append(policy.delay_for(entry, 0.0))
        assert all(a >= b for a, b in zip(delays, delays[1:]))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DynamicDelay(floor=-1.0)
        with pytest.raises(ValueError):
            DynamicDelay(floor=1.0, decay=0.0)
        with pytest.raises(ValueError):
            DynamicDelay(floor=1.0, decay=1.5)
