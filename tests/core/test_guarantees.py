"""Unit tests for the closed-form privacy theorems and their solvers."""

from __future__ import annotations

import math

import pytest

from repro.core.privacy.guarantees import (
    PrivacyGuarantee,
    exponential_privacy,
    max_exponential_epsilon,
    solve_exponential_params,
    solve_uniform_K,
    uniform_privacy,
)


class TestUniformGuarantee:
    def test_theorem_vi1_formula(self):
        g = uniform_privacy(k=5, K=200)
        assert g.epsilon == 0.0
        assert g.delta == pytest.approx(2 * 5 / 200)

    def test_delta_capped_at_one(self):
        assert uniform_privacy(k=10, K=10).delta == 1.0

    def test_delta_shrinks_with_K(self):
        deltas = [uniform_privacy(5, K).delta for K in (50, 100, 500, 1000)]
        assert all(a > b for a, b in zip(deltas, deltas[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            uniform_privacy(0, 10)
        with pytest.raises(ValueError):
            uniform_privacy(1, 0)


class TestExponentialGuarantee:
    def test_theorem_vi3_epsilon(self):
        g = exponential_privacy(k=3, alpha=0.9, K=100)
        assert g.epsilon == pytest.approx(-3 * math.log(0.9))

    def test_theorem_vi3_delta_formula(self):
        k, alpha, K = 2, 0.8, 20
        g = exponential_privacy(k, alpha, K)
        expected = (1 - alpha**k + alpha ** (K - k) - alpha**K) / (1 - alpha**K)
        assert g.delta == pytest.approx(expected)

    def test_untruncated_delta_floor(self):
        g = exponential_privacy(k=4, alpha=0.95, K=None)
        assert g.delta == pytest.approx(1 - 0.95**4)

    def test_delta_decreases_toward_floor_as_K_grows(self):
        k, alpha = 3, 0.9
        floor = 1 - alpha**k
        deltas = [exponential_privacy(k, alpha, K).delta for K in (10, 50, 200, 2000)]
        assert all(a > b for a, b in zip(deltas, deltas[1:]))
        assert deltas[-1] == pytest.approx(floor, abs=1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            exponential_privacy(0, 0.5, 10)
        with pytest.raises(ValueError):
            exponential_privacy(1, 1.5, 10)
        with pytest.raises(ValueError):
            exponential_privacy(1, 0.5, 0)


class TestSolvers:
    def test_solve_uniform_inverts_theorem(self):
        K = solve_uniform_K(k=5, delta=0.05)
        assert K == 200
        assert uniform_privacy(5, K).delta <= 0.05

    def test_solve_uniform_rounds_up(self):
        K = solve_uniform_K(k=3, delta=0.07)
        assert uniform_privacy(3, K).delta <= 0.07
        assert uniform_privacy(3, K - 1).delta > 0.07

    def test_solve_exponential_meets_target(self):
        for eps in (0.01, 0.03, 0.045):
            alpha, K = solve_exponential_params(k=5, epsilon=eps, delta=0.05)
            achieved = exponential_privacy(5, alpha, K)
            assert achieved.epsilon == pytest.approx(eps)
            assert achieved.delta <= 0.05 + 1e-9

    def test_solve_exponential_boundary_gives_untruncated(self):
        delta = 0.05
        eps = max_exponential_epsilon(delta)
        alpha, K = solve_exponential_params(k=1, epsilon=eps, delta=delta)
        assert K is None
        assert alpha == pytest.approx(1 - delta)

    def test_solve_exponential_infeasible_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            solve_exponential_params(k=1, epsilon=0.2, delta=0.05)

    def test_max_epsilon_formula(self):
        assert max_exponential_epsilon(0.05) == pytest.approx(-math.log(0.95))

    def test_smaller_epsilon_needs_smaller_K_at_fixed_delta(self):
        # Smaller eps -> alpha closer to 1 -> the delta floor rises, so a
        # tighter truncation (smaller K) is what meets the same delta.
        _, K_small_eps = solve_exponential_params(k=1, epsilon=0.03, delta=0.05)
        _, K_large_eps = solve_exponential_params(k=1, epsilon=0.045, delta=0.05)
        assert K_small_eps < K_large_eps


class TestGuaranteeOrdering:
    def test_dominates(self):
        strong = PrivacyGuarantee(k=5, epsilon=0.01, delta=0.01)
        weak = PrivacyGuarantee(k=5, epsilon=0.05, delta=0.05)
        assert strong.dominates(weak)
        assert not weak.dominates(strong)

    def test_dominates_requires_k(self):
        a = PrivacyGuarantee(k=2, epsilon=0.01, delta=0.01)
        b = PrivacyGuarantee(k=5, epsilon=0.05, delta=0.05)
        assert not a.dominates(b)

    def test_str_format(self):
        text = str(PrivacyGuarantee(k=5, epsilon=0.0, delta=0.05))
        assert text.startswith("(5, 0, 0.05)")
