"""Unit tests for the utility closed forms (Theorems VI.2/VI.4)."""

from __future__ import annotations

import pytest

from repro.core.privacy.distributions import TruncatedGeometric, UniformK
from repro.core.privacy.utility import (
    expected_misses,
    exponential_expected_misses,
    exponential_utility,
    max_utility_difference,
    uniform_expected_misses,
    uniform_expected_misses_paper,
    uniform_utility,
    utility_difference,
    utility_from_misses,
)


class TestGenericExpectedMisses:
    def test_first_request_always_miss(self):
        """u(1) = 0 for every scheme: E[M(1)] = 1."""
        assert expected_misses(1, UniformK(10)) == pytest.approx(1.0)
        assert expected_misses(1, TruncatedGeometric(0.9, 10)) == pytest.approx(1.0)

    def test_matches_uniform_closed_form(self):
        for K in (1, 5, 40):
            for c in (1, 2, K, K + 1, 3 * K):
                assert expected_misses(c, UniformK(K)) == pytest.approx(
                    uniform_expected_misses(c, K)
                )

    def test_matches_exponential_closed_form(self):
        for alpha, K in ((0.5, 10), (0.9, 50), (0.99, 200)):
            for c in (1, 2, K - 1, K, K + 10):
                assert expected_misses(c, TruncatedGeometric(alpha, K)) == pytest.approx(
                    exponential_expected_misses(c, alpha, K)
                )

    def test_matches_untruncated_closed_form(self):
        for c in (1, 5, 50):
            assert expected_misses(c, TruncatedGeometric(0.8)) == pytest.approx(
                exponential_expected_misses(c, 0.8, None)
            )

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError):
            expected_misses(0, UniformK(5))


class TestUniformUtility:
    def test_saturation_beyond_K(self):
        assert uniform_expected_misses(100, 10) == pytest.approx(5.5)  # (K+1)/2

    def test_utility_monotone_in_c(self):
        utilities = [uniform_utility(c, 40) for c in range(1, 200)]
        assert all(a <= b + 1e-12 for a, b in zip(utilities, utilities[1:]))

    def test_utility_decreases_with_K(self):
        """Larger K = more privacy = worse utility (Theorem VI.1/VI.2)."""
        assert uniform_utility(50, 40) > uniform_utility(50, 400)

    def test_utility_zero_at_c1(self):
        assert uniform_utility(1, 40) == pytest.approx(0.0)

    def test_paper_variant_close_to_exact(self):
        """The printed Theorem VI.2 differs by a one-unit shift, O(1/K)."""
        for c in range(2, 39):
            exact = uniform_expected_misses(c, 40)
            printed = uniform_expected_misses_paper(c, 40)
            assert abs(exact - printed) <= c / 40 + 1e-9

    def test_paper_variant_u1_anomaly(self):
        """As printed, the paper formula gives E[M(1)] < 1 — the typo we
        document in EXPERIMENTS.md."""
        assert uniform_expected_misses_paper(1, 40) < 1.0
        assert uniform_expected_misses(1, 40) == 1.0


class TestExponentialUtility:
    def test_utility_zero_at_c1(self):
        assert exponential_utility(1, 0.95, 100) == pytest.approx(0.0)

    def test_utility_monotone_in_c(self):
        utilities = [exponential_utility(c, 0.95, 100) for c in range(1, 300)]
        assert all(a <= b + 1e-12 for a, b in zip(utilities, utilities[1:]))

    def test_branch_continuity_at_K(self):
        """The c < K and c >= K branches agree at the boundary."""
        alpha, K = 0.9, 30
        from repro.core.privacy.distributions import TruncatedGeometric

        direct = expected_misses(K, TruncatedGeometric(alpha, K))
        assert exponential_expected_misses(K, alpha, K) == pytest.approx(direct)

    def test_smaller_alpha_better_utility(self):
        """Mass on small k_C (small α) means fewer disguised misses."""
        assert exponential_utility(20, 0.5, 100) > exponential_utility(20, 0.99, 100)

    def test_untruncated_formula(self):
        # E[M(c)] = (1 - a^c) / (1 - a).
        assert exponential_expected_misses(10, 0.5, None) == pytest.approx(
            (1 - 0.5**10) / 0.5
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            exponential_expected_misses(0, 0.5, 10)
        with pytest.raises(ValueError):
            exponential_expected_misses(1, 1.5, 10)
        with pytest.raises(ValueError):
            exponential_expected_misses(1, 0.5, 0)


class TestFigure4Quantities:
    def test_paper_headline_12_percent(self):
        """Figure 4(b): the exponential scheme beats uniform by up to ~12%."""
        # delta = 0.05, k = 1, eps = -ln(1-delta): alpha = 0.95, K_uni = 40.
        diff = max_utility_difference(alpha=0.95, K_expo=None, K_uni=40)
        assert 0.10 < diff < 0.14

    def test_difference_positive_somewhere(self):
        diffs = [
            utility_difference(c, 0.95, None, 40) for c in range(2, 101)
        ]
        assert max(diffs) > 0.0

    def test_larger_delta_larger_peak_difference(self):
        """Figure 4(b) ordering across δ."""
        import math

        peaks = []
        for delta in (0.01, 0.03, 0.05):
            alpha = 1 - delta  # k=1 at the eps boundary
            K_uni = math.ceil(2 / delta)
            peaks.append(max_utility_difference(alpha, None, K_uni))
        assert peaks[0] < peaks[1] < peaks[2]

    def test_utility_from_misses(self):
        assert utility_from_misses(10, 4.0) == pytest.approx(0.6)
        with pytest.raises(ValueError):
            utility_from_misses(0, 1.0)
