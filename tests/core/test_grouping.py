"""Unit tests for content-grouping functions."""

from __future__ import annotations

import pytest

from repro.core.schemes.grouping import (
    CONTENT_ID_PREFIX,
    ContentIdGrouping,
    NamespaceGrouping,
    NoGrouping,
)
from repro.ndn.name import Name


class TestNoGrouping:
    def test_each_name_is_own_group(self):
        g = NoGrouping()
        a, b = Name.parse("/x/1"), Name.parse("/x/2")
        assert g.group_of(a) == a
        assert g.group_of(a) != g.group_of(b)


class TestNamespaceGrouping:
    def test_fragments_share_group(self):
        g = NamespaceGrouping(depth=3)
        frag1 = Name.parse("/youtube/alice/video-749.avi/137")
        frag2 = Name.parse("/youtube/alice/video-749.avi/138")
        assert g.group_of(frag1) == g.group_of(frag2)
        assert g.group_of(frag1) == Name.parse("/youtube/alice/video-749.avi")

    def test_different_namespaces_different_groups(self):
        g = NamespaceGrouping(depth=2)
        assert g.group_of(Name.parse("/site-a/x/1")) != g.group_of(
            Name.parse("/site-b/x/1")
        )

    def test_short_names_group_as_themselves(self):
        g = NamespaceGrouping(depth=3)
        short = Name.parse("/a/b")
        assert g.group_of(short) == short

    def test_name_exactly_at_depth(self):
        g = NamespaceGrouping(depth=2)
        name = Name.parse("/a/b")
        assert g.group_of(name) == name

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            NamespaceGrouping(depth=0)


class TestContentIdGrouping:
    def test_names_with_same_cid_share_group(self):
        g = ContentIdGrouping()
        a = Name.parse(f"/site-a/page1/{CONTENT_ID_PREFIX}story42")
        b = Name.parse(f"/site-b/page9/{CONTENT_ID_PREFIX}story42")
        assert g.group_of(a) == g.group_of(b) == f"{CONTENT_ID_PREFIX}story42"

    def test_different_cids_differ(self):
        g = ContentIdGrouping()
        a = Name.parse(f"/x/{CONTENT_ID_PREFIX}1")
        b = Name.parse(f"/x/{CONTENT_ID_PREFIX}2")
        assert g.group_of(a) != g.group_of(b)

    def test_fallback_to_per_object(self):
        g = ContentIdGrouping()
        plain = Name.parse("/no/cid/here")
        assert g.group_of(plain) == plain

    def test_first_cid_component_wins(self):
        g = ContentIdGrouping()
        name = Name.parse(f"/x/{CONTENT_ID_PREFIX}a/{CONTENT_ID_PREFIX}b")
        assert g.group_of(name) == f"{CONTENT_ID_PREFIX}a"
