"""Unit tests for Random-Cache (Algorithm 1) and its instantiations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.privacy.distributions import DegenerateK, UniformK
from repro.core.schemes.base import DecisionKind
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.grouping import NamespaceGrouping
from repro.core.schemes.naive_threshold import NaiveThresholdScheme
from repro.core.schemes.random_cache import RandomCacheScheme
from repro.core.schemes.uniform import UniformRandomCache
from tests.conftest import make_entry


def scheme_with_k(k: int) -> RandomCacheScheme:
    """Random-Cache with a deterministic threshold (easier assertions)."""
    return RandomCacheScheme(DegenerateK(k), rng=np.random.default_rng(0))


class TestAlgorithmOne:
    def test_first_k_requests_after_insert_are_misses(self):
        scheme = scheme_with_k(3)
        entry = make_entry()
        scheme.on_insert(entry, private=True, now=0.0)
        kinds = [
            scheme.on_request(entry, private=True, now=0.0).kind for _ in range(5)
        ]
        assert kinds == [
            DecisionKind.DELAYED_HIT,
            DecisionKind.DELAYED_HIT,
            DecisionKind.DELAYED_HIT,
            DecisionKind.HIT,
            DecisionKind.HIT,
        ]

    def test_k_zero_hits_immediately(self):
        scheme = scheme_with_k(0)
        entry = make_entry()
        scheme.on_insert(entry, private=True, now=0.0)
        assert scheme.on_request(entry, private=True, now=0.0).kind is DecisionKind.HIT

    def test_disguised_miss_uses_content_specific_delay(self):
        scheme = scheme_with_k(2)
        entry = make_entry(fetch_delay=77.0)
        scheme.on_insert(entry, private=True, now=0.0)
        decision = scheme.on_request(entry, private=True, now=0.0)
        assert decision.kind is DecisionKind.DELAYED_HIT
        assert decision.delay == 77.0

    def test_non_private_insert_draws_no_state(self):
        scheme = scheme_with_k(2)
        entry = make_entry(private=False)
        scheme.on_insert(entry, private=False, now=0.0)
        assert scheme.tracked_groups == 0

    def test_non_private_request_is_plain_hit(self):
        scheme = scheme_with_k(5)
        entry = make_entry()
        scheme.on_insert(entry, private=True, now=0.0)
        assert scheme.on_request(entry, private=False, now=0.0).kind is DecisionKind.HIT

    def test_late_privacy_adoption(self):
        # An entry never registered with the scheme still gets consistent
        # treatment when first seen as private.
        scheme = scheme_with_k(1)
        entry = make_entry()
        decision = scheme.on_request(entry, private=True, now=0.0)
        assert decision.kind is DecisionKind.DELAYED_HIT
        assert scheme.tracked_groups == 1


class TestStateLifecycle:
    def test_evict_drops_group_state(self):
        scheme = scheme_with_k(2)
        entry = make_entry()
        scheme.on_insert(entry, private=True, now=0.0)
        assert scheme.tracked_groups == 1
        scheme.on_evict(entry)
        assert scheme.tracked_groups == 0

    def test_reinsert_after_evict_redraws_k(self):
        scheme = UniformRandomCache(K=1000, rng=np.random.default_rng(42))
        entry = make_entry()
        scheme.on_insert(entry, private=True, now=0.0)
        k1 = scheme.group_state(entry.name).k
        scheme.on_evict(entry)
        scheme.on_insert(entry, private=True, now=0.0)
        k2 = scheme.group_state(entry.name).k
        assert k1 != k2  # overwhelmingly likely with K=1000

    def test_evict_unknown_entry_is_noop(self):
        scheme = scheme_with_k(2)
        scheme.on_evict(make_entry())
        assert scheme.tracked_groups == 0

    def test_reset_clears_everything(self):
        scheme = scheme_with_k(2)
        scheme.on_insert(make_entry(), private=True, now=0.0)
        scheme.reset()
        assert scheme.tracked_groups == 0


class TestGrouping:
    def test_grouped_entries_share_counter(self):
        scheme = RandomCacheScheme(
            DegenerateK(2),
            rng=np.random.default_rng(0),
            grouping=NamespaceGrouping(depth=1),
        )
        frag_a = make_entry(uri="/video/frag-0")
        frag_b = make_entry(uri="/video/frag-1")
        scheme.on_insert(frag_a, private=True, now=0.0)
        scheme.on_insert(frag_b, private=True, now=0.0)
        assert scheme.tracked_groups == 1
        # Two misses consumed across the group, third request hits.
        assert scheme.on_request(frag_a, True, 0.0).kind is DecisionKind.DELAYED_HIT
        assert scheme.on_request(frag_b, True, 0.0).kind is DecisionKind.DELAYED_HIT
        assert scheme.on_request(frag_a, True, 0.0).kind is DecisionKind.HIT

    def test_group_state_survives_partial_eviction(self):
        scheme = RandomCacheScheme(
            DegenerateK(1),
            rng=np.random.default_rng(0),
            grouping=NamespaceGrouping(depth=1),
        )
        frag_a = make_entry(uri="/video/frag-0")
        frag_b = make_entry(uri="/video/frag-1")
        scheme.on_insert(frag_a, private=True, now=0.0)
        scheme.on_insert(frag_b, private=True, now=0.0)
        scheme.on_evict(frag_a)
        assert scheme.tracked_groups == 1
        scheme.on_evict(frag_b)
        assert scheme.tracked_groups == 0

    def test_ungrouped_entries_are_independent(self):
        scheme = scheme_with_k(1)
        a, b = make_entry(uri="/x/a"), make_entry(uri="/x/b")
        scheme.on_insert(a, private=True, now=0.0)
        scheme.on_insert(b, private=True, now=0.0)
        assert scheme.tracked_groups == 2


class TestInstantiations:
    def test_naive_threshold_is_deterministic(self):
        scheme = NaiveThresholdScheme(k=4)
        entry = make_entry()
        scheme.on_insert(entry, private=True, now=0.0)
        misses = sum(
            scheme.on_request(entry, True, 0.0).kind is DecisionKind.DELAYED_HIT
            for _ in range(10)
        )
        assert misses == 4

    def test_uniform_k_within_domain(self):
        scheme = UniformRandomCache(K=8, rng=np.random.default_rng(0))
        for i in range(100):
            entry = make_entry(uri=f"/obj/{i}")
            scheme.on_insert(entry, private=True, now=0.0)
            assert 0 <= scheme.group_state(entry.name).k < 8

    def test_exponential_k_within_domain(self):
        scheme = ExponentialRandomCache(
            alpha=0.5, K=10, rng=np.random.default_rng(0)
        )
        for i in range(200):
            entry = make_entry(uri=f"/obj/{i}")
            scheme.on_insert(entry, private=True, now=0.0)
            assert 0 <= scheme.group_state(entry.name).k < 10

    def test_exponential_favors_small_k(self):
        scheme = ExponentialRandomCache(
            alpha=0.3, K=20, rng=np.random.default_rng(0)
        )
        ks = []
        for i in range(500):
            entry = make_entry(uri=f"/obj/{i}")
            scheme.on_insert(entry, private=True, now=0.0)
            ks.append(scheme.group_state(entry.name).k)
        # Geometric with alpha=0.3: ~70% of draws are 0.
        assert np.mean(np.asarray(ks) == 0) > 0.55

    def test_for_privacy_target_constructors(self):
        uni = UniformRandomCache.for_privacy_target(k=5, delta=0.05)
        assert uni.K == 200
        expo = ExponentialRandomCache.for_privacy_target(
            k=5, epsilon=0.04, delta=0.05
        )
        assert expo.alpha == pytest.approx(np.exp(-0.04 / 5))
        assert expo.K is not None
