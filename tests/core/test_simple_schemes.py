"""Unit tests for the No-Privacy and Always-Delay schemes."""

from __future__ import annotations

import pytest

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.base import DecisionKind
from repro.core.schemes.delay_policies import ConstantDelay
from repro.core.schemes.no_privacy import NoPrivacyScheme
from tests.conftest import make_entry


class TestNoPrivacy:
    def test_private_content_served_immediately(self):
        scheme = NoPrivacyScheme()
        decision = scheme.on_request(make_entry(), private=True, now=0.0)
        assert decision.kind is DecisionKind.HIT
        assert decision.delay == 0.0

    def test_non_private_content_served_immediately(self):
        scheme = NoPrivacyScheme()
        assert scheme.on_request(make_entry(), private=False, now=0.0).counts_as_hit

    def test_repeated_requests_always_hit(self):
        scheme = NoPrivacyScheme()
        entry = make_entry()
        for _ in range(100):
            assert scheme.on_request(entry, private=True, now=0.0).counts_as_hit


class TestAlwaysDelay:
    def test_private_hit_disguised_with_fetch_delay(self):
        scheme = AlwaysDelayScheme()
        entry = make_entry(fetch_delay=33.0)
        decision = scheme.on_request(entry, private=True, now=0.0)
        assert decision.kind is DecisionKind.DELAYED_HIT
        assert decision.delay == 33.0

    def test_non_private_hit_not_delayed(self):
        scheme = AlwaysDelayScheme()
        decision = scheme.on_request(make_entry(), private=False, now=0.0)
        assert decision.kind is DecisionKind.HIT

    def test_never_reveals_hit_for_private(self):
        """Perfect privacy: no request count ever produces a fast hit."""
        scheme = AlwaysDelayScheme()
        entry = make_entry()
        for _ in range(500):
            decision = scheme.on_request(entry, private=True, now=0.0)
            assert not decision.counts_as_hit

    def test_custom_delay_policy(self):
        scheme = AlwaysDelayScheme(delay_policy=ConstantDelay(9.0))
        decision = scheme.on_request(make_entry(fetch_delay=100.0), True, 0.0)
        assert decision.delay == 9.0

    def test_delay_matches_entry_specific_gamma(self):
        scheme = AlwaysDelayScheme()
        near = make_entry(uri="/near", fetch_delay=1.5)
        far = make_entry(uri="/far", fetch_delay=180.0)
        assert scheme.on_request(near, True, 0.0).delay == 1.5
        assert scheme.on_request(far, True, 0.0).delay == 180.0
