"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ndn.cs import CacheEntry, ContentStore
from repro.ndn.name import Name
from repro.ndn.packets import Data
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@pytest.fixture
def engine() -> Engine:
    """A fresh simulation engine starting at t=0."""
    return Engine()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def registry() -> RngRegistry:
    """A deterministic named-stream registry."""
    return RngRegistry(root_seed=7)


def make_entry(
    uri: str = "/test/object",
    private: bool = True,
    fetch_delay: float = 10.0,
    producer_private: bool = False,
) -> CacheEntry:
    """A standalone cache entry for scheme-level tests."""
    entry = CacheEntry(
        data=Data(name=Name.parse(uri), private=producer_private),
        insert_time=0.0,
        last_access=0.0,
        fetch_delay=fetch_delay,
        private=private,
    )
    return entry


@pytest.fixture
def cache_entry() -> CacheEntry:
    """A private cache entry with a 10 ms recorded fetch delay."""
    return make_entry()


@pytest.fixture
def small_cs() -> ContentStore:
    """A 4-entry LRU content store."""
    return ContentStore(capacity=4)
