"""The parallel sweep runner: worker-independence, seeding, trace cache."""

from __future__ import annotations

import pickle

import pytest

from repro.perf.parallel import (
    ReplaySpec,
    build_scheme,
    derive_seeds,
    ensure_trace_cached,
    resolve_workers,
    run_replay_sweep,
    trace_cache_dir,
)
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.marking import ContentMarking
from repro.workload.trace import Trace


@pytest.fixture(scope="module")
def trace() -> Trace:
    return IrcacheGenerator(
        IrcacheConfig(requests=2500, objects=2000, seed=5)
    ).generate()


def _grid_specs(trial_seeds):
    return [
        ReplaySpec(
            scheme=name,
            scheme_params={"k": 5, "epsilon": 0.005, "delta": 0.01},
            cache_size=size,
            marking=ContentMarking(0.2, salt=1),
            seed=seed,
            label=f"{name}/{size}/{seed}",
        )
        for name in ("no-privacy", "exponential", "uniform")
        for size in (200, 500)
        for seed in trial_seeds
    ]


def test_sweep_independent_of_worker_count(trace, tmp_path, monkeypatch):
    """The ISSUE's determinism criterion: same results for 1 and 4 workers."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    specs = _grid_specs(derive_seeds(base_seed=42, count=2))
    serial = run_replay_sweep(specs, trace=trace, workers=1)
    parallel = run_replay_sweep(specs, trace=trace, workers=4)
    assert serial == parallel


def test_sweep_engines_agree(trace, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "1")
    specs = _grid_specs([0])
    fast = run_replay_sweep(specs, trace=trace, engine="fast")
    reference = run_replay_sweep(specs, trace=trace, engine="reference")
    assert fast == reference


def test_sweep_results_in_spec_order(trace, monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "1")
    specs = [
        ReplaySpec(scheme="no-privacy", cache_size=size, seed=0)
        for size in (100, 400, 1600)
    ]
    stats = run_replay_sweep(specs, trace=trace)
    # Bigger caches never hit less: ordered results track the spec order.
    assert stats[0].hits <= stats[1].hits <= stats[2].hits


def test_sweep_input_validation(trace):
    with pytest.raises(ValueError):
        run_replay_sweep([], trace=trace, trace_config=IrcacheConfig())
    with pytest.raises(ValueError):
        run_replay_sweep([])
    with pytest.raises(ValueError):
        run_replay_sweep([], trace=trace, engine="warp")
    assert run_replay_sweep([ ], trace=trace) == []


def test_derive_seeds_deterministic_and_distinct():
    first = derive_seeds(base_seed=7, count=8)
    assert first == derive_seeds(base_seed=7, count=8)
    assert len(set(first)) == 8
    assert derive_seeds(base_seed=8, count=8) != first
    # Prefix-stable: widening the grid keeps existing trial seeds.
    assert derive_seeds(base_seed=7, count=4) == first[:4]


def test_resolve_workers(monkeypatch):
    assert resolve_workers(3) == 3
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert resolve_workers() == 2
    monkeypatch.delenv("REPRO_WORKERS")
    assert resolve_workers() >= 1
    with pytest.raises(ValueError):
        resolve_workers(0)


def test_trace_cache_reused(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    assert trace_cache_dir() == tmp_path
    config = IrcacheConfig(requests=500, objects=400, seed=9)
    path = ensure_trace_cached(config)
    assert path.exists()
    stamp = path.stat().st_mtime_ns
    # Second call must reuse the file, not regenerate it.
    assert ensure_trace_cached(config) == path
    assert path.stat().st_mtime_ns == stamp
    # A different config gets a different key.
    other = ensure_trace_cached(IrcacheConfig(requests=600, objects=400, seed=9))
    assert other != path
    reloaded = Trace.load(path)
    assert len(reloaded) == 500


def test_build_scheme_registry():
    scheme = build_scheme("exponential", seed=3, k=5, epsilon=0.005, delta=0.01)
    assert type(scheme).__name__ == "ExponentialRandomCache"
    with pytest.raises(ValueError):
        build_scheme("mystery")


def test_replay_spec_picklable(trace):
    spec = ReplaySpec(
        scheme="uniform",
        scheme_params={"k": 5, "delta": 0.01},
        cache_size=100,
        marking=ContentMarking(0.2),
        seed=4,
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert (clone.scheme, clone.cache_size, clone.seed) == ("uniform", 100, 4)
    assert dict(clone.scheme_params) == {"k": 5, "delta": 0.01}
    assert clone.marking.fraction == spec.marking.fraction
