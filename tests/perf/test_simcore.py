"""Tests for the sim-core throughput workloads and the profiling layer."""

from __future__ import annotations

import pytest

from repro.perf.simcore import RUNNERS, run_star, run_tree
from repro.sim import profiling


class TestSimCoreDeterminism:
    def test_star_runs_are_identical(self):
        a = run_star(consumers=4, requests_per_consumer=30)
        b = run_star(consumers=4, requests_per_consumer=30)
        observable = lambda r: (  # noqa: E731 - everything but wall_s
            r.packet_hops, r.events, r.delivered, r.requests,
            r.cache_hits, r.sim_end_ms,
        )
        assert observable(a) == observable(b)

    def test_tree_runs_are_identical(self):
        a = run_tree(requests_per_consumer=25)
        b = run_tree(requests_per_consumer=25)
        assert (a.packet_hops, a.events, a.cache_hits, a.sim_end_ms) == (
            b.packet_hops, b.events, b.cache_hits, b.sim_end_ms
        )

    def test_all_requests_delivered(self):
        for runner in RUNNERS.values():
            result = runner(requests_per_consumer=10)
            assert result.delivered == result.requests > 0
            assert result.packet_hops > 0

    def test_seed_changes_timing_not_delivery(self):
        a = run_star(consumers=4, requests_per_consumer=20, seed=0)
        b = run_star(consumers=4, requests_per_consumer=20, seed=1)
        assert a.delivered == b.delivered
        assert a.sim_end_ms != b.sim_end_ms  # jittery links actually drew

    def test_throughput_properties(self):
        result = run_tree(requests_per_consumer=10)
        assert result.hops_per_sec == pytest.approx(
            result.packet_hops / result.wall_s
        )
        assert result.events_per_sec > 0


class TestProfilingLayer:
    @pytest.fixture(autouse=True)
    def _clean_profiling(self):
        profiling.disable()
        profiling.reset()
        yield
        profiling.disable()
        profiling.reset()

    def test_off_by_default_collects_nothing(self):
        run_tree(requests_per_consumer=5)
        assert profiling.snapshot() == {}

    def test_enabled_collects_subsystem_timers(self):
        profiling.enable()
        run_tree(requests_per_consumer=5)
        profiling.disable()
        snap = profiling.snapshot()
        for key in ("engine.callback", "link.transmit", "forwarder.interest"):
            assert key in snap
            assert snap[key]["calls"] > 0
            assert snap[key]["total_s"] >= 0.0
        report = profiling.report()
        assert "link.transmit" in report

    def test_enabling_does_not_change_observables(self):
        baseline = run_tree(requests_per_consumer=15)
        profiling.enable()
        profiled = run_tree(requests_per_consumer=15)
        profiling.disable()
        assert (baseline.packet_hops, baseline.events, baseline.sim_end_ms) == (
            profiled.packet_hops, profiled.events, profiled.sim_end_ms
        )

    def test_reset_clears_counters(self):
        profiling.state.add("x", 0.5)
        profiling.reset()
        assert profiling.snapshot() == {}

    def test_report_without_samples(self):
        assert "no samples" in profiling.report()


class TestProfileCommand:
    def test_sim_core_target(self, capsys):
        from repro.cli import main

        assert main([
            "profile", "sim-core-tree", "--requests", "5", "--top", "5",
            "--timers",
        ]) == 0
        out = capsys.readouterr().out
        assert "profiled sim-core 3-level tree topology" in out
        assert "cumtime" in out  # cProfile table
        assert "link.transmit" in out  # subsystem timers

    def test_fig3_target(self, capsys):
        from repro.cli import main

        assert main([
            "profile", "fig3a_lan", "--objects", "4", "--trials", "1",
            "--top", "3", "--sort", "tottime",
        ]) == 0
        out = capsys.readouterr().out
        assert "profiled fig3 panel fig3a_lan" in out
        assert "tottime" in out

    def test_profile_timers_restore_disabled_state(self):
        from repro.cli import main

        main(["profile", "sim-core-tree", "--requests", "3", "--timers"])
        assert not profiling.state.enabled
