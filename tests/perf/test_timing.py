"""The timing harness and the BENCH_*.json record format."""

from __future__ import annotations

import json
import time

import pytest

from repro.perf.timing import BenchReporter, StopWatch, TimingRecord, time_call


def test_timing_record_throughputs():
    record = TimingRecord(label="x", wall_s=2.0, requests=100, events=50)
    assert record.requests_per_sec == 50.0
    assert record.events_per_sec == 25.0
    zero = TimingRecord(label="x", wall_s=0.0, requests=100)
    assert zero.requests_per_sec == 0.0


def test_stopwatch_and_time_call():
    with StopWatch() as watch:
        time.sleep(0.01)
    assert watch.elapsed >= 0.005
    result, wall = time_call(sum, [1, 2, 3])
    assert result == 6
    assert wall >= 0.0


def test_reporter_writes_bench_json(tmp_path):
    reporter = BenchReporter("smoke", scale={"requests": 1000})
    reporter.record("a", 0.5, requests=1000, note="hello")
    _, record = reporter.time("b", sum, [1, 2, 3], requests=3)
    assert record.wall_s >= 0.0

    path = reporter.write(tmp_path)
    assert path == tmp_path / "BENCH_smoke.json"
    payload = json.loads(path.read_text())
    assert payload["bench"] == "smoke"
    assert payload["schema_version"] == 2
    # Short hex hash inside a checkout, "" when git is unavailable.
    assert all(c in "0123456789abcdef" for c in payload["git_rev"])
    assert payload["scale"] == {"requests": 1000}
    labels = [r["label"] for r in payload["records"]]
    assert labels == ["a", "b"]
    assert payload["records"][0]["requests_per_sec"] == 2000.0
    assert payload["records"][0]["meta"] == {"note": "hello"}


def test_reporter_honors_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "out"))
    path = BenchReporter("envtest").write()
    assert path == tmp_path / "out" / "BENCH_envtest.json"
    assert path.exists()
