"""Failure-hardened sweep runner: worker death, stalls, checkpoint/resume,
and trace-cache integrity.

The chaos hooks (``REPRO_CHAOS_*_FLAG``) inject real faults into live
worker pools: a worker ``os._exit``s mid-sweep or hangs, and the runner
must deliver results bit-identical to an undisturbed run — the ISSUE's
acceptance criterion, guaranteed by specs carrying their own seeds.
"""

from __future__ import annotations

import pickle

import pytest

import repro.perf.parallel as parallel
from repro.perf.checkpoint import SweepCheckpoint
from repro.perf.parallel import (
    ReplaySpec,
    SweepError,
    TraceCacheError,
    derive_seeds,
    ensure_trace_cached,
    resolve_max_restarts,
    resolve_spec_timeout,
    run_replay_sweep,
    verify_trace_cache,
)
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.trace import Trace


@pytest.fixture(scope="module")
def trace() -> Trace:
    return IrcacheGenerator(
        IrcacheConfig(requests=1200, objects=900, seed=13)
    ).generate()


def _specs(count=6):
    return [
        ReplaySpec(
            scheme="exponential",
            scheme_params={"k": 5, "epsilon": 0.005, "delta": 0.01},
            cache_size=150,
            seed=seed,
            label=f"spec-{i}",
        )
        for i, seed in enumerate(derive_seeds(base_seed=99, count=count))
    ]


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    return tmp_path


class TestWorkerDeath:
    def test_killed_worker_yields_bit_identical_results(
        self, trace, cache_dir, tmp_path, monkeypatch
    ):
        """The acceptance criterion: kill a worker mid-sweep, get the same
        ReplayStats an uninterrupted run produces — at any worker count."""
        specs = _specs()
        baseline = run_replay_sweep(specs, trace=trace, workers=1)

        flag = tmp_path / "kill-one-worker"
        flag.touch()
        monkeypatch.setenv("REPRO_CHAOS_KILL_FLAG", str(flag))
        survived = run_replay_sweep(specs, trace=trace, workers=2)
        assert not flag.exists()  # a worker consumed the flag and died
        assert survived == baseline

        monkeypatch.delenv("REPRO_CHAOS_KILL_FLAG")
        assert run_replay_sweep(specs, trace=trace, workers=3) == baseline

    def test_restart_budget_exhaustion_raises(
        self, trace, cache_dir, tmp_path, monkeypatch
    ):
        flag = tmp_path / "kill-again"
        flag.touch()
        monkeypatch.setenv("REPRO_CHAOS_KILL_FLAG", str(flag))
        with pytest.raises(SweepError, match="pool restarts"):
            run_replay_sweep(
                _specs(4), trace=trace, workers=2, max_restarts=0
            )


class TestStallWatchdog:
    def test_hung_worker_detected_and_work_resubmitted(
        self, trace, cache_dir, tmp_path, monkeypatch
    ):
        specs = _specs(4)
        baseline = run_replay_sweep(specs, trace=trace, workers=1)
        flag = tmp_path / "hang-one-worker"
        flag.touch()
        monkeypatch.setenv("REPRO_CHAOS_HANG_FLAG", str(flag))
        recovered = run_replay_sweep(
            specs, trace=trace, workers=2, timeout=1.5
        )
        assert not flag.exists()
        assert recovered == baseline

    def test_timeout_resolution(self, monkeypatch):
        assert resolve_spec_timeout(5.0) == 5.0
        assert resolve_spec_timeout() is None
        monkeypatch.setenv("REPRO_SPEC_TIMEOUT", "2.5")
        assert resolve_spec_timeout() == 2.5
        with pytest.raises(ValueError):
            resolve_spec_timeout(0.0)

    def test_max_restarts_resolution(self, monkeypatch):
        assert resolve_max_restarts() == 3
        assert resolve_max_restarts(0) == 0
        monkeypatch.setenv("REPRO_SWEEP_RETRIES", "7")
        assert resolve_max_restarts() == 7
        with pytest.raises(ValueError):
            resolve_max_restarts(-1)


class TestCheckpointResume:
    def test_checkpoint_written_and_resumed_without_rework(
        self, trace, cache_dir, tmp_path, monkeypatch
    ):
        specs = _specs(5)
        ckpt = tmp_path / "sweep.ckpt"
        first = run_replay_sweep(
            specs, trace=trace, workers=1, checkpoint=ckpt
        )
        assert ckpt.exists()

        executed = []
        real_execute = parallel._execute

        def counting_execute(*args, **kwargs):
            executed.append(1)
            return real_execute(*args, **kwargs)

        monkeypatch.setattr(parallel, "_execute", counting_execute)
        resumed = run_replay_sweep(
            specs, trace=trace, workers=1, checkpoint=ckpt
        )
        assert executed == []  # every spec came from the checkpoint
        assert resumed == first

    def test_partial_checkpoint_reruns_only_the_tail(
        self, trace, cache_dir, tmp_path, monkeypatch
    ):
        specs = _specs(5)
        ckpt = tmp_path / "sweep.ckpt"
        full = run_replay_sweep(specs, trace=trace, workers=1, checkpoint=ckpt)

        # Simulate a sweep killed after 3 completions: rebuild a shorter file.
        with ckpt.open("rb") as handle:
            records = []
            try:
                while True:
                    records.append(pickle.load(handle))
            except EOFError:
                pass
        with ckpt.open("wb") as handle:
            for record in records[:4]:  # header + 3 results
                pickle.dump(record, handle)

        executed = []
        real_execute = parallel._execute

        def counting_execute(*args, **kwargs):
            executed.append(1)
            return real_execute(*args, **kwargs)

        monkeypatch.setattr(parallel, "_execute", counting_execute)
        resumed = run_replay_sweep(specs, trace=trace, workers=1, checkpoint=ckpt)
        assert len(executed) == 2  # only the lost tail re-ran
        assert resumed == full

    def test_checkpoint_survives_worker_kill(
        self, trace, cache_dir, tmp_path, monkeypatch
    ):
        specs = _specs(5)
        baseline = run_replay_sweep(specs, trace=trace, workers=1)
        flag = tmp_path / "kill"
        flag.touch()
        monkeypatch.setenv("REPRO_CHAOS_KILL_FLAG", str(flag))
        ckpt = tmp_path / "chaos.ckpt"
        result = run_replay_sweep(
            specs, trace=trace, workers=2, checkpoint=ckpt
        )
        assert result == baseline
        assert ckpt.exists()
        # Reload through the real fingerprint path: all 5 results recorded.
        monkeypatch.delenv("REPRO_CHAOS_KILL_FLAG")
        resumed = run_replay_sweep(specs, trace=trace, workers=2, checkpoint=ckpt)
        assert resumed == baseline

    def test_foreign_fingerprint_is_discarded(self, tmp_path):
        path = tmp_path / "c.ckpt"
        mine = SweepCheckpoint(path, "fingerprint-a")
        mine.load()
        mine.append(0, "result-a")
        assert SweepCheckpoint(path, "fingerprint-a").load() == {0: "result-a"}
        assert SweepCheckpoint(path, "fingerprint-b").load() == {}
        # The foreign load reset the file for fingerprint-b.
        assert SweepCheckpoint(path, "fingerprint-b").load() == {}

    def test_truncated_tail_keeps_intact_prefix(self, tmp_path):
        path = tmp_path / "c.ckpt"
        ckpt = SweepCheckpoint(path, "fp")
        ckpt.load()
        ckpt.append(0, "zero")
        ckpt.append(1, "one")
        intact = path.stat().st_size
        ckpt.append(2, "two")
        with path.open("r+b") as handle:  # chop the last record in half
            handle.truncate(intact + 3)
        assert SweepCheckpoint(path, "fp").load() == {0: "zero", 1: "one"}
        # And the file was repaired: appends keep working.
        repaired = SweepCheckpoint(path, "fp")
        repaired.load()
        repaired.append(2, "two-again")
        assert SweepCheckpoint(path, "fp").load() == {
            0: "zero", 1: "one", 2: "two-again",
        }

    def test_garbage_file_restarts_clean(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"not a pickle stream at all")
        assert SweepCheckpoint(path, "fp").load() == {}


class TestTraceCacheIntegrity:
    def test_corrupted_cache_entry_regenerated(self, cache_dir):
        config = IrcacheConfig(requests=400, objects=300, seed=21)
        path = ensure_trace_cached(config)
        good = path.read_bytes()
        assert verify_trace_cache(path)

        path.write_bytes(good[: len(good) // 2])  # truncation mid-file
        assert not verify_trace_cache(path)
        again = ensure_trace_cached(config)
        assert again == path
        assert verify_trace_cache(path)
        assert path.read_bytes() == good  # deterministic regeneration

    def test_missing_sidecar_treated_as_invalid(self, cache_dir):
        config = IrcacheConfig(requests=400, objects=300, seed=22)
        path = ensure_trace_cached(config)
        parallel._digest_sidecar(path).unlink()
        assert not verify_trace_cache(path)
        assert verify_trace_cache(ensure_trace_cached(config))

    def test_load_trace_refuses_corrupt_entry(self, cache_dir, monkeypatch):
        config = IrcacheConfig(requests=400, objects=300, seed=23)
        path = ensure_trace_cached(config)
        path.write_text("0.000\t0\t/poison\n", encoding="utf-8")  # stale sidecar
        monkeypatch.setattr(parallel, "_PROCESS_TRACES", {})
        with pytest.raises(TraceCacheError, match="digest"):
            parallel._load_trace(str(path))

    def test_sweep_self_heals_poisoned_cache(self, trace, cache_dir, monkeypatch):
        """End-to-end: a corrupted cache file cannot poison sweep results."""
        config = IrcacheConfig(requests=400, objects=300, seed=24)
        specs = _specs(2)
        clean = run_replay_sweep(specs, trace_config=config, workers=1)

        path = ensure_trace_cached(config)
        path.write_text("0.000\t0\t/poison\n", encoding="utf-8")
        monkeypatch.setattr(parallel, "_PROCESS_TRACES", {})
        healed = run_replay_sweep(specs, trace_config=config, workers=1)
        assert healed == clean

    def test_adhoc_trace_cache_checksummed(self, cache_dir, trace):
        path = parallel._cache_trace_object(trace)
        assert verify_trace_cache(path)
        # Corrupt it; the next persist call rewrites it.
        path.write_bytes(b"garbage")
        again = parallel._cache_trace_object(trace)
        assert again == path
        assert verify_trace_cache(path)

    def test_adhoc_pre_checksum_entry_adopted(self, cache_dir, trace):
        path = parallel._cache_trace_object(trace)
        parallel._digest_sidecar(path).unlink()  # PR-1 era entry, no sidecar
        again = parallel._cache_trace_object(trace)
        assert again == path
        assert verify_trace_cache(path)
