"""Sharded sweep mode: bounded-RSS workers, cache-key disjointness,
checksum-verified regenerate-on-corruption."""

from __future__ import annotations

import pytest

from repro.perf.parallel import (
    ReplaySpec,
    _config_key,
    ensure_sharded_trace_cached,
    ensure_trace_cached,
    run_replay_sweep,
)
from repro.workload.ircache import IrcacheConfig
from repro.workload.marking import ContentMarking, RequestMarking
from repro.workload.sharded import ShardedCompiledTrace


CONFIG = IrcacheConfig(requests=6000, users=40, objects=500, sites=8, seed=21)

SPECS = [
    ReplaySpec(
        scheme="uniform",
        scheme_params={"k": 5, "delta": 0.01},
        cache_size=64,
        marking=ContentMarking(0.15, salt=3),
        seed=11,
    ),
    ReplaySpec(
        scheme="exponential",
        scheme_params={"k": 5, "epsilon": 0.005, "delta": 0.01},
        cache_size=128,
        policy="lfu",
        marking=RequestMarking(0.2, seed=5),
        seed=12,
    ),
    ReplaySpec(scheme="no-privacy", cache_size=None, policy="random", seed=13),
    ReplaySpec(scheme="always-delay", cache_size=48, policy="fifo", seed=14),
]


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))


def test_sharded_sweep_matches_materialized_serial_and_parallel():
    """The streaming/sharded path must be bit-identical to the in-RAM
    path for every spec — across serial and multi-worker execution."""
    materialized = run_replay_sweep(SPECS, trace_config=CONFIG, workers=1)
    serial = run_replay_sweep(
        SPECS, trace_config=CONFIG, workers=1, sharded=True, shard_size=1024
    )
    parallel = run_replay_sweep(
        SPECS, trace_config=CONFIG, workers=3, sharded=True, shard_size=1024
    )
    assert materialized == serial == parallel


def test_cache_keys_disjoint_across_layout_and_shard_size():
    """Satellite: the cache fingerprint covers layout and chunking, so a
    sharded entry can never collide with a materialized one (or with a
    differently sharded one) for the same generator config."""
    keys = {
        _config_key(CONFIG),
        _config_key(CONFIG, layout="sharded", shard_size=1024),
        _config_key(CONFIG, layout="sharded", shard_size=4096),
    }
    assert len(keys) == 3
    # And the on-disk entries land under different names entirely.
    tsv = ensure_trace_cached(CONFIG)
    shards = ensure_sharded_trace_cached(CONFIG, shard_size=1024)
    assert tsv != shards
    assert tsv.exists() and shards.is_dir()


def test_config_key_covers_every_config_field():
    base = _config_key(CONFIG)
    for name in CONFIG.__dataclass_fields__:
        value = getattr(CONFIG, name)
        if isinstance(value, int):
            bumped: object = value + 1
        elif isinstance(value, float):
            bumped = value + 0.25  # stays inside every field's valid range
        else:  # sequence-valued (e.g. the diurnal profile)
            bumped = tuple(value) + tuple(value)[:1]
        other = IrcacheConfig(**{**CONFIG.__dict__, name: bumped})
        assert _config_key(other) != base, f"field {name} not fingerprinted"


def test_sharded_cache_reused_then_regenerated_on_corruption():
    path = ensure_sharded_trace_cached(CONFIG, shard_size=1024)
    stamp = (path / "manifest.json").stat().st_mtime_ns
    # Clean entry: verified and reused in place.
    assert ensure_sharded_trace_cached(CONFIG, shard_size=1024) == path
    assert (path / "manifest.json").stat().st_mtime_ns == stamp
    # Corrupt one shard payload: the entry must be rebuilt, and the
    # rebuilt entry must pass a full checksum verification.
    (path / "shard-00000.ids.npy").write_bytes(b"garbage")
    rebuilt = ensure_sharded_trace_cached(CONFIG, shard_size=1024)
    assert rebuilt == path
    sharded = ShardedCompiledTrace.open(rebuilt)
    sharded.verify()
    assert sharded.n_requests == CONFIG.requests


def test_sharded_mode_input_validation(tmp_path):
    with pytest.raises(ValueError, match="trace_config"):
        run_replay_sweep(
            SPECS[:1], trace=object(), sharded=True  # type: ignore[arg-type]
        )
    with pytest.raises(ValueError, match="fast engine"):
        run_replay_sweep(
            SPECS[:1], trace_config=CONFIG, sharded=True, engine="reference"
        )
