"""Integration: the timing attack against defended routers, end to end.

The headline security claim — probing a router running a delay-based
countermeasure yields (almost) nothing — exercised in the packet-level
simulator on the Figure 1 topology.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.classifier import bayes_success
from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.naive_threshold import NaiveThresholdScheme
from repro.core.schemes.uniform import UniformRandomCache
from repro.ndn.topology import local_lan
from repro.sim.process import Timeout


def probe_campaign(scheme_factory, objects=25, trials=3, producer_private=True):
    """U prefetches `objects` private objects; Adv probes them plus as
    many cold names.  Returns (hot RTTs, cold RTTs) pooled over trials."""
    hot_rtts, cold_rtts = [], []
    for trial in range(trials):
        topo = local_lan(seed=100 + trial, scheme=scheme_factory())
        topo.producer.private_by_default = producer_private
        hot = [f"/content/h{trial}-{i}" for i in range(objects)]
        cold = [f"/content/c{trial}-{i}" for i in range(objects)]

        def user_proc():
            for name in hot:
                result = yield from topo.user.fetch(name, private=True)
                assert result is not None
                yield Timeout(2.0)

        def adv_proc():
            yield Timeout(1000.0)
            for name in hot:
                result = yield from topo.adversary.fetch(name, private=True)
                if result is not None:
                    hot_rtts.append(result.rtt)
                yield Timeout(2.0)
            for name in cold:
                result = yield from topo.adversary.fetch(name, private=True)
                if result is not None:
                    cold_rtts.append(result.rtt)
                yield Timeout(2.0)

        topo.engine.spawn(user_proc(), label="user")
        topo.engine.spawn(adv_proc(), label="adv")
        topo.engine.run()
    return hot_rtts, cold_rtts


class TestUndefendedRouter:
    def test_attack_succeeds_without_countermeasure(self):
        from repro.core.schemes.no_privacy import NoPrivacyScheme

        hot, cold = probe_campaign(NoPrivacyScheme)
        assert bayes_success(hot, cold) > 0.99


class TestAlwaysDelayDefense:
    def test_probes_indistinguishable(self):
        """Perfect privacy: disguised hits replay γ_C, so hot and cold
        probes draw from (nearly) the same distribution."""
        hot, cold = probe_campaign(AlwaysDelayScheme)
        success = bayes_success(hot, cold, bins=20)
        assert success < 0.75  # residual = jitter resampling, not signal

    def test_mean_rtts_close(self):
        hot, cold = probe_campaign(AlwaysDelayScheme)
        gap = abs(float(np.mean(hot)) - float(np.mean(cold)))
        spread = float(np.std(cold))
        assert gap < spread  # the means sit within one jitter sigma


class TestRandomCacheDefense:
    def test_single_probe_leak_bounded(self):
        """With K large relative to probes, a single probe per object is
        near-useless: hot objects still answer disguised misses."""
        scheme_factory = lambda: UniformRandomCache(  # noqa: E731
            K=100, rng=np.random.default_rng(7)
        )
        hot, cold = probe_campaign(scheme_factory)
        assert bayes_success(hot, cold, bins=20) < 0.75

    def test_naive_threshold_leaks_on_second_probe(self):
        """Knowing k, the adversary probes k+1 times: against the naive
        scheme (k=1) the second probe of victim-fetched content is a fast
        hit while never-fetched content still misses — near-perfect
        distinguishing.  Uniform-Random-Cache with K=100 keeps the second
        probe quiet (hit probability 2/K)."""

        def second_probe_campaign(scheme_factory, objects=20, trials=2):
            hot_rtts, cold_rtts = [], []
            for trial in range(trials):
                topo = local_lan(seed=300 + trial, scheme=scheme_factory())
                topo.producer.private_by_default = True
                hot = [f"/content/h{trial}-{i}" for i in range(objects)]
                cold = [f"/content/c{trial}-{i}" for i in range(objects)]

                def user_proc():
                    for name in hot:
                        result = yield from topo.user.fetch(name, private=True)
                        assert result is not None
                        yield Timeout(2.0)

                def adv_proc():
                    yield Timeout(1000.0)
                    for name, sink in [(n, hot_rtts) for n in hot] + [
                        (n, cold_rtts) for n in cold
                    ]:
                        yield from topo.adversary.fetch(name, private=True)
                        yield Timeout(2.0)
                        second = yield from topo.adversary.fetch(
                            name, private=True
                        )
                        if second is not None:
                            sink.append(second.rtt)
                        yield Timeout(2.0)

                topo.engine.spawn(user_proc(), label="user")
                topo.engine.spawn(adv_proc(), label="adv")
                topo.engine.run()
            return hot_rtts, cold_rtts

        naive_hot, naive_cold = second_probe_campaign(
            lambda: NaiveThresholdScheme(1)
        )
        uni_hot, uni_cold = second_probe_campaign(
            lambda: UniformRandomCache(K=100, rng=np.random.default_rng(3))
        )
        naive_success = bayes_success(naive_hot, naive_cold, bins=20)
        uni_success = bayes_success(uni_hot, uni_cold, bins=20)
        assert naive_success > 0.95
        assert uni_success < 0.75
        assert naive_success > uni_success


class TestBandwidthPreservation:
    def test_always_delay_still_serves_from_cache(self):
        """Disguised hits do not re-contact the producer (Section V-B:
        bandwidth utilization remains intact)."""
        topo = local_lan(seed=9, scheme=AlwaysDelayScheme())
        topo.producer.private_by_default = True

        def proc():
            yield from topo.user.fetch("/content/x", private=True)
            yield Timeout(100.0)
            yield from topo.adversary.fetch("/content/x", private=True)

        topo.engine.spawn(proc(), label="both")
        topo.engine.run()
        assert topo.producer.monitor.counter("data_served") == 1
        assert topo.router.monitor.counter("cs_disguised_hit") == 1
