"""Model validation: the fast replay harness against the packet simulator.

Figure 5 is produced by the network-free replay harness.  This test
replays the *same request sequence* through (a) the packet-level
simulator — a consumer app driving a real forwarder — and (b) the
``CachedRouter`` replay model, and requires identical hit/miss accounting
for deterministic schemes.  Divergence here would mean Figure 5 measures
the replay model rather than NDN caching.
"""

from __future__ import annotations

import pytest

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.workload.ircache import small_test_trace
from repro.workload.marking import ContentMarking
from repro.workload.replay import CachedRouter, RequestOutcome
from repro.sim.process import Timeout


def packet_sim_counts(requests, scheme, marking, cache_size):
    """Drive the request list through a real forwarder; count outcomes."""
    net = Network()
    router = net.add_router("R", capacity=cache_size, scheme=scheme)
    consumer = net.add_consumer("c")
    net.add_producer("p", "/", processing_delay=0.0)
    net.connect("c", "R", FixedDelay(1.0))
    net.connect("R", "p", FixedDelay(5.0))
    net.add_route("R", "/", "p")

    def proc():
        for index, (name, private) in enumerate(requests):
            result = yield from consumer.fetch(str(name), private=private)
            assert result is not None, name
            yield Timeout(1.0)

    net.spawn(proc(), "driver")
    net.run()
    return {
        "hits": router.monitor.counter("cs_hit"),
        "disguised": router.monitor.counter("cs_disguised_hit"),
        "misses": router.monitor.counter("cs_miss"),
        "evictions": router.cs.evictions,
    }


def replay_counts(requests, scheme, cache_size):
    router = CachedRouter(cache_size=cache_size, scheme=scheme)
    counts = {"hits": 0, "disguised": 0, "misses": 0}
    clock = 0.0
    for name, private in requests:
        clock += 1.0
        outcome = router.request(name, private, clock)
        if outcome is RequestOutcome.HIT:
            counts["hits"] += 1
        elif outcome is RequestOutcome.DISGUISED_HIT:
            counts["disguised"] += 1
        else:
            counts["misses"] += 1
    counts["evictions"] = router.cs.evictions
    return counts


def build_requests(n=1500, private_fraction=0.3, seed=3):
    trace = small_test_trace(requests=n, seed=seed)
    marking = ContentMarking(private_fraction, salt=seed)
    request_index = {}
    requests = []
    for record in trace:
        idx = request_index.get(record.name, 0)
        request_index[record.name] = idx + 1
        requests.append((record.name, marking.is_private(record.name, idx)))
    return requests


class TestModelsAgree:
    @pytest.mark.parametrize("cache_size", [None, 300, 50])
    def test_no_privacy_counts_identical(self, cache_size):
        requests = build_requests()
        sim = packet_sim_counts(requests, NoPrivacyScheme(), None, cache_size)
        fast = replay_counts(requests, NoPrivacyScheme(), cache_size)
        assert sim["hits"] == fast["hits"]
        assert sim["misses"] == fast["misses"]
        assert sim["evictions"] == fast["evictions"]

    @pytest.mark.parametrize("cache_size", [None, 300])
    def test_always_delay_counts_identical(self, cache_size):
        requests = build_requests()
        sim = packet_sim_counts(
            requests, AlwaysDelayScheme(), None, cache_size
        )
        fast = replay_counts(requests, AlwaysDelayScheme(), cache_size)
        assert sim["hits"] == fast["hits"]
        assert sim["disguised"] == fast["disguised"]
        assert sim["misses"] == fast["misses"]
