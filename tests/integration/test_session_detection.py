"""Integration: detecting two-way interactive communication (paper intro),
and the unpredictable-names countermeasure defeating it.
"""

from __future__ import annotations

import pytest

from repro.attacks.session_detection import SessionDetectionAttack
from repro.naming.session import PredictableSessionNamer, SessionNamer
from repro.ndn.apps.interactive import InteractiveEndpoint
from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout

SECRET = b"session-secret"


def build(predictable: bool, session_active: bool = True):
    net = Network()
    net.add_router("R")
    if predictable:
        alice_namer = PredictableSessionNamer("/alice/voip", "/bob/voip")
        bob_namer = PredictableSessionNamer("/bob/voip", "/alice/voip")
    else:
        alice_namer = SessionNamer(SECRET, "/alice/voip", "/bob/voip")
        bob_namer = SessionNamer(SECRET, "/bob/voip", "/alice/voip")
    alice = InteractiveEndpoint(net.engine, alice_namer, "alice")
    bob = InteractiveEndpoint(net.engine, bob_namer, "bob")
    net.add_endpoint("alice", alice)
    net.add_endpoint("bob", bob)
    net.connect("alice", "R", FixedDelay(1.0))
    net.connect("bob", "R", FixedDelay(1.0))
    net.add_route("R", "/alice", "alice")
    net.add_route("R", "/bob", "bob")
    adversary = net.add_consumer("adv")
    net.connect("adv", "R", FixedDelay(1.0))
    if session_active:
        net.spawn(alice.run_session(frames=8, frame_interval=15.0), "alice")
        net.spawn(bob.run_session(frames=8, frame_interval=15.0), "bob")
    return net, adversary


def run_detection(predictable: bool, session_active: bool = True):
    net, adversary = build(predictable, session_active)
    attack = SessionDetectionAttack(adversary)
    results = {}

    def adv_proc():
        yield Timeout(400.0)  # probe after the session has been running
        verdict = yield from attack.detect(
            "/alice/voip", "/bob/voip", sequence_window=range(8)
        )
        results["verdict"] = verdict

    net.spawn(adv_proc(), "adv")
    net.run()
    return results["verdict"]


class TestPredictableNamesLeak:
    def test_active_session_detected(self):
        verdict = run_detection(predictable=True, session_active=True)
        assert verdict.two_way_detected
        assert verdict.alice_frames_found > 0
        assert verdict.bob_frames_found > 0

    def test_no_session_not_detected(self):
        verdict = run_detection(predictable=True, session_active=False)
        assert not verdict.two_way_detected
        assert verdict.alice_frames_found == 0
        assert verdict.bob_frames_found == 0

    def test_probes_are_local_only(self):
        """Scope-2 probes never leave the first-hop router: the endpoints
        themselves receive nothing from the adversary."""
        net, adversary = build(predictable=True, session_active=True)
        alice = net["alice"]
        attack = SessionDetectionAttack(adversary)

        def adv_proc():
            yield Timeout(400.0)
            yield from attack.detect(
                "/alice/voip", "/bob/voip", sequence_window=range(4)
            )

        net.spawn(adv_proc(), "adv")
        net.run()
        # All frame serves were for the session peer, not the adversary:
        # 8 frames requested by bob at most (one per exchanged frame).
        assert alice.monitor.counter("frames_served") <= 8


class TestUnpredictableNamesDefend:
    def test_active_session_invisible(self):
        verdict = run_detection(predictable=False, session_active=True)
        assert not verdict.two_way_detected
        assert verdict.alice_frames_found == 0
        assert verdict.bob_frames_found == 0

    def test_same_probe_count_both_ways(self):
        """The adversary spends the same effort; only the naming differs."""
        leaky = run_detection(predictable=True)
        safe = run_detection(predictable=False)
        assert leaky.probes_sent == safe.probes_sent
        assert leaky.two_way_detected and not safe.two_way_detected


class TestPredictableNamerUnit:
    def test_layout(self):
        namer = PredictableSessionNamer("/alice/voip", "/bob/voip")
        assert str(namer.outgoing_name(3)) == "/alice/voip/3"
        assert str(namer.incoming_name(0)) == "/bob/voip/0"

    def test_next_outgoing_advances(self):
        namer = PredictableSessionNamer("/a", "/b")
        assert str(namer.next_outgoing_name()) == "/a/0"
        assert str(namer.next_outgoing_name()) == "/a/1"
        assert namer.sent_frames == 2

    def test_verify_accepts_prefix_members(self):
        namer = PredictableSessionNamer("/a", "/b")
        assert namer.verify(namer.outgoing_name(5))
        assert namer.verify(namer.incoming_name(5))
        from repro.ndn.name import Name

        assert not namer.verify(Name.parse("/c/0"))

    def test_negative_sequence_rejected(self):
        namer = PredictableSessionNamer("/a", "/b")
        with pytest.raises(ValueError):
            namer.outgoing_name(-1)
        with pytest.raises(ValueError):
            namer.incoming_name(-1)
