"""Integration: interactive traffic protected by unpredictable names
(Section V-A), end to end through a shared router.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.naming.session import SessionNamer
from repro.ndn.apps.interactive import InteractiveEndpoint
from repro.ndn.link import FixedDelay
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.sim.process import Timeout

SECRET = b"alice-bob-session-key"


def build_session(loss_rate=0.0, seed=0):
    """alice -- R -- bob, both endpoints of one interactive session."""
    net = Network()
    router = net.add_router("R")
    alice = InteractiveEndpoint(
        net.engine,
        SessionNamer(SECRET, "/alice/voip", "/bob/voip"),
        label="alice",
    )
    bob = InteractiveEndpoint(
        net.engine,
        SessionNamer(SECRET, "/bob/voip", "/alice/voip"),
        label="bob",
    )
    net.add_endpoint("alice", alice)
    net.add_endpoint("bob", bob)
    net.connect("alice", "R", FixedDelay(1.0), loss_rate=loss_rate)
    net.connect("bob", "R", FixedDelay(1.0))
    net.add_route("R", "/alice", "alice")
    net.add_route("R", "/bob", "bob")
    adversary = net.add_consumer("adv")
    net.connect("adv", "R", FixedDelay(1.0))
    return net, alice, bob, adversary, router


class TestSessionDelivery:
    def test_bidirectional_frames_delivered(self):
        net, alice, bob, _, _ = build_session()
        net.spawn(alice.run_session(frames=10, frame_interval=20.0), "alice")
        net.spawn(bob.run_session(frames=10, frame_interval=20.0), "bob")
        net.run()
        assert len(alice.frame_stats) == 10
        assert len(bob.frame_stats) == 10
        assert all(s.latency == pytest.approx(4.0) for s in alice.frame_stats)

    def test_retransmission_recovers_from_loss(self):
        net, alice, bob, _, router = build_session(loss_rate=0.25, seed=3)
        net.spawn(alice.run_session(
            frames=30, frame_interval=20.0, retransmit_timeout=50.0
        ), "alice")
        net.spawn(bob.run_session(
            frames=30, frame_interval=20.0, retransmit_timeout=50.0
        ), "bob")
        net.run()
        delivered = len(alice.frame_stats) + len(bob.frame_stats)
        assert delivered >= 55  # most frames make it despite 25% loss
        retransmitted = alice.monitor.counter("retransmits") + bob.monitor.counter(
            "retransmits"
        )
        assert retransmitted > 0

    def test_frames_cached_at_router(self):
        """Caching still helps loss recovery: frames sit in R's cache."""
        net, alice, bob, _, router = build_session()
        net.spawn(alice.run_session(frames=5, frame_interval=20.0), "alice")
        net.spawn(bob.run_session(frames=5, frame_interval=20.0), "bob")
        net.run()
        assert len(router.cs) == 10  # 5 frames each direction


class TestPrivacyAgainstProbing:
    def test_prefix_probe_learns_nothing(self):
        """Footnote 5: an interest for the session prefix must not match
        the cached rand-named frames."""
        net, alice, bob, adversary, router = build_session()
        net.spawn(alice.run_session(frames=5, frame_interval=10.0), "alice")
        net.spawn(bob.run_session(frames=5, frame_interval=10.0), "bob")
        probed = []

        def adv_proc():
            yield Timeout(500.0)
            assert len(router.cs) == 10  # frames are cached...
            for prefix in ("/alice/voip", "/bob/voip", "/alice", "/bob"):
                result = yield from adversary.fetch(prefix, timeout=100.0)
                probed.append(result)

        net.spawn(adv_proc(), "adv")
        net.run()
        assert probed == [None, None, None, None]

    def test_guessing_rand_is_infeasible_without_secret(self):
        """An adversary guessing rand components has negligible hit odds;
        here the 'guess' is a wrong-secret derivation."""
        net, alice, bob, adversary, router = build_session()
        net.spawn(alice.run_session(frames=3, frame_interval=10.0), "alice")
        outsider = SessionNamer(b"wrong-secret", "/alice/voip", "/bob/voip")
        results = []

        def adv_proc():
            yield Timeout(300.0)
            for seq in range(3):
                guess = outsider.outgoing_name(seq)
                result = yield from adversary.fetch(guess, timeout=100.0)
                results.append(result)

        net.spawn(adv_proc(), "adv")
        net.run()
        assert results == [None, None, None]

    def test_correct_secret_does_match(self):
        """Sanity check of the oracle: with the right name the probe hits
        — the privacy rests entirely on name unpredictability."""
        net, alice, bob, adversary, router = build_session()
        net.spawn(alice.run_session(frames=3, frame_interval=10.0), "alice")
        insider = SessionNamer(SECRET, "/alice/voip", "/bob/voip")
        results = []

        def adv_proc():
            yield Timeout(300.0)
            result = yield from adversary.fetch(
                insider.outgoing_name(0), timeout=100.0
            )
            results.append(result)

        net.spawn(adv_proc(), "adv")
        net.run()
        assert results[0] is not None
