"""Failure injection: loss, outages, timeouts, and late data.

The substrate must behave sanely when things break: lossy links, a
producer with no route, PIT entries expiring before data returns, and
content arriving after the requester gave up.
"""

from __future__ import annotations

import pytest

from repro.ndn.link import FixedDelay, GaussianJitterDelay
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry


def chain(seed=0, loss_c_r=0.0, loss_r_p=0.0, producer_delay=5.0):
    net = Network(rng=RngRegistry(seed))
    router = net.add_router("R")
    consumer = net.add_consumer("c")
    net.add_producer("p", "/data", processing_delay=producer_delay)
    net.connect("c", "R", FixedDelay(1.0), loss_rate=loss_c_r)
    net.connect("R", "p", FixedDelay(3.0), loss_rate=loss_r_p)
    net.add_route("R", "/data", "p")
    return net, router, consumer


class TestLossyLinks:
    def test_consumer_retransmission_recovers_interest_loss(self):
        net, router, consumer = chain(seed=5, loss_c_r=0.4)
        delivered = []

        def proc():
            for i in range(30):
                for _attempt in range(12):
                    result = yield from consumer.fetch(
                        f"/data/obj-{i}", timeout=60.0
                    )
                    if result is not None:
                        delivered.append(i)
                        break
                yield Timeout(5.0)

        net.spawn(proc(), "driver")
        net.run()
        # Per-attempt failure is 1 - 0.6^2 = 0.64; 12 attempts make a
        # stuck object a ~0.5% event, so at most one of 30 may fail.
        assert len(delivered) >= 29
        # The abandoned-fetch cleanup must leave no stale pending state.
        assert consumer.pending_count == 0

    def test_upstream_loss_recovered_via_router_cache(self):
        """Data lost on the consumer link after R cached it: the
        retransmitted interest is served from R, not the producer."""
        net, router, consumer = chain(seed=6, loss_r_p=0.5)
        producer = net["p"]
        done = []

        def proc():
            for _attempt in range(10):
                result = yield from consumer.fetch("/data/x", timeout=60.0)
                if result is not None:
                    done.append(result)
                    break
            # Once cached at R, later fetches never touch the lossy leg.
            served_before = producer.monitor.counter("data_served")
            for _ in range(5):
                result = yield from consumer.fetch("/data/x", timeout=60.0)
                assert result is not None
                yield Timeout(2.0)
            done.append(producer.monitor.counter("data_served") - served_before)

        net.spawn(proc(), "driver")
        net.run()
        assert done[0] is not None
        assert done[1] == 0  # all five follow-ups were R-cache hits


class TestNoRouteAndOutage:
    def test_unroutable_prefix_times_out_cleanly(self):
        net, router, consumer = chain()
        outcome = []

        def proc():
            result = yield from consumer.fetch("/other/thing", timeout=100.0)
            outcome.append(result)

        net.spawn(proc(), "driver")
        net.run()
        assert outcome == [None]
        assert router.monitor.counter("no_route") == 1
        assert len(router.pit) == 0  # no dangling state

    def test_silent_producer_expires_pit(self):
        net, router, consumer = chain()
        net["p"].auto_generate = False  # knows nothing; serves nothing
        outcome = []

        def proc():
            result = yield from consumer.fetch(
                "/data/ghost", lifetime=200.0, timeout=150.0
            )
            outcome.append(result)

        net.spawn(proc(), "driver")
        net.run()
        assert outcome == [None]
        # The PIT entry expired on its own timer after the lifetime.
        assert len(router.pit) == 0
        assert router.monitor.counter("pit_expired") == 1


class TestLateData:
    def test_data_after_pit_expiry_is_unsolicited(self, engine):
        """Content arriving after its PIT entry expired is dropped, not
        cached: 'a content named X is never forwarded or routed unless it
        is preceded by an interest for X'."""
        from repro.ndn.forwarder import Forwarder
        from repro.ndn.link import Face, Link
        from repro.ndn.packets import Data, Interest
        import numpy as np

        router = Forwarder(engine, "R")

        class Sink:
            def __init__(self):
                self.data = []

            def receive_interest(self, interest, face):
                pass  # never answers

            def receive_data(self, data, face):
                self.data.append(data)

        consumer, producer = Sink(), Sink()
        c_face = Face(consumer, "c")
        r_down = router.create_face()
        Link(engine, c_face, r_down, FixedDelay(1.0), np.random.default_rng(0))
        p_face = Face(producer, "p")
        r_up = router.create_face()
        Link(engine, r_up, p_face, FixedDelay(1.0), np.random.default_rng(1))
        router.fib.add_route(Name.root(), r_up)

        c_face.send_interest(Interest(name=Name.parse("/slow"), lifetime=50.0))
        engine.run(until=100.0)  # PIT entry expired at ~51
        assert len(router.pit) == 0
        p_face.send_data(Data(name=Name.parse("/slow")))
        engine.run()
        assert router.monitor.counter("unsolicited_data") == 1
        assert Name.parse("/slow") not in router.cs
        assert consumer.data == []

    def test_loss_rate_statistics_tracked(self):
        net, router, consumer = chain(seed=7, loss_c_r=0.3)

        def proc():
            for i in range(40):
                yield from consumer.fetch(f"/data/o{i}", timeout=30.0)
                yield Timeout(2.0)

        net.spawn(proc(), "driver")
        net.run()
        link = net.links["c<->R"]
        assert link.packets_lost > 0
        assert link.packets_sent > link.packets_lost
