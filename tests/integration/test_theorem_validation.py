"""Integration: every theorem checked against the exact oracle and
Monte-Carlo over a parameter grid — the closed forms, the oracle model,
and the running scheme code must all agree.
"""

from __future__ import annotations

import pytest

from repro.core.privacy.distributions import TruncatedGeometric, UniformK
from repro.core.privacy.empirical import estimate_utility
from repro.core.privacy.guarantees import (
    exponential_privacy,
    solve_exponential_params,
    solve_uniform_K,
    uniform_privacy,
)
from repro.core.privacy.oracle import oracle_guarantee
from repro.core.privacy.utility import (
    exponential_utility,
    uniform_utility,
)
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.uniform import UniformRandomCache


GRID_UNIFORM = [(1, 10), (2, 25), (5, 50), (3, 100)]
GRID_EXPO = [(1, 0.9, 20), (2, 0.8, 30), (5, 0.95, 60), (3, 0.99, 200)]


class TestTheoremVI1:
    @pytest.mark.parametrize("k,K", GRID_UNIFORM)
    def test_oracle_attains_exactly_2k_over_K(self, k, K):
        analysis = oracle_guarantee(UniformK(K), k=k, t=K + k + 1, epsilon=0.0)
        assert analysis.delta_at_zero == pytest.approx(
            uniform_privacy(k, K).delta, abs=1e-9
        )


class TestTheoremVI3:
    @pytest.mark.parametrize("k,alpha,K", GRID_EXPO)
    def test_oracle_delta_matches_closed_form(self, k, alpha, K):
        theorem = exponential_privacy(k, alpha, K)
        analysis = oracle_guarantee(
            TruncatedGeometric(alpha, K), k=k, t=K + k + 1,
            epsilon=theorem.epsilon,
        )
        assert analysis.delta_at_epsilon == pytest.approx(theorem.delta, abs=1e-9)

    @pytest.mark.parametrize("k,alpha,K", GRID_EXPO)
    def test_smaller_epsilon_budget_costs_more_delta(self, k, alpha, K):
        theorem = exponential_privacy(k, alpha, K)
        tight = oracle_guarantee(
            TruncatedGeometric(alpha, K), k=k, t=K + k + 1,
            epsilon=theorem.epsilon / 2,
        )
        assert tight.delta_at_epsilon >= theorem.delta - 1e-9


class TestTheoremVI2VI4:
    @pytest.mark.parametrize("k,K", GRID_UNIFORM)
    def test_uniform_utility_measured(self, k, K):
        for c in (1, K // 2 or 1, K, K + 10):
            measured = estimate_utility(
                lambda rng: UniformRandomCache(K=K, rng=rng), c=c, trials=4000
            )
            assert measured == pytest.approx(uniform_utility(c, K), abs=0.025)

    @pytest.mark.parametrize("k,alpha,K", GRID_EXPO[:3])
    def test_exponential_utility_measured(self, k, alpha, K):
        for c in (1, K // 2, K + 5):
            measured = estimate_utility(
                lambda rng: ExponentialRandomCache(alpha=alpha, K=K, rng=rng),
                c=c,
                trials=4000,
            )
            assert measured == pytest.approx(
                exponential_utility(c, alpha, K), abs=0.025
            )


class TestSolversRoundTrip:
    @pytest.mark.parametrize("k,delta", [(1, 0.05), (5, 0.05), (3, 0.01), (2, 0.2)])
    def test_uniform_solver_guarantee_roundtrip(self, k, delta):
        K = solve_uniform_K(k, delta)
        achieved = uniform_privacy(k, K)
        # Verified against the oracle too, not just the closed form.
        analysis = oracle_guarantee(UniformK(K), k=k, t=K + k + 1, epsilon=0.0)
        assert analysis.delta_at_zero <= delta + 1e-9
        assert achieved.delta <= delta

    @pytest.mark.parametrize("k,eps,delta", [
        (1, 0.03, 0.05), (5, 0.04, 0.05), (2, 0.005, 0.01),
    ])
    def test_exponential_solver_guarantee_roundtrip(self, k, eps, delta):
        alpha, K = solve_exponential_params(k, eps, delta)
        assert K is not None
        analysis = oracle_guarantee(
            TruncatedGeometric(alpha, K), k=k, t=K + k + 1, epsilon=eps
        )
        assert analysis.delta_at_epsilon <= delta + 1e-9


class TestSchemeComparison:
    def test_exponential_dominates_uniform_at_equal_privacy(self):
        """The Section VI comparison: at matched (k, δ), the exponential
        scheme's utility is at least the uniform scheme's for every c."""
        k, delta = 1, 0.05
        K_uni = solve_uniform_K(k, delta)
        for eps in (0.03, 0.04, 0.05):
            alpha, K_expo = solve_exponential_params(k, eps, delta)
            for c in range(1, 101):
                assert (
                    exponential_utility(c, alpha, K_expo)
                    >= uniform_utility(c, K_uni) - 1e-9
                )
