"""Integration: statistical validation that disguised responses are
distributionally indistinguishable from genuine misses.

The Bayes-success metric bounds what a classifier achieves; these tests
add the orthodox hypothesis-testing view: a two-sample KS test between
disguised-hit RTTs and genuine-miss RTTs must not reject against a
content-specific-delay defense, and the Mann-Whitney AUC must sit near
0.5 — while both fire loudly against an undefended router.
"""

from __future__ import annotations

import pytest

from repro.analysis.hypothesis_tests import ks_two_sample, mann_whitney_auc
from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.ndn.topology import local_lan
from repro.sim.process import Timeout


def collect_probe_classes(scheme_factory, objects=40, trials=3):
    """(probe RTTs on victim-fetched names, probe RTTs on fresh names)."""
    hot_rtts, cold_rtts = [], []
    for trial in range(trials):
        topo = local_lan(seed=700 + trial, scheme=scheme_factory())
        topo.producer.private_by_default = True
        hot = [f"/content/h{trial}-{i}" for i in range(objects)]
        cold = [f"/content/c{trial}-{i}" for i in range(objects)]

        def victim():
            for name in hot:
                result = yield from topo.user.fetch(name, private=True)
                assert result is not None
                yield Timeout(2.0)

        def probe():
            yield Timeout(1000.0)
            for name, sink in [(n, hot_rtts) for n in hot] + [
                (n, cold_rtts) for n in cold
            ]:
                result = yield from topo.adversary.fetch(name, private=True)
                if result is not None:
                    sink.append(result.rtt)
                yield Timeout(2.0)

        topo.engine.spawn(victim(), "victim")
        topo.engine.spawn(probe(), "probe")
        topo.engine.run()
    return hot_rtts, cold_rtts


class TestDefendedRouterPassesKs:
    def test_ks_does_not_reject_always_delay(self):
        hot, cold = collect_probe_classes(AlwaysDelayScheme)
        result = ks_two_sample(hot, cold)
        assert result.indistinguishable_at(0.01), (
            f"KS rejected: D={result.statistic:.3f}, p={result.p_value:.4f}"
        )

    def test_auc_near_half_for_always_delay(self):
        hot, cold = collect_probe_classes(AlwaysDelayScheme)
        auc = mann_whitney_auc(hot, cold)
        assert auc == pytest.approx(0.5, abs=0.08)


class TestUndefendedRouterFailsKs:
    def test_ks_rejects_no_privacy(self):
        hot, cold = collect_probe_classes(NoPrivacyScheme)
        result = ks_two_sample(hot, cold)
        assert not result.indistinguishable_at(0.01)
        assert result.statistic > 0.9  # nearly disjoint classes

    def test_auc_near_one_for_no_privacy(self):
        hot, cold = collect_probe_classes(NoPrivacyScheme)
        assert mann_whitney_auc(hot, cold) > 0.95
