"""Integration: the three marking channels of Section V, end to end.

Producer-driven (privacy bit or reserved name component), consumer-driven
(interest bit), and their interaction under the trigger rule — exercised
through the full forwarder pipeline, not just the marking policy object.
"""

from __future__ import annotations

import pytest

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.ndn.name import Name
from repro.ndn.topology import local_lan
from repro.sim.process import Timeout


def topo_with_delay(seed=0):
    return local_lan(seed=seed, scheme=AlwaysDelayScheme())


def fetch_rtts(topo, plan):
    """Run (who, name, private) steps sequentially; return RTT list."""
    rtts = []

    def proc():
        for who, name, private in plan:
            consumer = topo.user if who == "user" else topo.adversary
            result = yield from consumer.fetch(name, private=private)
            assert result is not None, name
            rtts.append(result.rtt)
            yield Timeout(10.0)

    topo.engine.spawn(proc(), label="plan")
    topo.engine.run()
    return rtts


class TestProducerBitMarking:
    def test_producer_bit_always_honored(self):
        """Producer-marked content is delayed even for unmarked interests."""
        topo = topo_with_delay()
        topo.producer.publish("/content/secret", private=True)
        rtts = fetch_rtts(topo, [
            ("user", "/content/secret", False),
            ("adv", "/content/secret", False),   # cached now
            ("adv", "/content/secret", False),
        ])
        # Probes 2 and 3 are disguised: no fast hit ever appears.
        assert rtts[1] == pytest.approx(rtts[0], abs=1.5)
        assert rtts[2] == pytest.approx(rtts[0], abs=1.5)


class TestNameComponentMarking:
    def test_private_name_component_honored(self):
        """The reserved /private/ component marks without any bit."""
        topo = topo_with_delay()
        topo.producer.publish("/content/private/diary")
        rtts = fetch_rtts(topo, [
            ("user", "/content/private/diary", False),
            ("adv", "/content/private/diary", False),
        ])
        assert rtts[1] == pytest.approx(rtts[0], abs=1.5)

    def test_unmarked_sibling_still_fast(self):
        topo = topo_with_delay()
        topo.producer.publish("/content/public/news")
        rtts = fetch_rtts(topo, [
            ("user", "/content/public/news", False),
            ("adv", "/content/public/news", False),
        ])
        assert rtts[1] < rtts[0] * 0.7  # genuine fast cache hit


class TestConsumerBitMarking:
    def test_consumer_marked_content_protected(self):
        topo = topo_with_delay()
        topo.producer.publish("/content/habit")  # producer does not mark
        rtts = fetch_rtts(topo, [
            ("user", "/content/habit", True),   # requested with privacy
            ("adv", "/content/habit", True),    # probe honors marking
        ])
        assert rtts[1] == pytest.approx(rtts[0], abs=1.5)

    def test_trigger_rule_first_public_interest_demotes(self):
        """Once requested without the bit, the content stays non-private
        for its cache residency — the paper's anti-oscillation rule."""
        topo = topo_with_delay()
        topo.producer.publish("/content/habit")
        rtts = fetch_rtts(topo, [
            ("user", "/content/habit", True),
            ("adv", "/content/habit", False),   # public interest: demotes
            ("adv", "/content/habit", True),    # privacy bit can't restore
        ])
        assert rtts[1] < rtts[0] * 0.7
        assert rtts[2] < rtts[0] * 0.7

    def test_probing_demoted_content_reveals_nothing_new(self):
        """The rationale: after demotion the adversary's two probes see
        hit/hit whether or not the victim's private request happened —
        compare against the never-requested world where it sees miss/hit."""
        # World A: victim requested privately first.
        topo_a = topo_with_delay(seed=1)
        topo_a.producer.publish("/content/x")
        rtts_a = fetch_rtts(topo_a, [
            ("user", "/content/x", True),
            ("adv", "/content/x", False),
            ("adv", "/content/x", False),
        ])
        # World B: nobody requested before the adversary.
        topo_b = topo_with_delay(seed=1)
        topo_b.producer.publish("/content/x")
        rtts_b = fetch_rtts(topo_b, [
            ("adv", "/content/x", False),
            ("adv", "/content/x", False),
        ])
        # In world A the adversary's first probe is already served from
        # cache (fast); in world B it is a genuine miss.  The *second*
        # probe is a fast hit in both worlds: miss/hit vs hit/hit is the
        # unavoidable leak the paper accepts — but crucially, had the rule
        # delayed demoted content instead, world A would read
        # delayed/delayed and the leak would be total.
        assert rtts_a[2] == pytest.approx(rtts_b[1], abs=1.5)


class TestMutualMarkingOpaqueness:
    def test_unpredictable_names_need_no_router_support(self):
        """The mutual channel works through a *vanilla* router: privacy
        comes from the namespace, not from any router feature."""
        from repro.naming.unpredictable import make_unpredictable_name

        topo = local_lan(seed=2)  # NoPrivacyScheme — undefended router
        topo.producer.auto_generate = False  # only the published frame exists
        secret = b"pair-secret"
        frame = make_unpredictable_name(secret, "/content/session", 0)
        topo.producer.publish(frame, exact_match_only=True)
        results = []

        def proc():
            result = yield from topo.user.fetch(frame)
            results.append(result)
            yield Timeout(10.0)
            probe = yield from topo.adversary.fetch(
                "/content/session", timeout=200.0
            )
            results.append(probe)

        topo.engine.spawn(proc(), label="plan")
        topo.engine.run()
        assert results[0] is not None       # the insider fetches fine
        assert results[1] is None           # the prefix probe gets nothing
