"""Integration: the k-anonymity discussion of Section II.

"If multiple consumers share the same NDN router's cache, Adv cannot
determine exactly which or how many requested particular content" — the
cache reveals *that* content was fetched, not *who* fetched it.  The
paper then notes this is cold comfort when content or names identify the
consumer, or when 'was it fetched at all' is itself the secret.

These tests pin both halves: attribution ambiguity (the adversary's view
is bit-identical across which-user worlds) and the residual existence
leak (with per-user namespaces, attribution returns).
"""

from __future__ import annotations

import pytest

from repro.ndn.link import GaussianJitterDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry


def build_shared_router(seed: int, users: int = 3):
    net = Network(rng=RngRegistry(seed))
    net.add_router("R")
    net.add_producer("P", "/content")
    consumers = []
    for i in range(users):
        consumer = net.add_consumer(f"u{i}")
        net.connect(f"u{i}", "R", GaussianJitterDelay(1.8, 0.1))
        consumers.append(consumer)
    adversary = net.add_consumer("adv")
    net.connect("adv", "R", GaussianJitterDelay(1.8, 0.1))
    net.connect("R", "P", GaussianJitterDelay(3.0, 0.2))
    net.add_route("R", "/content", "P")
    return net, consumers, adversary


def adversary_view(seed: int, requester_index: int):
    """The adversary's probe RTTs when user `requester_index` fetched."""
    net, consumers, adversary = build_shared_router(seed)
    rtts = []

    def victim():
        result = yield from consumers[requester_index].fetch("/content/movie")
        assert result is not None

    def probe():
        yield Timeout(500.0)
        for _ in range(5):
            result = yield from adversary.fetch("/content/movie")
            rtts.append(result.rtt)
            yield Timeout(5.0)

    net.spawn(victim(), "victim")
    net.spawn(probe(), "probe")
    net.run()
    return rtts


class TestAttributionAmbiguity:
    def test_adversary_view_identical_across_requesters(self):
        """Shared-namespace content: the probe transcript is bit-identical
        no matter which of the k users fetched it — k-anonymity holds at
        the cache layer."""
        views = [adversary_view(seed=7, requester_index=i) for i in range(3)]
        assert views[0] == views[1] == views[2]

    def test_existence_still_leaks(self):
        """...but 'someone fetched it' is fully observable (the paper's
        point that k-anonymity may be insufficient)."""
        net, consumers, adversary = build_shared_router(seed=8)
        rtts = {}

        def probe_only():
            first = yield from adversary.fetch("/content/nobody-asked")
            rtts["cold"] = first.rtt

        net.spawn(probe_only(), "probe")
        net.run()
        hot_view = adversary_view(seed=8, requester_index=0)
        assert hot_view[0] < rtts["cold"] * 0.7


class TestPerUserNamespacesBreakAnonymity:
    def test_user_specific_names_attribute_requests(self):
        """When names identify the consumer (/content/mailbox/u1/...),
        the same cache probe attributes the request to a user — the
        paper's caveat that names/content can defeat k-anonymity."""
        net, consumers, adversary = build_shared_router(seed=9)
        verdicts = {}

        def victim():
            result = yield from consumers[1].fetch("/content/mailbox/u1/inbox")
            assert result is not None

        def probe():
            yield Timeout(500.0)
            for user in range(3):
                name = f"/content/mailbox/u{user}/inbox"
                first = yield from adversary.fetch(name)
                yield Timeout(5.0)
                second = yield from adversary.fetch(name)
                # Fast first fetch => was already cached => that user's
                # mailbox was recently synced.
                verdicts[user] = first.rtt < second.rtt * 1.5
                yield Timeout(5.0)

        net.spawn(victim(), "victim")
        net.spawn(probe(), "probe")
        net.run()
        assert verdicts[1] is True
        assert verdicts[0] is False
        assert verdicts[2] is False
