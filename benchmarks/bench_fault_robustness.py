"""Robustness benchmark — probe accuracy and delivery under faults.

Runs the Section III cache-probe attack and a plain fetch workload through
the :mod:`repro.faults` scenarios (i.i.d. loss, Gilbert–Elliott burst loss
at the same mean rate, random link flaps, router crash with CS flush) and
records how adversary accuracy, delivery ratio, hit rate and RTT degrade
relative to the fault-free baseline.

Shape targets: the LAN attack stays near-perfect on a clean network;
packet loss only *hurts* the adversary (retried probes read as misses);
a CS-flushing crash wipes the evidence and drags accuracy toward coin
flipping; retransmission keeps delivery high under every scenario.

Scale knobs: ``REPRO_BENCH_FAULT_TRIALS`` (attack trials per scenario,
default 3), ``REPRO_BENCH_FAULT_TARGETS`` (probe targets per trial,
default 24), ``REPRO_BENCH_FAULT_REQUESTS`` (fetches in the delivery
workload, default 400).  Results land in ``BENCH_fault_robustness.json``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.attacks.classifier import ThresholdClassifier
from repro.faults import (
    FaultSchedule,
    GilbertElliottLoss,
    IidLoss,
    RetryPolicy,
    RouterCrash,
    random_link_flaps,
)
from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.ndn.topology import local_lan
from repro.perf.timing import BenchReporter
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry
from repro.validation import InvariantChecker

FAULT_TRIALS = int(os.environ.get("REPRO_BENCH_FAULT_TRIALS", 3))
FAULT_TARGETS = int(os.environ.get("REPRO_BENCH_FAULT_TARGETS", 24))
FAULT_REQUESTS = int(os.environ.get("REPRO_BENCH_FAULT_REQUESTS", 400))

MEAN_LOSS = 0.05
BURST_LENGTH = 8.0

_REPORTER = BenchReporter(
    "fault_robustness",
    scale={
        "trials": FAULT_TRIALS,
        "targets": FAULT_TARGETS,
        "requests": FAULT_REQUESTS,
    },
)

RETRY = RetryPolicy(retries=5, timeout=60.0, backoff=2.0)


# ----------------------------------------------------------------------
# Scenario definitions (shared by both benchmarks)
# ----------------------------------------------------------------------
def _lossy(network, links, model_factory):
    for link in links:
        network.links[link].push_loss_model(model_factory())


def attack_scenarios():
    """name -> setup(topology) for the probe-accuracy benchmark."""

    def iid(topo):
        _lossy(topo.network, ["Adv<->R"], lambda: IidLoss(MEAN_LOSS))

    def burst(topo):
        _lossy(
            topo.network,
            ["Adv<->R"],
            lambda: GilbertElliottLoss.for_mean_loss(MEAN_LOSS, BURST_LENGTH),
        )

    def crash(topo):
        topo.network.apply_faults(
            FaultSchedule(
                [RouterCrash("R", at=600.0, restart_at=610.0, mode="flush")]
            )
        )

    return {
        "baseline": lambda topo: None,
        "iid-loss": iid,
        "burst-loss": burst,
        "crash-flush": crash,
    }


def delivery_scenarios():
    """name -> setup(network, horizon) for the delivery benchmark."""

    def iid(net, horizon):
        _lossy(net, ["c<->R"], lambda: IidLoss(MEAN_LOSS))

    def burst(net, horizon):
        _lossy(
            net,
            ["c<->R"],
            lambda: GilbertElliottLoss.for_mean_loss(MEAN_LOSS, BURST_LENGTH),
        )

    def flaps(net, horizon):
        schedule = random_link_flaps(
            net.rng.fork("flaps"),
            ["c<->R", "R<->p"],
            horizon=horizon,
            mean_uptime=800.0,
            mean_downtime=80.0,
        )
        net.apply_faults(schedule)

    def crash(net, horizon):
        net.apply_faults(
            FaultSchedule(
                [
                    RouterCrash(
                        "R",
                        at=horizon / 2,
                        restart_at=horizon / 2 + 100.0,
                        mode="flush",
                    )
                ]
            )
        )

    return {
        "baseline": lambda net, horizon: None,
        "iid-loss": iid,
        "burst-loss": burst,
        "link-flaps": flaps,
        "crash-flush": crash,
    }


# ----------------------------------------------------------------------
# Probe accuracy under faults
# ----------------------------------------------------------------------
def fault_attack_accuracy(setup, trials=FAULT_TRIALS, targets=FAULT_TARGETS,
                          base_seed=500):
    """attack_accuracy() generalized with fault setup + retrying fetches."""
    correct = total = 0
    for trial in range(trials):
        topo = local_lan(seed=base_seed + trial)
        setup(topo)
        prefix = str(topo.content_prefix)
        hot = [f"{prefix}/fault{trial}-hot-{i}" for i in range(targets // 2)]
        cold = [f"{prefix}/fault{trial}-cold-{i}" for i in range(targets // 2)]
        verdicts = []

        def user_proc():
            for name in hot:
                result = yield from topo.user.fetch(name, retry=RETRY)
                if result is None:
                    raise RuntimeError(f"user prefetch of {name} failed")
                yield Timeout(2.0)

        def adversary_proc():
            yield Timeout(500.0)
            adversary = topo.adversary
            reference = f"{prefix}/fault{trial}-ref"
            yield from adversary.fetch(reference, retry=RETRY)
            yield Timeout(5.0)
            ref_rtts = []
            for _ in range(5):
                result = yield from adversary.fetch(reference, retry=RETRY)
                if result is not None:
                    ref_rtts.append(result.rtt)
                yield Timeout(5.0)
            if len(ref_rtts) < 2:
                return  # reference unreachable: no verdicts this trial
            classifier = ThresholdClassifier.from_reference(ref_rtts)
            for target in hot + cold:
                result = yield from adversary.fetch(target, retry=RETRY)
                if result is not None:
                    verdicts.append((target, classifier.is_hit(result.rtt)))
                yield Timeout(5.0)

        topo.engine.spawn(user_proc(), label=f"user-{trial}")
        topo.engine.spawn(adversary_proc(), label=f"adv-{trial}")
        topo.engine.run()
        hot_set = set(hot)
        for target, decided_hit in verdicts:
            correct += int(decided_hit == (target in hot_set))
            total += 1
    return correct / total if total else 0.5


def test_probe_accuracy_under_faults(benchmark):
    scenarios = attack_scenarios()

    def run():
        return {
            name: fault_attack_accuracy(setup)
            for name, setup in scenarios.items()
        }

    accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, value in accuracy.items():
        print(f"  probe accuracy [{name:>12}]: {value:.3f}")
    _REPORTER.record(
        "probe_accuracy",
        benchmark.stats.stats.mean,
        requests=FAULT_TRIALS * FAULT_TARGETS * len(scenarios),
        accuracy={k: round(v, 4) for k, v in accuracy.items()},
    )
    _REPORTER.write()

    # Clean LAN: the paper's near-certain attack.
    assert accuracy["baseline"] > 0.9
    # Loss only hurts the adversary (inflated probe RTTs read as misses).
    assert accuracy["iid-loss"] <= accuracy["baseline"] + 0.05
    assert accuracy["burst-loss"] <= accuracy["baseline"] + 0.05
    assert accuracy["iid-loss"] >= 0.6
    assert accuracy["burst-loss"] >= 0.6
    # A CS flush destroys the cached evidence mid-probe.
    assert accuracy["crash-flush"] < accuracy["baseline"]
    assert accuracy["crash-flush"] >= 0.3


# ----------------------------------------------------------------------
# Delivery + hit-rate degradation
# ----------------------------------------------------------------------
def run_delivery_scenario(setup, seed=7, requests=FAULT_REQUESTS, objects=20,
                          gap=10.0):
    net = Network(rng=RngRegistry(seed))
    net.add_router("R", capacity=objects)
    net.add_consumer("c")
    net.add_producer("p", "/data")
    net.connect("c", "R", FixedDelay(1.0))
    net.connect("R", "p", FixedDelay(3.0))
    net.add_route("R", "/data", "p")
    horizon = requests * gap
    setup(net, horizon)
    outcomes = []
    latencies = []

    def proc():
        for i in range(requests):
            started = net.engine.now
            result = yield from net["c"].fetch(
                f"/data/obj-{i % objects}", retry=RETRY
            )
            outcomes.append(result is not None)
            if result is not None:
                # Includes retransmission backoff — unlike the per-attempt
                # RTT the consumer records.
                latencies.append(net.engine.now - started)
            yield Timeout(gap)

    net.spawn(proc(), "workload")
    # Conservation laws A-D must hold throughout every fault scenario,
    # not just on the happy path — crashes and flaps included.
    checker = InvariantChecker()
    checker.install(net, interval=horizon / 20, horizon=horizon)
    net.run()
    checker.assert_ok(net)
    router = net["R"].monitor
    hits = router.counter("cs_hit")
    misses = router.counter("cs_miss")
    return {
        "delivered": sum(outcomes) / len(outcomes),
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "mean_latency": float(np.mean(latencies)) if latencies else float("nan"),
        "retransmits": net["c"].monitor.counter("fetch_retransmits"),
        "link_lost": net.links["c<->R"].packets_lost,
        "link_dropped_down": net.links["c<->R"].packets_dropped_down,
    }


def test_delivery_under_faults(benchmark):
    scenarios = delivery_scenarios()

    def run():
        return {
            name: run_delivery_scenario(setup)
            for name, setup in scenarios.items()
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, row in stats.items():
        print(
            f"  [{name:>12}] delivered={row['delivered']:.3f} "
            f"hit_rate={row['hit_rate']:.3f} "
            f"latency={row['mean_latency']:.2f}ms "
            f"retransmits={row['retransmits']}"
        )
    _REPORTER.record(
        "delivery",
        benchmark.stats.stats.mean,
        requests=FAULT_REQUESTS * len(scenarios),
        scenarios={
            name: {k: round(float(v), 4) for k, v in row.items()}
            for name, row in stats.items()
        },
    )
    _REPORTER.write()

    baseline = stats["baseline"]
    assert baseline["delivered"] == 1.0
    assert baseline["retransmits"] == 0
    for name, row in stats.items():
        # Retransmission keeps delivery high under every scenario.
        assert row["delivered"] >= 0.9, name
    for name in ("iid-loss", "burst-loss", "link-flaps", "crash-flush"):
        assert stats[name]["retransmits"] > 0, name
    # Loss shows up in the loss counters; outages in the down counters.
    assert stats["iid-loss"]["link_lost"] > 0
    assert stats["burst-loss"]["link_lost"] > 0
    assert stats["link-flaps"]["link_dropped_down"] > 0
    # Losing packets costs latency; flushing the CS costs hit rate.
    assert stats["iid-loss"]["mean_latency"] > baseline["mean_latency"]
    assert stats["burst-loss"]["mean_latency"] > baseline["mean_latency"]
    assert stats["crash-flush"]["hit_rate"] < baseline["hit_rate"]
