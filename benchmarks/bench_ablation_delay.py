"""Ablation — artificial-delay policies (Section V-B).

The paper discusses three ways to pick the delay that disguises a cache
hit: constant γ, content-specific γ_C, and dynamic (popularity-decaying).
This bench quantifies their trade-off on a population of contents with
heterogeneous producer distances:

* **leak** — Bayes distinguishability between disguised-hit response
  times and genuine-miss response times (0.5 = perfectly hidden),
* **latency penalty** — mean extra delay imposed on cache hits relative
  to what an undefended cache would serve.

Constant γ either leaks for far content (γ too small) or over-delays
near content (γ too large); content-specific γ_C does neither — exactly
the paper's qualitative argument, here with numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.attacks.classifier import bayes_success
from repro.core.schemes.delay_policies import (
    ConstantDelay,
    ContentSpecificDelay,
    DynamicDelay,
)
from repro.ndn.cs import CacheEntry
from repro.ndn.name import Name
from repro.ndn.packets import Data

N_CONTENT = 400
JITTER_STD = 1.5


def _population(rng):
    """Contents with log-normal producer distances (5..200+ ms)."""
    entries = []
    for i in range(N_CONTENT):
        fetch_delay = 5.0 + 20.0 * rng.lognormal(0.8, 0.7)
        entry = CacheEntry(
            data=Data(name=Name.parse(f"/pop/obj-{i}"), private=True),
            insert_time=0.0,
            last_access=0.0,
            fetch_delay=float(fetch_delay),
            private=True,
        )
        entry.access_count = int(rng.integers(0, 20))
        entries.append(entry)
    return entries


def _evaluate(policy, entries, rng):
    """(leak, mean extra latency) of a policy over the population."""
    disguised = []
    genuine = []
    for entry in entries:
        jitter = rng.normal(0.0, JITTER_STD)
        disguised.append(policy.delay_for(entry, now=0.0) + jitter)
        genuine.append(entry.fetch_delay + rng.normal(0.0, JITTER_STD))
    leak = bayes_success(disguised, genuine, bins=40)
    penalty = float(np.mean([policy.delay_for(e, 0.0) for e in entries]))
    return leak, penalty


def test_delay_policy_ablation(benchmark):
    def sweep():
        rng = np.random.default_rng(17)
        entries = _population(rng)
        mean_fetch = float(np.mean([e.fetch_delay for e in entries]))
        rows = []
        for label, policy in [
            ("constant gamma=10ms (too low)", ConstantDelay(10.0)),
            (f"constant gamma={mean_fetch:.0f}ms (mean)", ConstantDelay(mean_fetch)),
            ("constant gamma=250ms (too high)", ConstantDelay(250.0)),
            ("content-specific gamma_C", ContentSpecificDelay()),
            ("dynamic (floor=8ms, decay=0.9)", DynamicDelay(floor=8.0, decay=0.9)),
        ]:
            leak, penalty = _evaluate(policy, entries, np.random.default_rng(18))
            rows.append([label, leak, penalty])
        return mean_fetch, rows

    mean_fetch, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["delay policy", "leak (bayes success)", "mean artificial delay ms"],
        rows,
        title=(
            f"Ablation: delay policies over {N_CONTENT} contents "
            f"(mean genuine fetch {mean_fetch:.0f} ms)"
        ),
    ))

    by_label = {label: (leak, penalty) for label, leak, penalty in rows}
    specific_leak, specific_penalty = by_label["content-specific gamma_C"]
    # Content-specific replay is (near) perfectly hidden.
    assert specific_leak < 0.62
    # Every constant-γ choice leaks substantially more.
    for label, (leak, _pen) in by_label.items():
        if label.startswith("constant"):
            assert leak > specific_leak + 0.1
    # The too-high constant pays ~3x the latency of the faithful replay.
    assert by_label["constant gamma=250ms (too high)"][1] > 2 * specific_penalty
    # Dynamic trades a bounded leak for lower average delay.
    dynamic_leak, dynamic_penalty = by_label["dynamic (floor=8ms, decay=0.9)"]
    assert dynamic_penalty < specific_penalty
    assert dynamic_leak > specific_leak
