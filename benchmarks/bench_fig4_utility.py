"""Figure 4 — utility of Uniform- vs Exponential-Random-Cache.

(a) u(c) for c in [1, 100] at δ = 0.05, k ∈ {1, 5}, exponential curves at
    ε ∈ {0.03, 0.04, 0.05} — the exponential scheme dominates uniform.
(b) max utility difference at ε = −ln(1−δ) for δ ∈ {0.01, 0.03, 0.05} —
    the paper's "up to 12% performance gain".

The closed forms are cross-checked against Monte-Carlo runs of the actual
scheme implementations in the same bench.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_fig4a, run_fig4b
from repro.core.privacy.empirical import estimate_utility
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.uniform import UniformRandomCache


@pytest.mark.parametrize("k", [1, 5])
def test_fig4a(benchmark, k):
    result = benchmark.pedantic(
        run_fig4a, args=(k,), kwargs={"delta": 0.05}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    # Shape assertions: exponential >= uniform everywhere; u increasing.
    for _eps, (_alpha, _K, utilities) in result.exponential.items():
        assert all(
            e >= u - 1e-9 for e, u in zip(utilities, result.uniform_utilities)
        )
    u = result.uniform_utilities
    assert all(a <= b + 1e-12 for a, b in zip(u, u[1:]))


@pytest.mark.parametrize("k", [1, 5])
def test_fig4b(benchmark, k):
    result = benchmark.pedantic(run_fig4b, args=(k,), rounds=1, iterations=1)
    print()
    print(result.render())
    peaks = {delta: result.max_difference(delta) for delta in (0.01, 0.03, 0.05)}
    print(f"peak differences (k={k}): "
          + ", ".join(f"delta={d}: {p:.4f}" for d, p in sorted(peaks.items())))
    # Paper: exponential gains up to ~12%; ordering increases with delta.
    assert peaks[0.01] < peaks[0.03] < peaks[0.05]
    if k == 1:
        assert 0.10 < peaks[0.05] < 0.14


def test_fig4_monte_carlo_crosscheck(benchmark):
    """Theorems VI.2/VI.4 vs 20000-trial simulation of the real schemes."""
    from repro.core.privacy.utility import exponential_utility, uniform_utility

    def crosscheck():
        rows = []
        for c in (5, 20, 60):
            measured_uni = estimate_utility(
                lambda rng: UniformRandomCache(K=40, rng=rng), c=c, trials=20000
            )
            rows.append(("uniform(K=40)", c, uniform_utility(c, 40), measured_uni))
            measured_expo = estimate_utility(
                lambda rng: ExponentialRandomCache(alpha=0.95, K=88, rng=rng),
                c=c, trials=20000,
            )
            rows.append(
                ("expo(a=0.95,K=88)", c, exponential_utility(c, 0.95, 88),
                 measured_expo)
            )
        return rows

    rows = benchmark.pedantic(crosscheck, rounds=1, iterations=1)
    print(f"\n{'scheme':<20} {'c':>4} {'theorem':>10} {'measured':>10}")
    for scheme, c, theory, measured in rows:
        print(f"{scheme:<20} {c:>4} {theory:>10.4f} {measured:>10.4f}")
        assert measured == pytest.approx(theory, abs=0.01)
