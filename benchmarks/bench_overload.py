"""Overload benchmark — bounded forwarding vs interest flooding.

Pits an interest flood (distinct never-answered names, PIT exhaustion)
and a cache-pollution attack against two router configurations:

* the **unbounded baseline** the paper assumes — the flood drives the
  PIT to ~``lifetime / interval`` dangling entries,
* the **hardened** configuration — a capacity-bounded PIT
  (evict-oldest-expiry), per-face token-bucket admission control, and
  Nack-based congestion pushback into the consumers' retry loops.

Shape targets: the flood pushes the baseline PIT past 10x the bounded
capacity, while the hardened router keeps legitimate delivery >= 0.9 and
holds its PIT at the cap.  Every scenario runs under the
:class:`~repro.validation.InvariantChecker` (conservation laws A-D must
hold throughout), and the fast-replay kernel must stay bit-identical to
the oracle across the fig5-style scheme grid.

Scale knobs: ``REPRO_BENCH_OVERLOAD_FETCHES`` (legitimate fetches per
scenario, default 200), ``REPRO_BENCH_OVERLOAD_PIT_CAP`` (bounded PIT
capacity, default 64), ``REPRO_BENCH_OVERLOAD_FLOOD_INTERVAL`` (ms
between flood interests, default 2.0), ``REPRO_BENCH_OVERLOAD_REQUESTS``
(differential trace length, default 2000).  Results land in
``BENCH_overload.json`` (with process peak RSS alongside wall time).
"""

from __future__ import annotations

import os

from repro.attacks.classifier import ThresholdClassifier
from repro.faults.retry import RetryPolicy
from repro.ndn.admission import InterestRateLimit
from repro.ndn.topology import local_lan
from repro.perf.timing import BenchReporter
from repro.sim.process import Timeout
from repro.validation import (
    InvariantChecker,
    run_overload_scenario,
    validate_differential,
)
from repro.validation.differential import small_validation_trace

OVERLOAD_FETCHES = int(os.environ.get("REPRO_BENCH_OVERLOAD_FETCHES", 200))
OVERLOAD_PIT_CAP = int(os.environ.get("REPRO_BENCH_OVERLOAD_PIT_CAP", 64))
OVERLOAD_FLOOD_INTERVAL = float(
    os.environ.get("REPRO_BENCH_OVERLOAD_FLOOD_INTERVAL", 2.0)
)
OVERLOAD_REQUESTS = int(os.environ.get("REPRO_BENCH_OVERLOAD_REQUESTS", 2000))

RATE_LIMIT = InterestRateLimit(rate=200.0, burst=50.0)

_REPORTER = BenchReporter(
    "overload",
    scale={
        "fetches": OVERLOAD_FETCHES,
        "pit_capacity": OVERLOAD_PIT_CAP,
        "flood_interval": OVERLOAD_FLOOD_INTERVAL,
        "differential_requests": OVERLOAD_REQUESTS,
    },
)


def _scenario(**kwargs):
    return run_overload_scenario(
        fetches=OVERLOAD_FETCHES,
        flood_interval=OVERLOAD_FLOOD_INTERVAL,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Flood: unbounded baseline vs hardened router
# ----------------------------------------------------------------------
def test_flood_bounded_vs_unbounded(benchmark):
    def run():
        return {
            "unbounded": _scenario(pit_capacity=None),
            "bounded": _scenario(
                pit_capacity=OVERLOAD_PIT_CAP,
                pit_overflow="evict-oldest-expiry",
                rate_limit=RATE_LIMIT,
            ),
            "bounded-drop-new": _scenario(
                pit_capacity=OVERLOAD_PIT_CAP,
                pit_overflow="drop-new",
                rate_limit=RATE_LIMIT,
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, res in results.items():
        print(
            f"  [{name:>16}] delivery={res.delivery_rate:.3f} "
            f"peak_pit={res.peak_pit_size} "
            f"nacks_out={int(res.router_summary['nack_out'])} "
            f"rate_limited={int(res.router_summary['rate_limited'])}"
        )
    _REPORTER.record(
        "flood",
        benchmark.stats.stats.mean,
        events=sum(res.events for res in results.values()),
        scenarios={
            name: {
                "delivery": round(res.delivery_rate, 4),
                "peak_pit": res.peak_pit_size,
                "invariant_checks": res.checker.checks_run,
                "violations": len(res.checker.violations),
            }
            for name, res in results.items()
        },
    )
    _REPORTER.write()

    # The invariant checker ran and found nothing, in every scenario.
    for name, res in results.items():
        assert res.checker.checks_run > 0, name
        res.checker.assert_ok()

    baseline, bounded = results["unbounded"], results["bounded"]
    # The flood drives the unbounded PIT past 10x the bounded capacity...
    assert baseline.peak_pit_size > 10 * OVERLOAD_PIT_CAP
    # ...while the bounded table never exceeds its cap.
    assert bounded.peak_pit_size <= OVERLOAD_PIT_CAP
    assert results["bounded-drop-new"].peak_pit_size <= OVERLOAD_PIT_CAP
    # The hardened router sustains legitimate delivery through the attack.
    assert bounded.delivery_rate >= 0.9
    # Congestion was signaled, not silently swallowed.
    assert bounded.router_summary["nack_out"] > 0


# ----------------------------------------------------------------------
# Cache pollution riding on the flood
# ----------------------------------------------------------------------
def test_pollution_churns_but_delivery_holds(benchmark):
    def run():
        return {
            "flood-only": _scenario(
                pit_capacity=OVERLOAD_PIT_CAP,
                pit_overflow="evict-oldest-expiry",
                rate_limit=RATE_LIMIT,
            ),
            "flood+pollution": _scenario(
                pit_capacity=OVERLOAD_PIT_CAP,
                pit_overflow="evict-oldest-expiry",
                rate_limit=RATE_LIMIT,
                pollution=True,
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, res in results.items():
        print(
            f"  [{name:>16}] delivery={res.delivery_rate:.3f} "
            f"cs_evictions={int(res.router_summary['cs_evictions'])}"
        )
    _REPORTER.record(
        "pollution",
        benchmark.stats.stats.mean,
        events=sum(res.events for res in results.values()),
        scenarios={
            name: {
                "delivery": round(res.delivery_rate, 4),
                "cs_evictions": int(res.router_summary["cs_evictions"]),
                "violations": len(res.checker.violations),
            }
            for name, res in results.items()
        },
    )
    _REPORTER.write()

    for name, res in results.items():
        res.checker.assert_ok()
    clean, polluted = results["flood-only"], results["flood+pollution"]
    # Pollution visibly churns the CS...
    assert (
        polluted.router_summary["cs_evictions"]
        > clean.router_summary["cs_evictions"]
    )
    # ...but retransmission keeps legitimate delivery acceptable.
    assert polluted.delivery_rate >= 0.9


# ----------------------------------------------------------------------
# Invariants hold on the fig3-style attack topology too
# ----------------------------------------------------------------------
def test_invariants_on_attack_topology(benchmark):
    def run():
        topo = local_lan(seed=11)
        checker = InvariantChecker()
        retry = RetryPolicy(retries=3, timeout=80.0, backoff=2.0)
        prefix = str(topo.content_prefix)
        verdicts = []

        def user_proc():
            for i in range(16):
                result = yield from topo.user.fetch(
                    f"{prefix}/inv-hot-{i}", retry=retry
                )
                assert result is not None
                yield Timeout(2.0)

        def adversary_proc():
            yield Timeout(200.0)
            ref_rtts = []
            yield from topo.adversary.fetch(f"{prefix}/inv-ref", retry=retry)
            for _ in range(5):
                result = yield from topo.adversary.fetch(
                    f"{prefix}/inv-ref", retry=retry
                )
                if result is not None:
                    ref_rtts.append(result.rtt)
                yield Timeout(5.0)
            classifier = ThresholdClassifier.from_reference(ref_rtts)
            for i in range(16):
                result = yield from topo.adversary.fetch(
                    f"{prefix}/inv-hot-{i}", retry=retry
                )
                if result is not None:
                    verdicts.append(classifier.is_hit(result.rtt))
                yield Timeout(5.0)

        topo.engine.spawn(user_proc(), label="user")
        topo.engine.spawn(adversary_proc(), label="adv")
        checker.install(topo.network, interval=100.0, horizon=2000.0)
        topo.engine.run()
        checker.check_network(topo.network)
        return checker, verdicts

    (checker, verdicts) = benchmark.pedantic(run, rounds=1, iterations=1)
    _REPORTER.record(
        "attack_topology_invariants",
        benchmark.stats.stats.mean,
        checks=checker.checks_run,
        violations=len(checker.violations),
    )
    _REPORTER.write()
    assert checker.checks_run > 0
    checker.assert_ok()
    # The probe attack still works on the clean LAN (sanity anchor).
    assert sum(verdicts) >= 0.9 * len(verdicts)


# ----------------------------------------------------------------------
# Differential: fast kernel bit-identical to the oracle
# ----------------------------------------------------------------------
def test_differential_parity(benchmark):
    trace = small_validation_trace(requests=OVERLOAD_REQUESTS, seed=3)

    def run():
        return validate_differential(trace=trace, seed=3)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  " + report.summary().replace("\n", "\n  "))
    _REPORTER.record(
        "differential",
        benchmark.stats.stats.mean,
        requests=OVERLOAD_REQUESTS * len(report.results) * 2,
        configs=len(report.results),
        ok=report.ok,
    )
    _REPORTER.write()
    assert report.ok, report.summary()
