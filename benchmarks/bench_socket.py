"""Socket-mode benchmark — loopback latency and sustained throughput.

Measures the real-socket deployment path end to end: an
:class:`~repro.deploy.endpoints.AsyncConsumer` fetching through a
:class:`~repro.deploy.daemon.ForwarderDaemon` (UDP faces, TLV codec,
real-time engine) to an auto-generating producer, all on loopback.

Two quantities per privacy scheme (``no-privacy`` vs ``uniform``):

* **latency percentiles** — p50/p90/p99 RTT of sequential fetches over a
  small hot catalog, so the mix includes CS hits (and, under ``uniform``,
  delayed disguised hits — the scheme's privacy delay is visible in the
  tail);
* **sustained throughput** — distinct-name fetches with a bounded
  in-flight window, reported as interests/s.

Scale knobs: ``REPRO_BENCH_SOCKET_FETCHES`` (sequential latency fetches,
default 150), ``REPRO_BENCH_SOCKET_FLOOD`` (throughput fetches, default
300), ``REPRO_BENCH_SOCKET_WINDOW`` (in-flight window, default 32).
Results land in ``BENCH_socket.json`` (schema v2: git_rev + peak RSS).
"""

from __future__ import annotations

import asyncio
import os

import numpy as np

from repro.deploy.daemon import DaemonConfig, ForwarderDaemon
from repro.deploy.endpoints import AsyncConsumer, AsyncProducer
from repro.faults.retry import RetryPolicy
from repro.perf.timing import BenchReporter

SOCKET_FETCHES = int(os.environ.get("REPRO_BENCH_SOCKET_FETCHES", 150))
SOCKET_FLOOD = int(os.environ.get("REPRO_BENCH_SOCKET_FLOOD", 300))
SOCKET_WINDOW = int(os.environ.get("REPRO_BENCH_SOCKET_WINDOW", 32))
CATALOG = 16
SCHEMES = ("no-privacy", "uniform")

_REPORTER = BenchReporter(
    "socket",
    scale={
        "latency_fetches": SOCKET_FETCHES,
        "throughput_fetches": SOCKET_FLOOD,
        "window": SOCKET_WINDOW,
        "catalog": CATALOG,
    },
)

#: Generous per-fetch budget — loopback RTTs are sub-millisecond, but CI
#: runners stall; a timeout would poison the percentiles with retries.
ONE_SHOT = RetryPolicy(retries=0, timeout=5000.0, backoff=1.0)


class _Rig:
    """One daemon + consumer + producer wired up on loopback."""

    def __init__(self, daemon, consumer, producer):
        self.daemon = daemon
        self.consumer = consumer
        self.producer = producer

    @classmethod
    async def create(cls, scheme: str) -> "_Rig":
        daemon = ForwarderDaemon(
            DaemonConfig(name="bench", scheme=scheme, seed=42)
        )
        await daemon.start()
        consumer_face = await daemon.add_udp_face(label="bench:consumer")
        producer_face = await daemon.add_udp_face(label="bench:producer")
        consumer = AsyncConsumer(daemon.engine, name="bench-user")
        await consumer.attach(peer=consumer_face.local_addr)
        consumer_face.set_peer(consumer.face.local_addr)
        producer = AsyncProducer(
            daemon.engine, prefix="/bench", producer_id="bench-origin"
        )
        await producer.attach(peer=producer_face.local_addr)
        producer_face.set_peer(producer.face.local_addr)
        daemon.add_route("/bench", producer_face.face_id)
        return cls(daemon, consumer, producer)

    async def close(self) -> None:
        await self.consumer.close()
        await self.producer.close()
        await self.daemon.stop()


async def _latency_run(scheme: str) -> dict:
    rig = await _Rig.create(scheme)
    try:
        rtts = []
        failures = 0
        for i in range(SOCKET_FETCHES):
            got = await rig.consumer.fetch_or_none(
                f"/bench/hot-{i % CATALOG}", retry=ONE_SHOT
            )
            if got is None:
                failures += 1
            else:
                rtts.append(got.rtt)
        counters = dict(rig.daemon.forwarder.monitor.counters)
    finally:
        await rig.close()
    arr = np.asarray(rtts, dtype=float)
    return {
        "rtts_ms": arr,
        "failures": failures,
        "p50_ms": float(np.percentile(arr, 50)) if len(arr) else 0.0,
        "p90_ms": float(np.percentile(arr, 90)) if len(arr) else 0.0,
        "p99_ms": float(np.percentile(arr, 99)) if len(arr) else 0.0,
        "cs_hits": counters.get("cs_hit", 0)
        + counters.get("cs_disguised_hit", 0),
        "cs_misses": counters.get("cs_miss", 0)
        + counters.get("cs_forced_miss", 0),
    }


async def _throughput_run(scheme: str) -> dict:
    rig = await _Rig.create(scheme)
    try:
        window = asyncio.Semaphore(SOCKET_WINDOW)

        async def one(i: int):
            async with window:
                return await rig.consumer.fetch_or_none(
                    f"/bench/flood-{i}", retry=ONE_SHOT
                )

        start = asyncio.get_running_loop().time()
        results = await asyncio.gather(*(one(i) for i in range(SOCKET_FLOOD)))
        wall_s = asyncio.get_running_loop().time() - start
    finally:
        await rig.close()
    served = sum(1 for r in results if r is not None)
    return {
        "wall_s": wall_s,
        "served": served,
        "failed": SOCKET_FLOOD - served,
        "interests_per_sec": served / wall_s if wall_s > 0 else 0.0,
    }


def test_loopback_latency_percentiles(benchmark):
    def run():
        return {
            scheme: asyncio.run(_latency_run(scheme)) for scheme in SCHEMES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for scheme, res in results.items():
        print(
            f"  [{scheme:>12}] p50={res['p50_ms']:.3f}ms "
            f"p90={res['p90_ms']:.3f}ms p99={res['p99_ms']:.3f}ms "
            f"hits={res['cs_hits']} misses={res['cs_misses']}"
        )
    _REPORTER.record(
        "latency",
        benchmark.stats.stats.mean,
        requests=SOCKET_FETCHES * len(SCHEMES),
        schemes={
            scheme: {
                "p50_ms": round(res["p50_ms"], 4),
                "p90_ms": round(res["p90_ms"], 4),
                "p99_ms": round(res["p99_ms"], 4),
                "cs_hits": res["cs_hits"],
                "cs_misses": res["cs_misses"],
                "failures": res["failures"],
            }
            for scheme, res in results.items()
        },
    )
    _REPORTER.write()

    for scheme, res in results.items():
        assert res["failures"] == 0, f"{scheme}: {res['failures']} failures"
        assert len(res["rtts_ms"]) == SOCKET_FETCHES
        assert (res["rtts_ms"] > 0.0).all()
        # The hot catalog is smaller than the fetch count: the CS served
        # a real share of the workload, so hits are in the percentiles.
        assert res["cs_hits"] > 0
    # Loopback through one forwarder: median stays well under the kind of
    # RTT a timeout/retry would produce (generous for busy CI runners).
    assert results["no-privacy"]["p50_ms"] < 250.0


def test_sustained_interest_throughput(benchmark):
    def run():
        return {
            scheme: asyncio.run(_throughput_run(scheme)) for scheme in SCHEMES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for scheme, res in results.items():
        print(
            f"  [{scheme:>12}] {res['interests_per_sec']:,.0f} interests/s "
            f"(served {res['served']}/{SOCKET_FLOOD} in {res['wall_s']:.2f}s)"
        )
    _REPORTER.record(
        "throughput",
        benchmark.stats.stats.mean,
        requests=sum(res["served"] for res in results.values()),
        schemes={
            scheme: {
                "interests_per_sec": round(res["interests_per_sec"], 1),
                "served": res["served"],
                "failed": res["failed"],
                "window": SOCKET_WINDOW,
            }
            for scheme, res in results.items()
        },
    )
    _REPORTER.write()

    for scheme, res in results.items():
        assert res["failed"] == 0, f"{scheme}: {res['failed']} fetches failed"
        # Distinct names all the way through a real UDP forwarder: even a
        # loaded CI box clears a conservative floor.
        assert res["interests_per_sec"] > 50.0, scheme
