"""Perf — packet-level simulator core throughput (the full-topology fast path).

Measures raw packet-hops/sec on two canonical topologies (a 16-consumer
star and a 3-level tree, :mod:`repro.perf.simcore`) plus the end-to-end
wall time of the Figure-3 LAN panel, and emits ``BENCH_sim_core.json``.
The same workloads also run on the struct-of-arrays batch kernel
(:mod:`repro.sim.batch`) and are recorded as ``star_batch`` /
``tree_batch`` — bit-identical observable counts, compared against the
same pinned pre-optimisation baselines.

The ``baseline_*`` meta fields pin the pre-optimisation numbers measured
at the commit immediately before the fast path landed (interned names,
memoised FIB LPM, tuple-based event lane, arithmetic wire sizes), on the
same development container, so the recorded ``speedup_vs_baseline`` is an
apples-to-apples before/after at identical scale.  Because absolute
wall-clock depends on the host, the hard assertions here are the
*determinism* contract — the optimised core must produce exactly the
same packet/event counts as the baseline run did — plus a loose sanity
floor on throughput: the batch kernel must clear 5x the pinned baseline
hops/sec unconditionally.  Set ``REPRO_BENCH_SIMCORE_ASSERT=1`` (used
when benching on the reference container) to also enforce the full
speedup targets: >=3x packet-hops/sec on the reference fast path, >=2x
on the fig3 LAN panel, and >=10x for the batch kernel.
"""

from __future__ import annotations

import os
import time

from repro.analysis.experiments import run_fig3
from repro.perf.simcore import run_star, run_star_batch, run_tree, run_tree_batch
from repro.perf.timing import BenchReporter

#: Pre-fast-path numbers (best of 3) at the scales used below.
BASELINE = {
    "star": {"wall_s": 0.452, "hops": 6528, "events": 6592, "hops_per_sec": 14_440},
    "tree": {"wall_s": 0.171, "hops": 2848, "events": 3072, "hops_per_sec": 16_638},
    "fig3a_lan": {"wall_s": 0.327},
}

#: Expected observable counts — the bit-identity contract at default scale.
EXPECTED = {
    "star": {"hops": 6528, "events": 6592, "delivered": 3200, "cache_hits": 2960},
    "tree": {"hops": 2848, "events": 3072, "delivered": 1200, "cache_hits": 1113},
}

STRICT = bool(os.environ.get("REPRO_BENCH_SIMCORE_ASSERT"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SIMCORE_ROUNDS", "3"))


def _best(runner, rounds: int = ROUNDS):
    """Best-of-N run (wall-clock noise floor; counts are identical)."""
    best = None
    for _ in range(rounds):
        result = runner()
        if best is None or result.wall_s < best.wall_s:
            best = result
    return best


def test_sim_core_throughput(benchmark):
    run_star(consumers=4, requests_per_consumer=20)  # warm caches/imports

    star = _best(run_star)
    tree = _best(run_tree)
    star_batch = _best(run_star_batch)
    tree_batch = _best(run_tree_batch)

    fig3_best = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        run_fig3("fig3a_lan", objects_per_trial=60, trials=6)
        wall = time.perf_counter() - t0
        fig3_best = wall if fig3_best is None or wall < fig3_best else fig3_best

    # Benchmark the star topology properly for the pytest-benchmark table.
    benchmark.pedantic(run_star, rounds=1, iterations=1)

    reporter = BenchReporter(
        "sim_core",
        scale={
            "star_consumers": 16,
            "star_requests_per_consumer": 200,
            "tree_requests_per_consumer": 150,
            "fig3_objects": 60,
            "fig3_trials": 6,
        },
    )
    for label, base_label, result in (
        ("star", "star", star),
        ("tree", "tree", tree),
        ("star_batch", "star", star_batch),
        ("tree_batch", "tree", tree_batch),
    ):
        base = BASELINE[base_label]
        reporter.record(
            label,
            result.wall_s,
            requests=result.requests,
            events=result.events,
            packet_hops=result.packet_hops,
            hops_per_sec=round(result.hops_per_sec, 1),
            delivered=result.delivered,
            cache_hits=result.cache_hits,
            baseline_wall_s=base["wall_s"],
            baseline_hops_per_sec=base["hops_per_sec"],
            speedup_vs_baseline=round(
                result.hops_per_sec / base["hops_per_sec"], 2
            ),
        )
    reporter.record(
        "fig3a_lan_end_to_end",
        fig3_best,
        baseline_wall_s=BASELINE["fig3a_lan"]["wall_s"],
        speedup_vs_baseline=round(BASELINE["fig3a_lan"]["wall_s"] / fig3_best, 2),
    )
    path = reporter.write()
    print()
    print(
        f"star {star.hops_per_sec:,.0f} hops/s, tree {tree.hops_per_sec:,.0f} "
        f"hops/s, batch star {star_batch.hops_per_sec:,.0f} hops/s, "
        f"batch tree {tree_batch.hops_per_sec:,.0f} hops/s, "
        f"fig3a_lan {fig3_best:.3f}s ({path})"
    )

    # Bit-identity: neither fast path may change any observable count.
    for label, result in (
        ("star", star),
        ("tree", tree),
        ("star", star_batch),
        ("tree", tree_batch),
    ):
        expected = EXPECTED[label]
        assert result.packet_hops == expected["hops"]
        assert result.events == expected["events"]
        assert result.delivered == expected["delivered"] == result.requests
        assert result.cache_hits == expected["cache_hits"]

    # The batch kernel must clear 5x baseline even on noisy hosts.
    assert star_batch.hops_per_sec >= 5 * BASELINE["star"]["hops_per_sec"]
    assert tree_batch.hops_per_sec >= 5 * BASELINE["tree"]["hops_per_sec"]

    if STRICT:
        assert star.hops_per_sec >= 3 * BASELINE["star"]["hops_per_sec"]
        assert tree.hops_per_sec >= 3 * BASELINE["tree"]["hops_per_sec"]
        assert fig3_best <= BASELINE["fig3a_lan"]["wall_s"] / 2
        assert star_batch.hops_per_sec >= 10 * BASELINE["star"]["hops_per_sec"]
        assert tree_batch.hops_per_sec >= 10 * BASELINE["tree"]["hops_per_sec"]
