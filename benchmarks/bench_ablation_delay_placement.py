"""Ablation — which routers introduce artificial delays (Section V-B).

The paper argues for delaying only at *consumer-facing* routers ("those
most likely to be probed") and defers the analysis (footnote 6).  This
bench measures the tradeoff on a chain

    consumer/adversary -- R1 -- R2 -- R3 -- producer

with private content and three placements: no delays, delays at R1 only,
delays at every router.  Quantities:

* **edge privacy** — RTT distinguishability of R1-cached vs uncached
  private content, probed from the consumer edge (the paper's main
  threat),
* **depth privacy** — distinguishability of "cached deeper at R2/R3, but
  evicted from R1" vs "not cached anywhere": consumer-facing-only delays
  leak this (the probe returns at R2's distance, faster than the
  producer),
* **latency** — what a legitimate consumer pays to re-fetch content that
  fell out of R1 but survives at R2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.attacks.classifier import bayes_success
from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.ndn.link import GaussianJitterDelay
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.sim.process import Timeout

N_OBJECTS = 40


def build_chain(placement: str, seed: int):
    """placement: 'none' | 'edge' (R1 only) | 'all'."""
    net = Network()
    from repro.sim.rng import RngRegistry

    net.rng = RngRegistry(seed)

    def scheme_for(router_name):
        if placement == "all":
            return AlwaysDelayScheme()
        if placement == "edge" and router_name == "R1":
            return AlwaysDelayScheme()
        return NoPrivacyScheme()

    for name in ("R1", "R2", "R3"):
        net.add_router(name, scheme=scheme_for(name))
    consumer = net.add_consumer("c")
    adversary = net.add_consumer("adv")
    producer = net.add_producer("p", "/content", private=True)
    link = lambda base: GaussianJitterDelay(base=base, jitter_std=0.08)  # noqa: E731
    net.connect("c", "R1", link(1.0))
    net.connect("adv", "R1", link(1.0))
    net.connect("R1", "R2", link(3.0))
    net.connect("R2", "R3", link(3.0))
    net.connect("R3", "p", link(3.0))
    net.add_route_chain("/content", "R1", "R2", "R3", "p")
    return net, consumer, adversary


def _measure(placement: str):
    """Returns (edge_leak, depth_leak, refetch_latency_ms)."""
    edge_cached, edge_cold = [], []
    depth_cached, depth_cold = [], []
    refetch_latencies = []
    for trial in range(4):
        net, consumer, adversary = build_chain(placement, seed=500 + trial)
        r1 = net["R1"]
        hot = [f"/content/t{trial}-hot-{i}" for i in range(N_OBJECTS)]
        cold = [f"/content/t{trial}-cold-{i}" for i in range(N_OBJECTS)]
        deep = [f"/content/t{trial}-deep-{i}" for i in range(N_OBJECTS)]
        quiet = [f"/content/t{trial}-quiet-{i}" for i in range(N_OBJECTS)]

        def scenario():
            # Victim populates every router with `hot` and `deep`.
            for name in hot + deep:
                result = yield from consumer.fetch(name, private=True)
                assert result is not None
                yield Timeout(2.0)
            # `deep` falls out of R1 only (simulating edge eviction).
            for name in deep:
                r1.cs.remove(Name.parse(name))
            yield Timeout(50.0)
            # Edge privacy: probe hot (R1-cached) vs cold (nowhere).
            for name, sink in [(n, edge_cached) for n in hot] + [
                (n, edge_cold) for n in cold
            ]:
                result = yield from adversary.fetch(name, private=True)
                sink.append(result.rtt)
                yield Timeout(2.0)
            # Depth privacy: probe deep (R2-cached) vs quiet (nowhere).
            for name, sink in [(n, depth_cached) for n in deep] + [
                (n, depth_cold) for n in quiet
            ]:
                result = yield from adversary.fetch(name, private=True)
                sink.append(result.rtt)
                yield Timeout(2.0)
            # Legitimate latency: consumer re-fetches one edge-evicted item.
            r1.cs.remove(Name.parse(f"/content/t{trial}-hot-0"))
            result = yield from consumer.fetch(
                f"/content/t{trial}-hot-0", private=True
            )
            refetch_latencies.append(result.rtt)

        net.spawn(scenario(), "scenario")
        net.run()
    return (
        bayes_success(edge_cached, edge_cold, bins=25),
        bayes_success(depth_cached, depth_cold, bins=25),
        float(np.mean(refetch_latencies)),
    )


def test_delay_placement_ablation(benchmark):
    def sweep():
        return {p: _measure(p) for p in ("none", "edge", "all")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [placement, edge, depth, latency]
        for placement, (edge, depth, latency) in results.items()
    ]
    print()
    print(format_table(
        ["delay placement", "edge leak (bayes)", "depth leak (bayes)",
         "refetch latency ms"],
        rows,
        title="Ablation: which routers delay private cache hits (footnote 6)",
    ))

    none_edge, none_depth, none_lat = results["none"]
    edge_edge, edge_depth, edge_lat = results["edge"]
    all_edge, all_depth, all_lat = results["all"]

    # Undefended: both oracles wide open.
    assert none_edge > 0.95 and none_depth > 0.95
    # Edge-only placement closes the primary (consumer-facing) oracle...
    assert edge_edge < 0.75
    # ...but leaks the deeper-cache signal the paper's footnote worries
    # about: R2-cached content returns visibly faster than uncached.
    assert edge_depth > 0.9
    # Delaying everywhere closes both oracles...
    assert all_edge < 0.75 and all_depth < 0.75
    # ...at the cost of full-path latency on every re-fetch, where the
    # edge-only deployment recovers from R2 quickly.
    assert all_lat > edge_lat + 3.0
