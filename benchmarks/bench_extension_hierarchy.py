"""Extension — privacy placement in an edge/core cache hierarchy.

Trace-scale companion to the packet-level footnote-6 ablation: replay the
IRCache-style workload through an edge (small, consumer-facing) and core
(large) cache, with Always-Delay deployed (a) nowhere, (b) at the edge
only — the paper's recommendation — and (c) everywhere.  Reports
per-level observable hit rates and mean end-to-end latency.

Expected shape: edge-only placement zeroes the *edge's* observable
private hits (the probed oracle) while core hits still accelerate private
re-fetches, keeping latency well below the delay-everywhere deployment.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.workload.hierarchy import LevelConfig, replay_hierarchy
from repro.workload.marking import ContentMarking


def levels(placement: str):
    def scheme_for(level):
        if placement == "all":
            return AlwaysDelayScheme()
        if placement == "edge" and level == "edge":
            return AlwaysDelayScheme()
        return None

    return [
        LevelConfig("edge", cache_size=2000, scheme=scheme_for("edge"),
                    link_delay=1.0),
        LevelConfig("core", cache_size=16000, scheme=scheme_for("core"),
                    link_delay=6.0),
    ]


def test_hierarchy_placement(benchmark, ircache_trace):
    def sweep():
        rows = []
        for placement in ("none", "edge", "all"):
            stats = replay_hierarchy(
                ircache_trace,
                levels(placement),
                marking=ContentMarking(1.0),  # all-private: worst case
                origin_delay=40.0,
            )
            rows.append([
                placement,
                100 * stats.hit_rate("edge"),
                100 * stats.hit_rate("core"),
                100 * stats.origin_fetches / stats.requests,
                stats.mean_latency,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["delay placement", "edge hits %", "core hits %", "origin %",
         "mean latency ms"],
        rows,
        title=(
            "Extension: Always-Delay placement in an edge(2k)/core(16k) "
            "hierarchy, all traffic private"
        ),
    ))
    by = {r[0]: r for r in rows}
    # Undefended: both levels serve observable hits.
    assert by["none"][1] > 0 and by["none"][2] > 0
    # Edge-only: the probed oracle is closed, the core still serves.
    assert by["edge"][1] == 0.0
    assert by["edge"][2] > 0
    # Everywhere: no observable hits at all.
    assert by["all"][1] == 0.0 and by["all"][2] == 0.0
    # Latency ordering: none < edge < all.
    assert by["none"][4] < by["edge"][4] < by["all"][4]
    # Origin traffic identical across placements (delays, not re-fetches).
    assert by["none"][3] == by["edge"][3] == by["all"][3]