"""Ablation — namespace grouping against the correlation attack (§VI).

The precise claim demonstrated: a **per-object** Uniform-Random-Cache
calibrated to a nominal (k, 0, δ)-guarantee *violates* that δ against
correlated content (the adversary samples m independent k_C draws, so its
advantage compounds as 1 − (1 − x/K)^m), while a **group-calibrated**
scheme — one counter/threshold per namespace, with k scaled to the
group's total request count — keeps the measured advantage within its
nominal δ, at the cost of a larger K (more disguised misses).

Setup: a 25-fragment video; the victim fetched every fragment twice; the
adversary probes each fragment once and decides "was it watched?" on any
observed hit.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.tables import format_table
from repro.attacks.correlation import correlation_attack_advantage
from repro.core.privacy.guarantees import solve_uniform_K
from repro.core.schemes.grouping import NamespaceGrouping
from repro.core.schemes.uniform import UniformRandomCache

M = 25                 # fragments in the correlated set
X = 2                  # victim requests per fragment
K_OBJ = 2              # per-object anonymity threshold
DELTA = 0.05           # nominal privacy target for both calibrations
K_GROUP = M * X        # group-level threshold covering the whole viewing


def per_object_scheme(rng):
    return UniformRandomCache(K=solve_uniform_K(K_OBJ, DELTA), rng=rng)


def group_calibrated_scheme(rng):
    return UniformRandomCache(
        K=solve_uniform_K(K_GROUP, DELTA),
        rng=rng,
        grouping=NamespaceGrouping(depth=2),
    )


def test_grouping_ablation(benchmark):
    def sweep():
        K_obj_domain = solve_uniform_K(K_OBJ, DELTA)
        analytic_ungrouped = 1 - (1 - X / K_obj_domain) ** M
        adv_ungrouped = correlation_attack_advantage(
            per_object_scheme, group_size=M, requests_per_object=X,
            trials=2000,
        )
        adv_grouped = correlation_attack_advantage(
            group_calibrated_scheme, group_size=M, requests_per_object=X,
            trials=2000,
        )
        return K_obj_domain, analytic_ungrouped, adv_ungrouped, adv_grouped

    K_obj_domain, analytic, adv_ungrouped, adv_grouped = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    K_group_domain = solve_uniform_K(K_GROUP, DELTA)
    print()
    print(format_table(
        ["calibration", "K domain", "nominal delta", "measured advantage"],
        [
            [f"per-object (k={K_OBJ})", K_obj_domain, DELTA, adv_ungrouped],
            [f"per-group (k={K_GROUP})", K_group_domain, DELTA, adv_grouped],
        ],
        title=(
            f"Ablation: correlation attack, {M}-fragment set, victim "
            f"fetched each fragment {X}x"
        ),
    ))
    print(f"analytic ungrouped advantage 1-(1-x/K)^m = {analytic:.4f}")

    # Per-object calibration: the measured advantage blows through the
    # nominal delta by an order of magnitude (the paper's insecurity).
    assert adv_ungrouped == pytest.approx(analytic, abs=0.06)
    assert adv_ungrouped > 5 * DELTA
    # Group calibration: the advantage stays within the nominal budget.
    assert adv_grouped <= DELTA + 0.03


def test_grouping_utility_on_correlated_workload(benchmark):
    """The utility side of grouping: on a browsing-session workload
    (users staying on a site for runs of requests), the *group* counter
    crosses its threshold with the site's aggregate popularity, so
    grouped Random-Cache recovers far more private hits than per-object
    Random-Cache at comparable domain sizes."""
    from repro.core.schemes.exponential import ExponentialRandomCache
    from repro.core.schemes.grouping import NamespaceGrouping
    from repro.workload.fast_replay import fast_replay as replay
    from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
    from repro.workload.marking import ContentMarking

    def sweep():
        trace = IrcacheGenerator(IrcacheConfig(
            requests=60_000, objects=80_000, sites=1_000,
            session_locality=0.6, seed=31,
        )).generate()
        marking = ContentMarking(0.4)
        rows = []
        for label, grouping in (
            ("per-object", None),
            ("per-site group", NamespaceGrouping(depth=1)),
        ):
            scheme = ExponentialRandomCache(
                alpha=0.995, K=2000, grouping=grouping
            )
            stats = replay(trace, scheme=scheme, marking=marking,
                           cache_size=8000)
            rows.append([label, 100 * stats.hit_rate,
                         100 * stats.private_hit_rate])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["calibration", "hit rate %", "private hit rate %"], rows,
        title=(
            "Ablation: grouping utility on a session-local workload "
            "(Exponential alpha=0.995, 40% private)"
        ),
    ))
    per_object, per_group = rows
    assert per_group[2] > per_object[2]  # more private hits recovered
    assert per_group[1] >= per_object[1]
