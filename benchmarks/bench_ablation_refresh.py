"""Ablation — refreshing cache entries on delayed (disguised) hits.

Section VII states: "In case of a cache hit, the corresponding cache
entry becomes 'fresh' even if the response is delayed."  This ablation
turns that refresh off, so only *observable* hits update LRU recency, and
measures the hit-rate impact: without the refresh, popular private
content ages out of small caches while it is still serving disguised
misses, losing hits it would eventually have earned.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.workload.marking import ContentMarking
from repro.workload.replay import replay

SIZES = (2000, 8000, 32000)


def test_delayed_hit_refresh_ablation(benchmark, ircache_trace):
    def sweep():
        rows = []
        for label, scheme_factory in (
            ("exponential", lambda: ExponentialRandomCache.for_privacy_target(
                k=5, epsilon=0.005, delta=0.01)),
            ("always-delay", AlwaysDelayScheme),
        ):
            for size in SIZES:
                with_refresh = replay(
                    ircache_trace, scheme=scheme_factory(),
                    marking=ContentMarking(0.4), cache_size=size,
                    refresh_delayed_hits=True,
                )
                without = replay(
                    ircache_trace, scheme=scheme_factory(),
                    marking=ContentMarking(0.4), cache_size=size,
                    refresh_delayed_hits=False,
                )
                rows.append([
                    label, size,
                    100 * with_refresh.bandwidth_hit_rate,
                    100 * without.bandwidth_hit_rate,
                    100 * with_refresh.hit_rate,
                    100 * without.hit_rate,
                ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["scheme", "cache_size", "bw-saved% (refresh)", "bw-saved% (no refresh)",
         "hit% (refresh)", "hit% (no refresh)"],
        rows,
        title="Ablation: delayed-hit LRU refresh (40% private)",
    ))
    # The paper's refresh rule preserves bandwidth savings for private
    # content: turning it off costs bandwidth hit rate at bounded sizes.
    bounded = [r for r in rows if r[1] != SIZES[-1]]
    assert any(r[2] > r[3] + 0.1 for r in bounded)
    # And it never hurts.
    for r in rows:
        assert r[2] >= r[3] - 0.05
