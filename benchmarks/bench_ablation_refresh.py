"""Ablation — refreshing cache entries on delayed (disguised) hits.

Section VII states: "In case of a cache hit, the corresponding cache
entry becomes 'fresh' even if the response is delayed."  This ablation
turns that refresh off, so only *observable* hits update LRU recency, and
measures the hit-rate impact: without the refresh, popular private
content ages out of small caches while it is still serving disguised
misses, losing hits it would eventually have earned.

The (scheme × size × refresh) grid runs through
:func:`repro.perf.parallel.run_replay_sweep` on the fast-replay kernel.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.perf.parallel import ReplaySpec, run_replay_sweep
from repro.workload.marking import ContentMarking

SIZES = (2000, 8000, 32000)
SCHEMES = (
    ("exponential", {"k": 5, "epsilon": 0.005, "delta": 0.01}),
    ("always-delay", {}),
)


def test_delayed_hit_refresh_ablation(benchmark, ircache_trace):
    specs = [
        ReplaySpec(
            scheme=name,
            scheme_params=params,
            cache_size=size,
            marking=ContentMarking(0.4),
            refresh_delayed_hits=refresh,
            label=name,
        )
        for name, params in SCHEMES
        for size in SIZES
        for refresh in (True, False)
    ]

    def sweep():
        stats = run_replay_sweep(specs, trace=ircache_trace)
        rows = []
        for i in range(0, len(stats), 2):
            with_refresh, without = stats[i], stats[i + 1]
            rows.append([
                specs[i].label, specs[i].cache_size,
                100 * with_refresh.bandwidth_hit_rate,
                100 * without.bandwidth_hit_rate,
                100 * with_refresh.hit_rate,
                100 * without.hit_rate,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["scheme", "cache_size", "bw-saved% (refresh)", "bw-saved% (no refresh)",
         "hit% (refresh)", "hit% (no refresh)"],
        rows,
        title="Ablation: delayed-hit LRU refresh (40% private)",
    ))
    # The paper's refresh rule preserves bandwidth savings for private
    # content: turning it off costs bandwidth hit rate at bounded sizes.
    bounded = [r for r in rows if r[1] != SIZES[-1]]
    assert any(r[2] > r[3] + 0.1 for r in bounded)
    # And it never hurts.
    for r in rows:
        assert r[2] >= r[3] - 0.05
