"""Figure 3 — timing-attack RTT distributions, all four panels.

Each bench regenerates one panel of the paper's Figure 3: the probability
density functions of cache-hit and cache-miss delays at the adversary,
plus the headline distinguishing probability.

Paper's numbers (shape targets, absolute ms differ — simulated links):
  (a) LAN:            success > 99.9%
  (b) WAN:            success > 99%
  (c) WAN producer:   success ≈ 59% (single probe)
  (d) local host:     cleanest separation of all
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_OBJECTS, BENCH_TRIALS
from repro.analysis.experiments import run_fig3

#: The tight success-probability bands assume the default sample budget;
#: the histogram estimators are biased at CI-smoke scale
#: (REPRO_BENCH_TRIALS=2 — see the 3(c) note in EXPERIMENTS.md), so the
#: smoke keeps only the scale-robust shape assertions.
FULL_SCALE = BENCH_OBJECTS * BENCH_TRIALS >= 240


def _run_panel(benchmark, setting, objects, trials):
    result = benchmark.pedantic(
        run_fig3,
        args=(setting,),
        kwargs={"objects_per_trial": objects, "trials": trials},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    return result


def test_fig3a_lan(benchmark):
    result = _run_panel(benchmark, "fig3a_lan", BENCH_OBJECTS, BENCH_TRIALS)
    assert result.bayes_success > 0.99  # paper: >99.9%
    assert result.miss_mean > result.hit_mean


def test_fig3b_wan(benchmark):
    result = _run_panel(benchmark, "fig3b_wan", BENCH_OBJECTS, BENCH_TRIALS)
    assert result.bayes_success > 0.95  # paper: >99%
    assert result.miss_mean > result.hit_mean


def test_fig3c_wan_producer(benchmark):
    result = _run_panel(
        benchmark, "fig3c_wan_producer", BENCH_OBJECTS, BENCH_TRIALS
    )
    # Paper: 59% single-probe success; a weak but usable oracle.
    if FULL_SCALE:
        assert 0.52 < result.bayes_success < 0.75
    assert result.miss_mean > result.hit_mean


def test_fig3d_local_host(benchmark):
    result = _run_panel(
        benchmark, "fig3d_local_host", BENCH_OBJECTS, BENCH_TRIALS
    )
    assert result.bayes_success > 0.99
    # Sub-millisecond hits: the most evident separation (paper text).
    assert result.hit_mean < 1.0


def test_fig3_classifier_end_to_end(benchmark):
    """Not a PDF panel, but the paper's actual adversary procedure
    (reference fetch-twice then probe) scored with ground truth."""
    from repro.attacks.timing import attack_accuracy
    from repro.ndn.topology import local_lan

    accuracy = benchmark.pedantic(
        attack_accuracy,
        args=(local_lan,),
        kwargs={"targets_per_trial": 30, "trials": 3},
        rounds=1,
        iterations=1,
    )
    print(f"\nend-to-end adversary accuracy (LAN): {accuracy:.4f}")
    assert accuracy > 0.95


def test_fig3_classifier_comparison(benchmark):
    """Threshold vs likelihood-ratio classifiers on the Figure 3(c)
    distributions — the weak-probe setting where classifier choice could
    matter.  With unimodal hit/miss classes the two are near-equivalent;
    the likelihood rule matches the Bayes ceiling by construction."""
    from repro.attacks.classifier import (
        LikelihoodRatioClassifier,
        ThresholdClassifier,
        bayes_success,
    )
    from repro.attacks.producer_probe import (
        collect_producer_probe_distributions,
    )
    from repro.ndn.topology import wan_producer

    def compare():
        train = collect_producer_probe_distributions(
            wan_producer, objects_per_trial=BENCH_OBJECTS,
            trials=BENCH_TRIALS, base_seed=0,
        )
        test = collect_producer_probe_distributions(
            wan_producer, objects_per_trial=BENCH_OBJECTS,
            trials=BENCH_TRIALS, base_seed=500,
        )
        threshold = ThresholdClassifier.fit(train.hit_rtts, train.miss_rtts)
        likelihood = LikelihoodRatioClassifier(
            train.hit_rtts, train.miss_rtts, bins=30
        )
        return {
            "ceiling": bayes_success(
                test.hit_rtts, test.miss_rtts, bins=30
            ),
            "threshold": threshold.accuracy(test.hit_rtts, test.miss_rtts),
            "likelihood": likelihood.accuracy(test.hit_rtts, test.miss_rtts),
        }

    scores = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nFigure 3(c) classifier comparison (held-out):")
    for label, score in scores.items():
        print(f"  {label:<10} {score:.4f}")
    # Both practical classifiers land in the weak-probe band and within a
    # few points of the (binning-noise-inflated) ceiling estimate.
    if FULL_SCALE:
        assert 0.5 < scores["threshold"] < 0.75
        assert 0.5 < scores["likelihood"] < 0.75
        assert abs(scores["likelihood"] - scores["threshold"]) < 0.08
    for score in scores.values():
        assert 0.0 <= score <= 1.0
