"""Perf — interned fast-replay kernel vs the reference replay.

The fast path (:mod:`repro.workload.fast_replay`) interns trace names to
dense int ids once, then replays over arrays with an intrusive-linked-list
LRU and int-keyed scheme kernels.  Its contract is *bit-identical*
:class:`ReplayStats` to the reference :func:`repro.workload.replay.replay`
— this bench asserts both the parity and the speedup on the shared
Figure-5 configuration (Exponential-Random-Cache, 20% private, LRU,
cache 8000), and emits the measured ratio to ``BENCH_perf_replay.json``.

The ISSUE's ≥5× target is asserted at full bench scale (≥50k requests);
the CI smoke scale (``REPRO_BENCH_REQUESTS=5000``) asserts a looser 2×
floor because per-run fixed costs (interning, scheme setup) dominate
short traces.
"""

from __future__ import annotations

import os

import pytest

from repro.core.schemes.exponential import ExponentialRandomCache
from repro.perf.timing import BenchReporter, time_call
from repro.workload.fast_replay import fast_replay
from repro.workload.marking import ContentMarking
from repro.workload.replay import replay

BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", 100_000))
#: ISSUE acceptance target at full scale; fixed costs dominate below 50k.
MIN_SPEEDUP = 5.0 if BENCH_REQUESTS >= 50_000 else 2.0

CACHE_SIZE = 8000
PRIVATE_FRACTION = 0.2


def _scheme():
    return ExponentialRandomCache.for_privacy_target(k=5, epsilon=0.005, delta=0.01)


def test_fast_replay_speedup(benchmark, ircache_trace):
    marking = ContentMarking(PRIVATE_FRACTION)
    kwargs = dict(marking=marking, cache_size=CACHE_SIZE, seed=0)

    ircache_trace.compile()  # pay interning once, outside both timers
    reference_stats, reference_s = time_call(
        replay, ircache_trace, scheme=_scheme(), **kwargs
    )
    fast_stats, fast_s = time_call(
        fast_replay, ircache_trace, scheme=_scheme(), **kwargs
    )
    # benchmark the fast path properly (the timed pair above is for the ratio)
    benchmark.pedantic(
        fast_replay, args=(ircache_trace,),
        kwargs=dict(scheme=_scheme(), **kwargs),
        rounds=1, iterations=1,
    )

    speedup = reference_s / fast_s if fast_s > 0 else float("inf")
    reporter = BenchReporter("perf_replay", scale={"requests": BENCH_REQUESTS})
    reporter.record(
        "reference_replay", reference_s, requests=len(ircache_trace),
        cache_size=CACHE_SIZE, scheme="exponential",
    )
    reporter.record(
        "fast_replay", fast_s, requests=len(ircache_trace),
        cache_size=CACHE_SIZE, scheme="exponential",
        speedup_vs_reference=round(speedup, 2),
    )
    path = reporter.write()
    print()
    print(
        f"reference {reference_s:.3f}s vs fast {fast_s:.3f}s "
        f"-> {speedup:.1f}x on {len(ircache_trace)} requests ({path})"
    )

    # The whole point: same numbers, much faster.
    assert fast_stats == reference_stats
    assert speedup >= MIN_SPEEDUP
