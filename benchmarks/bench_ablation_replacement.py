"""Ablation — cache replacement policy under the Figure 5 replay.

The paper fixes LRU ("removes elements ... according to the LRU policy");
this ablation quantifies how much that choice matters for the reported
hit rates by sweeping LRU / LFU / FIFO / Random at two cache sizes,
through :func:`repro.perf.parallel.run_replay_sweep` on the fast-replay
kernel.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.perf.parallel import ReplaySpec, run_replay_sweep
from repro.workload.marking import ContentMarking

POLICIES = ("lru", "lfu", "fifo", "random")
SIZES = (4000, 16000)


def test_replacement_policy_ablation(benchmark, ircache_trace):
    specs = [
        ReplaySpec(
            scheme="exponential",
            scheme_params={"k": 5, "epsilon": 0.005, "delta": 0.01},
            cache_size=size,
            marking=ContentMarking(0.2),
            policy=policy,
            label=policy,
        )
        for policy in POLICIES
        for size in SIZES
    ]

    def sweep():
        stats = run_replay_sweep(specs, trace=ircache_trace)
        return [
            [spec.label, spec.cache_size, 100 * s.hit_rate, s.evictions]
            for spec, s in zip(specs, stats)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["policy", "cache_size", "hit rate %", "evictions"], rows,
        title="Ablation: replacement policy (Exponential-Random-Cache, 20% private)",
    ))

    by_policy = {
        policy: [r[2] for r in rows if r[0] == policy] for policy in POLICIES
    }
    evictions = {
        policy: [r[3] for r in rows if r[0] == policy] for policy in POLICIES
    }
    # Recency/frequency-aware policies must beat blind ones on a Zipf
    # workload.  Only sizes under eviction pressure discriminate: with the
    # whole working set resident (smoke scales) every policy ties.
    contested = [i for i in range(len(SIZES)) if evictions["fifo"][i] > 0]
    assert contested, "no cache size under eviction pressure; shrink SIZES"
    for i in contested:
        assert by_policy["lru"][i] > by_policy["fifo"][i]
        assert by_policy["lru"][i] > by_policy["random"][i]
    # All policies still show the headline cache-size trend.
    for policy in POLICIES:
        assert by_policy[policy][0] < by_policy[policy][1]
