"""Ablation — cache replacement policy under the Figure 5 replay.

The paper fixes LRU ("removes elements ... according to the LRU policy");
this ablation quantifies how much that choice matters for the reported
hit rates by sweeping LRU / LFU / FIFO / Random at two cache sizes.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.workload.marking import ContentMarking
from repro.workload.replay import replay

POLICIES = ("lru", "lfu", "fifo", "random")
SIZES = (4000, 16000)


def test_replacement_policy_ablation(benchmark, ircache_trace):
    def sweep():
        rows = []
        for policy in POLICIES:
            for size in SIZES:
                scheme = ExponentialRandomCache.for_privacy_target(
                    k=5, epsilon=0.005, delta=0.01
                )
                stats = replay(
                    ircache_trace,
                    scheme=scheme,
                    marking=ContentMarking(0.2),
                    cache_size=size,
                    policy=policy,
                )
                rows.append([policy, size, 100 * stats.hit_rate,
                             stats.evictions])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["policy", "cache_size", "hit rate %", "evictions"], rows,
        title="Ablation: replacement policy (Exponential-Random-Cache, 20% private)",
    ))

    by_policy = {
        policy: [r[2] for r in rows if r[0] == policy] for policy in POLICIES
    }
    # Recency/frequency-aware policies must beat blind ones on a Zipf
    # workload; FIFO/Random trail LRU/LFU at every size.
    for i in range(len(SIZES)):
        assert by_policy["lru"][i] > by_policy["fifo"][i]
        assert by_policy["lru"][i] > by_policy["random"][i]
    # All policies still show the headline cache-size trend.
    for policy in POLICIES:
        assert by_policy[policy][0] < by_policy[policy][1]
