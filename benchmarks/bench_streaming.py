"""Perf — streaming sharded pipeline vs the materialized in-RAM pipeline.

The streaming workload path (``IrcacheGenerator.stream`` →
``compile_stream`` → sharded ``fast_replay``) exists so million-user /
multi-million-request traces never have to fit in RAM.  This bench runs
both pipelines in **separate subprocesses** (``ru_maxrss`` is a
whole-process high-water mark) at the same scale and asserts the
headline contract from the ISSUE:

* bit-identical :class:`ReplayStats` on every grid case (asserted inside
  :func:`run_streaming_bench` — a divergence raises before any numbers
  are recorded),
* at full scale (≥4M requests): streaming peak RSS < 10% of the
  materialized peak, and replay throughput within 10% of the in-RAM
  fast path,
* at CI smoke scale: an absolute pinned RSS ceiling on the streaming
  leg — the process must stay near the interpreter+numpy baseline no
  matter how many requests flow through it.

Scale knobs: ``REPRO_BENCH_STREAM_REQUESTS`` (default 12M),
``REPRO_BENCH_STREAM_USERS`` (default 1M), ``REPRO_BENCH_STREAM_OBJECTS``
(default 1.5M), ``REPRO_BENCH_STREAM_SITES`` (default 4000).  Results
land in ``BENCH_streaming.json``.
"""

from __future__ import annotations

import os

from repro.perf.streambench import run_streaming_bench
from repro.perf.timing import BenchReporter


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


REQUESTS = _env_int("REPRO_BENCH_STREAM_REQUESTS", 12_000_000)
USERS = _env_int("REPRO_BENCH_STREAM_USERS", 1_000_000)
OBJECTS = _env_int("REPRO_BENCH_STREAM_OBJECTS", 1_500_000)
SITES = _env_int("REPRO_BENCH_STREAM_SITES", 4_000)
SEED = 7

#: The RSS/throughput ratio bars only hold where the request side
#: dominates the materialized leg; below this the fixed interpreter +
#: numpy baseline (~80 MB) swamps both legs and ratios are meaningless.
FULL_SCALE_REQUESTS = 4_000_000

#: CI smoke bar: absolute streaming-leg ceiling.  Measured ~60 MB at
#: the smoke scale (150k requests / 30k users); the bound is the
#: interpreter+numpy baseline plus headroom, NOT proportional to
#: requests — that flatness is the property under test.
SMOKE_RSS_CEILING_BYTES = 200 * 1024 * 1024


def test_streaming_vs_materialized(benchmark):
    result = {}

    def _run():
        result.update(
            run_streaming_bench(
                requests=REQUESTS,
                users=USERS,
                objects=OBJECTS,
                sites=SITES,
                seed=SEED,
            )
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)

    scale = {
        "requests": REQUESTS,
        "users": USERS,
        "objects": OBJECTS,
        "sites": SITES,
        "seed": SEED,
        "shard_size": result["params"]["shard_size"],
    }
    reporter = BenchReporter("streaming", scale=scale)
    for leg_name in ("materialized", "streaming"):
        leg = result[leg_name]
        reporter.record(
            f"{leg_name}_build",
            leg["build_wall_s"],
            requests=REQUESTS,
            rss_bytes=leg["peak_rss_bytes"],
            compile_wall_s=round(leg["compile_wall_s"], 3),
            **({"n_shards": leg["n_shards"]} if "n_shards" in leg else {}),
        )
        for case in leg["replays"]:
            reporter.record(
                f"{leg_name}_replay_{case['label']}",
                case["wall_s"],
                requests=REQUESTS,
                rss_bytes=leg["peak_rss_bytes"],
                hits=case["stats"]["hits"],
                misses=case["stats"]["misses"],
            )
    reporter.record(
        "comparison",
        0.0,
        rss_bytes=result["streaming"]["peak_rss_bytes"],
        rss_ratio=round(result["rss_ratio"], 4),
        throughput_ratio=round(result["throughput_ratio"], 4),
        throughput_materialized=round(result["throughput_materialized"], 1),
        throughput_streaming=round(result["throughput_streaming"], 1),
    )
    path = reporter.write()

    rss_m = result["materialized"]["peak_rss_bytes"] / 1e6
    rss_s = result["streaming"]["peak_rss_bytes"] / 1e6
    print()
    print(
        f"materialized peak {rss_m:.0f} MB vs streaming {rss_s:.0f} MB "
        f"(ratio {result['rss_ratio']:.3f}); throughput ratio "
        f"{result['throughput_ratio']:.3f} on {REQUESTS:,} requests ({path})"
    )

    assert result["streaming"]["peak_rss_bytes"] > 0
    assert result["materialized"]["peak_rss_bytes"] > 0
    if REQUESTS >= FULL_SCALE_REQUESTS:
        # The ISSUE's headline bars, meaningful only where requests
        # dominate RSS: constant-memory streaming at full scale.
        assert result["rss_ratio"] < 0.10, (
            f"streaming RSS ratio {result['rss_ratio']:.3f} >= 0.10"
        )
        assert result["throughput_ratio"] >= 0.9, (
            f"streaming throughput ratio {result['throughput_ratio']:.3f} < 0.9"
        )
    else:
        # CI smoke: the streaming leg must stay near the process
        # baseline regardless of scale — an absolute, pinned ceiling.
        assert result["streaming"]["peak_rss_bytes"] < SMOKE_RSS_CEILING_BYTES, (
            f"streaming leg peaked at {rss_s:.0f} MB, "
            f"ceiling {SMOKE_RSS_CEILING_BYTES / 1e6:.0f} MB"
        )
