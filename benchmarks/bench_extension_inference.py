"""Extension — Bayesian request-count inference across the scheme space.

Beyond the paper: the (k, ε, δ) theorems bound a binary game; this bench
measures what a Bayesian adversary learns about the victim's *request
count* x ∈ {0..5} from a full probe transcript, for the naive scheme,
Exponential-Random-Cache at several α, and Uniform-Random-Cache at
several K.  Output: expected MAP accuracy (baseline 1/6 ≈ 0.167) and
information gain in bits.

The spectrum quantifies the paper's qualitative story: determinism leaks
everything, uniform randomization leaks O(k/K), and exponential skew
trades leakage for utility.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.attacks.inference import RequestCountInference
from repro.core.privacy.distributions import (
    DegenerateK,
    TruncatedGeometric,
    UniformK,
)

X_MAX = 5


def test_inference_spectrum(benchmark):
    def sweep():
        rows = []
        configs = [
            ("naive k=5 (degenerate)", DegenerateK(5), 12),
            ("expo alpha=0.5, K=40", TruncatedGeometric(0.5, 40), 50),
            ("expo alpha=0.9, K=40", TruncatedGeometric(0.9, 40), 50),
            ("expo alpha=0.99, K=400", TruncatedGeometric(0.99, 400), 410),
            ("uniform K=20", UniformK(20), 30),
            ("uniform K=100", UniformK(100), 110),
            ("uniform K=1000", UniformK(1000), 1010),
        ]
        for label, dist, t in configs:
            report = RequestCountInference(dist, x_max=X_MAX, t=t).report()
            rows.append([
                label,
                report.map_accuracy,
                report.advantage,
                report.information_gain_bits,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["scheme", "MAP accuracy", "advantage over prior", "info gain (bits)"],
        rows,
        title=(
            f"Extension: Bayesian request-count inference, x in 0..{X_MAX}, "
            f"uniform prior (baseline accuracy {1 / (X_MAX + 1):.3f})"
        ),
    ))

    by_label = {r[0]: r for r in rows}
    # Deterministic threshold: total identification.
    assert by_label["naive k=5 (degenerate)"][1] == pytest.approx(1.0)
    # Uniform leakage shrinks like 1/K.
    assert (
        by_label["uniform K=20"][1]
        > by_label["uniform K=100"][1]
        > by_label["uniform K=1000"][1]
    )
    assert by_label["uniform K=1000"][2] < 0.02  # near-zero advantage
    # Exponential: smaller alpha (better utility) leaks more.
    assert by_label["expo alpha=0.5, K=40"][1] > by_label["expo alpha=0.9, K=40"][1]
    # At the paper's Figure-5 operating point (alpha~0.99, K~400+) the
    # count inference is close to blind.
    assert by_label["expo alpha=0.99, K=400"][3] < 0.3
