"""Section III — multi-fragment amplification of the producer probe.

Regenerates the paper's arithmetic (Pr[success] = 1 − 0.41^n ≈ 0.999 at
n = 8) from a *measured* single-probe success on the Figure 3(c)
topology, and cross-checks with an empirical mean-RTT amplifier over the
same measured distributions.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_amplification, run_fig3
from repro.attacks.amplification import (
    amplified_success,
    empirical_amplified_success,
    fragments_needed,
)


def test_amplification_table(benchmark):
    def measure_and_amplify():
        panel = run_fig3("fig3c_wan_producer", objects_per_trial=60, trials=8)
        table = run_amplification(panel.bayes_success, max_fragments=16)
        empirical = {
            n: empirical_amplified_success(
                panel.distributions.hit_rtts,
                panel.distributions.miss_rtts,
                fragments=n,
            )
            for n in (1, 2, 4, 8, 16)
        }
        return panel, table, empirical

    panel, table, empirical = benchmark.pedantic(
        measure_and_amplify, rounds=1, iterations=1
    )
    print()
    print(table.render())
    print(f"\n{'n':>3} {'analytic 1-(1-p)^n':>20} {'empirical mean-RTT':>20}")
    for n in (1, 2, 4, 8, 16):
        print(f"{n:>3} {table.analytic_success[n - 1]:>20.4f} "
              f"{empirical[n]:>20.4f}")

    p = panel.bayes_success
    assert 0.52 < p < 0.75  # the weak single probe (paper: 0.59)
    # Paper's headline: ~8 fragments make success near-certain.
    assert amplified_success(p, 8) > 0.99
    assert fragments_needed(p, 0.999) <= 10
    # The empirical aggregate amplifier improves monotonically too.
    assert empirical[8] > empirical[1]


def test_paper_arithmetic_exact(benchmark):
    """The exact numbers quoted in Section III (p = 0.59)."""
    result = benchmark.pedantic(
        run_amplification, args=(0.59,), kwargs={"max_fragments": 8},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    assert result.analytic_success[7] == pytest.approx(1 - 0.41**8, abs=1e-12)
    assert result.analytic_success[7] == pytest.approx(0.999, abs=0.001)
