"""Shared fixtures for the benchmark harness.

Scale knobs (environment variables):

* ``REPRO_BENCH_REQUESTS`` — trace length for the Figure 5 replays
  (default 100000; the paper's trace had ~3.2M — results are stable from
  ~100k on, see EXPERIMENTS.md),
* ``REPRO_BENCH_TRIALS`` — measurement trials per Figure 3 panel
  (default 6),
* ``REPRO_BENCH_OBJECTS`` — probed objects per Figure 3 trial
  (default 60).
"""

from __future__ import annotations

import os

import pytest

from repro.workload.ircache import IrcacheConfig, IrcacheGenerator


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


BENCH_REQUESTS = _env_int("REPRO_BENCH_REQUESTS", 100_000)
BENCH_TRIALS = _env_int("REPRO_BENCH_TRIALS", 6)
BENCH_OBJECTS = _env_int("REPRO_BENCH_OBJECTS", 60)


@pytest.fixture(scope="session")
def ircache_trace():
    """The synthetic IRCache-style trace shared by every Figure 5 bench."""
    config = IrcacheConfig(requests=BENCH_REQUESTS, seed=2007)
    return IrcacheGenerator(config).generate()
