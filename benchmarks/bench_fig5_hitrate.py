"""Figure 5 — trace-replay cache hit rates (Section VII).

(a) hit rate vs cache size {2k, 4k, 8k, 16k, 32k, ∞} for No-Privacy /
    Exponential / Uniform / Always-Delay at k = 5, ε = 0.005, 20% private.
(b) Exponential-Random-Cache with the private share swept over
    {5, 10, 20, 40}%.

Shape targets from the paper: every curve increases with cache size;
No-Privacy ≥ Exponential ≥ Uniform ≥ Always-Delay; hit rate decreases as
the private share grows.  Absolute percentages depend on the (synthetic)
trace's popularity skew — the default configuration lands in the paper's
10–50% band.

Both sweeps run through :func:`repro.perf.parallel.run_replay_sweep`
(fast-replay kernel, ``REPRO_WORKERS`` processes) and emit wall-clock /
throughput records to ``BENCH_fig5.json`` (see ``repro.perf.timing``).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import run_fig5a, run_fig5b
from repro.perf.timing import BenchReporter

BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", 100_000))

_REPORTER = BenchReporter("fig5", scale={"requests": BENCH_REQUESTS})


def _report(label: str, result, wall_s: float, points: int) -> None:
    _REPORTER.record(
        label,
        wall_s,
        requests=points * BENCH_REQUESTS,
        sweep_points=points,
        series={k: [round(v, 4) for v in vs] for k, vs in result.hit_rates.items()},
    )
    # Rewrite after every test so the file is complete whichever subset ran.
    _REPORTER.write()


def test_fig5a(benchmark, ircache_trace):
    result = benchmark.pedantic(
        run_fig5a, args=(ircache_trace,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    _report("fig5a", result, benchmark.stats.stats.mean, len(result.stats))
    schemes = ["no-privacy", "exponential", "uniform", "always-delay"]
    sizes = result.cache_sizes
    for i in range(len(sizes)):
        rates = [result.hit_rates[s][i] for s in schemes]
        # The paper's ordering at every cache size.
        assert rates[0] > rates[1] >= rates[2] >= rates[3] - 0.2
    for scheme in schemes:
        series = result.hit_rates[scheme]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
    # Paper's plotted band is roughly 10-50%.
    assert 5.0 < min(min(v) for v in result.hit_rates.values())
    assert max(max(v) for v in result.hit_rates.values()) < 60.0


def test_fig5b(benchmark, ircache_trace):
    result = benchmark.pedantic(
        run_fig5b, args=(ircache_trace,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    _report("fig5b", result, benchmark.stats.stats.mean, len(result.stats))
    labels = ["5% private", "10% private", "20% private", "40% private"]
    for i in range(len(result.cache_sizes)):
        rates = [result.hit_rates[label][i] for label in labels]
        assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))
    for label in labels:
        series = result.hit_rates[label]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
