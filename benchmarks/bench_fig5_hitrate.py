"""Figure 5 — trace-replay cache hit rates (Section VII).

(a) hit rate vs cache size {2k, 4k, 8k, 16k, 32k, ∞} for No-Privacy /
    Exponential / Uniform / Always-Delay at k = 5, ε = 0.005, 20% private.
(b) Exponential-Random-Cache with the private share swept over
    {5, 10, 20, 40}%.

Shape targets from the paper: every curve increases with cache size;
No-Privacy ≥ Exponential ≥ Uniform ≥ Always-Delay; hit rate decreases as
the private share grows.  Absolute percentages depend on the (synthetic)
trace's popularity skew — the default configuration lands in the paper's
10–50% band.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_fig5a, run_fig5b


def test_fig5a(benchmark, ircache_trace):
    result = benchmark.pedantic(
        run_fig5a, args=(ircache_trace,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    schemes = ["no-privacy", "exponential", "uniform", "always-delay"]
    sizes = result.cache_sizes
    for i in range(len(sizes)):
        rates = [result.hit_rates[s][i] for s in schemes]
        # The paper's ordering at every cache size.
        assert rates[0] > rates[1] >= rates[2] >= rates[3] - 0.2
    for scheme in schemes:
        series = result.hit_rates[scheme]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
    # Paper's plotted band is roughly 10-50%.
    assert 5.0 < min(min(v) for v in result.hit_rates.values())
    assert max(max(v) for v in result.hit_rates.values()) < 60.0


def test_fig5b(benchmark, ircache_trace):
    result = benchmark.pedantic(
        run_fig5b, args=(ircache_trace,), rounds=1, iterations=1
    )
    print()
    print(result.render())
    labels = ["5% private", "10% private", "20% private", "40% private"]
    for i in range(len(result.cache_sizes)):
        rates = [result.hit_rates[label][i] for label in labels]
        assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))
    for label in labels:
        series = result.hit_rates[label]
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
