"""ndn-cache-privacy: reproduction of "Cache Privacy in Named-Data
Networking" (Acs, Conti, Gasti, Ghali, Tsudik — ICDCS 2013).

Package map:

* :mod:`repro.sim` — deterministic discrete-event engine,
* :mod:`repro.ndn` — NDN data plane (names, CS/PIT/FIB, forwarders, links),
* :mod:`repro.core` — the paper's contribution: privacy schemes and the
  (k, ε, δ)-privacy framework,
* :mod:`repro.attacks` — cache timing/probing attacks (Section III),
* :mod:`repro.naming` — unpredictable names for interactive traffic,
* :mod:`repro.workload` — IRCache-style trace generation and replay,
* :mod:`repro.analysis` — statistics and experiment drivers for every
  figure in the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
