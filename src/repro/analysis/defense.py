"""Detection frontier: attack success vs. detection latency vs. utility.

ROADMAP item 5's quantitative deliverable.  For every (defense preset,
attack) cell the sweep runs the closed-loop scenario twice — an
attack-free baseline and an attacked run sharing every other spec field
(:func:`repro.defense.scenario.run_closed_loop`) — and reads off the
three axes the defense loop trades between:

* ``attack_success`` — honest utility destroyed by the attack,
  ``1 − attacked/baseline`` on the attack's own utility metric
  (edge hit rate for pollution, delivery rate for a flood),
* ``detection_latency`` — first qualifying alarm minus attack start
  (ms), plus the attacker requests spent before that alarm,
* ``utility`` — the honest consumers' absolute utility under attack,
  with ``false_alarms``/``mitigations`` from the *baseline* run showing
  what the defense costs when nothing is wrong (zero for a healthy
  detector).

The presets span the frontier's corners: ``off`` (maximum damage, no
detection), ``static`` (rate limiting without detection), ``monitor``
(detection without mitigation — pure latency measurement), ``adaptive``
(the closed loop).  ``repro-experiments defend`` runs the sweep from a
shell and writes ``defense_frontier.json`` plus a ``BENCH_detection.json``
timing record (schema v2) via :class:`~repro.perf.timing.BenchReporter`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence

from repro.defense.agent import DEFENSE_PRESETS
from repro.defense.scenario import ClosedLoopReport, run_closed_loop
from repro.perf.timing import BenchReporter

#: Attacks the frontier sweeps by default (the closed-loop demo's seeded
#: pollution and flood, plus the Thompson-sampling adaptive attacker).
SWEEP_ATTACKS = ("pollution", "flood", "adaptive")


@dataclass(frozen=True)
class DefensePoint:
    """One (defense, attack) cell of the detection frontier."""

    defense: str
    attack: str
    seed: int
    attack_success: float
    utility_metric: str
    baseline_utility: float
    attacked_utility: float
    recovery_ratio: float
    detection_latency: Optional[float]
    attacker_requests_before_alarm: Optional[int]
    alarms: int
    false_alarms: int  # alarms raised in the attack-free baseline run
    mitigations: int
    false_mitigations: int  # mitigations in the attack-free baseline run
    throttled: int
    quarantined: int
    shed: int
    invariant_violations: int
    attacker_attempts: Optional[int] = None
    attacker_delivered: Optional[int] = None

    @classmethod
    def from_report(cls, report: ClosedLoopReport) -> "DefensePoint":
        attacked = report.attacked
        baseline = report.baseline
        metric = report.utility_metric
        return cls(
            defense=attacked.defense,
            attack=attacked.attack,
            seed=attacked.seed,
            attack_success=report.attack_success,
            utility_metric=metric,
            baseline_utility=getattr(baseline, metric),
            attacked_utility=getattr(attacked, metric),
            recovery_ratio=report.recovery_ratio,
            detection_latency=attacked.detection_latency,
            attacker_requests_before_alarm=(
                attacked.attacker_requests_before_alarm
            ),
            alarms=attacked.alarms,
            false_alarms=baseline.alarms,
            mitigations=attacked.mitigations,
            false_mitigations=baseline.mitigations,
            throttled=attacked.throttled,
            quarantined=attacked.quarantined,
            shed=attacked.shed,
            invariant_violations=(
                attacked.invariant_violations + baseline.invariant_violations
            ),
            attacker_attempts=attacked.attacker_attempts,
            attacker_delivered=attacked.attacker_delivered,
        )


@dataclass
class DefenseFrontier:
    """The full sweep result plus the configuration that produced it."""

    points: List[DefensePoint] = field(default_factory=list)
    seed: int = 0

    def best_defense(self, attack: str) -> DefensePoint:
        """The preset that minimizes ``attack_success`` for ``attack``
        (detection latency breaks ties toward faster alarms)."""
        candidates = [p for p in self.points if p.attack == attack]
        if not candidates:
            raise ValueError(f"no frontier points for attack {attack!r}")
        return min(
            candidates,
            key=lambda p: (
                p.attack_success,
                p.detection_latency if p.detection_latency is not None
                else float("inf"),
            ),
        )

    def to_dict(self) -> dict:
        """JSON-serializable frontier (the artifact format)."""
        return {
            "experiment": "defense_detection_frontier",
            "seed": self.seed,
            "points": [asdict(p) for p in self.points],
        }

    def render(self) -> str:
        """Fixed-width table, one row per sweep point."""
        header = (
            f"{'defense':<9} {'attack':<10} {'success':>7} {'utility':>7} "
            f"{'recovery':>8} {'latency':>9} {'req@alarm':>9} "
            f"{'alarms':>6} {'fp':>3} {'mitig':>5} {'viol':>4}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            latency = (
                f"{p.detection_latency:>8.1f}m"
                if p.detection_latency is not None
                else f"{'-':>9}"
            )
            before = (
                f"{p.attacker_requests_before_alarm:>9d}"
                if p.attacker_requests_before_alarm is not None
                else f"{'-':>9}"
            )
            lines.append(
                f"{p.defense:<9} {p.attack:<10} {p.attack_success:>7.3f} "
                f"{p.attacked_utility:>7.3f} {p.recovery_ratio:>8.3f} "
                f"{latency} {before} {p.alarms:>6d} {p.false_alarms:>3d} "
                f"{p.mitigations:>5d} {p.invariant_violations:>4d}"
            )
        return "\n".join(lines)


def run_defense_point(
    defense: str,
    attack: str,
    seed: int = 0,
    **spec_overrides,
) -> DefensePoint:
    """One frontier cell: baseline + attacked closed-loop run."""
    report = run_closed_loop(
        defense=defense, attack=attack, seed=seed, **spec_overrides
    )
    return DefensePoint.from_report(report)


def run_defense_sweep(
    defenses: Sequence[str] = DEFENSE_PRESETS,
    attacks: Sequence[str] = SWEEP_ATTACKS,
    seed: int = 0,
    reporter: Optional[BenchReporter] = None,
    **spec_overrides,
) -> DefenseFrontier:
    """The full defense × attack frontier sweep.

    Pass a :class:`~repro.perf.timing.BenchReporter` to also collect one
    timing record per point (the caller owns ``reporter.write()``) — the
    ``repro-experiments defend`` command uses this to produce
    ``BENCH_detection.json``.
    """
    unknown = [d for d in defenses if d not in DEFENSE_PRESETS]
    if unknown:
        raise ValueError(
            f"unknown defenses {unknown!r}; choose from {DEFENSE_PRESETS}"
        )
    frontier = DefenseFrontier(seed=seed)
    for attack in attacks:
        for defense in defenses:
            label = f"{defense}/{attack}"
            if reporter is not None:
                # reporter.time treats keyword arguments as record meta,
                # not call arguments — close over them explicitly.
                point, record = reporter.time(
                    label,
                    lambda d=defense, a=attack: run_defense_point(
                        d, a, seed=seed, **spec_overrides
                    ),
                )
                record.meta.update(
                    attack_success=point.attack_success,
                    recovery_ratio=point.recovery_ratio,
                    detection_latency=point.detection_latency,
                    attacker_requests_before_alarm=(
                        point.attacker_requests_before_alarm
                    ),
                    false_alarms=point.false_alarms,
                    mitigations=point.mitigations,
                )
            else:
                point = run_defense_point(
                    defense, attack, seed=seed, **spec_overrides
                )
            frontier.points.append(point)
    return frontier
