"""Statistics helpers: PDF histograms, overlap, bootstrap intervals.

These turn raw RTT samples into the quantities the paper's Figure 3
reports: per-class probability density functions over a shared grid and
the distinguishing probability of the optimal observer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PdfPair:
    """Hit and miss PDFs on a common grid — one Figure 3 panel."""

    bin_edges: Tuple[float, ...]
    hit_density: Tuple[float, ...]
    miss_density: Tuple[float, ...]

    @property
    def bin_centers(self) -> List[float]:
        """Midpoints of the histogram bins."""
        edges = self.bin_edges
        return [(edges[i] + edges[i + 1]) / 2.0 for i in range(len(edges) - 1)]

    def overlap(self) -> float:
        """Overlap coefficient of the two (mass-normalized) histograms."""
        hit = np.asarray(self.hit_density)
        miss = np.asarray(self.miss_density)
        widths = np.diff(np.asarray(self.bin_edges))
        return float(np.sum(np.minimum(hit, miss) * widths))

    def bayes_success(self) -> float:
        """Equal-prior Bayes success, 1 − overlap/2."""
        return 1.0 - self.overlap() / 2.0


def pdf_pair(
    hit_rtts: Sequence[float], miss_rtts: Sequence[float], bins: int = 40
) -> PdfPair:
    """Histogram both sample sets on a shared grid (density normalized)."""
    hits = np.asarray(hit_rtts, dtype=float)
    misses = np.asarray(miss_rtts, dtype=float)
    if hits.size == 0 or misses.size == 0:
        raise ValueError("need both hit and miss samples")
    lo = float(min(hits.min(), misses.min()))
    hi = float(max(hits.max(), misses.max()))
    if hi <= lo:
        hi = lo + 1e-9
    edges = np.linspace(lo, hi, bins + 1)
    hit_density, _ = np.histogram(hits, bins=edges, density=True)
    miss_density, _ = np.histogram(misses, bins=edges, density=True)
    return PdfPair(
        bin_edges=tuple(float(e) for e in edges),
        hit_density=tuple(float(d) for d in hit_density),
        miss_density=tuple(float(d) for d in miss_density),
    )


def bootstrap_mean_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """(mean, ci_low, ci_high) via the percentile bootstrap."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("no samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    means = rng.choice(data, size=(resamples, data.size), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(data.mean()),
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probabilities) of the empirical CDF."""
    data = np.sort(np.asarray(samples, dtype=float))
    if data.size == 0:
        raise ValueError("no samples")
    probs = np.arange(1, data.size + 1) / data.size
    return data, probs


def separation_score(
    hit_rtts: Sequence[float], miss_rtts: Sequence[float]
) -> float:
    """Cohen's-d-style gap: (mean_miss − mean_hit) / pooled std."""
    hits = np.asarray(hit_rtts, dtype=float)
    misses = np.asarray(miss_rtts, dtype=float)
    if hits.size < 2 or misses.size < 2:
        raise ValueError("need at least 2 samples per class")
    pooled = np.sqrt((hits.var(ddof=1) + misses.var(ddof=1)) / 2.0)
    if pooled == 0:
        return float("inf") if misses.mean() != hits.mean() else 0.0
    return float((misses.mean() - hits.mean()) / pooled)
