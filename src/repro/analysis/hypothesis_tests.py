"""Statistical hypothesis tests for defense validation.

Bayes-success estimates answer "how well could an adversary do?"; these
tests answer the complementary question "is there statistically
detectable signal at all?".  Used to validate that a countermeasure's
disguised responses are drawn from (effectively) the same distribution as
genuine misses.

Kolmogorov–Smirnov machinery is implemented directly (two-sample statistic
and the asymptotic Kolmogorov distribution) so the module works without
scipy; when scipy is installed its exact small-sample p-value is used
instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

try:  # pragma: no cover - environment-dependent
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


@dataclass(frozen=True)
class KsResult:
    """Two-sample Kolmogorov–Smirnov test outcome."""

    statistic: float
    p_value: float
    n1: int
    n2: int

    def indistinguishable_at(self, alpha: float = 0.01) -> bool:
        """True iff the samples are NOT significantly different at α.

        Failing to reject is of course not proof of equality; the bench
        reports effect sizes (Bayes success) alongside.
        """
        return self.p_value > alpha


def _kolmogorov_sf(x: float) -> float:
    """Survival function of the Kolmogorov distribution (asymptotic)."""
    if x <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1) ** (k - 1) * math.exp(-2.0 * (k * x) ** 2)
        total += term
        if abs(term) < 1e-12:
            break
    return max(0.0, min(1.0, 2.0 * total))


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> KsResult:
    """Two-sample KS test: are ``a`` and ``b`` from the same distribution?"""
    x = np.sort(np.asarray(a, dtype=float))
    y = np.sort(np.asarray(b, dtype=float))
    if x.size == 0 or y.size == 0:
        raise ValueError("both sample sets must be non-empty")
    if _scipy_stats is not None:
        result = _scipy_stats.ks_2samp(x, y)
        return KsResult(
            statistic=float(result.statistic),
            p_value=float(result.pvalue),
            n1=int(x.size),
            n2=int(y.size),
        )
    # Manual D statistic + asymptotic p-value.
    grid = np.concatenate([x, y])
    cdf_x = np.searchsorted(x, grid, side="right") / x.size
    cdf_y = np.searchsorted(y, grid, side="right") / y.size
    d = float(np.max(np.abs(cdf_x - cdf_y)))
    effective_n = math.sqrt(x.size * y.size / (x.size + y.size))
    p = _kolmogorov_sf((effective_n + 0.12 + 0.11 / effective_n) * d)
    return KsResult(statistic=d, p_value=p, n1=int(x.size), n2=int(y.size))


def mann_whitney_auc(a: Sequence[float], b: Sequence[float]) -> float:
    """P[X < Y] + ½P[X = Y] — the ROC AUC of 'a is smaller than b'.

    0.5 means an RTT-threshold adversary has no edge; 1.0 means class a
    (hits) is always faster than class b (misses).  Complements the
    binned Bayes-success estimate with a bin-free effect size.
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValueError("both sample sets must be non-empty")
    order = np.sort(y)
    less = np.searchsorted(order, x, side="left")
    less_equal = np.searchsorted(order, x, side="right")
    wins = (y.size - less_equal) + 0.5 * (less_equal - less)
    return float(np.mean(wins) / y.size)
