"""Analysis: statistics, table rendering, and per-figure experiment drivers."""

from repro.analysis.experiments import (
    FIG5_CACHE_SIZES,
    AmplificationResult,
    Fig3Result,
    Fig4aResult,
    Fig4bResult,
    Fig5Result,
    run_amplification,
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig5a,
    run_fig5b,
)
from repro.analysis.hypothesis_tests import KsResult, ks_two_sample, mann_whitney_auc
from repro.analysis.stats import (
    PdfPair,
    bootstrap_mean_ci,
    empirical_cdf,
    pdf_pair,
    separation_score,
)
from repro.analysis.tables import format_histogram_ascii, format_series, format_table

__all__ = [
    "run_fig3",
    "run_fig4a",
    "run_fig4b",
    "run_fig5a",
    "run_fig5b",
    "run_amplification",
    "Fig3Result",
    "Fig4aResult",
    "Fig4bResult",
    "Fig5Result",
    "AmplificationResult",
    "FIG5_CACHE_SIZES",
    "PdfPair",
    "KsResult",
    "ks_two_sample",
    "mann_whitney_auc",
    "pdf_pair",
    "separation_score",
    "bootstrap_mean_ci",
    "empirical_cdf",
    "format_table",
    "format_series",
    "format_histogram_ascii",
]
