"""Privacy-vs-placement frontier: caching strategy × scheme × topology.

The paper's countermeasures (Section V) trade adversary accuracy against
cache utility at ONE shared router.  On multi-hop graphs a second,
orthogonal axis appears: *where* copies are placed by the on-path
cache-admission strategy (:mod:`repro.ndn.strategy`).  A strategy that
keeps content off the probe router (LCD before the copy migrates,
ProbCache far from the producer) suppresses the timing oracle much like
a privacy scheme does — but it also moves the utility cost elsewhere in
the network instead of burning it in delays.

:func:`run_placement_sweep` quantifies that frontier.  For every
(topology, scheme, strategy) point it runs the *actual* adversary
procedure (:class:`~repro.attacks.timing.CacheProbeAttack` with ground
truth, as in :func:`~repro.attacks.timing.attack_accuracy`) over fresh
seeded topologies and reads the router counters afterwards:

* ``probe_accuracy`` — fraction of the adversary's hit/miss verdicts
  that match ground truth (0.5 ≈ coin flip, the privacy goal),
* ``probe_hit_rate`` — observable hit fraction at the probe router,
  ``(cs_hit + cs_disguised_hit) / interest_in``,
* ``network_hit_rate`` — the same ratio summed over every router,
* ``utility`` — the paper's u(c) at the probe router: undisguised hits
  over all cache-resident requests,
  ``cs_hit / (cs_hit + cs_disguised_hit + cs_forced_miss)``,
* ``cache_declined`` — admissions refused by the strategy network-wide
  (0 for LCE, by construction).

Use ``repro-experiments strategy`` to run the sweep from a shell; it
writes the frontier as a JSON artifact plus a ``BENCH_strategy.json``
timing record (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.timing import CacheProbeAttack
from repro.ndn.name import name_of
from repro.ndn.strategy import STRATEGIES
from repro.ndn.topology import (
    AttackTopology,
    fat_tree,
    geant_backbone,
    local_lan,
    rocketfuel_isp,
)
from repro.perf.parallel import build_scheme
from repro.perf.timing import BenchReporter
from repro.sim.process import Timeout

#: Topologies the sweep runs on by default: the paper's LAN panel (the
#: single-router baseline, where placement cannot matter) plus the
#: multi-hop scale graphs (where it does).
SWEEP_TOPOLOGIES: Dict[str, Callable[..., AttackTopology]] = {
    "fig3a_lan": local_lan,
    "fat_tree": fat_tree,
    "rocketfuel": rocketfuel_isp,
    "geant": geant_backbone,
}

#: Scheme grid: the no-privacy baseline plus the two tunable schemes.
SWEEP_SCHEMES = ("no-privacy", "uniform", "exponential")

#: Strategy grid: every registered kind, in registry order.
SWEEP_STRATEGIES = tuple(STRATEGIES)


@dataclass(frozen=True)
class PlacementPoint:
    """One (topology, scheme, strategy) cell of the frontier."""

    topology: str
    scheme: str
    strategy: str
    probe_accuracy: float
    probe_hit_rate: float
    network_hit_rate: float
    utility: float
    cache_declined: int
    verdicts: int


@dataclass
class PlacementFrontier:
    """The full sweep result plus the configuration that produced it."""

    points: List[PlacementPoint] = field(default_factory=list)
    trials: int = 0
    targets_per_trial: int = 0
    cache_capacity: Optional[int] = None
    seed: int = 0

    def best_privacy(self) -> PlacementPoint:
        """The point whose adversary is closest to coin-flipping."""
        return min(self.points, key=lambda p: abs(p.probe_accuracy - 0.5))

    def to_dict(self) -> dict:
        """JSON-serializable frontier (the artifact format)."""
        return {
            "experiment": "strategy_placement_frontier",
            "trials": self.trials,
            "targets_per_trial": self.targets_per_trial,
            "cache_capacity": self.cache_capacity,
            "seed": self.seed,
            "points": [asdict(p) for p in self.points],
        }

    def render(self) -> str:
        """Fixed-width table, one row per sweep point."""
        header = (
            f"{'topology':<12} {'scheme':<12} {'strategy':<10} "
            f"{'accuracy':>8} {'hit@R':>7} {'hit@net':>7} "
            f"{'u(c)':>6} {'declined':>8}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.topology:<12} {p.scheme:<12} {p.strategy:<10} "
                f"{p.probe_accuracy:>8.3f} {p.probe_hit_rate:>7.3f} "
                f"{p.network_hit_rate:>7.3f} {p.utility:>6.3f} "
                f"{p.cache_declined:>8d}"
            )
        return "\n".join(lines)


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def run_placement_point(
    topology: str,
    scheme: str,
    strategy: str,
    trials: int = 3,
    targets_per_trial: int = 20,
    cache_capacity: Optional[int] = 32,
    base_seed: int = 1000,
) -> PlacementPoint:
    """One frontier cell: adversary accuracy + utility under ground truth.

    Per trial a fresh topology is built (empty caches, new RNG streams,
    a fresh scheme instance at the probe router — scheme objects are
    RNG-stateful and must never be reused across trials).  The user
    prefetches half the target set, the adversary runs the full probe
    procedure, and the verdicts are scored against ground truth; router
    counters accumulate over trials before the rates are formed.
    """
    builder = SWEEP_TOPOLOGIES[topology]
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
        )
    if targets_per_trial < 2:
        raise ValueError(
            f"targets_per_trial must be >= 2, got {targets_per_trial}"
        )
    correct = total = 0
    probe_ctr = {"interest_in": 0, "cs_hit": 0, "cs_disguised_hit": 0,
                 "cs_forced_miss": 0}
    net_ctr = {"interest_in": 0, "cs_hit": 0, "cs_disguised_hit": 0}
    declined = 0
    for trial in range(trials):
        seed = base_seed + trial
        topo = builder(
            seed=seed,
            scheme=build_scheme(scheme, seed=seed * 31 + 1),
            cache_capacity=cache_capacity,
            caching=strategy,
        )
        prefix = str(topo.content_prefix)
        half = targets_per_trial // 2
        # The victim's content carries the reserved ``/private/`` component
        # (producer-driven marking): consumer-only marking is demoted by
        # the adversary's own unmarked probe under the trigger rule, which
        # would measure every scheme as no-privacy.
        hot = [f"{prefix}/private/p{trial}-hot-{i}" for i in range(half)]
        cold = [f"{prefix}/private/p{trial}-cold-{i}" for i in range(half)]
        attack = CacheProbeAttack(topo)

        def user_proc():
            # The victim marks their requests private — the paper's trigger
            # rule: only marked content is disguised by the scheme, so an
            # unmarked prefetch would measure every scheme as no-privacy.
            for name in hot:
                result = yield from topo.user.fetch(name, private=True)
                if result is None:
                    raise RuntimeError(f"user prefetch of {name} failed")
                yield Timeout(2.0)

        def adversary_proc():
            yield Timeout(1000.0 + targets_per_trial * 10.0)
            yield from attack.run(
                targets=hot + cold, reference=f"{prefix}/p{trial}-ref"
            )

        topo.engine.spawn(user_proc(), label=f"user-{trial}")
        topo.engine.spawn(adversary_proc(), label=f"adv-{trial}")
        topo.engine.run()

        hot_set = {name_of(n) for n in hot}
        for verdict in attack.verdicts:
            correct += int(verdict.decided_hit == (verdict.target in hot_set))
            total += 1
        probe = topo.router.monitor
        for key in probe_ctr:
            probe_ctr[key] += probe.counter(key)
        for router in topo.network.routers.values():
            for key in net_ctr:
                net_ctr[key] += router.monitor.counter(key)
            declined += router.monitor.counter("cache_declined")
    if total == 0:
        raise RuntimeError(
            f"{topology}/{scheme}/{strategy}: attack produced no verdicts"
        )
    resident = (
        probe_ctr["cs_hit"]
        + probe_ctr["cs_disguised_hit"]
        + probe_ctr["cs_forced_miss"]
    )
    return PlacementPoint(
        topology=topology,
        scheme=scheme,
        strategy=strategy,
        probe_accuracy=correct / total,
        probe_hit_rate=_ratio(
            probe_ctr["cs_hit"] + probe_ctr["cs_disguised_hit"],
            probe_ctr["interest_in"],
        ),
        network_hit_rate=_ratio(
            net_ctr["cs_hit"] + net_ctr["cs_disguised_hit"],
            net_ctr["interest_in"],
        ),
        utility=_ratio(probe_ctr["cs_hit"], resident),
        cache_declined=declined,
        verdicts=total,
    )


def run_placement_sweep(
    topologies: Sequence[str] = ("fig3a_lan", "fat_tree"),
    schemes: Sequence[str] = SWEEP_SCHEMES,
    strategies: Sequence[str] = SWEEP_STRATEGIES,
    trials: int = 2,
    targets_per_trial: int = 20,
    cache_capacity: Optional[int] = 32,
    seed: int = 0,
    reporter: Optional[BenchReporter] = None,
) -> PlacementFrontier:
    """The full strategy × scheme × topology sweep.

    Pass a :class:`~repro.perf.timing.BenchReporter` to also collect one
    timing record per point (the caller owns ``reporter.write()``).
    """
    unknown = [t for t in topologies if t not in SWEEP_TOPOLOGIES]
    if unknown:
        raise ValueError(
            f"unknown topologies {unknown!r}; "
            f"choose from {sorted(SWEEP_TOPOLOGIES)}"
        )
    frontier = PlacementFrontier(
        trials=trials,
        targets_per_trial=targets_per_trial,
        cache_capacity=cache_capacity,
        seed=seed,
    )
    for topology in topologies:
        for scheme in schemes:
            for strategy in strategies:
                label = f"{topology}/{scheme}/{strategy}"
                kwargs = dict(
                    trials=trials,
                    targets_per_trial=targets_per_trial,
                    cache_capacity=cache_capacity,
                    base_seed=1000 + seed,
                )
                if reporter is not None:
                    # reporter.time treats keyword arguments as record
                    # meta, not call arguments — close over them so the
                    # benched sweep runs the same configuration as the
                    # unbenched one.
                    point, record = reporter.time(
                        label,
                        lambda t=topology, sch=scheme, st=strategy: (
                            run_placement_point(t, sch, st, **kwargs)
                        ),
                    )
                    record.meta.update(
                        probe_accuracy=point.probe_accuracy,
                        probe_hit_rate=point.probe_hit_rate,
                        utility=point.utility,
                        cache_declined=point.cache_declined,
                    )
                else:
                    point = run_placement_point(
                        topology, scheme, strategy, **kwargs
                    )
                frontier.points.append(point)
    return frontier
