"""Plain-text rendering of experiment results (bench output).

The benchmark harness prints each figure's data as an aligned ASCII table
or series listing — the same rows/columns the paper's plots encode.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table.

    Floats are shown with 4 significant decimals; everything else via str.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([_cell(value) for value in row])
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict,
    title: str = "",
) -> str:
    """Render one-x-many-y series data as a table (one column per series)."""
    headers = [x_label] + list(series.keys())
    columns = list(series.values())
    for name, column in series.items():
        if len(column) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(column)} points, expected {len(x_values)}"
            )
    rows = [
        [x] + [column[i] for column in columns] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def format_histogram_ascii(
    bin_centers: Sequence[float],
    density: Sequence[float],
    width: int = 50,
    label: str = "",
) -> str:
    """A quick terminal bar rendering of one PDF (for example scripts)."""
    if len(bin_centers) != len(density):
        raise ValueError("bin_centers and density lengths differ")
    peak = max(density) if density else 0.0
    lines = [label] if label else []
    for center, d in zip(bin_centers, density):
        bar = "#" * (int(round(width * d / peak)) if peak > 0 else 0)
        lines.append(f"{center:9.3f} | {bar}")
    return "\n".join(lines)
