"""High-level drivers: one function per paper figure.

These are what the benchmark harness and the examples call.  Each driver
returns a structured result object carrying both the data series (the
figure's content) and the headline numbers the paper quotes, plus a
``render()`` method producing the bench's printed table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.stats import PdfPair, pdf_pair, separation_score
from repro.analysis.tables import format_series, format_table
from repro.attacks.producer_probe import collect_producer_probe_distributions
from repro.attacks.timing import RttDistributions, collect_rtt_distributions
from repro.core.privacy.guarantees import (
    max_exponential_epsilon,
    solve_exponential_params,
    solve_uniform_K,
)
from repro.core.privacy.utility import (
    exponential_utility,
    uniform_utility,
)
from repro.core.schemes.base import CacheScheme
from repro.ndn import topology
from repro.perf.parallel import ReplaySpec, build_scheme, run_replay_sweep
from repro.workload.ircache import IrcacheConfig
from repro.workload.marking import ContentMarking
from repro.workload.replay import ReplayStats
from repro.workload.trace import Trace

import numpy as np


# ======================================================================
# Figure 3 — timing attack RTT distributions
# ======================================================================
@dataclass
class Fig3Result:
    """One Figure 3 panel: labeled RTT distributions and headline success."""

    setting: str
    description: str
    distributions: RttDistributions
    pdf: PdfPair
    bayes_success: float
    hit_mean: float
    miss_mean: float
    separation: float

    def render(self) -> str:
        """The panel as a printed table (PDF series + headline numbers)."""
        header = (
            f"Figure 3 [{self.setting}] — {self.description}\n"
            f"hit mean = {self.hit_mean:.3f} ms, miss mean = {self.miss_mean:.3f} ms, "
            f"separation d = {self.separation:.2f}\n"
            f"Bayes success probability = {self.bayes_success:.4f}"
        )
        table = format_series(
            "rtt_ms",
            [round(c, 3) for c in self.pdf.bin_centers],
            {
                "pdf_cache_hit": list(self.pdf.hit_density),
                "pdf_cache_miss": list(self.pdf.miss_density),
            },
        )
        return header + "\n" + table


_FIG3_COLLECTORS = {
    "fig3a_lan": (topology.local_lan, collect_rtt_distributions),
    "fig3b_wan": (topology.wan, collect_rtt_distributions),
    "fig3c_wan_producer": (topology.wan_producer, collect_producer_probe_distributions),
    "fig3d_local_host": (topology.local_host, collect_rtt_distributions),
}


def run_fig3(
    setting: str,
    objects_per_trial: int = 60,
    trials: int = 8,
    seed: int = 0,
    bins: int = 40,
) -> Fig3Result:
    """Run one Figure 3 panel's measurement campaign.

    ``setting`` is one of ``fig3a_lan``, ``fig3b_wan``,
    ``fig3c_wan_producer``, ``fig3d_local_host``.
    """
    try:
        builder, collector = _FIG3_COLLECTORS[setting]
    except KeyError:
        raise ValueError(
            f"unknown setting {setting!r}; choose from {sorted(_FIG3_COLLECTORS)}"
        ) from None
    dists = collector(
        builder, objects_per_trial=objects_per_trial, trials=trials, base_seed=seed
    )
    pdf = pdf_pair(dists.hit_rtts, dists.miss_rtts, bins=bins)
    probe = builder(seed=seed)
    return Fig3Result(
        setting=setting,
        description=probe.description,
        distributions=dists,
        pdf=pdf,
        bayes_success=dists.bayes_success_probability,
        hit_mean=float(np.mean(dists.hit_rtts)),
        miss_mean=float(np.mean(dists.miss_rtts)),
        separation=separation_score(dists.hit_rtts, dists.miss_rtts),
    )


# ======================================================================
# Figure 4 — utility of Uniform vs Exponential Random-Cache
# ======================================================================
@dataclass
class Fig4aResult:
    """Figure 4(a): u(c) curves at fixed δ for both schemes."""

    k: int
    delta: float
    c_values: List[int]
    uniform_K: int
    uniform_utilities: List[float]
    #: ε -> (α, K, utilities) for each exponential configuration.
    exponential: Dict[float, Tuple[float, Optional[int], List[float]]]

    def render(self) -> str:
        series = {"uniform": self.uniform_utilities}
        for eps, (_alpha, _K, utilities) in sorted(self.exponential.items()):
            series[f"expo(eps={eps})"] = utilities
        return format_series(
            "c",
            self.c_values,
            series,
            title=(
                f"Figure 4(a) — utility vs requests, k={self.k}, delta={self.delta} "
                f"(uniform K={self.uniform_K})"
            ),
        )


def run_fig4a(
    k: int,
    delta: float = 0.05,
    epsilons: Sequence[float] = (0.03, 0.04, 0.05),
    c_max: int = 100,
) -> Fig4aResult:
    """Figure 4(a): utility curves for Uniform and Exponential at fixed δ.

    The uniform scheme's K comes from Theorem VI.1 (K = 2k/δ); each
    exponential configuration solves (α, K) from Theorem VI.3 for its ε.
    """
    c_values = list(range(1, c_max + 1))
    K_uni = solve_uniform_K(k, delta)
    uniform_utilities = [uniform_utility(c, K_uni) for c in c_values]
    exponential: Dict[float, Tuple[float, Optional[int], List[float]]] = {}
    for eps in epsilons:
        alpha, K = solve_exponential_params(k, eps, delta)
        exponential[eps] = (
            alpha,
            K,
            [exponential_utility(c, alpha, K) for c in c_values],
        )
    return Fig4aResult(
        k=k,
        delta=delta,
        c_values=c_values,
        uniform_K=K_uni,
        uniform_utilities=uniform_utilities,
        exponential=exponential,
    )


@dataclass
class Fig4bResult:
    """Figure 4(b): utility difference (Expo − Uniform) at ε = −ln(1−δ)."""

    k: int
    c_values: List[int]
    #: δ -> difference series.
    differences: Dict[float, List[float]]

    def max_difference(self, delta: float) -> float:
        """Peak utility advantage of the exponential scheme for this δ."""
        return max(self.differences[delta])

    def render(self) -> str:
        series = {
            f"diff(delta={delta})": diffs
            for delta, diffs in sorted(self.differences.items())
        }
        return format_series(
            "c",
            self.c_values,
            series,
            title=(
                f"Figure 4(b) — max utility difference (expo − uniform), "
                f"k={self.k}, eps=-ln(1-delta)"
            ),
        )


def run_fig4b(
    k: int,
    deltas: Sequence[float] = (0.01, 0.03, 0.05),
    c_max: int = 100,
) -> Fig4bResult:
    """Figure 4(b): u_expo − u_uniform at the maximal feasible ε per δ.

    At ε = −ln(1−δ) only the untruncated (K = ∞) exponential attains δ,
    so the exponential side uses α = (1−δ)^(1/k) with K = None; the
    uniform side uses K = 2k/δ.
    """
    c_values = list(range(1, c_max + 1))
    differences: Dict[float, List[float]] = {}
    for delta in deltas:
        eps = max_exponential_epsilon(delta)
        alpha, K_expo = solve_exponential_params(k, eps, delta)
        K_uni = solve_uniform_K(k, delta)
        differences[delta] = [
            exponential_utility(c, alpha, K_expo) - uniform_utility(c, K_uni)
            for c in c_values
        ]
    return Fig4bResult(k=k, c_values=c_values, differences=differences)


# ======================================================================
# Figure 5 — trace-replay cache hit rates
# ======================================================================
#: Cache-size sweep of Section VII; None is the paper's "Inf" point.
FIG5_CACHE_SIZES: Tuple[Optional[int], ...] = (2000, 4000, 8000, 16000, 32000, None)


def _scheme_factory(
    name: str, k: int, epsilon: float, delta: float, seed: int
) -> CacheScheme:
    return build_scheme(name, seed=seed, k=k, epsilon=epsilon, delta=delta)


@dataclass
class Fig5Result:
    """One hit-rate sweep: scheme/configuration × cache size."""

    title: str
    cache_sizes: Tuple[Optional[int], ...]
    #: configuration label -> hit rate (%) per cache size.
    hit_rates: Dict[str, List[float]] = field(default_factory=dict)
    stats: Dict[Tuple[str, Optional[int]], ReplayStats] = field(default_factory=dict)

    def render(self) -> str:
        x = [size if size is not None else "Inf" for size in self.cache_sizes]
        return format_series("cache_size", x, self.hit_rates, title=self.title)


def _run_fig5_sweep(
    workload: Union[Trace, IrcacheConfig],
    specs: Sequence[ReplaySpec],
    workers: Optional[int],
    sharded: bool,
) -> List[ReplayStats]:
    """Dispatch a figure-5 grid onto the right workload pathway.

    A materialized :class:`Trace` replays in RAM; an
    :class:`IrcacheConfig` goes through the on-disk trace cache, and
    with ``sharded=True`` through the memory-mapped shard cache — built
    by streaming generation, so the full request log never has to fit
    in RAM.  All three pathways are bit-identical.
    """
    if isinstance(workload, IrcacheConfig):
        return run_replay_sweep(
            specs, trace_config=workload, workers=workers, sharded=sharded
        )
    if sharded:
        raise ValueError(
            "sharded fig5 sweeps take an IrcacheConfig workload "
            "(a materialized Trace defeats the constant-memory point)"
        )
    return run_replay_sweep(specs, trace=workload, workers=workers)


def run_fig5a(
    trace: Union[Trace, IrcacheConfig],
    cache_sizes: Sequence[Optional[int]] = FIG5_CACHE_SIZES,
    k: int = 5,
    epsilon: float = 0.005,
    delta: float = 0.01,
    private_fraction: float = 0.2,
    seed: int = 0,
    workers: Optional[int] = None,
    sharded: bool = False,
) -> Fig5Result:
    """Figure 5(a): hit rate vs cache size for the four algorithms.

    The paper fixes k = 5 and ε = 0.005 but does not state δ; we use
    δ = 0.01 (the smallest round value ≥ the exponential scheme's floor
    1 − e^(−ε) ≈ 0.005) and record the choice in EXPERIMENTS.md.

    The (scheme × size) grid runs through
    :func:`repro.perf.parallel.run_replay_sweep`; ``workers`` (default:
    ``REPRO_WORKERS`` / CPU count) never changes the numbers.  ``trace``
    may be a materialized :class:`Trace` or an :class:`IrcacheConfig`
    (cache-backed; combine with ``sharded=True`` for the
    constant-memory streaming pathway at large scale).
    """
    marking = ContentMarking(private_fraction, salt=seed)
    params = {"k": k, "epsilon": epsilon, "delta": delta}
    scheme_names = ("no-privacy", "exponential", "uniform", "always-delay")
    result = Fig5Result(
        title=(
            f"Figure 5(a) — cache hit rate (%) vs cache size; k={k}, "
            f"eps={epsilon}, delta={delta}, {private_fraction:.0%} private"
        ),
        cache_sizes=tuple(cache_sizes),
    )
    specs = [
        ReplaySpec(
            scheme=name,
            scheme_params=params,
            cache_size=size,
            marking=marking,
            seed=seed,
            label=name,
        )
        for name in scheme_names
        for size in cache_sizes
    ]
    sweep = _run_fig5_sweep(trace, specs, workers, sharded)
    for spec, stats in zip(specs, sweep):
        result.stats[(spec.label, spec.cache_size)] = stats
        result.hit_rates.setdefault(spec.label, []).append(100.0 * stats.hit_rate)
    return result


def run_fig5b(
    trace: Union[Trace, IrcacheConfig],
    cache_sizes: Sequence[Optional[int]] = FIG5_CACHE_SIZES,
    k: int = 5,
    epsilon: float = 0.005,
    delta: float = 0.01,
    private_fractions: Sequence[float] = (0.05, 0.10, 0.20, 0.40),
    seed: int = 0,
    workers: Optional[int] = None,
    sharded: bool = False,
) -> Fig5Result:
    """Figure 5(b): Exponential-Random-Cache under varying private share.

    Accepts the same workload forms as :func:`run_fig5a`.
    """
    params = {"k": k, "epsilon": epsilon, "delta": delta}
    result = Fig5Result(
        title=(
            f"Figure 5(b) — Exponential-Random-Cache hit rate (%) vs cache "
            f"size; k={k}, eps={epsilon}, delta={delta}"
        ),
        cache_sizes=tuple(cache_sizes),
    )
    specs = [
        ReplaySpec(
            scheme="exponential",
            scheme_params=params,
            cache_size=size,
            marking=ContentMarking(fraction, salt=seed),
            seed=seed,
            label=f"{fraction:.0%} private",
        )
        for fraction in private_fractions
        for size in cache_sizes
    ]
    sweep = _run_fig5_sweep(trace, specs, workers, sharded)
    for spec, stats in zip(specs, sweep):
        result.stats[(spec.label, spec.cache_size)] = stats
        result.hit_rates.setdefault(spec.label, []).append(100.0 * stats.hit_rate)
    return result


# ======================================================================
# Section III amplification table
# ======================================================================
@dataclass
class AmplificationResult:
    """Success-vs-fragments table from a measured single-probe success."""

    p_single: float
    fragments: List[int]
    analytic_success: List[float]

    def render(self) -> str:
        return format_table(
            ["fragments_n", "Pr[success] = 1-(1-p)^n"],
            list(zip(self.fragments, self.analytic_success)),
            title=(
                f"Section III amplification — single-probe success "
                f"p = {self.p_single:.3f}"
            ),
        )


def run_amplification(p_single: float, max_fragments: int = 16) -> AmplificationResult:
    """The paper's amplification arithmetic from a measured p."""
    from repro.attacks.amplification import success_curve

    fragments = list(range(1, max_fragments + 1))
    return AmplificationResult(
        p_single=p_single,
        fragments=fragments,
        analytic_success=success_curve(p_single, max_fragments),
    )
