"""Differential validation: oracle replay vs the interned fast kernel.

:func:`repro.workload.fast_replay.fast_replay` exists purely for speed;
its contract is *bit-identical* :class:`~repro.workload.replay.ReplayStats`
to the reference implementation :func:`repro.workload.replay.replay` for
any (trace, scheme, marking, cache-size) configuration.  This module
turns that contract into a checkable artifact: run both engines over a
grid of configurations and diff the stats field by field.

Scheme and marking objects are stateful (they own RNG streams), so each
engine gets a **freshly built** pair from the same seed — sharing one
object would advance its RNG in the first run and desynchronize the
second, reporting a false mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional, Sequence, Tuple

from repro.ndn.link import FixedDelay, GaussianJitterDelay, LogNormalDelay
from repro.ndn.network import Network
from repro.ndn.topology import fat_tree, local_lan
from repro.perf.parallel import build_scheme
from repro.sim.batch.script import (
    ConsumerScript,
    FetchStep,
    TopologyObservables,
    diff_observables,
    run_scripts_reference,
)
from repro.sim.rng import RngRegistry
from repro.workload.fast_replay import fast_replay
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.marking import RequestMarking
from repro.workload.replay import ReplayStats, replay
from repro.workload.trace import Trace


def diff_replay_stats(oracle: ReplayStats, fast: ReplayStats) -> List[str]:
    """Field-by-field differences, empty when bit-identical."""
    mismatches: List[str] = []
    for f in fields(ReplayStats):
        a = getattr(oracle, f.name)
        b = getattr(fast, f.name)
        if a != b:
            mismatches.append(f"{f.name}: oracle={a!r} fast={b!r}")
    return mismatches


@dataclass(frozen=True)
class DifferentialCase:
    """One (scheme, cache size, marking) configuration to cross-check."""

    scheme: str
    cache_size: Optional[int] = None
    mark_fraction: float = 0.3
    seed: int = 0

    @property
    def label(self) -> str:
        """Human-readable configuration tag."""
        cap = self.cache_size if self.cache_size is not None else "inf"
        return f"{self.scheme}/cap={cap}/mark={self.mark_fraction}/seed={self.seed}"


def default_differential_cases(seed: int = 0) -> List[DifferentialCase]:
    """The fig5-style grid: every registered scheme family at a bounded
    and an unbounded cache size."""
    cases = []
    for scheme in ("no-privacy", "always-delay", "uniform", "exponential"):
        for cache_size in (64, None):
            cases.append(
                DifferentialCase(scheme=scheme, cache_size=cache_size, seed=seed)
            )
    return cases


@dataclass
class CaseResult:
    """Outcome of one cross-checked configuration."""

    case: DifferentialCase
    oracle: ReplayStats
    fast: ReplayStats
    mismatches: List[str]

    @property
    def ok(self) -> bool:
        """True when the two engines agreed bit-for-bit."""
        return not self.mismatches


@dataclass
class DifferentialReport:
    """All case results of one differential validation run."""

    results: List[CaseResult]
    trace_requests: int

    @property
    def ok(self) -> bool:
        """True when every configuration agreed."""
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[CaseResult]:
        """The disagreeing configurations."""
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        """One line per case, pass/fail."""
        lines = []
        for r in self.results:
            status = "ok" if r.ok else "MISMATCH " + "; ".join(r.mismatches)
            lines.append(f"{r.case.label}: {status}")
        return "\n".join(lines)


def small_validation_trace(
    requests: int = 2000, seed: int = 0
) -> Trace:
    """A small, seed-reproducible trace for CI-speed validation runs."""
    return IrcacheGenerator(
        IrcacheConfig(
            requests=requests,
            users=20,
            objects=400,
            sites=40,
            duration_hours=1.0,
            seed=seed,
        )
    ).generate()


def _run_case(trace: Trace, case: DifferentialCase, engine) -> ReplayStats:
    # Fresh scheme AND fresh marking per engine: both are RNG-stateful.
    scheme = build_scheme(case.scheme, seed=case.seed)
    marking = (
        RequestMarking(case.mark_fraction, seed=case.seed)
        if case.mark_fraction > 0
        else None
    )
    return engine(
        trace,
        scheme=scheme,
        marking=marking,
        cache_size=case.cache_size,
        seed=case.seed,
    )


def validate_differential(
    trace: Optional[Trace] = None,
    cases: Optional[Sequence[DifferentialCase]] = None,
    seed: int = 0,
) -> DifferentialReport:
    """Cross-check oracle vs fast replay over ``cases``.

    Defaults: a small synthetic trace and the full
    :func:`default_differential_cases` grid.  The report's :attr:`~DifferentialReport.ok`
    is the ship/no-ship bit; per-field mismatches are in the results.
    """
    if trace is None:
        trace = small_validation_trace(seed=seed)
    if cases is None:
        cases = default_differential_cases(seed=seed)
    results: List[CaseResult] = []
    for case in cases:
        oracle_stats = _run_case(trace, case, replay)
        fast_stats = _run_case(trace, case, fast_replay)
        results.append(
            CaseResult(
                case=case,
                oracle=oracle_stats,
                fast=fast_stats,
                mismatches=diff_replay_stats(oracle_stats, fast_stats),
            )
        )
    return DifferentialReport(results=results, trace_requests=len(trace))


# ======================================================================
# Topology differential: reference engine vs the batch kernel
# ======================================================================
#: Prefix the topology-differential object universe lives under (matches
#: both the sim-core workloads and the fig3 attack topologies).
_TOPO_PREFIX = "/content"


@dataclass(frozen=True)
class TopologyCase:
    """One (topology, scheme, policy, workload) configuration to
    cross-check between the reference engine and the batch kernel."""

    topology: str  # "star" | "tree" | "fig3a_lan" | "fat_tree"
    scheme: str = "no-privacy"
    policy: str = "lru"
    #: Cache-admission strategy kind (:mod:`repro.ndn.strategy`) on every
    #: router; "lce" is the seed's cache-everywhere behavior.
    caching: str = "lce"
    #: Forwarding strategy ("best-route" | "multicast"); the batch kernel
    #: only supports best-route, so a multicast case must set
    #: :attr:`expect_fallback`.
    forwarding: str = "best-route"
    #: True for configurations the batch compiler must *refuse*: the
    #: batch leg then runs through ``run_scripts(kernel="auto")`` and the
    #: case asserts the transparent reference fallback (engine recorded
    #: as "reference", observables still identical).
    expect_fallback: bool = False
    requests_per_consumer: int = 30
    #: Consumer wait budget; set below the topology RTT to exercise the
    #: timeout / PIT-expiry / retransmission paths.
    timeout: float = 4000.0
    #: Every Nth fetch carries the privacy mark (0 disables marking).
    private_period: int = 3
    cache_capacity: int = 8
    seed: int = 0

    @property
    def label(self) -> str:
        """Human-readable configuration tag."""
        tag = (
            f"{self.topology}/{self.scheme}/{self.policy}/{self.caching}"
            f"/to={self.timeout}/seed={self.seed}"
        )
        if self.expect_fallback:
            tag += "/fallback"
        return tag


def default_topology_cases(seed: int = 0) -> List[TopologyCase]:
    """The CI grid: sim-core shapes plus the fig3 LAN panel and a fat
    tree, covering NoPrivacy and the privacy schemes, all four
    replacement policies, every caching strategy, a small-timeout
    retransmission case, and one asserted compiler fallback."""
    return [
        TopologyCase("star", "no-privacy", "lru", seed=seed),
        TopologyCase("star", "uniform", "random", seed=seed),
        TopologyCase("tree", "exponential", "lfu", seed=seed),
        # Fixed-delay tree RTT is >= 5.2 ms; a 2.4 ms budget forces
        # consumer timeouts, PIT expiry, and same-name refetch races.
        TopologyCase("tree", "no-privacy", "fifo", timeout=2.4, seed=seed),
        TopologyCase("fig3a_lan", "no-privacy", "lru", seed=seed),
        TopologyCase("fig3a_lan", "uniform", "lru", seed=seed),
        TopologyCase("fig3a_lan", "always-delay", "lru", seed=seed),
        # Strategy × scheme × replacement: every registered caching
        # strategy, crossed with randomized replacement and the privacy
        # schemes so strategy and policy draws interleave on one stream
        # ordering in both engines.
        TopologyCase("tree", "no-privacy", "lru", caching="lcd", seed=seed),
        TopologyCase("tree", "uniform", "random", caching="probcache", seed=seed),
        TopologyCase("tree", "exponential", "lfu", caching="bernoulli", seed=seed),
        TopologyCase("star", "no-privacy", "fifo", caching="edge", seed=seed),
        TopologyCase("tree", "always-delay", "lru", caching="cl4m", seed=seed),
        TopologyCase("fig3a_lan", "uniform", "lru", caching="bernoulli", seed=seed),
        TopologyCase("fat_tree", "uniform", "lru", caching="lcd", seed=seed),
        TopologyCase("fat_tree", "no-privacy", "random", caching="probcache", seed=seed),
        TopologyCase("fat_tree", "exponential", "lru", caching="cl4m", seed=seed),
        # Multicast forwarding is outside the kernel's subset: the case
        # must *fall back* transparently, not diverge (the tree has one
        # upstream per prefix, so multicast forwards identically).
        TopologyCase(
            "tree",
            "no-privacy",
            "lru",
            caching="lcd",
            forwarding="multicast",
            expect_fallback=True,
            seed=seed,
        ),
    ]


def _topology_scripts(
    consumer_names: Sequence[str], case: TopologyCase, universe: int
) -> List[ConsumerScript]:
    """Deterministic interleaved workload with a fixed fraction of
    privacy-marked fetches (no RNG draws in the workload itself)."""
    period = case.private_period
    return [
        ConsumerScript(
            consumer=name,
            steps=tuple(
                FetchStep(
                    f"{_TOPO_PREFIX}/obj-{(i * 3 + j) % universe}",
                    timeout=case.timeout,
                    private=(period > 0 and (i + j) % period == 0),
                )
                for i in range(case.requests_per_consumer)
            ),
        )
        for j, name in enumerate(consumer_names)
    ]


def _build_topology_case(
    case: TopologyCase,
) -> Tuple[Network, List[ConsumerScript]]:
    """Build a **fresh** network + scripts for ``case``.

    Called once per engine: schemes and jittery links are RNG-stateful,
    so sharing a network between runs would desynchronize the second run
    and report a false mismatch (same rule as :func:`_run_case`).
    """
    scheme_n = 0

    def scheme():
        # Distinct instance per router (the batch compiler rejects shared
        # scheme objects), deterministic per (case seed, router ordinal).
        nonlocal scheme_n
        scheme_n += 1
        return build_scheme(case.scheme, seed=case.seed * 101 + scheme_n)

    if case.topology == "star":
        net = Network(rng=RngRegistry(case.seed))
        net.add_router(
            "R",
            capacity=case.cache_capacity,
            scheme=scheme(),
            policy=case.policy,
            strategy=case.forwarding,
            caching=case.caching,
        )
        net.add_producer("P", _TOPO_PREFIX)
        net.connect(
            "R", "P", LogNormalDelay(base=1.0, tail_scale=0.7, sigma=0.8)
        )
        net.add_route("R", _TOPO_PREFIX, "P")
        names = []
        for j in range(4):
            name = f"C{j}"
            net.add_consumer(name)
            net.connect(
                name,
                "R",
                GaussianJitterDelay(base=1.8, jitter_std=0.12, floor=1.5),
            )
            names.append(name)
        return net, _topology_scripts(names, case, universe=12)

    if case.topology == "tree":
        net = Network(rng=RngRegistry(case.seed))
        net.add_producer("P", _TOPO_PREFIX, processing_delay=0.4)
        net.add_router(
            "R0",
            capacity=case.cache_capacity,
            scheme=scheme(),
            policy=case.policy,
            processing_delay=0.2,
            strategy=case.forwarding,
            caching=case.caching,
        )
        net.connect("R0", "P", FixedDelay(1.0))
        net.add_route("R0", _TOPO_PREFIX, "P")
        names: List[str] = []
        for a in range(2):
            leaf = f"R1-{a}"
            net.add_router(
                leaf,
                capacity=case.cache_capacity,
                scheme=scheme(),
                policy=case.policy,
                strategy=case.forwarding,
                caching=case.caching,
            )
            net.connect(leaf, "R0", FixedDelay(0.5))
            net.add_route(leaf, _TOPO_PREFIX, "R0")
            for c in range(2):
                name = f"C{a}{c}"
                net.add_consumer(name)
                net.connect(name, leaf, FixedDelay(0.3))
                names.append(name)
        return net, _topology_scripts(names, case, universe=10)

    if case.topology == "fig3a_lan":
        topo = local_lan(
            seed=case.seed,
            scheme=scheme(),
            cache_capacity=case.cache_capacity,
            caching=case.caching,
        )
        names = ["U", "Adv"]
        return topo.network, _topology_scripts(names, case, universe=8)

    if case.topology == "fat_tree":
        topo = fat_tree(
            seed=case.seed,
            scheme=scheme(),
            cache_capacity=case.cache_capacity,
            caching=case.caching,
            policy=case.policy,
        )
        names = ["U", "Adv"]
        return topo.network, _topology_scripts(names, case, universe=16)

    raise ValueError(
        f"unknown topology {case.topology!r}; "
        "choose from 'star', 'tree', 'fig3a_lan', 'fat_tree'"
    )


@dataclass
class TopologyCaseResult:
    """Outcome of one cross-checked topology configuration."""

    case: TopologyCase
    oracle: TopologyObservables
    batch: TopologyObservables
    mismatches: List[str]

    @property
    def ok(self) -> bool:
        """True when the two engines agreed bit-for-bit."""
        return not self.mismatches


@dataclass
class TopologyDifferentialReport:
    """All case results of one topology differential run."""

    results: List[TopologyCaseResult]

    @property
    def ok(self) -> bool:
        """True when every configuration agreed."""
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[TopologyCaseResult]:
        """The disagreeing configurations."""
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        """One line per case, pass/fail."""
        lines = []
        for r in self.results:
            status = "ok" if r.ok else "MISMATCH " + "; ".join(r.mismatches)
            lines.append(f"{r.case.label}: {status}")
        return "\n".join(lines)


def validate_topology_differential(
    cases: Optional[Sequence[TopologyCase]] = None,
    seed: int = 0,
) -> TopologyDifferentialReport:
    """Cross-check the reference engine vs the batch kernel over whole
    topologies: delivery counts, per-consumer RTT streams, per-link
    packet tallies, per-router counters and ``stats_summary``, event
    counts, and the simulated end time must all be bit-identical.

    Each engine gets a freshly built (network, scripts) pair per case.
    The batch leg goes through :func:`repro.sim.batch.kernel.run_scripts_batch`
    directly — a topology that cannot compile is a case *failure* here,
    not a silent fallback (that transparency belongs to ``run_scripts``).
    Cases with :attr:`TopologyCase.expect_fallback` invert that: their
    batch leg runs ``run_scripts(kernel="auto")`` and the case fails
    unless the compiler refused (engine recorded as ``"reference"``) while
    the observables still match the oracle leg.
    """
    from repro.sim.batch import run_scripts
    from repro.sim.batch.kernel import run_scripts_batch

    if cases is None:
        cases = default_topology_cases(seed=seed)
    results: List[TopologyCaseResult] = []
    for case in cases:
        net, scripts = _build_topology_case(case)
        oracle = run_scripts_reference(net, scripts)
        net, scripts = _build_topology_case(case)
        if case.expect_fallback:
            batch = run_scripts(net, scripts, kernel="auto")
            mismatches = diff_observables(oracle, batch)
            if batch.kernel != "reference":
                mismatches.append(
                    f"expected a transparent compiler fallback but the "
                    f"case ran on the {batch.kernel!r} engine"
                )
        else:
            batch = run_scripts_batch(net, scripts)
            mismatches = diff_observables(oracle, batch)
        results.append(
            TopologyCaseResult(
                case=case,
                oracle=oracle,
                batch=batch,
                mismatches=mismatches,
            )
        )
    return TopologyDifferentialReport(results=results)


# ======================================================================
# Streaming differential: stream→shards→replay vs generate→compile→replay
# ======================================================================
@dataclass(frozen=True)
class StreamingCase:
    """One replay configuration cross-checked between the sharded and
    the in-RAM fast path."""

    scheme: str
    policy: str = "lru"
    cache_size: Optional[int] = 64
    marking: str = "request"  # "none" | "content" | "request"
    seed: int = 0

    @property
    def label(self) -> str:
        cap = self.cache_size if self.cache_size is not None else "inf"
        return (
            f"{self.scheme}/{self.policy}/cap={cap}/"
            f"mark={self.marking}/seed={self.seed}"
        )


def default_streaming_cases(seed: int = 0) -> List[StreamingCase]:
    """Scheme × policy × marking corners of the streaming-replay grid."""
    return [
        StreamingCase("no-privacy", "lru", 64, "none", seed),
        StreamingCase("uniform", "fifo", 48, "content", seed),
        StreamingCase("exponential", "lfu", 96, "request", seed),
        StreamingCase("always-delay", "random", None, "request", seed),
    ]


@dataclass
class StreamingCaseResult:
    """Outcome of one streaming-vs-materialized comparison."""

    label: str
    mismatches: List[str]

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class StreamingDifferentialReport:
    """All comparisons of one streaming-differential run."""

    results: List[StreamingCaseResult]
    trace_requests: int

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[StreamingCaseResult]:
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        lines = []
        for r in self.results:
            status = "ok" if r.ok else "MISMATCH " + "; ".join(r.mismatches)
            lines.append(f"{r.label}: {status}")
        return "\n".join(lines)


def _streaming_marking(kind: str, fraction: float, seed: int):
    """Fresh marking instance per replay leg (RequestMarking is RNG-
    stateful: sharing one across legs would continue its stream)."""
    from repro.workload.marking import ContentMarking

    if kind == "none":
        return None
    if kind == "content":
        return ContentMarking(fraction, salt=seed)
    if kind == "request":
        return RequestMarking(fraction, seed=seed)
    raise ValueError(f"unknown marking kind {kind!r}")


def _star_edge_network(seed: int, consumers: Sequence[str]) -> Network:
    """A fresh deterministic star edge (same shape as the defense
    suites): consumers → one caching router → one root producer."""
    net = Network(rng=RngRegistry(seed))
    net.add_router("E", capacity=64, scheme=build_scheme("uniform", seed=seed))
    net.add_producer("P", "/")
    for name in consumers:
        net.add_consumer(name)
        net.connect(name, "E", FixedDelay(0.5))
    net.connect("E", "P", FixedDelay(2.0))
    net.add_route("E", "/", "P")
    return net


def validate_streaming_differential(
    cases: Optional[Sequence[StreamingCase]] = None,
    seed: int = 0,
    requests: int = 2500,
    sim_requests: int = 500,
) -> StreamingDifferentialReport:
    """Cross-check the streaming pipeline against the materialized one.

    Three layers, all bit-identity:

    * **replay grid** — ``stream → compile_stream → fast_replay`` (shard
      by shard, mmap'd) vs ``generate → compile → fast_replay`` over the
      scheme/policy/marking grid: identical :class:`ReplayStats`,
    * **oracle anchor** — one cell also compared against the reference
      event-driven :func:`~repro.workload.replay.replay`, pinning the
      sharded path to the original semantics rather than just to the
      fast kernel,
    * **simulator observables** — the packet simulator driven from the
      streaming workload vs from its materialized twin through the same
      :func:`~repro.sim.workload_driver.scripts_from_workload` driver:
      identical scripts and identical :class:`TopologyObservables`.

    Every leg gets freshly built scheme/marking instances (both are
    RNG-stateful).
    """
    import tempfile

    from repro.sim.batch.script import run_scripts_reference
    from repro.sim.workload_driver import scripts_from_workload
    from repro.workload.sharded import compile_stream
    from repro.workload.streaming import TraceWorkload

    if cases is None:
        cases = default_streaming_cases(seed=seed)
    config = IrcacheConfig(
        requests=requests,
        users=24,
        objects=400,
        sites=30,
        session_locality=0.3,
        duration_hours=1.0,
        seed=seed,
    )
    trace = IrcacheGenerator(config).generate()
    results: List[StreamingCaseResult] = []
    with tempfile.TemporaryDirectory(prefix="repro-streamdiff-") as tmp:
        sharded = compile_stream(
            IrcacheGenerator(config).stream(),
            tmp,
            shard_size=max(1, requests // 7),
        )
        sharded.verify()

        def run(workload, case: StreamingCase, engine) -> ReplayStats:
            return engine(
                workload,
                scheme=build_scheme(case.scheme, seed=case.seed),
                marking=_streaming_marking(case.marking, 0.25, case.seed),
                cache_size=case.cache_size,
                policy=case.policy,
                seed=case.seed,
            )

        for case in cases:
            in_ram = run(trace, case, fast_replay)
            streamed = run(sharded, case, fast_replay)
            results.append(
                StreamingCaseResult(
                    label=f"replay:{case.label}",
                    mismatches=diff_replay_stats(in_ram, streamed),
                )
            )

        # Oracle anchor: the sharded path against the reference replay.
        anchor = cases[0]
        oracle = run(trace, anchor, replay)
        streamed = run(sharded, anchor, fast_replay)
        results.append(
            StreamingCaseResult(
                label=f"oracle-anchor:{anchor.label}",
                mismatches=diff_replay_stats(oracle, streamed),
            )
        )

    # Simulator observables: streaming vs materialized through the same
    # driver (reference engine both legs; the legs differ only in the
    # workload's representation).
    sim_config = IrcacheConfig(
        requests=sim_requests,
        users=12,
        objects=120,
        sites=16,
        session_locality=0.3,
        duration_hours=0.25,
        seed=seed + 1,
    )
    consumers = [f"F{i}" for i in range(4)]
    driver_kwargs = dict(time_scale=1e-3, timeout=5000.0, private_period=7)
    sim_trace = IrcacheGenerator(sim_config).generate()
    scripts_mat = scripts_from_workload(
        TraceWorkload(sim_trace), consumers, **driver_kwargs
    )
    scripts_stream = scripts_from_workload(
        IrcacheGenerator(sim_config).stream(), consumers, **driver_kwargs
    )
    mismatches: List[str] = []
    if scripts_mat != scripts_stream:
        mismatches.append("driver scripts differ between representations")
    obs_mat = run_scripts_reference(
        _star_edge_network(seed, consumers), scripts_mat
    )
    obs_stream = run_scripts_reference(
        _star_edge_network(seed, consumers), scripts_stream
    )
    mismatches.extend(diff_observables(obs_mat, obs_stream))
    if obs_stream.total_delivered == 0:
        mismatches.append("streaming simulator leg delivered nothing")
    results.append(
        StreamingCaseResult(label="simulator:star-edge", mismatches=mismatches)
    )
    return StreamingDifferentialReport(
        results=results, trace_requests=requests
    )
