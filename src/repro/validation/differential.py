"""Differential validation: oracle replay vs the interned fast kernel.

:func:`repro.workload.fast_replay.fast_replay` exists purely for speed;
its contract is *bit-identical* :class:`~repro.workload.replay.ReplayStats`
to the reference implementation :func:`repro.workload.replay.replay` for
any (trace, scheme, marking, cache-size) configuration.  This module
turns that contract into a checkable artifact: run both engines over a
grid of configurations and diff the stats field by field.

Scheme and marking objects are stateful (they own RNG streams), so each
engine gets a **freshly built** pair from the same seed — sharing one
object would advance its RNG in the first run and desynchronize the
second, reporting a false mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional, Sequence

from repro.perf.parallel import build_scheme
from repro.workload.fast_replay import fast_replay
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.marking import RequestMarking
from repro.workload.replay import ReplayStats, replay
from repro.workload.trace import Trace


def diff_replay_stats(oracle: ReplayStats, fast: ReplayStats) -> List[str]:
    """Field-by-field differences, empty when bit-identical."""
    mismatches: List[str] = []
    for f in fields(ReplayStats):
        a = getattr(oracle, f.name)
        b = getattr(fast, f.name)
        if a != b:
            mismatches.append(f"{f.name}: oracle={a!r} fast={b!r}")
    return mismatches


@dataclass(frozen=True)
class DifferentialCase:
    """One (scheme, cache size, marking) configuration to cross-check."""

    scheme: str
    cache_size: Optional[int] = None
    mark_fraction: float = 0.3
    seed: int = 0

    @property
    def label(self) -> str:
        """Human-readable configuration tag."""
        cap = self.cache_size if self.cache_size is not None else "inf"
        return f"{self.scheme}/cap={cap}/mark={self.mark_fraction}/seed={self.seed}"


def default_differential_cases(seed: int = 0) -> List[DifferentialCase]:
    """The fig5-style grid: every registered scheme family at a bounded
    and an unbounded cache size."""
    cases = []
    for scheme in ("no-privacy", "always-delay", "uniform", "exponential"):
        for cache_size in (64, None):
            cases.append(
                DifferentialCase(scheme=scheme, cache_size=cache_size, seed=seed)
            )
    return cases


@dataclass
class CaseResult:
    """Outcome of one cross-checked configuration."""

    case: DifferentialCase
    oracle: ReplayStats
    fast: ReplayStats
    mismatches: List[str]

    @property
    def ok(self) -> bool:
        """True when the two engines agreed bit-for-bit."""
        return not self.mismatches


@dataclass
class DifferentialReport:
    """All case results of one differential validation run."""

    results: List[CaseResult]
    trace_requests: int

    @property
    def ok(self) -> bool:
        """True when every configuration agreed."""
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[CaseResult]:
        """The disagreeing configurations."""
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        """One line per case, pass/fail."""
        lines = []
        for r in self.results:
            status = "ok" if r.ok else "MISMATCH " + "; ".join(r.mismatches)
            lines.append(f"{r.case.label}: {status}")
        return "\n".join(lines)


def small_validation_trace(
    requests: int = 2000, seed: int = 0
) -> Trace:
    """A small, seed-reproducible trace for CI-speed validation runs."""
    return IrcacheGenerator(
        IrcacheConfig(
            requests=requests,
            users=20,
            objects=400,
            sites=40,
            duration_hours=1.0,
            seed=seed,
        )
    ).generate()


def _run_case(trace: Trace, case: DifferentialCase, engine) -> ReplayStats:
    # Fresh scheme AND fresh marking per engine: both are RNG-stateful.
    scheme = build_scheme(case.scheme, seed=case.seed)
    marking = (
        RequestMarking(case.mark_fraction, seed=case.seed)
        if case.mark_fraction > 0
        else None
    )
    return engine(
        trace,
        scheme=scheme,
        marking=marking,
        cache_size=case.cache_size,
        seed=case.seed,
    )


def validate_differential(
    trace: Optional[Trace] = None,
    cases: Optional[Sequence[DifferentialCase]] = None,
    seed: int = 0,
) -> DifferentialReport:
    """Cross-check oracle vs fast replay over ``cases``.

    Defaults: a small synthetic trace and the full
    :func:`default_differential_cases` grid.  The report's :attr:`~DifferentialReport.ok`
    is the ship/no-ship bit; per-field mismatches are in the results.
    """
    if trace is None:
        trace = small_validation_trace(seed=seed)
    if cases is None:
        cases = default_differential_cases(seed=seed)
    results: List[CaseResult] = []
    for case in cases:
        oracle_stats = _run_case(trace, case, replay)
        fast_stats = _run_case(trace, case, fast_replay)
        results.append(
            CaseResult(
                case=case,
                oracle=oracle_stats,
                fast=fast_stats,
                mismatches=diff_replay_stats(oracle_stats, fast_stats),
            )
        )
    return DifferentialReport(results=results, trace_requests=len(trace))
