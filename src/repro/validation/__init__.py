"""Runtime validation: conservation-law invariants and differential replay.

Two independent nets under the simulator:

* :class:`InvariantChecker` audits live packet-level state — every
  interest a forwarder admits must be accounted for exactly once
  (satisfied, dropped, Nacked, or still pending), and no table may exceed
  its configured capacity.  It can be asserted once at end of run or
  installed as a periodic in-run monitor.
* :func:`validate_differential` replays the same trace through the
  event-driven oracle (:func:`repro.workload.replay.replay`) and the
  interned fast kernel (:func:`repro.workload.fast_replay.fast_replay`)
  and demands bit-identical :class:`~repro.workload.replay.ReplayStats` —
  the guard that keeps the performance path honest.

Both are wired into ``repro validate`` (CLI), ``bench_overload``, and CI.
"""

from repro.validation.differential import (
    DifferentialCase,
    DifferentialReport,
    StreamingCase,
    StreamingDifferentialReport,
    default_differential_cases,
    default_streaming_cases,
    diff_replay_stats,
    validate_differential,
    validate_streaming_differential,
)
from repro.validation.invariants import (
    InvariantChecker,
    InvariantError,
    Violation,
)
from repro.validation.scenario import OverloadResult, run_overload_scenario

__all__ = [
    "DifferentialCase",
    "DifferentialReport",
    "InvariantChecker",
    "InvariantError",
    "OverloadResult",
    "Violation",
    "StreamingCase",
    "StreamingDifferentialReport",
    "default_differential_cases",
    "default_streaming_cases",
    "diff_replay_stats",
    "run_overload_scenario",
    "validate_differential",
    "validate_streaming_differential",
]
