"""The canonical overload scenario: legitimate traffic under interest flood.

One star topology exercises every overload mechanism at once::

    consumer c ──┐
    attacker a ──┤── router R ──┬── producer p   (/data, answers)
                 │              └── producer f   (/flood, silent)

The attacker floods distinct ``/flood/...`` names that producer ``f``
never answers, so every flood interest dangles in R's PIT until its
lifetime expires — the resource-exhaustion attack.  The consumer fetches
a small set of ``/data/...`` objects with retries and measures delivery.

:func:`run_overload_scenario` runs the scenario against a given router
configuration (unbounded baseline vs bounded/rate-limited/Nacking) with
the invariant checker installed, and returns everything ``bench_overload``,
``repro validate``, and the robustness tests assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.faults.adversarial import CachePollutionWindow, InterestFloodWindow
from repro.ndn.admission import InterestRateLimit
from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout
from repro.validation.invariants import InvariantChecker


@dataclass
class OverloadResult:
    """Outcome of one overload-scenario run."""

    delivered: int
    attempted: int
    events: int
    router_summary: Dict[str, float]
    checker: InvariantChecker
    network: Network = field(repr=False)

    @property
    def delivery_rate(self) -> float:
        """Fraction of legitimate fetches that completed."""
        return self.delivered / self.attempted if self.attempted else 0.0

    @property
    def peak_pit_size(self) -> int:
        """High-water mark of the router's PIT."""
        return int(self.router_summary["pit_peak_size"])


def run_overload_scenario(
    pit_capacity: Optional[int] = None,
    pit_overflow: str = "evict-oldest-expiry",
    rate_limit: Optional[InterestRateLimit] = None,
    cs_capacity: int = 32,
    fetches: int = 200,
    fetch_catalog: int = 20,
    fetch_interval: float = 10.0,
    flood_start: float = 100.0,
    flood_end: float = 2100.0,
    flood_interval: float = 2.0,
    flood_lifetime: float = 2000.0,
    pollution: bool = False,
    seed: int = 7,
    check_interval: float = 250.0,
    checker: Optional[InvariantChecker] = None,
) -> OverloadResult:
    """Run the flood scenario against one router configuration.

    ``pit_capacity=None`` is the unbounded baseline the attack crushes;
    a bounded PIT plus ``rate_limit`` is the hardened configuration.
    With an unbounded PIT the flood sustains ~``flood_lifetime /
    flood_interval`` dangling entries, so e.g. the defaults drive the
    baseline peak to ~1000 — more than 10x a 64-entry bounded table.
    ``pollution=True`` adds a CS-churn attack on the ``/data`` prefix.
    The returned result carries the (already-run) invariant checker; the
    caller decides whether to ``assert_ok``.
    """
    net = Network()
    router = net.add_router(
        "R",
        capacity=cs_capacity,
        pit_capacity=pit_capacity,
        pit_overflow=pit_overflow,
        rate_limit=rate_limit,
    )
    consumer = net.add_consumer("c")
    net.add_consumer("a")
    net.add_producer("p", "/data", auto_generate=True)
    net.add_producer("f", "/flood", auto_generate=False)
    net.connect("c", "R", FixedDelay(1.0))
    net.connect("a", "R", FixedDelay(1.0))
    net.connect("R", "p", FixedDelay(5.0))
    net.connect("R", "f", FixedDelay(5.0))
    net.add_route("R", "/data", "p")
    net.add_route("R", "/flood", "f")

    schedule = FaultSchedule(
        [
            InterestFloodWindow(
                attacker="a",
                prefix="/flood",
                start=flood_start,
                end=flood_end,
                interval=flood_interval,
                lifetime=flood_lifetime,
                seed=seed,
            )
        ]
    )
    if pollution:
        schedule.add(
            CachePollutionWindow(
                attacker="a",
                prefix="/data",
                start=flood_start,
                end=flood_end,
                interval=flood_interval * 2,
                catalog=cs_capacity * 20,
                seed=seed + 1,
            )
        )
    net.apply_faults(schedule)

    tally = {"delivered": 0, "attempted": 0}

    def legitimate():
        retry = RetryPolicy(retries=5, timeout=60.0, backoff=2.0)
        for i in range(fetches):
            result = yield from consumer.fetch(
                f"/data/obj-{i % fetch_catalog}", retry=retry
            )
            tally["attempted"] += 1
            if result is not None:
                tally["delivered"] += 1
            yield Timeout(fetch_interval)

    net.spawn(legitimate(), label="legit-consumer")

    horizon = flood_end + flood_lifetime + 4000.0
    monitor = checker if checker is not None else InvariantChecker()
    monitor.install(net, interval=check_interval, horizon=horizon)
    net.run(until=horizon + 4000.0)
    monitor.check_network(net)

    return OverloadResult(
        delivered=tally["delivered"],
        attempted=tally["attempted"],
        events=net.engine.events_processed,
        router_summary=router.stats_summary(),
        checker=monitor,
        network=net,
    )
