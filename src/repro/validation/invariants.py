"""Conservation-law invariants over live forwarder state.

The forwarder classifies every admitted interest exactly once, which
makes the following laws checkable at any instant the engine is quiescent
(no packet half-processed — i.e. between events, or after a run):

**A — interest conservation** (per router)::

    interest_in == rate_limited + defense_throttled + cs_hit
                   + cs_disguised_hit + pit_overflow_drop + pit_collapse
                   + scope_drop + no_route + pit_insert

**B — PIT ledger** (per router)::

    pit_insert == pit_satisfied + pit_expired + pit_nacked
                  + pit_preempted + pit_drained + pit_shed + len(pit)

**C — capacity bounds**: ``len(pit) <= pit.capacity`` (and the peak high
water mark too), ``len(cs) <= cs.capacity``.

**D — CS ledger**: ``cs.insertions == cs.removed + len(cs)``.

Law B holds only between events — a forwarded interest whose expiry timer
is in flight is still ``len(pit)`` — which is why the periodic monitor
(:meth:`InvariantChecker.install`) checks from *scheduled events* (the
engine is quiescent inside an event callback) rather than from arbitrary
python code.

The checker is toggleable: construct with ``enabled=False`` (or set
``checker.enabled = False``) to make every check a no-op, so harnesses
can leave the wiring in place and pay nothing in production sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # typing only — avoid import cycles
    from repro.ndn.forwarder import Forwarder
    from repro.ndn.network import Network


@dataclass(frozen=True)
class Violation:
    """One broken invariant on one router."""

    router: str
    law: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.router}] {self.law}: {self.detail}"


class InvariantError(AssertionError):
    """Raised by :meth:`InvariantChecker.assert_ok` on any violation."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = violations
        lines = "\n".join(f"  - {v}" for v in violations)
        super().__init__(
            f"{len(violations)} invariant violation(s):\n{lines}"
        )


class InvariantChecker:
    """Audits conservation laws A–D over forwarders.

    Violations found by any check accumulate in :attr:`violations`;
    :attr:`checks_run` counts completed audits (useful to prove the
    monitor actually ran when a run reports zero violations).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.violations: List[Violation] = []
        self.checks_run = 0

    # ------------------------------------------------------------------
    # Core audits
    # ------------------------------------------------------------------
    def check_forwarder(self, forwarder: "Forwarder") -> List[Violation]:
        """Audit one router; returns (and accumulates) its violations."""
        if not self.enabled:
            return []
        found: List[Violation] = []
        name = forwarder.name
        c = forwarder.monitor.counter

        ingress = c("interest_in")
        classified = (
            c("rate_limited")
            + c("defense_throttled")
            + c("cs_hit")
            + c("cs_disguised_hit")
            + c("pit_overflow_drop")
            + c("pit_collapse")
            + c("scope_drop")
            + c("no_route")
            + c("pit_insert")
        )
        if ingress != classified:
            found.append(
                Violation(
                    router=name,
                    law="A:interest-conservation",
                    detail=f"interest_in={ingress} but outcomes sum to {classified}",
                )
            )

        inserted = c("pit_insert")
        resolved = (
            c("pit_satisfied")
            + c("pit_expired")
            + c("pit_nacked")
            + c("pit_preempted")
            + c("pit_drained")
            + c("pit_shed")
            + len(forwarder.pit)
        )
        if inserted != resolved:
            found.append(
                Violation(
                    router=name,
                    law="B:pit-ledger",
                    detail=(
                        f"pit_insert={inserted} but resolutions + pending "
                        f"sum to {resolved} (pending={len(forwarder.pit)})"
                    ),
                )
            )

        pit_cap = forwarder.pit.capacity
        if pit_cap is not None:
            if len(forwarder.pit) > pit_cap:
                found.append(
                    Violation(
                        router=name,
                        law="C:pit-capacity",
                        detail=f"size {len(forwarder.pit)} > capacity {pit_cap}",
                    )
                )
            if forwarder.pit.peak_size > pit_cap:
                found.append(
                    Violation(
                        router=name,
                        law="C:pit-capacity",
                        detail=(
                            f"peak size {forwarder.pit.peak_size} "
                            f"> capacity {pit_cap}"
                        ),
                    )
                )
        cs_cap = forwarder.cs.capacity
        if cs_cap is not None and len(forwarder.cs) > cs_cap:
            found.append(
                Violation(
                    router=name,
                    law="C:cs-capacity",
                    detail=f"size {len(forwarder.cs)} > capacity {cs_cap}",
                )
            )

        balance = forwarder.cs.removed + len(forwarder.cs)
        if not forwarder.cs.ledger_balanced:
            found.append(
                Violation(
                    router=name,
                    law="D:cs-ledger",
                    detail=(
                        f"insertions={forwarder.cs.insertions} but "
                        f"removed + size = {balance}"
                    ),
                )
            )

        self.violations.extend(found)
        self.checks_run += 1
        return found

    def check_network(self, network: "Network") -> List[Violation]:
        """Audit every router of ``network``; returns new violations."""
        if not self.enabled:
            return []
        found: List[Violation] = []
        for router in network.routers.values():
            found.extend(self.check_forwarder(router))
        return found

    # ------------------------------------------------------------------
    # Ergonomics
    # ------------------------------------------------------------------
    def assert_ok(self, network: Optional["Network"] = None) -> None:
        """Check ``network`` (when given), then raise on any accumulated
        violation — including ones found by earlier periodic checks."""
        if not self.enabled:
            return
        if network is not None:
            self.check_network(network)
        if self.violations:
            raise InvariantError(list(self.violations))

    def install(
        self, network: "Network", interval: float, horizon: float
    ) -> int:
        """Schedule periodic audits every ``interval`` ms up to ``horizon``.

        Checks run as ordinary engine events, so they observe quiescent
        state (law B is exact there).  Violations accumulate silently;
        call :meth:`assert_ok` (or inspect :attr:`violations`) at end of
        run.  Returns the number of audits scheduled.
        """
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if not self.enabled:
            return 0
        count = 0
        t = network.engine.now + interval
        while t <= horizon:
            network.engine.schedule_at(
                t,
                lambda n=network: self.check_network(n),
                label="invariant-check",
            )
            count += 1
            t += interval
        return count

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"InvariantChecker(enabled={self.enabled}, "
            f"checks={self.checks_run}, violations={len(self.violations)})"
        )
