"""Parallel sweep runner for trace-replay experiment grids.

Every evaluation figure replays the same trace once per (scheme,
cache-size, trial) point; the points are embarrassingly parallel.  This
module fans them across a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping results **independent of the worker count**:

* each sweep point is a picklable :class:`ReplaySpec` carrying its own
  seed; trial seeds come from :func:`derive_seeds`
  (``np.random.SeedSequence.spawn``), so the RNG stream of a point never
  depends on which worker ran it or in what order,
* results are collected by spec index, returned in spec order,
* workers obtain the trace from an on-disk cache keyed by the
  :class:`~repro.workload.ircache.IrcacheConfig` hash (or by content hash
  for ad-hoc traces) instead of regenerating or unpickling ~10⁵ request
  objects per task,
* the serial fallback (``REPRO_WORKERS=1``, or a single spec) round-trips
  each spec through pickle so scheme/marking state is isolated exactly as
  process transport would isolate it — bit-identical to any worker count.

The runner is **failure-hardened** (see ``tests/perf/test_hardening.py``):

* worker death (``BrokenProcessPool``) and stalls (no spec completing
  within ``timeout`` seconds) tear the pool down and resubmit the
  incomplete specs on a fresh pool, bounded by ``max_restarts``; because
  seeds travel with the specs, a crash-recovered sweep is bit-identical
  to an undisturbed one,
* ``checkpoint=`` persists each completed point to disk
  (:class:`~repro.perf.checkpoint.SweepCheckpoint`); a killed sweep
  resumes from its completed specs,
* trace-cache entries carry a ``.sha256`` sidecar digest that is
  verified before use — a truncated or corrupted cache file is
  regenerated instead of silently poisoning the whole sweep.

Environment knobs:

* ``REPRO_WORKERS`` — worker-process count (default: CPU count; ``1``
  forces the in-process serial path),
* ``REPRO_TRACE_CACHE`` — trace cache directory (default:
  ``~/.cache/repro/traces``),
* ``REPRO_SPEC_TIMEOUT`` — stall watchdog in wall-clock seconds: if no
  spec completes for this long, the pool is presumed hung and rebuilt
  (default: disabled),
* ``REPRO_SWEEP_RETRIES`` — maximum pool rebuilds per sweep before
  :class:`SweepError` (default 3),
* ``REPRO_CHAOS_KILL_FLAG`` / ``REPRO_CHAOS_HANG_FLAG`` — chaos-testing
  hooks: a path to a flag file; the first worker task to observe the file
  removes it and kills itself (``os._exit``) or hangs, letting CI rehearse
  the recovery paths against a live pool.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Union

import numpy as np

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.base import CacheScheme
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.naive_threshold import NaiveThresholdScheme
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.core.schemes.uniform import UniformRandomCache
from repro.perf.checkpoint import SweepCheckpoint
from repro.workload.fast_replay import fast_replay
from repro.workload.ircache import (
    IRCACHE_ALGORITHM_VERSION,
    SAMPLING_BLOCK,
    IrcacheConfig,
    IrcacheGenerator,
)
from repro.workload.marking import MarkingRule
from repro.workload.replay import ReplayStats, replay
from repro.workload.sharded import (
    DEFAULT_SHARD_SIZE,
    ShardedCompiledTrace,
    ShardIntegrityError,
    compile_stream,
)
from repro.workload.trace import Trace

ENV_WORKERS = "REPRO_WORKERS"
ENV_TRACE_CACHE = "REPRO_TRACE_CACHE"
ENV_SPEC_TIMEOUT = "REPRO_SPEC_TIMEOUT"
ENV_SWEEP_RETRIES = "REPRO_SWEEP_RETRIES"
ENV_CHAOS_KILL_FLAG = "REPRO_CHAOS_KILL_FLAG"
ENV_CHAOS_HANG_FLAG = "REPRO_CHAOS_HANG_FLAG"


class SweepError(RuntimeError):
    """The sweep could not complete within its failure budget."""


class TraceCacheError(RuntimeError):
    """A trace-cache entry failed its integrity check."""


# ======================================================================
# Scheme registry (picklable sweep points reference schemes by name)
# ======================================================================
def _build_no_privacy(rng: np.random.Generator, **_: object) -> CacheScheme:
    return NoPrivacyScheme()


def _build_always_delay(rng: np.random.Generator, **_: object) -> CacheScheme:
    return AlwaysDelayScheme()


def _build_uniform(
    rng: np.random.Generator, *, k: int = 5, delta: float = 0.01, **_: object
) -> CacheScheme:
    return UniformRandomCache.for_privacy_target(k, delta, rng=rng)


def _build_exponential(
    rng: np.random.Generator,
    *,
    k: int = 5,
    epsilon: float = 0.005,
    delta: float = 0.01,
    **_: object,
) -> CacheScheme:
    return ExponentialRandomCache.for_privacy_target(k, epsilon, delta, rng=rng)


def _build_naive_threshold(
    rng: np.random.Generator, *, k: int = 5, **_: object
) -> CacheScheme:
    return NaiveThresholdScheme(k, rng=rng)


SCHEME_BUILDERS: Dict[str, Callable[..., CacheScheme]] = {
    "no-privacy": _build_no_privacy,
    "always-delay": _build_always_delay,
    "uniform": _build_uniform,
    "exponential": _build_exponential,
    "naive-threshold": _build_naive_threshold,
}


def build_scheme(name: str, seed: int = 0, **params: object) -> CacheScheme:
    """Build a scheme by registry name with an RNG seeded from ``seed``."""
    try:
        builder = SCHEME_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEME_BUILDERS)}"
        ) from None
    return builder(np.random.default_rng(seed), **params)


# ======================================================================
# Sweep points
# ======================================================================
@dataclass(frozen=True)
class ReplaySpec:
    """One sweep point: everything one replay task needs, picklable.

    ``scheme`` is either a registry name (built in the worker with an RNG
    seeded from ``seed`` — the recommended form) or a ready
    :class:`CacheScheme` instance (pickled to the worker; its RNG state
    travels with it).
    """

    scheme: Union[str, CacheScheme]
    scheme_params: Mapping[str, object] = field(default_factory=dict)
    cache_size: Optional[int] = None
    marking: Optional[MarkingRule] = None
    policy: str = "lru"
    fetch_delay: float = 100.0
    seed: int = 0
    refresh_delayed_hits: bool = True
    #: Free-form tag echoed back with results (e.g. a figure-series key).
    label: str = ""


def derive_seeds(base_seed: int, count: int) -> List[int]:
    """``count`` statistically independent task seeds from one base seed.

    Uses ``np.random.SeedSequence.spawn`` so the seeds are stable across
    runs, platforms, and worker counts.
    """
    children = np.random.SeedSequence(base_seed).spawn(count)
    return [int(child.generate_state(1, np.uint32)[0]) for child in children]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else ``REPRO_WORKERS``, else
    the CPU count."""
    if workers is None:
        env = os.environ.get(ENV_WORKERS)
        workers = int(env) if env else (os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _env_float(name: str) -> Optional[float]:
    value = os.environ.get(name)
    return float(value) if value else None


def resolve_spec_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Stall-watchdog seconds: explicit arg, else ``REPRO_SPEC_TIMEOUT``,
    else disabled."""
    if timeout is None:
        timeout = _env_float(ENV_SPEC_TIMEOUT)
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
    return timeout


def resolve_max_restarts(max_restarts: Optional[int] = None) -> int:
    """Pool-rebuild budget: explicit arg, else ``REPRO_SWEEP_RETRIES``,
    else 3."""
    if max_restarts is None:
        env = os.environ.get(ENV_SWEEP_RETRIES)
        max_restarts = int(env) if env else 3
    if max_restarts < 0:
        raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
    return max_restarts


# ======================================================================
# On-disk trace cache (content-checksummed)
# ======================================================================
def trace_cache_dir() -> Path:
    """The trace cache directory (created on first use)."""
    env = os.environ.get(ENV_TRACE_CACHE)
    if env:
        root = Path(env)
    else:
        root = Path.home() / ".cache" / "repro" / "traces"
    root.mkdir(parents=True, exist_ok=True)
    return root


def _config_key(
    config: IrcacheConfig,
    layout: str = "tsv",
    shard_size: Optional[int] = None,
) -> str:
    """Full generator-config fingerprint for one cache entry.

    Keys on every config field **plus** the generation-algorithm version,
    its internal sampling-block size, the on-disk layout, and the shard
    size — so a sharded and a materialized (TSV) entry of the same config
    can never collide, and a generator-algorithm change can never serve a
    stale materialization.
    """
    payload = repr(
        (
            sorted(
                (name, getattr(config, name))
                for name in config.__dataclass_fields__
            ),
            ("algorithm", IRCACHE_ALGORITHM_VERSION),
            ("sampling_block", SAMPLING_BLOCK),
            ("layout", layout),
            ("shard_size", shard_size),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _atomic_write(path: Path, writer: Callable[[Path], None]) -> None:
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        writer(tmp)
        tmp.replace(path)
    finally:
        if tmp.exists():
            tmp.unlink()


def _digest_sidecar(path: Path) -> Path:
    return path.with_name(path.name + ".sha256")


def _file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _write_digest(path: Path, digest: Optional[str] = None) -> None:
    if digest is None:
        digest = _file_digest(path)
    _atomic_write(
        _digest_sidecar(path), lambda tmp: tmp.write_text(digest, encoding="utf-8")
    )


def verify_trace_cache(path: Union[str, Path]) -> bool:
    """True iff the cache entry exists and matches its recorded digest.

    A missing sidecar counts as invalid: an entry whose integrity cannot
    be established is treated the same as a corrupted one and the caller
    regenerates it.
    """
    path = Path(path)
    sidecar = _digest_sidecar(path)
    if not path.exists() or not sidecar.exists():
        return False
    recorded = sidecar.read_text(encoding="utf-8").strip()
    return bool(recorded) and recorded == _file_digest(path)


def ensure_trace_cached(config: IrcacheConfig) -> Path:
    """Generate-or-reuse the trace for ``config``; returns the TSV path.

    Keyed by a hash of the config fields, so workers (and later runs of
    the same sweep) load the trace instead of regenerating it.  The entry
    is digest-verified first; a corrupted or unverifiable file is
    regenerated in place (the config makes regeneration deterministic).
    """
    path = trace_cache_dir() / f"ircache-{_config_key(config)}.tsv"
    if not verify_trace_cache(path):
        trace = IrcacheGenerator(config).generate()
        _atomic_write(path, trace.save)
        _write_digest(path)
    return path


def ensure_sharded_trace_cached(
    config: IrcacheConfig, shard_size: int = DEFAULT_SHARD_SIZE
) -> Path:
    """Generate-or-reuse the **sharded** compiled trace for ``config``.

    Returns the shard-directory path.  The workload is streamed straight
    into the sharded format (:func:`~repro.workload.sharded.compile_stream`)
    so the cache build itself never materializes the full trace — peak
    RSS stays bounded by one shard.  An existing entry is verified
    against its per-shard checksums first; a corrupted entry is deleted
    and regenerated (the config makes regeneration deterministic).  The
    build lands in a staging directory and is renamed into place, so a
    killed build never leaves a half-written entry under the cache key.
    """
    key = _config_key(config, layout="sharded", shard_size=shard_size)
    path = trace_cache_dir() / f"ircache-shards-{key}"
    if path.is_dir():
        try:
            ShardedCompiledTrace.open(path).verify()
            return path
        except (ShardIntegrityError, OSError, ValueError):
            shutil.rmtree(path, ignore_errors=True)
    staging = Path(
        tempfile.mkdtemp(dir=str(trace_cache_dir()), prefix=f".build-{key}-")
    )
    try:
        compile_stream(
            IrcacheGenerator(config).stream(),
            staging,
            shard_size=shard_size,
            source={
                "kind": "ircache",
                "config_key": key,
                "algorithm_version": IRCACHE_ALGORITHM_VERSION,
            },
        )
        try:
            os.replace(staging, path)
        except OSError:
            # Lost a build race: keep the winner if it verifies.
            ShardedCompiledTrace.open(path).verify()
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return path


def _trace_payload(trace: Trace) -> bytes:
    """The canonical TSV byte serialization of ``trace``."""
    lines = [
        f"{request.time:.3f}\t{request.user}\t{request.name}\n" for request in trace
    ]
    return "".join(lines).encode("utf-8")


def _cache_trace_object(trace: Trace) -> Path:
    """Persist an ad-hoc trace under its content hash; returns the path."""
    payload = _trace_payload(trace)
    digest = hashlib.sha256(payload).hexdigest()
    path = trace_cache_dir() / f"trace-{digest[:16]}.tsv"
    if not path.exists() or _file_digest(path) != digest:
        _atomic_write(path, lambda tmp: tmp.write_bytes(payload))
        _write_digest(path, digest)
    elif not _digest_sidecar(path).exists():
        # Pre-checksum cache entry whose content still matches: adopt it.
        _write_digest(path, digest)
    return path


#: Per-process memo of loaded (and compiled) traces, so each worker pays
#: the parse + intern cost once per trace, not once per task.
_PROCESS_TRACES: Dict[str, Trace] = {}


def _load_trace(path: str) -> Trace:
    trace = _PROCESS_TRACES.get(path)
    if trace is None:
        if not verify_trace_cache(path):
            raise TraceCacheError(
                f"trace cache entry {path} failed its digest check "
                "(truncated or corrupted); regenerate it via "
                "ensure_trace_cached() before dispatching workers"
            )
        trace = Trace.load(path)
        trace.compile()
        _PROCESS_TRACES[path] = trace
    return trace


#: Per-process memo of opened shard directories.  Opening only maps the
#: manifest + name table; shard arrays stay on disk until replay touches
#: them, so the memo costs O(n_names) per trace, not O(n_requests).
_PROCESS_SHARDED: Dict[str, ShardedCompiledTrace] = {}


def _load_sharded(path: str) -> ShardedCompiledTrace:
    sharded = _PROCESS_SHARDED.get(path)
    if sharded is None:
        try:
            sharded = ShardedCompiledTrace.open(path)
        except (ShardIntegrityError, OSError, ValueError) as error:
            raise TraceCacheError(
                f"sharded trace cache entry {path} is unreadable or failed "
                "its integrity check; regenerate it via "
                "ensure_sharded_trace_cached() before dispatching workers"
            ) from error
        _PROCESS_SHARDED[path] = sharded
    return sharded


# ======================================================================
# Execution
# ======================================================================
def _execute(
    trace: Union[Trace, ShardedCompiledTrace], spec: ReplaySpec, engine: str
) -> ReplayStats:
    scheme = spec.scheme
    if isinstance(scheme, str):
        scheme = build_scheme(scheme, seed=spec.seed, **dict(spec.scheme_params))
    run = fast_replay if engine == "fast" else replay
    return run(
        trace,
        scheme=scheme,
        marking=spec.marking,
        cache_size=spec.cache_size,
        policy=spec.policy,
        fetch_delay=spec.fetch_delay,
        seed=spec.seed,
        refresh_delayed_hits=spec.refresh_delayed_hits,
    )


def _consume_chaos_flag(env: str) -> bool:
    """True iff this process won the race to consume the chaos flag file."""
    flag = os.environ.get(env)
    if not flag:
        return False
    path = Path(flag)
    try:
        path.unlink()  # atomic: exactly one worker wins
        return True
    except FileNotFoundError:
        return False


def _maybe_inject_chaos() -> None:
    """Worker-side chaos hooks for rehearsing the recovery paths."""
    if _consume_chaos_flag(ENV_CHAOS_KILL_FLAG):
        os._exit(42)
    if _consume_chaos_flag(ENV_CHAOS_HANG_FLAG):
        time.sleep(3600.0)


def _worker_run(args: tuple) -> ReplayStats:
    trace_path, spec, engine, layout = args
    _maybe_inject_chaos()
    if layout == "sharded":
        workload = _load_sharded(trace_path)
    else:
        workload = _load_trace(trace_path)
    return _execute(workload, spec, engine)


class _SweepStalled(RuntimeError):
    """No spec completed within the stall-watchdog window."""


def _drain_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without joining hung or dead workers."""
    procs = getattr(pool, "_processes", None)
    processes = list(procs.values()) if procs else []
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()


def _run_hardened(
    tasks: List[tuple],
    remaining: Set[int],
    workers: int,
    timeout: Optional[float],
    max_restarts: int,
    deliver: Callable[[int, ReplayStats], None],
) -> None:
    """Run ``tasks[i]`` for every ``i`` in ``remaining``, surviving worker
    death and stalls by resubmitting on a fresh pool (bounded)."""
    restarts = 0
    while remaining:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(remaining)))
        try:
            futures = {
                pool.submit(_worker_run, tasks[index]): index
                for index in sorted(remaining)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(
                    pending, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    raise _SweepStalled(
                        f"no sweep point completed within {timeout}s "
                        f"({len(pending)} outstanding)"
                    )
                for future in done:
                    index = futures[future]
                    stats = future.result()  # BrokenProcessPool on worker death
                    deliver(index, stats)
                    remaining.discard(index)
        except (BrokenProcessPool, _SweepStalled) as exc:
            restarts += 1
            if restarts > max_restarts:
                raise SweepError(
                    f"sweep failed permanently after {restarts} pool restarts "
                    f"({len(remaining)} specs incomplete): {exc}"
                ) from exc
        finally:
            _drain_pool(pool)


def _sweep_fingerprint(
    spec_list: List[ReplaySpec], engine: str, trace_key: str
) -> str:
    digest = hashlib.sha256()
    digest.update(engine.encode("utf-8"))
    digest.update(trace_key.encode("utf-8"))
    for spec in spec_list:
        digest.update(pickle.dumps(spec))
    return digest.hexdigest()


def run_replay_sweep(
    specs: Iterable[ReplaySpec],
    trace: Optional[Trace] = None,
    trace_config: Optional[IrcacheConfig] = None,
    workers: Optional[int] = None,
    engine: str = "fast",
    timeout: Optional[float] = None,
    max_restarts: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    sharded: bool = False,
    shard_size: int = DEFAULT_SHARD_SIZE,
) -> List[ReplayStats]:
    """Run every sweep point; results in spec order.

    Exactly one of ``trace`` / ``trace_config`` supplies the workload.
    With ``trace_config`` the workload is materialized through the
    on-disk cache; a raw ``trace`` is persisted there (content-addressed)
    only when worker processes actually need to load it.

    ``sharded=True`` (requires ``trace_config`` and the fast engine)
    routes the sweep through the memory-mapped sharded trace cache
    instead of the TSV one: the cache is built by streaming generation
    (never materializing the trace) and each worker replays shard by
    shard, so worker RSS is bounded by one shard plus O(n_names) state
    rather than the whole request log.  Results are bit-identical to the
    materialized path.

    ``engine`` selects the replay implementation: ``"fast"`` (default,
    the interned kernel with reference fallback) or ``"reference"``.
    Results are bit-identical either way — and independent of
    ``workers``, because every spec carries its own seed and schemes are
    isolated per task (pickle round-trip in the serial path, process
    transport otherwise).

    Failure handling (parallel path): a dead worker or a stall longer
    than ``timeout`` seconds rebuilds the pool and resubmits the
    incomplete specs, at most ``max_restarts`` times; the per-spec seeds
    make recovered results identical to an undisturbed run.
    ``checkpoint`` names a file to persist completed points to, so a
    killed sweep resumes from where it died (a checkpoint written by a
    different sweep is detected by fingerprint and ignored).
    """
    if engine not in ("fast", "reference"):
        raise ValueError(f"engine must be 'fast' or 'reference', got {engine!r}")
    if (trace is None) == (trace_config is None):
        raise ValueError("provide exactly one of trace= or trace_config=")
    if sharded:
        if trace_config is None:
            raise ValueError("sharded sweeps require trace_config=")
        if engine != "fast":
            raise ValueError(
                "sharded sweeps run on the fast engine only "
                "(the reference engine needs a materialized Trace)"
            )
    spec_list = list(specs)
    if not spec_list:
        return []
    count = len(spec_list)
    workers = min(resolve_workers(workers), count)
    timeout = resolve_spec_timeout(timeout)
    max_restarts = resolve_max_restarts(max_restarts)

    completed: Dict[int, ReplayStats] = {}
    sweep_checkpoint: Optional[SweepCheckpoint] = None
    if checkpoint is not None:
        if trace_config is not None:
            layout = "sharded" if sharded else "tsv"
            key = _config_key(
                trace_config, layout=layout, shard_size=shard_size if sharded else None
            )
            trace_key = f"config:{layout}:{key}"
        else:
            trace_key = (
                "trace:" + hashlib.sha256(_trace_payload(trace)).hexdigest()[:16]
            )
        sweep_checkpoint = SweepCheckpoint(
            checkpoint, _sweep_fingerprint(spec_list, engine, trace_key)
        )
        completed = {
            index: stats
            for index, stats in sweep_checkpoint.load().items()
            if 0 <= index < count
        }

    def deliver(index: int, stats: ReplayStats) -> None:
        completed[index] = stats
        if sweep_checkpoint is not None:
            sweep_checkpoint.append(index, stats)

    if workers <= 1:
        if sharded:
            workload: Union[Trace, ShardedCompiledTrace] = _load_sharded(
                str(ensure_sharded_trace_cached(trace_config, shard_size))
            )
        elif trace is None:
            workload = _load_trace(str(ensure_trace_cached(trace_config)))
        else:
            workload = trace
        # Pickle round-trip each spec so scheme/marking RNG state is
        # isolated exactly as process transport isolates it.
        for index, spec in enumerate(spec_list):
            if index in completed:
                continue
            deliver(
                index, _execute(workload, pickle.loads(pickle.dumps(spec)), engine)
            )
        return [completed[index] for index in range(count)]

    if sharded:
        path = ensure_sharded_trace_cached(trace_config, shard_size)
    elif trace_config is not None:
        path = ensure_trace_cached(trace_config)
    else:
        path = _cache_trace_object(trace)
    layout = "sharded" if sharded else "tsv"
    tasks = [(str(path), spec, engine, layout) for spec in spec_list]
    remaining = {index for index in range(count) if index not in completed}
    _run_hardened(tasks, remaining, workers, timeout, max_restarts, deliver)
    return [completed[index] for index in range(count)]
