"""Parallel sweep runner for trace-replay experiment grids.

Every evaluation figure replays the same trace once per (scheme,
cache-size, trial) point; the points are embarrassingly parallel.  This
module fans them across a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping results **independent of the worker count**:

* each sweep point is a picklable :class:`ReplaySpec` carrying its own
  seed; trial seeds come from :func:`derive_seeds`
  (``np.random.SeedSequence.spawn``), so the RNG stream of a point never
  depends on which worker ran it or in what order,
* results are collected in spec order (``Executor.map``),
* workers obtain the trace from an on-disk cache keyed by the
  :class:`~repro.workload.ircache.IrcacheConfig` hash (or by content hash
  for ad-hoc traces) instead of regenerating or unpickling ~10⁵ request
  objects per task,
* the serial fallback (``REPRO_WORKERS=1``, or a single spec) round-trips
  each spec through pickle so scheme/marking state is isolated exactly as
  process transport would isolate it — bit-identical to any worker count.

Environment knobs:

* ``REPRO_WORKERS`` — worker-process count (default: CPU count; ``1``
  forces the in-process serial path),
* ``REPRO_TRACE_CACHE`` — trace cache directory (default:
  ``~/.cache/repro/traces``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Union

import numpy as np

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.base import CacheScheme
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.naive_threshold import NaiveThresholdScheme
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.core.schemes.uniform import UniformRandomCache
from repro.workload.fast_replay import fast_replay
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.marking import MarkingRule
from repro.workload.replay import ReplayStats, replay
from repro.workload.trace import Trace

ENV_WORKERS = "REPRO_WORKERS"
ENV_TRACE_CACHE = "REPRO_TRACE_CACHE"


# ======================================================================
# Scheme registry (picklable sweep points reference schemes by name)
# ======================================================================
def _build_no_privacy(rng: np.random.Generator, **_: object) -> CacheScheme:
    return NoPrivacyScheme()


def _build_always_delay(rng: np.random.Generator, **_: object) -> CacheScheme:
    return AlwaysDelayScheme()


def _build_uniform(
    rng: np.random.Generator, *, k: int = 5, delta: float = 0.01, **_: object
) -> CacheScheme:
    return UniformRandomCache.for_privacy_target(k, delta, rng=rng)


def _build_exponential(
    rng: np.random.Generator,
    *,
    k: int = 5,
    epsilon: float = 0.005,
    delta: float = 0.01,
    **_: object,
) -> CacheScheme:
    return ExponentialRandomCache.for_privacy_target(k, epsilon, delta, rng=rng)


def _build_naive_threshold(
    rng: np.random.Generator, *, k: int = 5, **_: object
) -> CacheScheme:
    return NaiveThresholdScheme(k, rng=rng)


SCHEME_BUILDERS: Dict[str, Callable[..., CacheScheme]] = {
    "no-privacy": _build_no_privacy,
    "always-delay": _build_always_delay,
    "uniform": _build_uniform,
    "exponential": _build_exponential,
    "naive-threshold": _build_naive_threshold,
}


def build_scheme(name: str, seed: int = 0, **params: object) -> CacheScheme:
    """Build a scheme by registry name with an RNG seeded from ``seed``."""
    try:
        builder = SCHEME_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEME_BUILDERS)}"
        ) from None
    return builder(np.random.default_rng(seed), **params)


# ======================================================================
# Sweep points
# ======================================================================
@dataclass(frozen=True)
class ReplaySpec:
    """One sweep point: everything one replay task needs, picklable.

    ``scheme`` is either a registry name (built in the worker with an RNG
    seeded from ``seed`` — the recommended form) or a ready
    :class:`CacheScheme` instance (pickled to the worker; its RNG state
    travels with it).
    """

    scheme: Union[str, CacheScheme]
    scheme_params: Mapping[str, object] = field(default_factory=dict)
    cache_size: Optional[int] = None
    marking: Optional[MarkingRule] = None
    policy: str = "lru"
    fetch_delay: float = 100.0
    seed: int = 0
    refresh_delayed_hits: bool = True
    #: Free-form tag echoed back with results (e.g. a figure-series key).
    label: str = ""


def derive_seeds(base_seed: int, count: int) -> List[int]:
    """``count`` statistically independent task seeds from one base seed.

    Uses ``np.random.SeedSequence.spawn`` so the seeds are stable across
    runs, platforms, and worker counts.
    """
    children = np.random.SeedSequence(base_seed).spawn(count)
    return [int(child.generate_state(1, np.uint32)[0]) for child in children]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit arg, else ``REPRO_WORKERS``, else
    the CPU count."""
    if workers is None:
        env = os.environ.get(ENV_WORKERS)
        workers = int(env) if env else (os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


# ======================================================================
# On-disk trace cache
# ======================================================================
def trace_cache_dir() -> Path:
    """The trace cache directory (created on first use)."""
    env = os.environ.get(ENV_TRACE_CACHE)
    if env:
        root = Path(env)
    else:
        root = Path.home() / ".cache" / "repro" / "traces"
    root.mkdir(parents=True, exist_ok=True)
    return root


def _config_key(config: IrcacheConfig) -> str:
    payload = repr(
        sorted((name, getattr(config, name)) for name in config.__dataclass_fields__)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _atomic_write(path: Path, writer: Callable[[Path], None]) -> None:
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        writer(tmp)
        tmp.replace(path)
    finally:
        if tmp.exists():
            tmp.unlink()


def ensure_trace_cached(config: IrcacheConfig) -> Path:
    """Generate-or-reuse the trace for ``config``; returns the TSV path.

    Keyed by a hash of the config fields, so workers (and later runs of
    the same sweep) load the trace instead of regenerating it.
    """
    path = trace_cache_dir() / f"ircache-{_config_key(config)}.tsv"
    if not path.exists():
        trace = IrcacheGenerator(config).generate()
        _atomic_write(path, trace.save)
    return path


def _cache_trace_object(trace: Trace) -> Path:
    """Persist an ad-hoc trace under its content hash; returns the path."""
    lines = [
        f"{request.time:.3f}\t{request.user}\t{request.name}\n" for request in trace
    ]
    payload = "".join(lines).encode("utf-8")
    key = hashlib.sha256(payload).hexdigest()[:16]
    path = trace_cache_dir() / f"trace-{key}.tsv"
    if not path.exists():
        _atomic_write(path, lambda tmp: tmp.write_bytes(payload))
    return path


#: Per-process memo of loaded (and compiled) traces, so each worker pays
#: the parse + intern cost once per trace, not once per task.
_PROCESS_TRACES: Dict[str, Trace] = {}


def _load_trace(path: str) -> Trace:
    trace = _PROCESS_TRACES.get(path)
    if trace is None:
        trace = Trace.load(path)
        trace.compile()
        _PROCESS_TRACES[path] = trace
    return trace


# ======================================================================
# Execution
# ======================================================================
def _execute(trace: Trace, spec: ReplaySpec, engine: str) -> ReplayStats:
    scheme = spec.scheme
    if isinstance(scheme, str):
        scheme = build_scheme(scheme, seed=spec.seed, **dict(spec.scheme_params))
    run = fast_replay if engine == "fast" else replay
    return run(
        trace,
        scheme=scheme,
        marking=spec.marking,
        cache_size=spec.cache_size,
        policy=spec.policy,
        fetch_delay=spec.fetch_delay,
        seed=spec.seed,
        refresh_delayed_hits=spec.refresh_delayed_hits,
    )


def _worker_run(args: tuple) -> ReplayStats:
    trace_path, spec, engine = args
    return _execute(_load_trace(trace_path), spec, engine)


def run_replay_sweep(
    specs: Iterable[ReplaySpec],
    trace: Optional[Trace] = None,
    trace_config: Optional[IrcacheConfig] = None,
    workers: Optional[int] = None,
    engine: str = "fast",
) -> List[ReplayStats]:
    """Run every sweep point; results in spec order.

    Exactly one of ``trace`` / ``trace_config`` supplies the workload.
    With ``trace_config`` the workload is materialized through the
    on-disk cache; a raw ``trace`` is persisted there (content-addressed)
    only when worker processes actually need to load it.

    ``engine`` selects the replay implementation: ``"fast"`` (default,
    the interned kernel with reference fallback) or ``"reference"``.
    Results are bit-identical either way — and independent of
    ``workers``, because every spec carries its own seed and schemes are
    isolated per task (pickle round-trip in the serial path, process
    transport otherwise).
    """
    if engine not in ("fast", "reference"):
        raise ValueError(f"engine must be 'fast' or 'reference', got {engine!r}")
    if (trace is None) == (trace_config is None):
        raise ValueError("provide exactly one of trace= or trace_config=")
    spec_list = list(specs)
    if not spec_list:
        return []
    workers = min(resolve_workers(workers), len(spec_list))

    if workers <= 1:
        if trace is None:
            trace = _load_trace(str(ensure_trace_cached(trace_config)))
        # Pickle round-trip each spec so scheme/marking RNG state is
        # isolated exactly as process transport isolates it.
        return [
            _execute(trace, pickle.loads(pickle.dumps(spec)), engine)
            for spec in spec_list
        ]

    if trace_config is not None:
        path = ensure_trace_cached(trace_config)
    else:
        path = _cache_trace_object(trace)
    tasks = [(str(path), spec, engine) for spec in spec_list]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_worker_run, tasks))
