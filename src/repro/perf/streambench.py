"""Streaming-vs-materialized benchmark legs (subprocess-isolated).

The streaming pipeline's headline claims are about *process* peak RSS:

* ``stream → compile_stream → sharded fast_replay`` must peak below 10%
  of the materialized ``generate → compile → fast_replay`` equivalent,
* its replay throughput must stay within 10% of the in-RAM fast path,
* and every observable must be bit-identical between the two.

Peak RSS (``ru_maxrss``) is a whole-process high-water mark, so the two
pipelines can only be compared from **separate processes**.  This module
is that protocol: ``python -m repro.perf.streambench <leg>`` runs one
pipeline end to end and prints a single JSON object (timings, per-case
:class:`ReplayStats` tuples, ``peak_rss_bytes``) to stdout;
:func:`run_streaming_bench` forks both legs, checks bit-identity, and
returns the merged result for ``benchmarks/bench_streaming.py`` to turn
into ``BENCH_streaming.json``.

Scale knobs travel as a JSON params blob so the child legs rebuild the
exact same :class:`IrcacheConfig` and replay grid from the seed alone.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, fields
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.perf.timing import peak_rss_bytes
from repro.workload.ircache import IrcacheConfig, IrcacheGenerator
from repro.workload.replay import ReplayStats

#: The overlap replay grid both legs run (scheme, policy, cache, marking).
DEFAULT_GRID: List[Dict[str, Any]] = [
    {"label": "uniform/lru", "scheme": "uniform", "policy": "lru",
     "cache_size": 8000, "marking": "content"},
    {"label": "exponential/lfu", "scheme": "exponential", "policy": "lfu",
     "cache_size": 8000, "marking": "request"},
]

MARK_FRACTION = 0.2


def _build_config(params: Dict[str, Any]) -> IrcacheConfig:
    return IrcacheConfig(
        requests=int(params["requests"]),
        users=int(params["users"]),
        objects=int(params["objects"]),
        sites=int(params["sites"]),
        session_locality=0.3,
        seed=int(params["seed"]),
    )


def _build_marking(kind: str, seed: int):
    from repro.workload.marking import ContentMarking, RequestMarking

    if kind == "content":
        return ContentMarking(MARK_FRACTION, salt=seed)
    if kind == "request":
        return RequestMarking(MARK_FRACTION, seed=seed)
    return None


def _replay_grid(workload, params: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Run the overlap grid; fresh scheme/marking per case (RNG-stateful)."""
    from repro.perf.parallel import build_scheme
    from repro.workload.fast_replay import fast_replay

    seed = int(params["seed"])
    out = []
    for case in params.get("grid", DEFAULT_GRID):
        start = time.perf_counter()
        stats = fast_replay(
            workload,
            scheme=build_scheme(case["scheme"], seed=seed),
            marking=_build_marking(case["marking"], seed),
            cache_size=case["cache_size"],
            policy=case["policy"],
            seed=seed,
        )
        wall = time.perf_counter() - start
        out.append(
            {"label": case["label"], "wall_s": wall, "stats": asdict(stats)}
        )
    return out


def leg_materialized(params: Dict[str, Any]) -> Dict[str, Any]:
    """generate → compile → fast_replay, all in RAM."""
    config = _build_config(params)
    start = time.perf_counter()
    trace = IrcacheGenerator(config).generate()
    generate_wall = time.perf_counter() - start
    start = time.perf_counter()
    trace.compile()
    compile_wall = time.perf_counter() - start
    replays = _replay_grid(trace, params)
    return {
        "leg": "materialized",
        "build_wall_s": generate_wall,
        "compile_wall_s": compile_wall,
        "replays": replays,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def leg_streaming(params: Dict[str, Any]) -> Dict[str, Any]:
    """stream → compile_stream → sharded fast_replay, never materialized."""
    from repro.workload.sharded import DEFAULT_SHARD_SIZE, compile_stream

    config = _build_config(params)
    shard_dir = params["shard_dir"]
    shard_size = int(params.get("shard_size", DEFAULT_SHARD_SIZE))
    start = time.perf_counter()
    sharded = compile_stream(
        IrcacheGenerator(config).stream(), shard_dir, shard_size=shard_size
    )
    compile_wall = time.perf_counter() - start
    replays = _replay_grid(sharded, params)
    return {
        "leg": "streaming",
        "build_wall_s": compile_wall,
        "compile_wall_s": compile_wall,
        "n_shards": sharded.n_shards,
        "replays": replays,
        "peak_rss_bytes": peak_rss_bytes(),
    }


_LEGS = {"materialized": leg_materialized, "streaming": leg_streaming}


def _spawn_leg(leg: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one leg in a fresh interpreter; returns its JSON result."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.perf.streambench", leg],
        input=json.dumps(params),
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"streambench leg {leg!r} failed (rc={proc.returncode}):\n"
            f"{proc.stderr[-4000:]}"
        )
    # The result is the last stdout line (libraries may print above it).
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _stats_of(leg_result: Dict[str, Any]) -> List[ReplayStats]:
    names = [f.name for f in fields(ReplayStats)]
    return [
        ReplayStats(**{k: r["stats"][k] for k in names})
        for r in leg_result["replays"]
    ]


def run_streaming_bench(
    requests: int,
    users: int,
    objects: int,
    sites: int,
    seed: int = 0,
    shard_size: Optional[int] = None,
    grid: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Fork both legs, assert bit-identity, return the merged result.

    The returned dict carries both leg payloads plus the derived
    comparison figures (``rss_ratio``, ``throughput_ratio``).  Acceptance
    thresholds are asserted by the caller (they are scale-dependent).
    """
    from repro.workload.sharded import DEFAULT_SHARD_SIZE

    params: Dict[str, Any] = {
        "requests": requests,
        "users": users,
        "objects": objects,
        "sites": sites,
        "seed": seed,
        "shard_size": shard_size or DEFAULT_SHARD_SIZE,
    }
    if grid is not None:
        params["grid"] = grid
    with tempfile.TemporaryDirectory(prefix="repro-streambench-") as tmp:
        streaming = _spawn_leg("streaming", {**params, "shard_dir": tmp})
    materialized = _spawn_leg("materialized", params)

    stats_m = _stats_of(materialized)
    stats_s = _stats_of(streaming)
    if stats_m != stats_s:
        raise AssertionError(
            "streaming and materialized replays diverged:\n"
            f"  materialized: {stats_m}\n  streaming:    {stats_s}"
        )

    def throughput(leg: Dict[str, Any]) -> float:
        total_wall = sum(r["wall_s"] for r in leg["replays"])
        return requests * len(leg["replays"]) / total_wall if total_wall else 0.0

    rss_ratio = (
        streaming["peak_rss_bytes"] / materialized["peak_rss_bytes"]
        if materialized["peak_rss_bytes"]
        else float("inf")
    )
    tp_m = throughput(materialized)
    tp_s = throughput(streaming)
    return {
        "params": params,
        "materialized": materialized,
        "streaming": streaming,
        "rss_ratio": rss_ratio,
        "throughput_materialized": tp_m,
        "throughput_streaming": tp_s,
        "throughput_ratio": tp_s / tp_m if tp_m else float("inf"),
    }


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1 or argv[0] not in _LEGS:
        print(
            f"usage: python -m repro.perf.streambench {{{'|'.join(_LEGS)}}} "
            "< params.json",
            file=sys.stderr,
        )
        return 2
    params = json.loads(sys.stdin.read())
    result = _LEGS[argv[0]](params)
    print(json.dumps(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
