"""Full-topology simulator-core workload drivers (star and tree).

These drive the *packet-level* substrate — engine, links, forwarders,
CS/PIT/FIB — with many consumers fetching a shared object universe, and
report **packet-hops per second**: every :meth:`Link.transmit` is one
packet-hop, so the metric prices exactly the per-hop fast path the
full-topology experiments (Figure 3, amplification, overload) pay.

Two fixed topologies:

* ``star`` — N consumers on jittery LAN links around one router R with
  the producer behind it (the Figure-1 shape at scale),
* ``tree`` — a 3-level router tree (root - 2 aggregation - 4 leaves, two
  consumers per leaf) on deterministic links, which maximizes equal-time
  event ties and therefore stresses the engine's insertion-order
  determinism.

Both are deterministic per seed; :mod:`benchmarks.bench_sim_core` and the
``repro-experiments profile`` command build on them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

from repro.ndn.link import FixedDelay, GaussianJitterDelay, LogNormalDelay
from repro.ndn.network import Network
from repro.sim.rng import RngRegistry

#: Prefix the sim-core object universe lives under.
SIMCORE_PREFIX = "/content"


@dataclass(frozen=True)
class SimCoreResult:
    """Outcome of one sim-core run: throughput plus integrity counters."""

    topology: str
    consumers: int
    requests: int
    delivered: int
    packet_hops: int
    events: int
    cache_hits: int
    sim_end_ms: float
    wall_s: float

    @property
    def hops_per_sec(self) -> float:
        """Packet-hops per wall-clock second (the headline metric)."""
        return self.packet_hops / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_sec(self) -> float:
        """Engine events per wall-clock second."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def _drive(
    net: Network,
    topology: str,
    consumer_names: List[str],
    requests_per_consumer: int,
    universe: int,
) -> SimCoreResult:
    """Spawn one fetch loop per consumer and run the engine to completion.

    Consumer ``j`` fetches object ``(i * 3 + j) % universe`` on step ``i``
    — a deterministic interleaving that mixes cache hits and misses
    across consumers without any RNG draws in the workload itself.
    """
    delivered = [0]

    def fetch_loop(j: int, consumer):
        for i in range(requests_per_consumer):
            index = (i * 3 + j) % universe
            result = yield from consumer.fetch(
                f"{SIMCORE_PREFIX}/obj-{index}", timeout=4000.0
            )
            if result is not None:
                delivered[0] += 1

    for j, name in enumerate(consumer_names):
        net.spawn(fetch_loop(j, net[name]), label=f"simcore:{name}")

    start = time.perf_counter()
    end = net.run()
    wall = time.perf_counter() - start

    hops = sum(link.packets_sent for link in net.links.values())
    hits = sum(
        router.monitor.counter("cs_hit") for router in net.routers.values()
    )
    return SimCoreResult(
        topology=topology,
        consumers=len(consumer_names),
        requests=requests_per_consumer * len(consumer_names),
        delivered=delivered[0],
        packet_hops=hops,
        events=net.engine.events_processed,
        cache_hits=hits,
        sim_end_ms=end,
        wall_s=wall,
    )


def run_star(
    consumers: int = 16,
    requests_per_consumer: int = 200,
    seed: int = 0,
    cache_capacity: int = 64,
) -> SimCoreResult:
    """Star: N consumers around one caching router, producer behind it."""
    net = Network(rng=RngRegistry(seed))
    net.add_router("R", capacity=cache_capacity)
    net.add_producer("P", SIMCORE_PREFIX)
    net.connect("R", "P", LogNormalDelay(base=1.0, tail_scale=0.7, sigma=0.8))
    net.add_route("R", SIMCORE_PREFIX, "P")
    names = []
    for j in range(consumers):
        name = f"C{j}"
        net.add_consumer(name)
        net.connect(
            name, "R", GaussianJitterDelay(base=1.8, jitter_std=0.12, floor=1.5)
        )
        names.append(name)
    universe = max(4, consumers * 4)
    return _drive(net, "star", names, requests_per_consumer, universe)


def run_tree(
    requests_per_consumer: int = 150,
    seed: int = 0,
    cache_capacity: int = 32,
) -> SimCoreResult:
    """3-level tree: root - 2 aggregation routers - 4 leaves, 2 consumers
    per leaf.  Deterministic link delays maximize equal-time event ties."""
    net = Network(rng=RngRegistry(seed))
    net.add_producer("P", SIMCORE_PREFIX)
    net.add_router("R0", capacity=cache_capacity)
    net.connect("R0", "P", FixedDelay(1.0))
    net.add_route("R0", SIMCORE_PREFIX, "P")

    names: List[str] = []
    leaf_of: Dict[str, str] = {}
    for a in range(2):
        agg = f"R1-{a}"
        net.add_router(agg, capacity=cache_capacity)
        net.connect(agg, "R0", FixedDelay(0.8))
        net.add_route(agg, SIMCORE_PREFIX, "R0")
        for l in range(2):
            leaf = f"R2-{a}{l}"
            net.add_router(leaf, capacity=cache_capacity)
            net.connect(leaf, agg, FixedDelay(0.5))
            net.add_route(leaf, SIMCORE_PREFIX, agg)
            for c in range(2):
                name = f"C{a}{l}{c}"
                net.add_consumer(name)
                net.connect(name, leaf, FixedDelay(0.3))
                names.append(name)
                leaf_of[name] = leaf
    universe = 32
    return _drive(net, "tree", names, requests_per_consumer, universe)


RUNNERS = {"star": run_star, "tree": run_tree}
