"""Full-topology simulator-core workload drivers (star and tree).

These drive the *packet-level* substrate — engine, links, forwarders,
CS/PIT/FIB — with many consumers fetching a shared object universe, and
report **packet-hops per second**: every :meth:`Link.transmit` is one
packet-hop, so the metric prices exactly the per-hop fast path the
full-topology experiments (Figure 3, amplification, overload) pay.

Two fixed topologies:

* ``star`` — N consumers on jittery LAN links around one router R with
  the producer behind it (the Figure-1 shape at scale),
* ``tree`` — a 3-level router tree (root - 2 aggregation - 4 leaves, two
  consumers per leaf) on deterministic links, which maximizes equal-time
  event ties and therefore stresses the engine's insertion-order
  determinism.

Both are deterministic per seed and expressed as
:class:`~repro.sim.batch.script.ConsumerScript` workloads, so the same
topology+workload pair runs on either engine: ``run_star``/``run_tree``
drive the reference object-graph engine, ``run_star_batch``/
``run_tree_batch`` the struct-of-arrays kernel.  Observables are
bit-identical between the two (asserted by
:func:`repro.validation.differential.validate_topology_differential`);
only ``wall_s`` differs.  :mod:`benchmarks.bench_sim_core` and the
``repro-experiments profile`` command build on them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Tuple

from repro.ndn.link import FixedDelay, GaussianJitterDelay, LogNormalDelay
from repro.ndn.network import Network
from repro.sim.batch.compile import compile_topology
from repro.sim.batch.kernel import run_compiled
from repro.sim.batch.script import (
    ConsumerScript,
    FetchStep,
    TopologyObservables,
    _script_process,
)
from repro.sim.rng import RngRegistry

#: Prefix the sim-core object universe lives under.
SIMCORE_PREFIX = "/content"


@dataclass(frozen=True)
class SimCoreResult:
    """Outcome of one sim-core run: throughput plus integrity counters."""

    topology: str
    consumers: int
    requests: int
    delivered: int
    packet_hops: int
    events: int
    cache_hits: int
    sim_end_ms: float
    wall_s: float

    @property
    def hops_per_sec(self) -> float:
        """Packet-hops per wall-clock second (the headline metric)."""
        return self.packet_hops / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_sec(self) -> float:
        """Engine events per wall-clock second."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def simcore_scripts(
    consumer_names: List[str], requests_per_consumer: int, universe: int
) -> List[ConsumerScript]:
    """The canonical sim-core workload as declarative consumer scripts.

    Consumer ``j`` fetches object ``(i * 3 + j) % universe`` on step ``i``
    — a deterministic interleaving that mixes cache hits and misses
    across consumers without any RNG draws in the workload itself.
    """
    return [
        ConsumerScript(
            consumer=name,
            steps=tuple(
                FetchStep(
                    f"{SIMCORE_PREFIX}/obj-{(i * 3 + j) % universe}",
                    timeout=4000.0,
                )
                for i in range(requests_per_consumer)
            ),
        )
        for j, name in enumerate(consumer_names)
    ]


def _drive(
    net: Network,
    topology: str,
    consumer_names: List[str],
    requests_per_consumer: int,
    universe: int,
) -> SimCoreResult:
    """Run the sim-core scripts on the reference engine, timing only
    :meth:`Network.run` (setup and spawning stay outside the clock)."""
    scripts = simcore_scripts(consumer_names, requests_per_consumer, universe)
    delivered = {s.consumer: 0 for s in scripts}
    for script in scripts:
        net.spawn(
            _script_process(script, net[script.consumer], delivered),
            label=f"simcore:{script.consumer}",
        )

    start = time.perf_counter()
    end = net.run()
    wall = time.perf_counter() - start

    hops = sum(link.packets_sent for link in net.links.values())
    hits = sum(
        router.monitor.counter("cs_hit") for router in net.routers.values()
    )
    return SimCoreResult(
        topology=topology,
        consumers=len(consumer_names),
        requests=requests_per_consumer * len(consumer_names),
        delivered=sum(delivered.values()),
        packet_hops=hops,
        events=net.engine.events_processed,
        cache_hits=hits,
        sim_end_ms=end,
        wall_s=wall,
    )


def _drive_batch(
    net: Network,
    topology: str,
    consumer_names: List[str],
    requests_per_consumer: int,
    universe: int,
) -> SimCoreResult:
    """Run the same scripts on the batch kernel, timing only the kernel
    dispatch loop (compilation stays outside the clock, mirroring how
    :func:`_drive` keeps spawning outside it)."""
    scripts = simcore_scripts(consumer_names, requests_per_consumer, universe)
    compiled = compile_topology(net, scripts)

    start = time.perf_counter()
    obs = run_compiled(compiled)
    wall = time.perf_counter() - start

    return _result_from_observables(
        topology, obs, len(consumer_names), requests_per_consumer, wall
    )


def _result_from_observables(
    topology: str,
    obs: TopologyObservables,
    consumers: int,
    requests_per_consumer: int,
    wall_s: float,
) -> SimCoreResult:
    """Fold the observables contract into the sim-core result shape."""
    return SimCoreResult(
        topology=topology,
        consumers=consumers,
        requests=requests_per_consumer * consumers,
        delivered=obs.total_delivered,
        packet_hops=obs.total_hops,
        events=obs.events_processed,
        cache_hits=obs.total_cache_hits,
        sim_end_ms=obs.end_time,
        wall_s=wall_s,
    )


def build_star(
    consumers: int = 16, seed: int = 0, cache_capacity: int = 64
) -> Tuple[Network, List[str], int]:
    """Star topology: returns ``(net, consumer_names, universe)``."""
    net = Network(rng=RngRegistry(seed))
    net.add_router("R", capacity=cache_capacity)
    net.add_producer("P", SIMCORE_PREFIX)
    net.connect("R", "P", LogNormalDelay(base=1.0, tail_scale=0.7, sigma=0.8))
    net.add_route("R", SIMCORE_PREFIX, "P")
    names = []
    for j in range(consumers):
        name = f"C{j}"
        net.add_consumer(name)
        net.connect(
            name, "R", GaussianJitterDelay(base=1.8, jitter_std=0.12, floor=1.5)
        )
        names.append(name)
    return net, names, max(4, consumers * 4)


def build_tree(
    seed: int = 0, cache_capacity: int = 32
) -> Tuple[Network, List[str], int]:
    """3-level tree topology: returns ``(net, consumer_names, universe)``."""
    net = Network(rng=RngRegistry(seed))
    net.add_producer("P", SIMCORE_PREFIX)
    net.add_router("R0", capacity=cache_capacity)
    net.connect("R0", "P", FixedDelay(1.0))
    net.add_route("R0", SIMCORE_PREFIX, "P")

    names: List[str] = []
    for a in range(2):
        agg = f"R1-{a}"
        net.add_router(agg, capacity=cache_capacity)
        net.connect(agg, "R0", FixedDelay(0.8))
        net.add_route(agg, SIMCORE_PREFIX, "R0")
        for l in range(2):
            leaf = f"R2-{a}{l}"
            net.add_router(leaf, capacity=cache_capacity)
            net.connect(leaf, agg, FixedDelay(0.5))
            net.add_route(leaf, SIMCORE_PREFIX, agg)
            for c in range(2):
                name = f"C{a}{l}{c}"
                net.add_consumer(name)
                net.connect(name, leaf, FixedDelay(0.3))
                names.append(name)
    return net, names, 32


def run_star(
    consumers: int = 16,
    requests_per_consumer: int = 200,
    seed: int = 0,
    cache_capacity: int = 64,
) -> SimCoreResult:
    """Star: N consumers around one caching router, producer behind it."""
    net, names, universe = build_star(consumers, seed, cache_capacity)
    return _drive(net, "star", names, requests_per_consumer, universe)


def run_tree(
    requests_per_consumer: int = 150,
    seed: int = 0,
    cache_capacity: int = 32,
) -> SimCoreResult:
    """3-level tree: root - 2 aggregation routers - 4 leaves, 2 consumers
    per leaf.  Deterministic link delays maximize equal-time event ties."""
    net, names, universe = build_tree(seed, cache_capacity)
    return _drive(net, "tree", names, requests_per_consumer, universe)


def run_star_batch(
    consumers: int = 16,
    requests_per_consumer: int = 200,
    seed: int = 0,
    cache_capacity: int = 64,
) -> SimCoreResult:
    """The star workload on the batch kernel (bit-identical counts)."""
    net, names, universe = build_star(consumers, seed, cache_capacity)
    return _drive_batch(net, "star_batch", names, requests_per_consumer, universe)


def run_tree_batch(
    requests_per_consumer: int = 150,
    seed: int = 0,
    cache_capacity: int = 32,
) -> SimCoreResult:
    """The tree workload on the batch kernel (bit-identical counts)."""
    net, names, universe = build_tree(seed, cache_capacity)
    return _drive_batch(net, "tree_batch", names, requests_per_consumer, universe)


RUNNERS = {
    "star": run_star,
    "tree": run_tree,
    "star_batch": run_star_batch,
    "tree_batch": run_tree_batch,
}
