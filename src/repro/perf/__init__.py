"""Performance infrastructure: parallel sweep running and timing.

* :mod:`repro.perf.parallel` — a process-pool sweep runner for Figure-5
  style (scheme × cache-size × trial) grids, with deterministic per-task
  seeding and an on-disk trace cache shared between workers,
* :mod:`repro.perf.timing` — a small wall-clock harness plus the
  ``BENCH_*.json`` record writer the benchmarks emit for the perf
  trajectory.
"""

from repro.perf.parallel import (
    ReplaySpec,
    build_scheme,
    derive_seeds,
    ensure_trace_cached,
    resolve_workers,
    run_replay_sweep,
    trace_cache_dir,
)
from repro.perf.timing import BenchReporter, StopWatch, TimingRecord, time_call

__all__ = [
    "ReplaySpec",
    "build_scheme",
    "derive_seeds",
    "ensure_trace_cached",
    "resolve_workers",
    "run_replay_sweep",
    "trace_cache_dir",
    "BenchReporter",
    "StopWatch",
    "TimingRecord",
    "time_call",
]
