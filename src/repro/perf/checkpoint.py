"""Sweep checkpoint/resume: completed points persisted to disk.

A killed sweep (OOM, preemption, Ctrl-C) should restart from its
completed specs, not from zero.  :class:`SweepCheckpoint` is an
append-only pickle stream::

    ("repro-sweep-checkpoint-v1", <fingerprint>)   # header
    (spec_index, ReplayStats)                      # one per completed spec
    ...

The fingerprint hashes the spec list, engine choice, and workload key, so
a checkpoint written by a *different* sweep is never reused — it is
discarded and the file restarted.  A truncated tail (the process died
mid-write) is tolerated: every intact record before the damage is kept.

Because every spec carries its own seed (see
:mod:`repro.perf.parallel`), results assembled across a kill/resume
boundary are bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Dict, Union

_MAGIC = "repro-sweep-checkpoint-v1"


class SweepCheckpoint:
    """Append-only record of completed sweep points for one sweep."""

    def __init__(self, path: Union[str, Path], fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint

    def load(self) -> Dict[int, object]:
        """Read completed results; (re)initialize the file when needed.

        Returns ``{spec_index: stats}``.  A missing file, a foreign
        fingerprint, or a corrupted header starts the checkpoint fresh; a
        corrupted *tail* keeps every record read before it.
        """
        results: Dict[int, object] = {}
        if self.path.exists():
            try:
                with self.path.open("rb") as handle:
                    header = pickle.load(handle)
                    if header != (_MAGIC, self.fingerprint):
                        raise ValueError("foreign checkpoint")
                    while True:
                        index, stats = pickle.load(handle)
                        results[int(index)] = stats
            except EOFError:
                return results  # clean end of stream
            except (ValueError, TypeError, pickle.UnpicklingError, AttributeError):
                # Damaged tail: rewrite the surviving prefix.  Foreign or
                # headerless file: results is empty and the rewrite resets it.
                self._rewrite(results)
                return results
        else:
            self._rewrite(results)
        return results

    def append(self, index: int, stats: object) -> None:
        """Durably record one completed spec."""
        if not self.path.exists():
            self._rewrite({})
        with self.path.open("ab") as handle:
            pickle.dump((index, stats), handle)
            handle.flush()

    def _rewrite(self, results: Dict[int, object]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("wb") as handle:
            pickle.dump((_MAGIC, self.fingerprint), handle)
            for index in sorted(results):
                pickle.dump((index, results[index]), handle)
            handle.flush()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SweepCheckpoint({self.path}, fp={self.fingerprint[:12]})"
