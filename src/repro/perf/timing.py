"""Wall-clock timing harness and the ``BENCH_*.json`` record format.

The benchmarks use this to emit machine-readable perf records next to
their printed tables, starting the repo's performance trajectory: each
bench writes ``BENCH_<name>.json`` so successive PRs can be compared on
requests/sec and events/sec at a pinned scale.

File format (one JSON object)::

    {
      "bench": "fig5",                  # BENCH_<bench>.json
      "schema_version": 2,              # record-format version
      "git_rev": "a1e51ee",             # HEAD at write time ("" if unknown)
      "created_unix": 1730000000.0,     # time.time() at write
      "scale": {"requests": 100000},    # knobs the numbers depend on
      "peak_rss_bytes": 123456789,      # process peak RSS at write time
      "records": [
        {"label": "fig5a", "wall_s": 1.9, "requests": 2400000,
         "requests_per_sec": 1263157.9, "events": 0,
         "events_per_sec": 0.0, "peak_rss_bytes": 98765432,
         "meta": {...}},
        ...
      ]
    }

Schema history: v1 had no ``schema_version``/``git_rev`` fields (their
absence identifies a v1 file); v2 added both so cross-PR comparisons can
pin which commit produced which numbers, and made ``peak_rss_bytes``
universal — once at the top level (whole-process high-water at write
time) and once per record (the high-water when the record was taken, or
a subprocess-reported per-leg peak).
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

ENV_BENCH_DIR = "REPRO_BENCH_DIR"

#: Version of the BENCH_*.json record format (bump on breaking changes).
SCHEMA_VERSION = 2


def git_rev() -> str:
    """Abbreviated git HEAD of the working tree, or ``""`` when the
    bench runs outside a checkout (or git is unavailable)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (0 if unknown).

    Uses ``resource.getrusage``; Linux reports ``ru_maxrss`` in KiB,
    macOS in bytes.  The high-water mark covers the whole process
    lifetime, so record it once at the end of a bench.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return int(peak)
    return int(peak) * 1024


@dataclass
class TimingRecord:
    """One timed quantity: wall seconds plus optional throughput bases."""

    label: str
    wall_s: float
    #: Requests processed during the timed section (0 = not applicable).
    requests: int = 0
    #: Simulation events processed during the timed section.
    events: int = 0
    #: Process peak RSS when the record was taken (0 = not captured).
    #: A process high-water mark: within one bench it is non-decreasing
    #: across records; subprocess-isolated benches report true per-leg
    #: peaks.
    peak_rss_bytes: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def requests_per_sec(self) -> float:
        """Replay throughput; 0 when no requests were counted."""
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_sec(self) -> float:
        """Event-loop throughput; 0 when no events were counted."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-serializable form written into ``BENCH_*.json``."""
        return {
            "label": self.label,
            "wall_s": self.wall_s,
            "requests": self.requests,
            "requests_per_sec": self.requests_per_sec,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "peak_rss_bytes": self.peak_rss_bytes,
            "meta": self.meta,
        }


class StopWatch:
    """Context manager measuring wall time via ``perf_counter``."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "StopWatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``fn`` and return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


class BenchReporter:
    """Collects :class:`TimingRecord`s and writes ``BENCH_<name>.json``.

    Output directory: ``REPRO_BENCH_DIR`` if set, else the current
    working directory (the repo root under the normal pytest invocation).
    """

    def __init__(
        self, bench: str, scale: Optional[Dict[str, Any]] = None
    ) -> None:
        self.bench = bench
        self.scale = dict(scale) if scale else {}
        self.records: List[TimingRecord] = []

    def record(
        self,
        label: str,
        wall_s: float,
        requests: int = 0,
        events: int = 0,
        rss_bytes: Optional[int] = None,
        **meta: Any,
    ) -> TimingRecord:
        """Append one record; returns it for chaining/assertions.

        ``rss_bytes`` overrides the RSS stamp (subprocess-isolated
        benches pass the child's own peak); by default the record
        captures this process's current high-water mark.
        """
        entry = TimingRecord(
            label=label,
            wall_s=wall_s,
            requests=requests,
            events=events,
            peak_rss_bytes=peak_rss_bytes() if rss_bytes is None else rss_bytes,
            meta=meta,
        )
        self.records.append(entry)
        return entry

    def time(
        self,
        label: str,
        fn: Callable[..., Any],
        *args: Any,
        requests: int = 0,
        events: int = 0,
        **meta: Any,
    ) -> Tuple[Any, TimingRecord]:
        """Time ``fn(*args)`` and record it; returns (result, record)."""
        result, wall = time_call(fn, *args)
        return result, self.record(
            label, wall, requests=requests, events=events, **meta
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.bench,
            "schema_version": SCHEMA_VERSION,
            "git_rev": git_rev(),
            "created_unix": time.time(),
            "scale": self.scale,
            "peak_rss_bytes": peak_rss_bytes(),
            "records": [record.to_dict() for record in self.records],
        }

    def write(self, directory: Union[str, Path, None] = None) -> Path:
        """Write ``BENCH_<bench>.json``; returns the path written."""
        if directory is None:
            directory = os.environ.get(ENV_BENCH_DIR) or Path.cwd()
        target = Path(directory) / f"BENCH_{self.bench}.json"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return target
