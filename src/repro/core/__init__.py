"""The paper's primary contribution: privacy schemes and the formal framework.

* :mod:`repro.core.schemes` — cache-privacy countermeasures (Sections V–VI),
* :mod:`repro.core.privacy` — definitions, theorems, and their validation.
"""

from repro.core import privacy, schemes

__all__ = ["schemes", "privacy"]
