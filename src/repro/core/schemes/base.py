"""Cache-privacy scheme interface.

A *cache management* algorithm (CM in the paper's system model, Section IV)
decides how a router responds to interests that match cached content.  The
model's one asymmetry is built in here: **CM can hide cache hits but cannot
hide cache misses** — schemes are only ever consulted when the content *is*
in the cache.  A genuine miss is a genuine miss.

A scheme returns one of three decisions:

* ``HIT`` — serve from cache immediately (an *observable* cache hit),
* ``DELAYED_HIT(delay)`` — serve from cache after an artificial delay that
  makes the response look like a miss (Section V-B); bandwidth is preserved
  but, observationally and for utility accounting (Def. VI.1), this is a
  miss,
* ``MISS`` — ignore the cache entirely and re-fetch upstream (permitted by
  the system model: "CM is free to ignore its cache altogether").

Utility (Def. VI.1) counts only ``HIT`` decisions as hits, matching the
paper's evaluation where disguised responses are tallied as cache misses.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # avoid a runtime core->ndn import cycle
    from repro.ndn.cs import CacheEntry
    from repro.ndn.name import Name


class DecisionKind(enum.Enum):
    """How the router answers an interest matching cached content."""

    HIT = "hit"
    MISS = "miss"
    DELAYED_HIT = "delayed_hit"


@dataclass(frozen=True)
class Decision:
    """A scheme's verdict for one request, with the artificial delay if any."""

    kind: DecisionKind
    delay: float = 0.0

    @classmethod
    def hit(cls) -> "Decision":
        """Serve from cache now."""
        return cls(DecisionKind.HIT)

    @classmethod
    def miss(cls) -> "Decision":
        """Behave exactly like a cache miss (re-fetch upstream)."""
        return cls(DecisionKind.MISS)

    @classmethod
    def delayed(cls, delay: float) -> "Decision":
        """Serve from cache after ``delay`` ms, disguised as a miss."""
        if delay < 0:
            raise ValueError(f"artificial delay must be >= 0, got {delay}")
        return cls(DecisionKind.DELAYED_HIT, delay)

    @property
    def counts_as_hit(self) -> bool:
        """True iff the requester observes a cache hit (utility accounting)."""
        return self.kind is DecisionKind.HIT


#: Integer decision codes used by the fast-replay kernels.  They mirror
#: :class:`DecisionKind` but avoid constructing a :class:`Decision` object
#: per request on the hot path.
FAST_HIT = 0
FAST_DELAYED = 1
FAST_MISS = 2

#: DecisionKind -> fast integer code (for generic fallbacks).
FAST_CODE = {
    DecisionKind.HIT: FAST_HIT,
    DecisionKind.DELAYED_HIT: FAST_DELAYED,
    DecisionKind.MISS: FAST_MISS,
}


class SchemeKernel(abc.ABC):
    """Int-keyed counterpart of a :class:`CacheScheme` for fast replay.

    A kernel sees content as dense integer ids (the interned trace
    vocabulary of :mod:`repro.workload.compiled`) instead of
    :class:`~repro.ndn.cs.CacheEntry` objects.  It must make *exactly* the
    decisions its scheme would make on the reference replay path —
    including consuming the scheme's RNG in the same order — so that
    :func:`repro.workload.fast_replay.fast_replay` is bit-identical to
    :func:`repro.workload.replay.replay`.

    Lifecycle calls mirror the reference path: ``on_insert`` on every
    cache insert, ``decide_private`` for each request whose *effective*
    privacy is True, ``on_evict`` when the content leaves the cache.
    Non-private requests for cached content are always observable hits
    (the base :meth:`CacheScheme.on_request` contract), so the replay
    loop never consults the kernel for them.
    """

    @abc.abstractmethod
    def on_insert(self, content_id: int, private: bool) -> None:
        """Content ``content_id`` entered the cache."""

    @abc.abstractmethod
    def decide_private(self, content_id: int) -> int:
        """Decision code (FAST_HIT/FAST_DELAYED/FAST_MISS) for a
        privacy-sensitive request matching cached ``content_id``."""

    @abc.abstractmethod
    def on_evict(self, content_id: int) -> None:
        """Content ``content_id`` left the cache."""


class _ConstantKernel(SchemeKernel):
    """Kernel for stateless schemes that always answer the same decision."""

    __slots__ = ("_code",)

    def __init__(self, code: int) -> None:
        self._code = code

    def on_insert(self, content_id: int, private: bool) -> None:
        pass

    def decide_private(self, content_id: int) -> int:
        return self._code

    def on_evict(self, content_id: int) -> None:
        pass


class CacheScheme(abc.ABC):
    """Base class for all cache-privacy countermeasures.

    Subclasses implement :meth:`decide_private`; requests for non-private
    cached content are always served as plain hits (the paper's evaluation
    treats non-private content this way for every scheme).
    """

    #: Human-readable scheme name used in reports and bench output.
    name: str = "abstract"

    def on_request(self, entry: CacheEntry, private: bool, now: float) -> Decision:
        """Decide the response for a request matching cached ``entry``.

        ``private`` is the entry's *effective* privacy marking after the
        marking rules (producer bit, consumer bit, trigger rule) have been
        applied by the caller.
        """
        if not private:
            return Decision.hit()
        return self.decide_private(entry, now)

    @abc.abstractmethod
    def decide_private(self, entry: CacheEntry, now: float) -> Decision:
        """Decide the response for privacy-sensitive cached content."""

    # -- lifecycle hooks -------------------------------------------------
    def on_insert(self, entry: CacheEntry, private: bool, now: float) -> None:
        """Called when content enters the cache (initialize per-entry state)."""

    def on_evict(self, entry: CacheEntry) -> None:
        """Called when content leaves the cache (drop per-entry state)."""

    def reset(self) -> None:
        """Drop all scheme state (between experiment trials)."""

    def make_kernel(self, names: Sequence[Name]) -> Optional[SchemeKernel]:
        """Build an int-keyed fast-replay kernel, or None if unsupported.

        ``names`` is the interned trace vocabulary: ``names[content_id]``
        is the :class:`~repro.ndn.name.Name` for each dense content id
        (kernels that group correlated content need it once, up front).
        Returning None makes fast replay fall back to a per-entry shim
        that drives the ordinary :meth:`on_request` path.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
