"""Grouping of correlated content (Section VI, "Addressing Content
Correlation").

Random-Cache assumes statistically independent content.  Objects sharing a
namespace (fragments of one video, pages of one site) violate that: probing
many of them samples Algorithm 1 many times under independent k_C draws,
and the first undelayed reply reveals the whole group.  The fix is to apply
Algorithm 1 to *groups* — one counter c and one threshold k per group.

Two grouping functions are provided:

* :class:`NamespaceGrouping` — group by the first ``depth`` name components
  (the paper's "elements from the same namespace as a single group"),
* :class:`ContentIdGrouping` — group by an explicit producer-assigned
  content id carried in a reserved name component, modeling the paper's
  proposed ``content id`` field.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # avoid a runtime core->ndn import cycle
    from repro.ndn.name import Name

#: Reserved component prefix carrying a producer-assigned content id.
CONTENT_ID_PREFIX = "cid="


class GroupingFunction(abc.ABC):
    """Maps a content name to the group key Algorithm 1 should key on."""

    @abc.abstractmethod
    def group_of(self, name: Name) -> Hashable:
        """The group key for ``name``."""


class NoGrouping(GroupingFunction):
    """Every object is its own group (the vulnerable per-object baseline)."""

    def group_of(self, name: Name) -> Hashable:
        return name


class NamespaceGrouping(GroupingFunction):
    """Group by the leading ``depth`` name components.

    ``/youtube/alice/video-749.avi/137`` with depth 3 groups with every
    other fragment of the same video.
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"grouping depth must be >= 1, got {depth}")
        self.depth = depth

    def group_of(self, name: Name) -> Hashable:
        if len(name) <= self.depth:
            return name
        return name.prefix(self.depth)


class ContentIdGrouping(GroupingFunction):
    """Group by an explicit ``cid=...`` component, if present.

    Producers populate the content-id component with identical values for
    semantically correlated content (even across namespaces, e.g. linked
    web pages).  Names without a content id fall back to per-object groups.
    """

    def group_of(self, name: Name) -> Hashable:
        for component in name:
            if component.startswith(CONTENT_ID_PREFIX):
                return component
        return name
