"""Uniform-Random-Cache (Section VI).

Random-Cache with k_C ~ U(0, K).  Theorem VI.1: if cached content is
statistically independent, the scheme is (k, 0, 2k/K)-private — ε is
exactly 0 (uniform shifts are indistinguishable inside the overlap) and δ
shrinks as 1/K.  Utility follows Theorem VI.2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.privacy.distributions import UniformK
from repro.core.schemes.delay_policies import DelayPolicy
from repro.core.schemes.grouping import GroupingFunction
from repro.core.schemes.random_cache import RandomCacheScheme


class UniformRandomCache(RandomCacheScheme):
    """Random-Cache with the discrete uniform first-hit distribution."""

    name = "uniform-random-cache"

    def __init__(
        self,
        K: int,
        rng: Optional[np.random.Generator] = None,
        delay_policy: Optional[DelayPolicy] = None,
        grouping: Optional[GroupingFunction] = None,
    ) -> None:
        super().__init__(
            distribution=UniformK(K),
            rng=rng,
            delay_policy=delay_policy,
            grouping=grouping,
        )
        self.K = K

    @classmethod
    def for_privacy_target(
        cls,
        k: int,
        delta: float,
        rng: Optional[np.random.Generator] = None,
        delay_policy: Optional[DelayPolicy] = None,
        grouping: Optional[GroupingFunction] = None,
    ) -> "UniformRandomCache":
        """Build the smallest-K instance that is (k, 0, delta)-private.

        Theorem VI.1 gives δ = 2k/K, so K = ceil(2k/δ).
        """
        from repro.core.privacy.guarantees import solve_uniform_K

        return cls(
            K=solve_uniform_K(k, delta),
            rng=rng,
            delay_policy=delay_policy,
            grouping=grouping,
        )
