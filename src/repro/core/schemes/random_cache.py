"""Random-Cache: the paper's Algorithm 1, generic over the K distribution.

Per content (or per *group*, when a grouping function is supplied —
Section VI's correlation countermeasure):

1. when the content first enters the cache, draw k_C from the configured
   :class:`~repro.core.privacy.distributions.FirstHitDistribution` and set
   the request counter c_C := 0 (the fetch that inserted it was the
   always-miss first request of Algorithm 1);
2. on each subsequent request, increment c_C; answer a (disguised) miss
   while c_C <= k_C and a genuine cache hit afterwards.

Disguised misses use the configured delay policy (content-specific γ_C by
default) so they are observationally indistinguishable from real misses.

Uniform-Random-Cache and Exponential-Random-Cache are thin instantiations
(see :mod:`repro.core.schemes.uniform` / :mod:`repro.core.schemes.exponential`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.core.privacy.distributions import FirstHitDistribution
from repro.core.schemes.base import (
    FAST_DELAYED,
    FAST_HIT,
    CacheScheme,
    Decision,
    SchemeKernel,
)
from repro.core.schemes.delay_policies import ContentSpecificDelay, DelayPolicy
from repro.core.schemes.grouping import GroupingFunction, NoGrouping

if TYPE_CHECKING:  # avoid a runtime core->ndn import cycle
    from repro.ndn.cs import CacheEntry
    from repro.ndn.name import Name


@dataclass
class _GroupState:
    """Algorithm 1 state for one content group."""

    k: int
    c: int = 0
    members: int = 0


class _RandomCacheKernel(SchemeKernel):
    """Int-keyed Algorithm 1 state over a precomputed content->group map.

    Group keys (names under :class:`NoGrouping`, prefixes or content ids
    otherwise) are interned to dense group ids once at construction; the
    per-request path is then pure list indexing.  k_C draws consume the
    scheme's own RNG at exactly the reference call sites (first private
    membership of an inactive group), keeping the decision stream
    bit-identical to :meth:`RandomCacheScheme.on_insert` /
    :meth:`~RandomCacheScheme.decide_private`.
    """

    __slots__ = ("_scheme", "_gid_of", "_k", "_c", "_members", "_active",
                 "_member_gid")

    def __init__(self, scheme: "RandomCacheScheme", names: Sequence[Name]) -> None:
        self._scheme = scheme
        n = len(names)
        if isinstance(scheme.grouping, NoGrouping):
            # Every content id is its own group: the identity map.
            gid_of = list(range(n))
            groups = n
        else:
            interned: Dict[Hashable, int] = {}
            gid_of = [
                interned.setdefault(scheme.grouping.group_of(name), len(interned))
                for name in names
            ]
            groups = len(interned)
        self._gid_of: List[int] = gid_of
        self._k = [0] * groups
        self._c = [0] * groups
        self._members = [0] * groups
        self._active = [False] * groups
        #: Per-content group membership (-1 = none), mirroring the
        #: ``random_cache_group`` entry scheme-state of the reference path.
        self._member_gid = [-1] * n

    def on_insert(self, content_id: int, private: bool) -> None:
        if not private:
            return
        gid = self._gid_of[content_id]
        if not self._active[gid]:
            self._active[gid] = True
            self._k[gid] = self._scheme.distribution.sample(self._scheme.rng)
            self._c[gid] = 0
            self._members[gid] = 0
        self._members[gid] += 1
        self._member_gid[content_id] = gid

    def decide_private(self, content_id: int) -> int:
        gid = self._member_gid[content_id]
        if gid < 0:
            # Entry became private after a non-private insert (mirrors the
            # adoption branch of the reference decide_private).
            self.on_insert(content_id, True)
            gid = self._member_gid[content_id]
        c = self._c[gid] + 1
        self._c[gid] = c
        return FAST_DELAYED if c <= self._k[gid] else FAST_HIT

    def on_evict(self, content_id: int) -> None:
        gid = self._member_gid[content_id]
        if gid < 0:
            return
        self._member_gid[content_id] = -1
        members = self._members[gid] - 1
        self._members[gid] = members
        if members <= 0:
            self._active[gid] = False


class RandomCacheScheme(CacheScheme):
    """Algorithm 1 with a pluggable first-hit distribution and grouping."""

    name = "random-cache"

    def __init__(
        self,
        distribution: FirstHitDistribution,
        rng: Optional[np.random.Generator] = None,
        delay_policy: Optional[DelayPolicy] = None,
        grouping: Optional[GroupingFunction] = None,
    ) -> None:
        self.distribution = distribution
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.delay_policy = (
            delay_policy if delay_policy is not None else ContentSpecificDelay()
        )
        self.grouping = grouping if grouping is not None else NoGrouping()
        self._groups: Dict[Hashable, _GroupState] = {}

    # ------------------------------------------------------------------
    # CacheScheme interface
    # ------------------------------------------------------------------
    def on_insert(self, entry: CacheEntry, private: bool, now: float) -> None:
        """Draw k_C for the entry's group on first membership."""
        if not private:
            return
        key = self.grouping.group_of(entry.name)
        state = self._groups.get(key)
        if state is None:
            state = _GroupState(k=self.distribution.sample(self.rng))
            self._groups[key] = state
        state.members += 1
        entry.scheme_state["random_cache_group"] = key

    def decide_private(self, entry: CacheEntry, now: float) -> Decision:
        key = entry.scheme_state.get("random_cache_group")
        if key is None:
            # Entry became private after insertion (consumer marking flip is
            # disallowed by the trigger rule, but producer re-marking or a
            # reset can land here): adopt it into its group now.
            self.on_insert(entry, private=True, now=now)
            key = entry.scheme_state["random_cache_group"]
        state = self._groups[key]
        state.c += 1
        if state.c <= state.k:
            return Decision.delayed(self.delay_policy.delay_for(entry, now))
        return Decision.hit()

    def on_evict(self, entry: CacheEntry) -> None:
        """Release the entry's group; drop group state with the last member."""
        key = entry.scheme_state.pop("random_cache_group", None)
        if key is None:
            return
        state = self._groups.get(key)
        if state is None:
            return
        state.members -= 1
        if state.members <= 0:
            del self._groups[key]

    def reset(self) -> None:
        self._groups.clear()

    def make_kernel(self, names: Sequence[Name]) -> Optional[SchemeKernel]:
        return _RandomCacheKernel(self, names)

    # ------------------------------------------------------------------
    # Introspection (used by tests and the privacy oracle)
    # ------------------------------------------------------------------
    def group_state(self, key: Hashable) -> Optional[_GroupState]:
        """Expose Algorithm 1 state for ``key`` (testing/analysis only)."""
        return self._groups.get(key)

    @property
    def tracked_groups(self) -> int:
        """Number of groups currently holding state."""
        return len(self._groups)
