"""Random-Cache: the paper's Algorithm 1, generic over the K distribution.

Per content (or per *group*, when a grouping function is supplied —
Section VI's correlation countermeasure):

1. when the content first enters the cache, draw k_C from the configured
   :class:`~repro.core.privacy.distributions.FirstHitDistribution` and set
   the request counter c_C := 0 (the fetch that inserted it was the
   always-miss first request of Algorithm 1);
2. on each subsequent request, increment c_C; answer a (disguised) miss
   while c_C <= k_C and a genuine cache hit afterwards.

Disguised misses use the configured delay policy (content-specific γ_C by
default) so they are observationally indistinguishable from real misses.

Uniform-Random-Cache and Exponential-Random-Cache are thin instantiations
(see :mod:`repro.core.schemes.uniform` / :mod:`repro.core.schemes.exponential`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Optional

import numpy as np

from repro.core.privacy.distributions import FirstHitDistribution
from repro.core.schemes.base import CacheScheme, Decision
from repro.core.schemes.delay_policies import ContentSpecificDelay, DelayPolicy
from repro.core.schemes.grouping import GroupingFunction, NoGrouping

if TYPE_CHECKING:  # avoid a runtime core->ndn import cycle
    from repro.ndn.cs import CacheEntry


@dataclass
class _GroupState:
    """Algorithm 1 state for one content group."""

    k: int
    c: int = 0
    members: int = 0


class RandomCacheScheme(CacheScheme):
    """Algorithm 1 with a pluggable first-hit distribution and grouping."""

    name = "random-cache"

    def __init__(
        self,
        distribution: FirstHitDistribution,
        rng: Optional[np.random.Generator] = None,
        delay_policy: Optional[DelayPolicy] = None,
        grouping: Optional[GroupingFunction] = None,
    ) -> None:
        self.distribution = distribution
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.delay_policy = (
            delay_policy if delay_policy is not None else ContentSpecificDelay()
        )
        self.grouping = grouping if grouping is not None else NoGrouping()
        self._groups: Dict[Hashable, _GroupState] = {}

    # ------------------------------------------------------------------
    # CacheScheme interface
    # ------------------------------------------------------------------
    def on_insert(self, entry: CacheEntry, private: bool, now: float) -> None:
        """Draw k_C for the entry's group on first membership."""
        if not private:
            return
        key = self.grouping.group_of(entry.name)
        state = self._groups.get(key)
        if state is None:
            state = _GroupState(k=self.distribution.sample(self.rng))
            self._groups[key] = state
        state.members += 1
        entry.scheme_state["random_cache_group"] = key

    def decide_private(self, entry: CacheEntry, now: float) -> Decision:
        key = entry.scheme_state.get("random_cache_group")
        if key is None:
            # Entry became private after insertion (consumer marking flip is
            # disallowed by the trigger rule, but producer re-marking or a
            # reset can land here): adopt it into its group now.
            self.on_insert(entry, private=True, now=now)
            key = entry.scheme_state["random_cache_group"]
        state = self._groups[key]
        state.c += 1
        if state.c <= state.k:
            return Decision.delayed(self.delay_policy.delay_for(entry, now))
        return Decision.hit()

    def on_evict(self, entry: CacheEntry) -> None:
        """Release the entry's group; drop group state with the last member."""
        key = entry.scheme_state.pop("random_cache_group", None)
        if key is None:
            return
        state = self._groups.get(key)
        if state is None:
            return
        state.members -= 1
        if state.members <= 0:
            del self._groups[key]

    def reset(self) -> None:
        self._groups.clear()

    # ------------------------------------------------------------------
    # Introspection (used by tests and the privacy oracle)
    # ------------------------------------------------------------------
    def group_state(self, key: Hashable) -> Optional[_GroupState]:
        """Expose Algorithm 1 state for ``key`` (testing/analysis only)."""
        return self._groups.get(key)

    @property
    def tracked_groups(self) -> int:
        """Number of groups currently holding state."""
        return len(self._groups)
