"""The non-private naive k-threshold approach (Section VI).

Always answer a miss while the per-content request count c_C <= k, a hit
afterwards.  A cache hit therefore certifies that at least k requests were
made — a k-anonymity-flavored guarantee — but the scheme is *not* private:
an adversary who knows k and observes its own probe count c' at the first
hit learns that exactly k − c' prior requests were issued (the counting
attack in :mod:`repro.attacks.counting`).

Implemented as Random-Cache with the degenerate point-mass distribution,
which is exactly what it is.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.privacy.distributions import DegenerateK
from repro.core.schemes.delay_policies import DelayPolicy
from repro.core.schemes.grouping import GroupingFunction
from repro.core.schemes.random_cache import RandomCacheScheme


class NaiveThresholdScheme(RandomCacheScheme):
    """Deterministic k-threshold: miss while c_C <= k, hit afterwards."""

    name = "naive-threshold"

    def __init__(
        self,
        k: int,
        rng: Optional[np.random.Generator] = None,
        delay_policy: Optional[DelayPolicy] = None,
        grouping: Optional[GroupingFunction] = None,
    ) -> None:
        super().__init__(
            distribution=DegenerateK(k),
            rng=rng,
            delay_policy=delay_policy,
            grouping=grouping,
        )
        self.k = k
