"""Exponential-Random-Cache (Section VI).

Random-Cache with k_C ~ G̃(α, 0, K−1), the truncated geometric.  Skewing
probability mass toward small k_C yields fewer disguised misses (better
utility) at the cost of a nonzero ε.  Theorem VI.3: the scheme is
(k, −k·ln α, (1 − α^k + α^(K−k) − α^K) / (1 − α^K))-private.

``K=None`` gives the untruncated geometric — the K → ∞ limit where
δ = 1 − α^k, the smallest δ attainable for a given α, used on the
ε = −ln(1−δ) boundary of Figure 4(b).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.privacy.distributions import TruncatedGeometric
from repro.core.schemes.delay_policies import DelayPolicy
from repro.core.schemes.grouping import GroupingFunction
from repro.core.schemes.random_cache import RandomCacheScheme


class ExponentialRandomCache(RandomCacheScheme):
    """Random-Cache with the truncated geometric first-hit distribution."""

    name = "exponential-random-cache"

    def __init__(
        self,
        alpha: float,
        K: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        delay_policy: Optional[DelayPolicy] = None,
        grouping: Optional[GroupingFunction] = None,
    ) -> None:
        super().__init__(
            distribution=TruncatedGeometric(alpha, K),
            rng=rng,
            delay_policy=delay_policy,
            grouping=grouping,
        )
        self.alpha = alpha
        self.K = K

    @classmethod
    def for_privacy_target(
        cls,
        k: int,
        epsilon: float,
        delta: float,
        rng: Optional[np.random.Generator] = None,
        delay_policy: Optional[DelayPolicy] = None,
        grouping: Optional[GroupingFunction] = None,
    ) -> "ExponentialRandomCache":
        """Build the best-utility instance that is (k, epsilon, delta)-private.

        Theorem VI.3 gives ε = −k·ln α, so α = exp(−ε/k); K is then solved
        so the truncated tail meets δ (K=None when only the untruncated
        limit attains it).  Requires 1 − e^(−ε) <= δ, the feasibility
        boundary noted in the scheme comparison.
        """
        from repro.core.privacy.guarantees import solve_exponential_params

        alpha, K = solve_exponential_params(k, epsilon, delta)
        return cls(
            alpha=alpha,
            K=K,
            rng=rng,
            delay_policy=delay_policy,
            grouping=grouping,
        )
