"""Artificial-delay policies for hiding cache hits (Section V-B).

The paper discusses three ways a consumer-facing router can pick the
artificial delay applied to a cache hit on private content:

* **constant** γ — simple, but penalizes nearby content (γ too high) or
  leaks for far-away content (γ too low),
* **content-specific** γ_C — replay the original interest-in→content-out
  delay recorded when the object was first fetched; the safe choice,
* **dynamic** — start at γ_C and shrink toward a floor as the object grows
  popular, mimicking the RTT improvement a genuinely popular object would
  see from in-network caching at nearby routers.  Per Definition IV.2 the
  delay must never drop below the actual delay of content two hops away.
"""

from __future__ import annotations

import abc

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime core->ndn import cycle
    from repro.ndn.cs import CacheEntry


class DelayPolicy(abc.ABC):
    """Chooses the artificial delay for a disguised cache hit."""

    @abc.abstractmethod
    def delay_for(self, entry: CacheEntry, now: float) -> float:
        """Artificial delay (ms) before serving ``entry`` from cache."""


class ConstantDelay(DelayPolicy):
    """Fixed delay γ regardless of where the content came from.

    When the original fetch was *slower* than γ, this policy leaks: the
    disguised hit (γ) is observably faster than a genuine miss.  The leak is
    quantified by the delay-policy ablation bench.
    """

    def __init__(self, gamma: float) -> None:
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        self.gamma = gamma

    def delay_for(self, entry: CacheEntry, now: float) -> float:
        return self.gamma


class ContentSpecificDelay(DelayPolicy):
    """Replay the recorded first-fetch delay γ_C (the safe choice)."""

    def delay_for(self, entry: CacheEntry, now: float) -> float:
        return entry.fetch_delay


class DynamicDelay(DelayPolicy):
    """Popularity-adaptive delay.

    The delay decays geometrically from γ_C toward ``floor`` with each
    access, modeling content migrating into nearby caches as it becomes
    popular.  ``floor`` should be set to the genuine two-hop fetch delay
    (the closest a cached copy could legitimately be).
    """

    def __init__(self, floor: float, decay: float = 0.9) -> None:
        if floor < 0:
            raise ValueError(f"floor must be >= 0, got {floor}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.floor = floor
        self.decay = decay

    def delay_for(self, entry: CacheEntry, now: float) -> float:
        decayed = entry.fetch_delay * (self.decay ** entry.access_count)
        return max(self.floor, decayed)
