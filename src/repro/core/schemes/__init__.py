"""Cache-privacy countermeasures (the paper's core contribution).

Scheme hierarchy::

    CacheScheme (base)
    ├── NoPrivacyScheme          vanilla NDN caching (baseline)
    ├── AlwaysDelayScheme        perfect privacy via artificial delay
    └── RandomCacheScheme        Algorithm 1, generic K distribution
        ├── NaiveThresholdScheme     degenerate K (non-private strawman)
        ├── UniformRandomCache       K ~ U(0, K)
        └── ExponentialRandomCache   K ~ truncated geometric

Supporting pieces: delay policies (constant / content-specific / dynamic),
grouping functions for correlated content, and the privacy-marking rules.
"""

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.base import CacheScheme, Decision, DecisionKind
from repro.core.schemes.delay_policies import (
    ConstantDelay,
    ContentSpecificDelay,
    DelayPolicy,
    DynamicDelay,
)
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.grouping import (
    CONTENT_ID_PREFIX,
    ContentIdGrouping,
    GroupingFunction,
    NamespaceGrouping,
    NoGrouping,
)
from repro.core.schemes.marking import MarkingDecision, MarkingPolicy
from repro.core.schemes.naive_threshold import NaiveThresholdScheme
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.core.schemes.random_cache import RandomCacheScheme
from repro.core.schemes.uniform import UniformRandomCache

__all__ = [
    "CacheScheme",
    "Decision",
    "DecisionKind",
    "NoPrivacyScheme",
    "AlwaysDelayScheme",
    "RandomCacheScheme",
    "NaiveThresholdScheme",
    "UniformRandomCache",
    "ExponentialRandomCache",
    "DelayPolicy",
    "ConstantDelay",
    "ContentSpecificDelay",
    "DynamicDelay",
    "GroupingFunction",
    "NoGrouping",
    "NamespaceGrouping",
    "ContentIdGrouping",
    "CONTENT_ID_PREFIX",
    "MarkingPolicy",
    "MarkingDecision",
]
