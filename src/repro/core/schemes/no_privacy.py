"""The no-privacy baseline: vanilla NDN caching (Section VII, algorithm 1).

Every request matching cached content is served as an immediate cache hit —
the behavior the paper's attacks exploit, and the upper bound on utility in
Figure 5.
"""

from __future__ import annotations

from repro.core.schemes.base import (
    FAST_HIT,
    CacheScheme,
    Decision,
    SchemeKernel,
    _ConstantKernel,
)
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # avoid a runtime core->ndn import cycle
    from repro.ndn.cs import CacheEntry
    from repro.ndn.name import Name


class NoPrivacyScheme(CacheScheme):
    """Serve every cached object immediately, private or not."""

    name = "no-privacy"

    def on_request(self, entry: CacheEntry, private: bool, now: float) -> Decision:
        return Decision.hit()

    def decide_private(self, entry: CacheEntry, now: float) -> Decision:
        return Decision.hit()

    def make_kernel(self, names: Sequence[Name]) -> Optional[SchemeKernel]:
        return _ConstantKernel(FAST_HIT)
