"""Always-delay-private-content (Sections V-B and VII, algorithm 2).

Every request for *cached private* content is disguised as a cache miss by
delaying the response per the configured delay policy (content-specific
γ_C by default, the paper's safe choice).  Because a cache hit is never
observable for private content, the scheme is perfectly private in the
sense of Definition IV.2 — at the cost of forfeiting all latency benefit
of caching for private traffic (the Figure 5 lower bound).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.schemes.base import (
    FAST_DELAYED,
    CacheScheme,
    Decision,
    SchemeKernel,
    _ConstantKernel,
)
from repro.core.schemes.delay_policies import ContentSpecificDelay, DelayPolicy

if TYPE_CHECKING:  # avoid a runtime core->ndn import cycle
    from repro.ndn.cs import CacheEntry
    from repro.ndn.name import Name


class AlwaysDelayScheme(CacheScheme):
    """Disguise every private cache hit as a miss via artificial delay."""

    name = "always-delay"

    def __init__(self, delay_policy: Optional[DelayPolicy] = None) -> None:
        self.delay_policy = (
            delay_policy if delay_policy is not None else ContentSpecificDelay()
        )

    def decide_private(self, entry: CacheEntry, now: float) -> Decision:
        return Decision.delayed(self.delay_policy.delay_for(entry, now))

    def make_kernel(self, names: Sequence[Name]) -> Optional[SchemeKernel]:
        # Replay accounting depends only on the decision *kind*; the
        # artificial delay amount is charged by the replay loop itself.
        return _ConstantKernel(FAST_DELAYED)
