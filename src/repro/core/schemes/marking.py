"""Privacy marking: who declares content sensitive, and the trigger rule.

Section V defines three non-exclusive marking channels:

* **producer-driven** — a privacy bit in the content header or a reserved
  ``/private/`` name component; always honored by consumer-facing routers,
* **consumer-driven** — a privacy bit in the interest,
* **mutual** — unpredictable names (handled in :mod:`repro.naming`; opaque
  to routers, so no router logic here).

For content *not* marked private by its producer, the paper's trigger rule
applies: once any interest for it arrives **without** the privacy bit, the
content must be treated as non-private for as long as it stays cached.
Otherwise an adversary probing twice without privacy would see
delayed/delayed (previously requested privately) vs miss/hit (never
requested) and learn exactly what the countermeasure is meant to hide.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime core->ndn import cycle
    from repro.ndn.cs import CacheEntry
    from repro.ndn.packets import Data, Interest


@dataclass
class MarkingDecision:
    """The effective privacy of an entry after the marking rules."""

    private: bool
    #: True when the trigger rule just demoted the entry to non-private.
    demoted: bool = False


class MarkingPolicy:
    """Combines producer and consumer marking under the trigger rule.

    State is carried on the cache entry itself (``entry.private`` plus the
    ``producer_private`` scheme-state flag), so the policy object is
    stateless and shareable between routers.
    """

    #: Key under which the immutable producer marking is cached on entries.
    PRODUCER_KEY = "marking_producer_private"

    def privacy_at_insert(self, data: Data, requested_private: bool) -> bool:
        """Effective marking for content entering the cache.

        ``requested_private`` is True iff *every* interest collapsed into
        the PIT entry that fetched this object carried the privacy bit: a
        single unmarked interest already triggers non-private treatment.
        """
        return data.effectively_private or requested_private

    def annotate_entry(self, entry: CacheEntry, data: Data) -> None:
        """Record the immutable producer-driven marking on the entry."""
        entry.scheme_state[self.PRODUCER_KEY] = data.effectively_private

    def on_request(self, entry: CacheEntry, interest: Interest) -> MarkingDecision:
        """Apply the trigger rule for one arriving interest."""
        return self.effective_privacy(entry, interest.private)

    def effective_privacy(
        self, entry: CacheEntry, request_private: bool
    ) -> MarkingDecision:
        """Apply the trigger rule for one request; updates ``entry.private``.

        Producer-marked content stays private regardless of the request.
        Consumer-marked content is demoted permanently (for this cache
        residency) by the first non-private request.
        """
        producer_private = bool(entry.scheme_state.get(self.PRODUCER_KEY, False))
        if producer_private:
            entry.private = True
            return MarkingDecision(private=True)
        if entry.private and not request_private:
            entry.private = False
            return MarkingDecision(private=False, demoted=True)
        return MarkingDecision(private=entry.private)
