"""The Q_S query oracle (Section IV's system model), solved exactly.

The adversary interacts with the router only through the probabilistic
query algorithm Q_S: submit a name, observe hit (1) or miss (0); each query
advances the router state S' (C) = S(C) + 1.

For Random-Cache schemes the adversary's best strategy is to probe the same
content repeatedly (footnote 8), so the observable is the *output sequence*
of t consecutive probes.  Because Algorithm 1 answers misses up to a
threshold and hits afterwards, every reachable sequence is a miss-prefix
followed by hits, fully described by the prefix length m in {0, ..., t}.

This module computes the exact distribution of m under

* state S0 — the content was never requested (S(C) = 0), and
* state S1 — the content was requested x in [1, k] times before probing,

from which :func:`oracle_guarantee` derives the tight (ε, δ) via
:mod:`repro.core.privacy.indistinguishability`, checkable against the
closed-form Theorems VI.1/VI.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.privacy.distributions import FirstHitDistribution
from repro.core.privacy.guarantees import PrivacyGuarantee
from repro.core.privacy.indistinguishability import Distribution, min_delta, min_epsilon


def prefix_length_distribution(
    distribution: FirstHitDistribution, prior_requests: int, t: int
) -> Distribution:
    """Distribution of the miss-prefix length over t probes.

    ``prior_requests`` = x is the number of requests already made for the
    content before the adversary starts probing (x = 0 is state S0).

    Derivation: after x >= 1 requests, Algorithm 1's counter is c = x − 1,
    and the j-th probe is a miss iff x − 1 + j <= k_C.  For x = 0 the first
    probe is the always-miss fetch, then the count proceeds as above, so
    both cases reduce to  m = clamp(k_C + 1 − x, 0, t)  with x = 0 allowed.
    """
    if prior_requests < 0:
        raise ValueError(f"prior_requests must be >= 0, got {prior_requests}")
    if t < 1:
        raise ValueError(f"probe count t must be >= 1, got {t}")
    x = prior_requests
    dist: Dict[int, float] = {}
    # m = 0  <=>  k <= x - 1  (only possible when x >= 1).
    if x >= 1:
        p0 = distribution.cdf(x - 1)
        if p0 > 0:
            dist[0] = p0
    # m = j in (0, t)  <=>  k = x + j - 1.
    for j in range(1, t):
        p = distribution.pmf(x + j - 1)
        if p > 0:
            dist[j] = p
    # m = t  <=>  k >= x + t - 1.
    pt = 1.0 - distribution.cdf(x + t - 2)
    if pt > 1e-15:
        dist[t] = pt
    return dist


@dataclass(frozen=True)
class OracleAnalysis:
    """Tight (ε, δ) extracted from exact probe-sequence distributions."""

    k: int
    t: int
    epsilon: float
    delta_at_epsilon: float
    delta_at_zero: float

    def as_guarantee(self) -> PrivacyGuarantee:
        """The (k, ε, δ) statement the oracle analysis certifies."""
        return PrivacyGuarantee(self.k, self.epsilon, self.delta_at_epsilon)


def oracle_guarantee(
    distribution: FirstHitDistribution,
    k: int,
    t: int,
    epsilon: float,
) -> OracleAnalysis:
    """Worst-case (over x in [1, k]) tight δ at the given ε and probe budget t.

    The paper's theorems bound the supremum over all t; taking
    t >= domain_size + k makes the finite-t computation achieve it (every
    distinguishing outcome has materialized by then).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    d0 = prefix_length_distribution(distribution, 0, t)
    worst_delta = 0.0
    worst_delta0 = 0.0
    for x in range(1, k + 1):
        dx = prefix_length_distribution(distribution, x, t)
        worst_delta = max(worst_delta, min_delta(d0, dx, epsilon).delta)
        worst_delta0 = max(worst_delta0, min_delta(d0, dx, 0.0).delta)
    return OracleAnalysis(
        k=k,
        t=t,
        epsilon=epsilon,
        delta_at_epsilon=worst_delta,
        delta_at_zero=worst_delta0,
    )


def oracle_min_epsilon(
    distribution: FirstHitDistribution, k: int, t: int, delta: float
) -> float:
    """Worst-case (over x in [1, k]) minimal ε for a δ budget."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    d0 = prefix_length_distribution(distribution, 0, t)
    return max(
        min_epsilon(d0, prefix_length_distribution(distribution, x, t), delta)
        for x in range(1, k + 1)
    )
