"""(ε, δ)-probabilistic indistinguishability (Definition IV.1).

Two distributions D1, D2 over a discrete output space Ω are (ε, δ)-prob.
indistinguishable if Ω splits into Ω1 ∪ Ω2 with

* e^(−ε) <= Pr(D1 = O) / Pr(D2 = O) <= e^ε for every O in Ω1, and
* Pr(D1 ∈ Ω2) + Pr(D2 ∈ Ω2) <= δ.

Given ε, the *minimal* δ is achieved by putting exactly the
ratio-violating outcomes into Ω2; this module computes that minimum, the
dual minimal ε for a given δ budget, and the full ε→δ tradeoff curve.

Distributions are plain ``{outcome: probability}`` dicts over hashable
outcomes (the privacy oracle uses miss-prefix lengths as outcomes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

Distribution = Dict[Hashable, float]

#: Tolerance for probability normalization checks.
_NORM_TOL = 1e-9


def _validate(dist: Distribution, label: str) -> None:
    total = 0.0
    for outcome, p in dist.items():
        if p < -_NORM_TOL:
            raise ValueError(f"{label} has negative probability at {outcome!r}: {p}")
        total += p
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"{label} probabilities sum to {total}, expected 1")


@dataclass(frozen=True)
class IndistinguishabilityResult:
    """The minimal δ for a given ε, with the violating outcome set."""

    epsilon: float
    delta: float
    bad_outcomes: Tuple[Hashable, ...]

    def satisfied_by(self, epsilon: float, delta: float) -> bool:
        """True if (epsilon, delta) dominates this result's requirement."""
        return epsilon >= self.epsilon - 1e-12 and delta >= self.delta - 1e-12


def min_delta(
    d1: Distribution, d2: Distribution, epsilon: float
) -> IndistinguishabilityResult:
    """Minimal δ such that d1, d2 are (ε, δ)-prob. indistinguishable.

    Outcomes whose probability ratio cannot be bounded by e^±ε — including
    every outcome with positive mass in only one distribution — contribute
    their combined mass to δ.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    _validate(d1, "d1")
    _validate(d2, "d2")
    bound = math.exp(epsilon)
    bad: List[Hashable] = []
    delta = 0.0
    for outcome in set(d1) | set(d2):
        p1 = d1.get(outcome, 0.0)
        p2 = d2.get(outcome, 0.0)
        if p1 <= _NORM_TOL and p2 <= _NORM_TOL:
            continue
        if p1 <= _NORM_TOL or p2 <= _NORM_TOL:
            violated = True
        else:
            ratio = p1 / p2
            violated = ratio > bound * (1 + 1e-12) or ratio < (1 - 1e-12) / bound
        if violated:
            bad.append(outcome)
            delta += p1 + p2
    return IndistinguishabilityResult(
        epsilon=epsilon,
        delta=min(delta, 2.0),
        bad_outcomes=tuple(sorted(bad, key=repr)),
    )


def min_epsilon(d1: Distribution, d2: Distribution, delta: float) -> float:
    """Minimal ε such that d1, d2 are (ε, δ)-prob. indistinguishable.

    Greedy: sort outcomes by |log ratio| descending and move the worst into
    Ω2 until their combined mass exhausts the δ budget; ε is then the worst
    remaining ratio.  Returns ``inf`` when even δ = 2 cannot cover (never
    happens for proper distributions).
    """
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    _validate(d1, "d1")
    _validate(d2, "d2")
    scored: List[Tuple[float, float]] = []  # (|log ratio|, combined mass)
    for outcome in set(d1) | set(d2):
        p1 = d1.get(outcome, 0.0)
        p2 = d2.get(outcome, 0.0)
        if p1 <= _NORM_TOL and p2 <= _NORM_TOL:
            continue
        if p1 <= _NORM_TOL or p2 <= _NORM_TOL:
            log_ratio = math.inf
        else:
            log_ratio = abs(math.log(p1 / p2))
        scored.append((log_ratio, p1 + p2))
    scored.sort(reverse=True)
    budget = delta
    for log_ratio, mass in scored:
        if math.isinf(log_ratio) or mass <= budget + 1e-12:
            if math.isinf(log_ratio):
                if mass > budget + 1e-12:
                    return math.inf
                budget -= mass
                continue
            budget -= mass
            continue
        return log_ratio
    return 0.0


def tradeoff_curve(
    d1: Distribution, d2: Distribution
) -> List[Tuple[float, float]]:
    """The achievable (ε, δ) frontier, as (ε, minimal δ) pairs.

    Evaluates δ_min at every distinct |log ratio| breakpoint of the outcome
    set, from ε = 0 up to the largest finite ratio.
    """
    _validate(d1, "d1")
    _validate(d2, "d2")
    ratios = {0.0}
    for outcome in set(d1) | set(d2):
        p1 = d1.get(outcome, 0.0)
        p2 = d2.get(outcome, 0.0)
        if p1 > _NORM_TOL and p2 > _NORM_TOL:
            ratios.add(abs(math.log(p1 / p2)))
    curve = []
    for eps in sorted(ratios):
        curve.append((eps, min_delta(d1, d2, eps).delta))
    return curve


def total_variation(d1: Distribution, d2: Distribution) -> float:
    """Total-variation distance (the δ at ε = 0 is bounded by 2·TV)."""
    _validate(d1, "d1")
    _validate(d2, "d2")
    return 0.5 * sum(
        abs(d1.get(o, 0.0) - d2.get(o, 0.0)) for o in set(d1) | set(d2)
    )
