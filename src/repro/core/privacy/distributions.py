"""First-hit-index distributions for Random-Cache (Algorithm 1).

Random-Cache draws, per content, a threshold k_C from a distribution K on
[0, K); the first k_C + 1 requests are answered as misses, everything after
as hits.  The paper instantiates K as:

* the discrete uniform U(0, K) — **Uniform-Random-Cache** (Thm VI.1/VI.2),
* the truncated geometric G̃(α, 0, K−1) — **Exponential-Random-Cache**
  (Thm VI.3/VI.4); the untruncated limit K → ∞ is supported because
  Figure 4(b) evaluates the ε = −ln(1−δ) boundary where only K = ∞
  attains the target δ.

The degenerate point mass reproduces the paper's non-private naive
k-threshold scheme inside the same machinery.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np


class FirstHitDistribution(abc.ABC):
    """Distribution of the per-content threshold k_C."""

    #: Exclusive upper bound of the support, or None for unbounded.
    domain_size: Optional[int]

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one threshold k_C."""

    @abc.abstractmethod
    def pmf(self, r: int) -> float:
        """Pr[K = r]."""

    @abc.abstractmethod
    def mean(self) -> float:
        """E[K]."""

    def cdf(self, r: int) -> float:
        """Pr[K <= r] (generic finite-sum fallback)."""
        if r < 0:
            return 0.0
        upper = r if self.domain_size is None else min(r, self.domain_size - 1)
        return float(sum(self.pmf(i) for i in range(upper + 1)))


class UniformK(FirstHitDistribution):
    """Discrete uniform on {0, 1, ..., K−1}: Pr[K = r] = 1/K."""

    def __init__(self, K: int) -> None:
        if K < 1:
            raise ValueError(f"uniform domain size K must be >= 1, got {K}")
        self.K = K
        self.domain_size = K

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.K))

    def pmf(self, r: int) -> float:
        return 1.0 / self.K if 0 <= r < self.K else 0.0

    def cdf(self, r: int) -> float:
        if r < 0:
            return 0.0
        return min(1.0, (r + 1) / self.K)

    def mean(self) -> float:
        return (self.K - 1) / 2.0

    def __repr__(self) -> str:
        return f"UniformK(K={self.K})"


class TruncatedGeometric(FirstHitDistribution):
    """Truncated geometric G̃(α, 0, K−1): Pr[K = r] = (1−α)α^r / (1−α^K).

    ``K=None`` gives the untruncated geometric Pr[K = r] = (1−α)α^r, the
    K → ∞ limit used on the ε = −ln(1−δ) boundary of Figure 4(b).
    """

    def __init__(self, alpha: float, K: Optional[int] = None) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if K is not None and K < 1:
            raise ValueError(f"truncation bound K must be >= 1 or None, got {K}")
        self.alpha = alpha
        self.K = K
        self.domain_size = K
        # Normalizer: sum over [0, K-1] of (1-α)α^r = 1 - α^K.
        self._norm = 1.0 - alpha**K if K is not None else 1.0

    def sample(self, rng: np.random.Generator) -> int:
        if self.K is None:
            # Inverse-CDF sampling of the geometric on {0, 1, ...}.
            u = rng.random()
            return int(math.floor(math.log1p(-u) / math.log(self.alpha)))
        # Inverse-CDF on the truncated support: F(r) = (1 - α^(r+1)) / (1 - α^K).
        u = rng.random() * self._norm
        r = int(math.floor(math.log1p(-u) / math.log(self.alpha)))
        return min(r, self.K - 1)

    def pmf(self, r: int) -> float:
        if r < 0 or (self.K is not None and r >= self.K):
            return 0.0
        return (1.0 - self.alpha) * self.alpha**r / self._norm

    def cdf(self, r: int) -> float:
        if r < 0:
            return 0.0
        if self.K is not None and r >= self.K - 1:
            return 1.0
        return (1.0 - self.alpha ** (r + 1)) / self._norm

    def mean(self) -> float:
        a = self.alpha
        if self.K is None:
            return a / (1.0 - a)
        K = self.K
        # E[K] = sum r (1-a) a^r / (1-a^K) over [0, K-1].
        numer = a * (1.0 - a**K) / (1.0 - a) - K * a**K
        return numer / (1.0 - a**K)

    def __repr__(self) -> str:
        return f"TruncatedGeometric(alpha={self.alpha}, K={self.K})"


class DegenerateK(FirstHitDistribution):
    """Point mass at a fixed k: the paper's naive (non-private) threshold."""

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"degenerate threshold must be >= 0, got {k}")
        self.k = k
        self.domain_size = k + 1

    def sample(self, rng: np.random.Generator) -> int:
        return self.k

    def pmf(self, r: int) -> float:
        return 1.0 if r == self.k else 0.0

    def cdf(self, r: int) -> float:
        return 1.0 if r >= self.k else 0.0

    def mean(self) -> float:
        return float(self.k)

    def __repr__(self) -> str:
        return f"DegenerateK(k={self.k})"
