"""Closed-form (k, ε, δ)-privacy guarantees and parameter solvers.

Implements the paper's privacy theorems:

* Theorem VI.1 — Uniform-Random-Cache with domain size K is
  (k, 0, 2k/K)-private,
* Theorem VI.3 — Exponential-Random-Cache with shape α and truncation K is
  (k, −k·ln α, (1 − α^k + α^(K−k) − α^K) / (1 − α^K))-private; the K → ∞
  limit gives δ = 1 − α^k, the smallest δ attainable for that α.

Plus the inverse problems the evaluation needs (Figure 4): given a privacy
target (k, ε, δ), find the scheme parameters that meet it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class PrivacyGuarantee:
    """A (k, ε, δ)-privacy statement (Definition IV.3)."""

    k: int
    epsilon: float
    delta: float

    def dominates(self, other: "PrivacyGuarantee") -> bool:
        """True if this guarantee is at least as strong as ``other``.

        Stronger means: protects at least as large an anonymity threshold
        with no larger ε and no larger δ.
        """
        return (
            self.k >= other.k
            and self.epsilon <= other.epsilon + 1e-12
            and self.delta <= other.delta + 1e-12
        )

    def __str__(self) -> str:
        return f"({self.k}, {self.epsilon:.6g}, {self.delta:.6g})-privacy"


# ----------------------------------------------------------------------
# Forward direction: parameters -> guarantee
# ----------------------------------------------------------------------
def uniform_privacy(k: int, K: int) -> PrivacyGuarantee:
    """Theorem VI.1: Uniform-Random-Cache(K) is (k, 0, 2k/K)-private."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if K < 1:
        raise ValueError(f"K must be >= 1, got {K}")
    return PrivacyGuarantee(k=k, epsilon=0.0, delta=min(1.0, 2.0 * k / K))


def exponential_privacy(k: int, alpha: float, K: Optional[int]) -> PrivacyGuarantee:
    """Theorem VI.3: guarantee of Exponential-Random-Cache(α, K).

    ``K=None`` is the untruncated limit with δ = 1 − α^k.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    epsilon = -k * math.log(alpha)
    if K is None:
        delta = 1.0 - alpha**k
    else:
        if K < 1:
            raise ValueError(f"K must be >= 1 or None, got {K}")
        delta = (1.0 - alpha**k + alpha ** (K - k) - alpha**K) / (1.0 - alpha**K)
    return PrivacyGuarantee(k=k, epsilon=epsilon, delta=min(1.0, delta))


# ----------------------------------------------------------------------
# Inverse direction: guarantee -> parameters
# ----------------------------------------------------------------------
def solve_uniform_K(k: int, delta: float) -> int:
    """Smallest K making Uniform-Random-Cache (k, 0, delta)-private.

    From δ = 2k/K: K = ceil(2k/δ).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 < delta <= 1.0:
        raise ValueError(f"delta must be in (0, 1], got {delta}")
    return math.ceil(2.0 * k / delta)


def max_exponential_epsilon(delta: float) -> float:
    """The largest ε Exponential-Random-Cache can meet for a given δ.

    Feasibility requires the K → ∞ floor 1 − α^k = 1 − e^(−ε) <= δ, i.e.
    ε <= −ln(1 − δ) — the boundary Figure 4(b) evaluates on.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return -math.log(1.0 - delta)


def solve_exponential_params(
    k: int, epsilon: float, delta: float, tol: float = 1e-12
) -> Tuple[float, Optional[int]]:
    """Parameters (α, K) making Exponential-Random-Cache (k, ε, δ)-private.

    α = exp(−ε/k) pins ε exactly (Theorem VI.3); K is then the smallest
    truncation meeting δ, found in closed form from

        α^K = (α^k − (1 − δ)) / (α^(−k) − (1 − δ)).

    Returns ``K=None`` (untruncated) when only the K → ∞ limit attains δ
    (the ε = −ln(1−δ) boundary).  Raises when ε > −ln(1−δ) (infeasible).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0 for the exponential scheme, got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    alpha = math.exp(-epsilon / k)
    floor_delta = 1.0 - alpha**k  # = 1 - e^(-epsilon)
    if floor_delta > delta + tol:
        raise ValueError(
            f"infeasible target: epsilon={epsilon} requires delta >= "
            f"{floor_delta:.6g} > {delta} (max feasible epsilon is "
            f"{max_exponential_epsilon(delta):.6g})"
        )
    if floor_delta >= delta - 1e-9:
        return alpha, None
    x = (alpha**k - (1.0 - delta)) / (alpha**-k - (1.0 - delta))
    K = math.ceil(math.log(x) / math.log(alpha))
    K = max(K, k + 1)
    # Rounding K up can only shrink delta; verify.
    achieved = exponential_privacy(k, alpha, K).delta
    while achieved > delta + 1e-9:  # pragma: no cover - numeric safety net
        K += 1
        achieved = exponential_privacy(k, alpha, K).delta
    return alpha, K
