"""Formal privacy framework: definitions IV.1–IV.3 and theorems VI.1–VI.4.

* :mod:`distributions` — the first-hit distributions K of Algorithm 1,
* :mod:`indistinguishability` — (ε, δ)-probabilistic indistinguishability,
* :mod:`guarantees` — closed-form (k, ε, δ) statements and parameter solvers,
* :mod:`utility` — u(c) closed forms,
* :mod:`oracle` — exact Q_S probe-sequence analysis,
* :mod:`empirical` — Monte-Carlo validation against running scheme code.
"""

from repro.core.privacy.distributions import (
    DegenerateK,
    FirstHitDistribution,
    TruncatedGeometric,
    UniformK,
)
from repro.core.privacy.empirical import (
    EmpiricalPrivacy,
    estimate_privacy,
    estimate_utility,
    simulate_probe_prefix,
)
from repro.core.privacy.guarantees import (
    PrivacyGuarantee,
    exponential_privacy,
    max_exponential_epsilon,
    solve_exponential_params,
    solve_uniform_K,
    uniform_privacy,
)
from repro.core.privacy.indistinguishability import (
    IndistinguishabilityResult,
    min_delta,
    min_epsilon,
    total_variation,
    tradeoff_curve,
)
from repro.core.privacy.oracle import (
    OracleAnalysis,
    oracle_guarantee,
    oracle_min_epsilon,
    prefix_length_distribution,
)
from repro.core.privacy.utility import (
    expected_misses,
    exponential_expected_misses,
    exponential_utility,
    max_utility_difference,
    uniform_expected_misses,
    uniform_expected_misses_paper,
    uniform_utility,
    utility_from_misses,
    utility_difference,
)

__all__ = [
    "FirstHitDistribution",
    "UniformK",
    "TruncatedGeometric",
    "DegenerateK",
    "PrivacyGuarantee",
    "uniform_privacy",
    "exponential_privacy",
    "solve_uniform_K",
    "solve_exponential_params",
    "max_exponential_epsilon",
    "IndistinguishabilityResult",
    "min_delta",
    "min_epsilon",
    "tradeoff_curve",
    "total_variation",
    "OracleAnalysis",
    "oracle_guarantee",
    "oracle_min_epsilon",
    "prefix_length_distribution",
    "EmpiricalPrivacy",
    "estimate_privacy",
    "estimate_utility",
    "simulate_probe_prefix",
    "expected_misses",
    "utility_from_misses",
    "uniform_expected_misses",
    "uniform_expected_misses_paper",
    "uniform_utility",
    "exponential_expected_misses",
    "exponential_utility",
    "utility_difference",
    "max_utility_difference",
]
