"""Monte-Carlo validation of the privacy theorems against *running code*.

The oracle module computes exact distributions from the K distribution's
pmf; this module instead drives actual :class:`RandomCacheScheme` objects
through simulated request histories and estimates the same quantities from
samples.  Agreement between the two (and with the closed-form theorems) is
what ties the implementation to the paper's analysis.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
import numpy as np

from repro.core.privacy.indistinguishability import Distribution, min_delta
from repro.core.schemes.base import CacheScheme, DecisionKind
from repro.ndn.cs import CacheEntry
from repro.ndn.name import Name
from repro.ndn.packets import Data


def _fresh_entry(name: Name) -> CacheEntry:
    """A minimal private cache entry for scheme-only experiments."""
    return CacheEntry(
        data=Data(name=name, private=True),
        insert_time=0.0,
        last_access=0.0,
        fetch_delay=10.0,
        private=True,
    )


def simulate_probe_prefix(
    scheme_factory,
    prior_requests: int,
    t: int,
    trials: int,
    seed: int = 0,
) -> Distribution:
    """Empirical miss-prefix-length distribution over ``t`` probes.

    ``scheme_factory(rng)`` must build a fresh scheme instance.  Each trial
    replays ``prior_requests`` honest requests (the first being the fetch
    that caches the content), then probes ``t`` times and records how many
    leading probes were answered as misses.

    Outcome convention matches
    :func:`repro.core.privacy.oracle.prefix_length_distribution`.
    """
    if t < 1:
        raise ValueError(f"probe count t must be >= 1, got {t}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    root = np.random.SeedSequence(seed)
    counts: Counter = Counter()
    name = Name.parse("/probe/target")
    for child in root.spawn(trials):
        rng = np.random.Generator(np.random.PCG64(child))
        scheme: CacheScheme = scheme_factory(rng)
        entry = _fresh_entry(name)
        requests_made = 0
        if prior_requests >= 1:
            # The first honest request is the genuine miss that caches C.
            scheme.on_insert(entry, private=True, now=0.0)
            requests_made = 1
            for _ in range(prior_requests - 1):
                scheme.on_request(entry, private=True, now=0.0)
                requests_made += 1
        prefix = 0
        in_prefix = True
        for probe_index in range(t):
            if requests_made == 0:
                # State S0: the adversary's own first probe is the fetch.
                scheme.on_insert(entry, private=True, now=0.0)
                requests_made = 1
                hit = False
            else:
                decision = scheme.on_request(entry, private=True, now=0.0)
                requests_made += 1
                hit = decision.kind is DecisionKind.HIT
            if in_prefix:
                if hit:
                    in_prefix = False
                else:
                    prefix += 1
        counts[prefix] += 1
    return {m: n / trials for m, n in counts.items()}


@dataclass(frozen=True)
class EmpiricalPrivacy:
    """Sampled worst-case δ at a given ε over x in [1, k]."""

    k: int
    t: int
    trials: int
    epsilon: float
    delta: float


def estimate_privacy(
    scheme_factory,
    k: int,
    t: int,
    epsilon: float,
    trials: int = 20000,
    seed: int = 0,
) -> EmpiricalPrivacy:
    """Empirical analogue of :func:`repro.core.privacy.oracle.oracle_guarantee`."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    d0 = simulate_probe_prefix(scheme_factory, 0, t, trials, seed=seed)
    worst = 0.0
    for x in range(1, k + 1):
        dx = simulate_probe_prefix(scheme_factory, x, t, trials, seed=seed + x)
        worst = max(worst, min_delta(d0, dx, epsilon).delta)
    return EmpiricalPrivacy(k=k, t=t, trials=trials, epsilon=epsilon, delta=worst)


def estimate_utility(
    scheme_factory,
    c: int,
    trials: int = 5000,
    seed: int = 0,
) -> float:
    """Empirical u(c): average observed-hit fraction over c requests.

    The first request is the genuine fetch miss, matching the convention of
    Theorems VI.2/VI.4 (E[M(c)] = E[min(K+1, c)]).
    """
    if c < 1:
        raise ValueError(f"request count c must be >= 1, got {c}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    root = np.random.SeedSequence(seed)
    name = Name.parse("/utility/target")
    total_hits = 0
    for child in root.spawn(trials):
        rng = np.random.Generator(np.random.PCG64(child))
        scheme: CacheScheme = scheme_factory(rng)
        entry = _fresh_entry(name)
        scheme.on_insert(entry, private=True, now=0.0)  # request 1: miss
        for _ in range(c - 1):
            decision = scheme.on_request(entry, private=True, now=0.0)
            if decision.kind is DecisionKind.HIT:
                total_hits += 1
    return total_hits / (trials * c)
