"""Utility of cache-privacy schemes (Definition VI.1, Theorems VI.2/VI.4).

Utility u(c) is the expected fraction of c requests answered as observable
cache hits: u(c) = 1 − E[M(c)] / c, with M(c) the number of (real or
disguised) misses.

Under Algorithm 1 with threshold k_C drawn from distribution K, the misses
are exactly the first min(k_C + 1, c) requests (the always-miss first fetch
plus the k_C disguised misses), so

    E[M(c)] = E[min(K + 1, c)].

For the exponential scheme this reproduces Theorem VI.4 *exactly*.  For the
uniform scheme the paper's printed Theorem VI.2 differs from the
Equation-(1) derivation by a one-unit index shift (it gives u(1) = 1/(2K) > 0,
contradicting "the first request always is a cache miss"); we implement
both the exact form and the printed form and record the discrepancy in
EXPERIMENTS.md.  The difference is O(1/K) and invisible at Figure 4's
parameter scales.
"""

from __future__ import annotations

from typing import Optional

from repro.core.privacy.distributions import FirstHitDistribution


def expected_misses(c: int, distribution: FirstHitDistribution) -> float:
    """E[M(c)] = E[min(K + 1, c)] by direct summation over the support.

    Works for any finite-support distribution; unbounded supports are
    summed until the tail mass is negligible.
    """
    if c < 1:
        raise ValueError(f"request count c must be >= 1, got {c}")
    upper = distribution.domain_size
    total = 0.0
    mass = 0.0
    r = 0
    while True:
        if upper is not None and r >= upper:
            break
        p = distribution.pmf(r)
        total += min(r + 1, c) * p
        mass += p
        r += 1
        if upper is None and (1.0 - mass) < 1e-12:
            break
        if upper is None and r > 10_000_000:  # pragma: no cover - safety net
            raise RuntimeError("unbounded support did not converge")
    # Any unaccounted tail mass has min(r+1, c) = c (r grows past c quickly).
    total += (1.0 - mass) * c
    return total


def utility_from_misses(c: int, expected_miss_count: float) -> float:
    """u(c) = 1 − E[M(c)]/c (Definition VI.1)."""
    if c < 1:
        raise ValueError(f"request count c must be >= 1, got {c}")
    return 1.0 - expected_miss_count / c


# ----------------------------------------------------------------------
# Uniform-Random-Cache (Theorem VI.2)
# ----------------------------------------------------------------------
def uniform_expected_misses(c: int, K: int) -> float:
    """Exact E[M(c)] for k_C ~ U(0, K), from E[min(K+1, c)].

    For c <= K: c − c(c−1)/(2K);  for c > K: (K+1)/2.
    """
    if c < 1:
        raise ValueError(f"request count c must be >= 1, got {c}")
    if K < 1:
        raise ValueError(f"K must be >= 1, got {K}")
    if c <= K:
        return c - c * (c - 1) / (2.0 * K)
    return (K + 1) / 2.0


def uniform_expected_misses_paper(c: int, K: int) -> float:
    """Theorem VI.2 exactly as printed: c(1 − (c+1)/(2K)) for c < K, else K/2.

    Kept for fidelity; differs from :func:`uniform_expected_misses` by a
    one-unit index shift (see module docstring).
    """
    if c < 1:
        raise ValueError(f"request count c must be >= 1, got {c}")
    if K < 1:
        raise ValueError(f"K must be >= 1, got {K}")
    if c < K:
        return c * (1.0 - (c + 1) / (2.0 * K))
    return K / 2.0


def uniform_utility(c: int, K: int) -> float:
    """u(c) for Uniform-Random-Cache (exact form)."""
    return utility_from_misses(c, uniform_expected_misses(c, K))


# ----------------------------------------------------------------------
# Exponential-Random-Cache (Theorem VI.4)
# ----------------------------------------------------------------------
def exponential_expected_misses(c: int, alpha: float, K: Optional[int]) -> float:
    """Theorem VI.4: E[M(c)] for k_C ~ G̃(α, 0, K−1).

    For 1 <= c < K:
        (1 − α^c − c·α^K) / (1 − α^K) + α(1 − α^c) / ((1 − α^K)(1 − α))
    for c >= K:
        (1 − (K+1)·α^K) / (1 − α^K) + α / (1 − α)

    ``K=None`` is the untruncated limit E[M(c)] = (1 − α^c) / (1 − α).
    """
    if c < 1:
        raise ValueError(f"request count c must be >= 1, got {c}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if K is None:
        return (1.0 - alpha**c) / (1.0 - alpha)
    if K < 1:
        raise ValueError(f"K must be >= 1 or None, got {K}")
    aK = alpha**K
    if c < K:
        ac = alpha**c
        return (1.0 - ac - c * aK) / (1.0 - aK) + alpha * (1.0 - ac) / (
            (1.0 - aK) * (1.0 - alpha)
        )
    return (1.0 - (K + 1) * aK) / (1.0 - aK) + alpha / (1.0 - alpha)


def exponential_utility(c: int, alpha: float, K: Optional[int]) -> float:
    """u(c) for Exponential-Random-Cache."""
    return utility_from_misses(c, exponential_expected_misses(c, alpha, K))


# ----------------------------------------------------------------------
# Derived comparisons (Figure 4)
# ----------------------------------------------------------------------
def utility_difference(
    c: int, alpha: float, K_expo: Optional[int], K_uni: int
) -> float:
    """u_expo(c) − u_uniform(c), the Figure 4(b) quantity."""
    return exponential_utility(c, alpha, K_expo) - uniform_utility(c, K_uni)


def max_utility_difference(
    alpha: float, K_expo: Optional[int], K_uni: int, c_max: int = 100
) -> float:
    """Maximum of u_expo − u_uniform over c in [1, c_max]."""
    if c_max < 1:
        raise ValueError(f"c_max must be >= 1, got {c_max}")
    return max(
        utility_difference(c, alpha, K_expo, K_uni) for c in range(1, c_max + 1)
    )
