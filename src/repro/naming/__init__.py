"""Unpredictable-name countermeasure for interactive traffic (Section V-A)."""

from repro.naming.session import PredictableSessionNamer, SessionNamer
from repro.naming.unpredictable import (
    RAND_LENGTH,
    derive_rand,
    make_unpredictable_name,
    verify_unpredictable_name,
)

__all__ = [
    "SessionNamer",
    "PredictableSessionNamer",
    "derive_rand",
    "make_unpredictable_name",
    "verify_unpredictable_name",
    "RAND_LENGTH",
]
