"""Interactive-session naming: two endpoints sharing a secret.

A :class:`SessionNamer` is one endpoint's view of a private interactive
session (VoIP, remote shell — Section V-A).  Both endpoints construct the
same object from the same secret; each can then name its *outgoing* frames
and predict the names of the peer's frames, while outsiders can do neither.
"""

from __future__ import annotations

from typing import Union

from repro.naming.unpredictable import make_unpredictable_name, verify_unpredictable_name
from repro.ndn.name import Name, name_of


class SessionNamer:
    """Derives per-frame unpredictable names for one interactive session."""

    def __init__(
        self,
        secret: bytes,
        local_prefix: Union[str, Name],
        remote_prefix: Union[str, Name],
    ) -> None:
        if not secret:
            raise ValueError("shared secret must be non-empty")
        self.secret = secret
        self.local_prefix = name_of(local_prefix)
        self.remote_prefix = name_of(remote_prefix)
        self._out_seq = 0

    def next_outgoing_name(self) -> Name:
        """Name for this endpoint's next outgoing frame (advances sequence)."""
        name = make_unpredictable_name(self.secret, self.local_prefix, self._out_seq)
        self._out_seq += 1
        return name

    def outgoing_name(self, sequence: int) -> Name:
        """Name for a specific outgoing frame without advancing state."""
        return make_unpredictable_name(self.secret, self.local_prefix, sequence)

    def incoming_name(self, sequence: int) -> Name:
        """Name of the peer's frame ``sequence`` (what to express interest in)."""
        return make_unpredictable_name(self.secret, self.remote_prefix, sequence)

    def verify(self, name: Name) -> bool:
        """True iff ``name`` carries a rand component derived from our secret."""
        return verify_unpredictable_name(self.secret, name)

    @property
    def sent_frames(self) -> int:
        """How many outgoing names have been issued."""
        return self._out_seq


class PredictableSessionNamer:
    """The *vulnerable* baseline: plain sequential frame names.

    Frames are named ``<prefix>/<sequence>`` with no rand component, so
    anyone who knows (or guesses) the session prefix can enumerate frame
    names and probe router caches for them — the attack surface that
    Section V-A's unpredictable names close.  Interface-compatible with
    :class:`SessionNamer` so the two drop into the same endpoints.
    """

    def __init__(
        self,
        local_prefix: Union[str, Name],
        remote_prefix: Union[str, Name],
    ) -> None:
        self.local_prefix = name_of(local_prefix)
        self.remote_prefix = name_of(remote_prefix)
        self._out_seq = 0

    def next_outgoing_name(self) -> Name:
        """Name for the next outgoing frame (advances sequence)."""
        name = self.outgoing_name(self._out_seq)
        self._out_seq += 1
        return name

    def outgoing_name(self, sequence: int) -> Name:
        """``<local_prefix>/<sequence>`` — trivially guessable."""
        if sequence < 0:
            raise ValueError(f"sequence must be >= 0, got {sequence}")
        return self.local_prefix.append(str(sequence))

    def incoming_name(self, sequence: int) -> Name:
        """``<remote_prefix>/<sequence>``."""
        if sequence < 0:
            raise ValueError(f"sequence must be >= 0, got {sequence}")
        return self.remote_prefix.append(str(sequence))

    def verify(self, name: Name) -> bool:
        """Accept any name under either prefix (no secret to check)."""
        return self.local_prefix.is_prefix_of(name) or self.remote_prefix.is_prefix_of(
            name
        )

    @property
    def sent_frames(self) -> int:
        """How many outgoing names have been issued."""
        return self._out_seq
