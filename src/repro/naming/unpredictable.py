"""Unpredictable content names (Section V-A, the "mutual" approach).

Parties in an interactive session derive a random-looking component for
each content name from a shared secret, using a keyed pseudo-random
function (HMAC-SHA256, exactly the construction the paper suggests).  An
adversary who cannot eavesdrop on the parties cannot guess the names, so
probing the router's cache yields nothing — while re-issued interests for
lost packets are still satisfied from the cache nearest the loss.

Per footnote 5, content carrying a rand component must only be returned on
exact-name matches; :func:`make_unpredictable_name` therefore pairs with
``Data(exact_match_only=True)`` in the interactive application.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Union

from repro.ndn.name import Name, name_of

#: Number of hex characters of HMAC output used as the rand component.
RAND_LENGTH = 16


def derive_rand(secret: bytes, base_name: Name, sequence: int) -> str:
    """The rand component for ``base_name``/``sequence`` under ``secret``.

    Deterministic for both endpoints sharing ``secret``; computationally
    unpredictable to anyone else.
    """
    if not secret:
        raise ValueError("shared secret must be non-empty")
    if sequence < 0:
        raise ValueError(f"sequence must be >= 0, got {sequence}")
    message = f"{base_name}|{sequence}".encode("utf-8")
    digest = hmac.new(secret, message, hashlib.sha256).hexdigest()
    return digest[:RAND_LENGTH]


def make_unpredictable_name(
    secret: bytes, base_name: Union[str, Name], sequence: int
) -> Name:
    """``<base_name>/<sequence>/<rand>`` with the HMAC-derived rand suffix."""
    base = name_of(base_name)
    rand = derive_rand(secret, base, sequence)
    return base.append(str(sequence), rand)


def verify_unpredictable_name(secret: bytes, name: Name) -> bool:
    """Check that ``name`` ends in the rand component ``secret`` derives.

    Expects the layout produced by :func:`make_unpredictable_name`:
    ``<base>/<sequence>/<rand>``.
    """
    if len(name) < 3:
        return False
    base = name.prefix(len(name) - 2)
    seq_component = name[len(name) - 2]
    rand_component = name.last
    try:
        sequence = int(seq_component)
    except ValueError:
        return False
    if sequence < 0:
        return False
    expected = derive_rand(secret, base, sequence)
    return hmac.compare_digest(expected, rand_component)
